//! Umbrella crate for the Cloudblazer i20 / DTU 2.0 reproduction workspace.
//!
//! Re-exports the public facade crate [`dtu`] so the workspace-level examples
//! and integration tests have a single import root.
pub use dtu::*;
