//! Top-K recommendation on the matrix engine (Fig. 4): scores flow
//! through the VMM-assisted sorting facility — relationship matrix,
//! order vector, transformation matrix, one VMM — and the top items come
//! out, exactly as Table II's "efficient Top-K recommendation" row says.
//!
//! ```sh
//! cargo run --release --example topk_recommendation
//! ```

use dtu_sim::{MatrixEngine, MatrixEngineError};
use dtu_tensor::Tensor;

fn main() -> Result<(), MatrixEngineError> {
    // Recommendation scores for 16 candidate items.
    let scores = Tensor::from_vec(vec![
        0.12, 0.87, 0.45, 0.91, 0.33, 0.76, 0.08, 0.64, 0.29, 0.95, 0.51, 0.18, 0.72, 0.40, 0.83,
        0.57,
    ]);
    let mut engine = MatrixEngine::default();

    // Step through the hardware flow.
    let art = engine.sort(&scores)?;
    println!("input scores:      {:?}", scores.data());
    println!("order vector:      {:?}", art.order);
    println!(
        "relationship matrix is {}x{}; transformation matrix is a permutation: each row sums to 1",
        art.relationship.shape().dims()[0],
        art.relationship.shape().dims()[1]
    );
    println!("sorted ascending:  {:?}", art.sorted.data());

    // The user-facing call: top-5 items.
    let top5 = engine.top_k(&scores, 5)?;
    println!("\ntop-5 scores: {top5:?}");
    // Recover the item indices from the order vector: rank r item is the
    // input position whose order is n-1-r.
    let n = scores.len();
    let top_items: Vec<usize> = (0..5)
        .map(|r| {
            art.order
                .iter()
                .position(|&o| o == n - 1 - r)
                .expect("permutation covers all ranks")
        })
        .collect();
    println!("top-5 item ids: {top_items:?}");
    println!(
        "\nmatrix-engine cycles charged: {} (the timing layer's cost of the sort)",
        engine.cycles()
    );
    Ok(())
}
