//! Developing a custom operator through the DSL path (§V-B): emit VLIW
//! instructions with the tensorizer/vectorizer, let the register
//! allocator dodge bank conflicts, packetize, and execute on the
//! functional interpreter — the workflow TopsEngine offers developers
//! who need an operator the libraries don't have.
//!
//! The custom operator here is a fused `y = tanh(x · W)` head.
//!
//! ```sh
//! cargo run --release --example custom_operator
//! ```

use dtu_compiler::{assign_banks, packetize, tensorize_vmm, vectorize_map};
use dtu_isa::{DataType, SfuFunc};
use dtu_sim::{InterpError, Interpreter};

fn main() -> Result<(), InterpError> {
    // Memory layout (word addresses in L1): W rows at 0, x at 512,
    // matmul result at 1024, tanh output at 2048.
    let rows = 4usize;
    let (w_addr, x_addr, y_addr, out_addr) = (0usize, 512usize, 1024usize, 2048usize);

    // 1. Auto-tensorize the matmul onto the VMM engine and auto-vectorize
    //    the activation onto the SFU.
    let mut instrs = tensorize_vmm(rows, x_addr, w_addr, y_addr);
    instrs.extend(vectorize_map(SfuFunc::Tanh, 16, y_addr, out_addr));
    println!("emitted {} VLIW instructions", instrs.len());

    // 2. Register allocation (bank-conflict avoidance) + packetizing.
    let allocated = assign_banks(&instrs);
    let packets = packetize(&allocated);
    println!(
        "packetized into {} packets ({:.2} instructions/packet)",
        packets.len(),
        instrs.len() as f64 / packets.len() as f64
    );

    // 3. Execute on the interpreter with real data.
    let mut interp = Interpreter::new(64 * 1024, DataType::Fp32);
    for r in 0..rows {
        for c in 0..16 {
            interp.poke_l1(w_addr + r * 16 + c, ((r + 1) * (c + 1)) as f32 * 0.05)?;
        }
    }
    let x = [0.5f32, -0.25, 1.0, 0.75];
    for (i, v) in x.iter().enumerate() {
        interp.poke_l1(x_addr + i, *v)?;
    }
    let report = interp.run(&packets)?;
    println!(
        "ran in {} cycles with {} bank-conflict stalls",
        report.cycles, report.bank_conflict_stalls
    );

    // 4. Check against a host-side reference.
    println!("\n col |   hardware  |  reference");
    for c in 0..6 {
        let got = interp.peek_l1(out_addr + c)?;
        let dot: f32 = (0..rows)
            .map(|r| x[r] * ((r + 1) * (c + 1)) as f32 * 0.05)
            .sum();
        let want = dot.tanh();
        println!("  {c}  | {got:>10.6}  | {want:>10.6}");
        assert!((got - want).abs() < 1e-3, "mismatch at column {c}");
    }
    println!("\ncustom operator matches the reference.");
    Ok(())
}
