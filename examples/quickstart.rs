//! Quickstart: build a small DNN graph, compile it for the simulated
//! Cloudblazer i20, run it, and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dtu::{Accelerator, DtuError, Graph, Op, Session, SessionOptions, TensorType};
use dtu_isa::SfuFunc;

fn main() -> Result<(), DtuError> {
    // 1. Describe the model as a computation graph (what TopsInference
    //    would import from ONNX).
    let mut g = Graph::new("quickstart-cnn");
    let x = g.input("image", TensorType::fixed(&[1, 3, 64, 64]));
    let c1 = g.add_node(Op::conv2d(32, 3, 1, 1), vec![x])?;
    let b1 = g.add_node(Op::BatchNorm, vec![c1])?;
    let r1 = g.add_node(Op::Relu, vec![b1])?;
    let c2 = g.add_node(Op::conv2d(64, 3, 2, 1), vec![r1])?;
    let a2 = g.add_node(
        Op::Activation {
            func: SfuFunc::Gelu,
        },
        vec![c2],
    )?;
    let head = g.add_node(Op::Dense { units: 10 }, vec![a2])?;
    let probs = g.add_node(Op::Softmax, vec![head])?;
    g.mark_output(probs);

    // 2. Pick an accelerator and compile. Fusion, tiling, placement, and
    //    feature selection (prefetch / repeat-DMA / sparse staging) all
    //    happen here.
    let accel = Accelerator::cloudblazer_i20();
    println!("accelerator: {accel}");
    let session = Session::compile(&accel, &g, SessionOptions::default())?;
    println!(
        "compiled {} into {} commands across {} streams",
        g,
        session.program().total_commands(),
        session.program().streams.len()
    );

    // 3. Run and inspect.
    let report = session.run()?;
    println!("result: {report}");
    println!(
        "  kernels launched: {}   MACs: {}   icache hit rate: {:.0}%",
        report.raw().counters.kernel_launches,
        report.raw().counters.macs,
        report.raw().counters.icache_hit_rate() * 100.0
    );
    println!(
        "  energy: {:.4} J at mean clock {:.0} MHz",
        report.energy_joules(),
        report.mean_freq_mhz()
    );
    Ok(())
}
