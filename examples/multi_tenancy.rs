//! Multi-tenancy via resource abstraction (Fig. 7): three tenants each
//! get one isolated processing group of a cluster, and a latency-critical
//! tenant gets a whole cluster — the mapping flexibility §IV-E describes.
//!
//! ```sh
//! cargo run --release --example multi_tenancy
//! ```

use dtu::{Accelerator, DtuError, Placement, Session, SessionOptions, WorkloadSize};
use dtu_models::Model;
use dtu_sim::GroupId;

fn main() -> Result<(), DtuError> {
    let accel = Accelerator::cloudblazer_i20();

    // A latency-critical detection service takes cluster 0 outright.
    let detection = Model::CenterNet.build(1);
    let det_session = Session::compile(
        &accel,
        &detection,
        SessionOptions {
            size: WorkloadSize::Large,
            cluster: 0,
            ..Default::default()
        },
    )?;
    let det = det_session.run()?;
    println!(
        "tenant A (CenterNet, cluster 0, 3 groups): {:.3} ms -> {:.0} QPS",
        det.latency_ms(),
        det.throughput()
    );

    // Three light classification tenants share cluster 1, one group each.
    println!("\ntenants B/C/D (ResNet-50, cluster 1, 1 group each):");
    let classify = Model::Resnet50.build(1);
    for g in 0..3 {
        let session = Session::compile(
            &accel,
            &classify,
            SessionOptions {
                placement: Some(Placement::explicit(vec![GroupId::new(1, g)])),
                ..Default::default()
            },
        )?;
        let r = session.run()?;
        println!(
            "  group g1.{g}: {:.3} ms -> {:.0} QPS (isolated hardware, no cross-tenant interference on compute)",
            r.latency_ms(),
            r.throughput()
        );
    }

    // The same light model, given more of the chip, trades utilisation
    // for latency — the deployment decision Fig. 7 leaves to the user.
    println!("\nResNet-50 latency vs resources (cluster 1):");
    for (label, size) in [
        ("1 group ", WorkloadSize::Small),
        ("2 groups", WorkloadSize::Medium),
        ("3 groups", WorkloadSize::Large),
    ] {
        let session = Session::compile(
            &accel,
            &classify,
            SessionOptions {
                size,
                cluster: 1,
                ..Default::default()
            },
        )?;
        let r = session.run()?;
        println!("  {label}: {:.3} ms", r.latency_ms());
    }
    Ok(())
}
