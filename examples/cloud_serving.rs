//! Cloud inference serving with QoS: Poisson request load over isolated
//! multi-tenant processing groups (§IV-E's deployment story), reporting
//! the tail-latency statistics an SLA is written against — then the
//! full event-driven serving stack (dtu-serve) with two models, dynamic
//! batching, SLA admission, and elastic group scaling.
//!
//! ```sh
//! cargo run --release --example cloud_serving
//! ```

use dtu::serve::{
    run_serving, ArrivalProcess, BatchPolicy, CompiledModel, ScalePolicy, ServeConfig,
    ServiceModel, SlaPolicy, TenantSpec,
};
use dtu::{simulate_serving, Accelerator, DtuError, ServingConfig};
use dtu_models::Model;

fn main() -> Result<(), DtuError> {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::Resnet50.build(1);

    println!("ResNet-50 serving on the i20, one isolated group per tenant\n");
    println!(
        "{:>10} {:>8} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "load(QPS)", "tenants", "thru(QPS)", "p50(ms)", "p95(ms)", "p99(ms)", "util"
    );
    // Sweep offered load per tenant from light to near saturation.
    for qps in [100.0, 300.0, 500.0, 650.0] {
        let report = simulate_serving(
            &accel,
            &graph,
            &ServingConfig {
                tenants: 6,
                arrival_qps: qps,
                duration_ms: 400.0,
                seed: 42,
            },
        )?;
        println!(
            "{:>10.0} {:>8} {:>10.0} {:>9.2} {:>9.2} {:>9.2} {:>7.0}%",
            qps,
            6,
            report.throughput_qps,
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.utilization * 100.0
        );
    }

    println!();
    println!("Isolation means each tenant's tail depends only on its own load —");
    println!("six tenants at moderate load serve ~6x the throughput of one with");
    println!("the same per-tenant latency distribution:");
    for tenants in [1usize, 6] {
        let report = simulate_serving(
            &accel,
            &graph,
            &ServingConfig {
                tenants,
                arrival_qps: 300.0,
                duration_ms: 400.0,
                seed: 42,
            },
        )?;
        println!("  {tenants} tenant(s): {report}");
    }

    // --- The full serving stack: two models, dynamic batching, SLA
    // admission, and elastic scaling, on one chip concurrently. ---
    println!();
    println!("dtu-serve: ResNet-50 + BERT-Large tenants, dynamic batching (max 8,");
    println!("2 ms timeout), 50/150 ms SLAs, elastic 1..3-group scaling:\n");

    let mut resnet = CompiledModel::new(accel.chip(), "resnet50", |b| Model::Resnet50.build(b));
    let mut bert = CompiledModel::new(accel.chip(), "bert-large", |b| Model::BertLarge.build(b));

    let cfg = ServeConfig {
        duration_ms: 500.0,
        seed: 42,
        record_requests: false,
        faults: Default::default(),
        retry: Default::default(),
        tenants: vec![
            TenantSpec {
                name: "vision".into(),
                model: 0,
                arrival: ArrivalProcess::Bursty {
                    base_qps: 300.0,
                    burst_qps: 1200.0,
                    mean_dwell_ms: 80.0,
                },
                batch: BatchPolicy::dynamic(8, 2.0),
                sla: SlaPolicy::new(50.0, 48),
                scale: ScalePolicy::elastic(10.0, 2.0, 3),
                cluster: Some(0),
                initial_groups: 1,
            },
            TenantSpec {
                name: "language".into(),
                model: 1,
                arrival: ArrivalProcess::Poisson { qps: 40.0 },
                batch: BatchPolicy::dynamic(4, 4.0),
                sla: SlaPolicy::new(150.0, 64),
                scale: ScalePolicy::elastic(16.0, 3.0, 3),
                cluster: Some(1),
                initial_groups: 1,
            },
        ],
    };
    let out = run_serving(&cfg, accel.config(), &mut [&mut resnet, &mut bert])?;
    print!("{}", out.report);
    println!();
    for m in [&resnet, &bert] {
        let s = m.cache_stats();
        println!(
            "  session cache [{}]: {} sessions, {} hits / {} misses",
            m.name(),
            m.cached_sessions(),
            s.hits,
            s.misses
        );
    }
    Ok(())
}
