//! Cloud inference serving with QoS: Poisson request load over isolated
//! multi-tenant processing groups (§IV-E's deployment story), reporting
//! the tail-latency statistics an SLA is written against.
//!
//! ```sh
//! cargo run --release --example cloud_serving
//! ```

use dtu::{simulate_serving, Accelerator, DtuError, ServingConfig};
use dtu_models::Model;

fn main() -> Result<(), DtuError> {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::Resnet50.build(1);

    println!("ResNet-50 serving on the i20, one isolated group per tenant\n");
    println!(
        "{:>10} {:>8} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "load(QPS)", "tenants", "thru(QPS)", "p50(ms)", "p95(ms)", "p99(ms)", "util"
    );
    // Sweep offered load per tenant from light to near saturation.
    for qps in [100.0, 300.0, 500.0, 650.0] {
        let report = simulate_serving(
            &accel,
            &graph,
            &ServingConfig {
                tenants: 6,
                arrival_qps: qps,
                duration_ms: 400.0,
                seed: 42,
            },
        )?;
        println!(
            "{:>10.0} {:>8} {:>10.0} {:>9.2} {:>9.2} {:>9.2} {:>7.0}%",
            qps,
            6,
            report.throughput_qps,
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.utilization * 100.0
        );
    }

    println!();
    println!("Isolation means each tenant's tail depends only on its own load —");
    println!("six tenants at moderate load serve ~6x the throughput of one with");
    println!("the same per-tenant latency distribution:");
    for tenants in [1usize, 6] {
        let report = simulate_serving(
            &accel,
            &graph,
            &ServingConfig {
                tenants,
                arrival_qps: 300.0,
                duration_ms: 400.0,
                seed: 42,
            },
        )?;
        println!("  {tenants} tenant(s): {report}");
    }
    Ok(())
}
