//! Image classification on the benchmark suite: runs ResNet-50 v1.5 and
//! VGG16 (Table III rows) on the Cloudblazer i20 and its predecessor
//! i10, and prints the comparison the paper's Fig. 13 footnote makes.
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```

use dtu::{Accelerator, DtuError, Session, SessionOptions};
use dtu_models::Model;

fn main() -> Result<(), DtuError> {
    let i20 = Accelerator::cloudblazer_i20();
    let i10 = Accelerator::cloudblazer_i10();

    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>14}",
        "Model", "i20 (ms)", "i10 (ms)", "speedup", "i20 samples/s"
    );
    for model in [Model::Resnet50, Model::Vgg16, Model::InceptionV4] {
        let graph = model.build(1);
        let s20 = Session::compile(&i20, &graph, SessionOptions::default())?;
        let r20 = s20.run()?;
        let s10 = Session::compile(&i10, &graph, SessionOptions::default())?;
        let r10 = s10.run()?;
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>9.2}x {:>14.0}",
            model.name(),
            r20.latency_ms(),
            r10.latency_ms(),
            r10.latency_ms() / r20.latency_ms(),
            r20.throughput()
        );
    }

    // Where does the time go? Break one run down.
    let graph = Model::Resnet50.build(1);
    let session = Session::compile(&i20, &graph, SessionOptions::default())?;
    let report = session.run()?;
    let c = report.raw().counters;
    println!("\nResNet-50 on i20 — where the cycles go (all groups):");
    println!("  issue/compute busy : {:>9.1} us", c.compute_busy_ns / 1e3);
    println!("  memory/pipe stalls : {:>9.1} us", c.memory_stall_ns / 1e3);
    println!(
        "  kernel-code loads  : {:>9.1} us",
        c.code_load_stall_ns / 1e3
    );
    println!("  sync waits         : {:>9.1} us", c.sync_wait_ns / 1e3);
    println!(
        "  DMA transfers      : {:>9} ({} MiB on the wire)",
        c.dma_transfers,
        c.dma_wire_bytes / (1024 * 1024)
    );
    Ok(())
}
