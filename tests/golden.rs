//! Golden-figure regression: the committed `tests/golden/figures.json`
//! must match a fresh regeneration of the fig. 12–15 data within the
//! CI tolerance, and the comparator must demonstrably catch drift.
//!
//! Intentional changes: regenerate with
//! `topsexec sweep --write-golden tests/golden/figures.json` and commit
//! the diff (see docs/CLI.md).

use dtu_harness::{compare_golden, SessionCache, GOLDEN_RTOL};

const GOLDEN: &str = include_str!("golden/figures.json");

#[test]
fn committed_figures_match_regeneration() {
    let cache = SessionCache::memory_only();
    let regenerated = dtu_bench::figures_json(&cache, 4);
    if let Err(e) = compare_golden(GOLDEN.trim_end(), &regenerated, GOLDEN_RTOL) {
        panic!(
            "fig. 12-15 drifted from tests/golden/figures.json: {e}\n\
             if intentional, regenerate with `topsexec sweep --write-golden \
             tests/golden/figures.json` and commit the diff"
        );
    }
}

#[test]
fn comparator_catches_a_perturbed_figure() {
    let golden = GOLDEN.trim_end();
    // Bump the leading digit of the first fractional value — a pure
    // numeric perturbation, structurally identical JSON.
    let perturbed = golden.replacen("1.", "2.", 1);
    assert_ne!(golden, perturbed, "golden must contain a fractional value");
    let err = compare_golden(golden, &perturbed, GOLDEN_RTOL).unwrap_err();
    assert!(err.contains("drifted"), "{err}");
}
