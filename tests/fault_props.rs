//! Property tests for the fault-injection layer: an empty plan is
//! zero-cost and invisible whatever its seed, and serving retry/backoff
//! never exceeds the configured attempt cap, backoff ceiling, or the
//! request deadline (expired requests are dropped, not retried).

use dtu::faults::{FaultEvent, FaultKind, FaultPlan, FaultRng, FaultSession};
use dtu::{Accelerator, Graph, Op, Session, SessionOptions, TensorType};
use dtu_serve::{run_serving, AnalyticModel, RetryPolicy, ServeConfig, ServeEventKind, TenantSpec};
use dtu_sim::ChipConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

fn accel() -> &'static Accelerator {
    static ACCEL: OnceLock<Accelerator> = OnceLock::new();
    ACCEL.get_or_init(Accelerator::cloudblazer_i20)
}

fn toy_graph() -> Graph {
    let mut g = Graph::new("toy");
    let x = g.input("x", TensorType::fixed(&[1, 8, 16, 16]));
    let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
    g.mark_output(c);
    g
}

proptest! {
    /// Any zero-event plan — whatever its seed or name — leaves the
    /// simulator byte-identical to the fault-free path.
    #[test]
    fn zero_event_plan_is_invisible_to_the_simulator(seed in 0u64..u64::MAX) {
        let accel = accel();
        let chip = accel.config();
        let graph = toy_graph();
        let session = Session::compile(accel, &graph, SessionOptions::default()).unwrap();
        let plain = session.run().unwrap();

        let plan = FaultPlan { seed, name: "empty".into(), events: Vec::new() };
        prop_assert!(plan.is_empty());
        let mut faults = FaultSession::new(&plan, chip.clusters, chip.groups_per_cluster);
        let faulted = session.run_faulted(&mut faults).unwrap();
        prop_assert_eq!(plain, faulted);
        prop_assert_eq!(faults.injected(), 0);
        prop_assert_eq!(faults.stall_ns(), 0.0);
    }

    /// Same property one layer up: the serving engine with a zero-event
    /// plan and an arbitrary retry policy reproduces the fault-free run
    /// exactly, for any arrival seed.
    #[test]
    fn zero_event_plan_is_invisible_to_the_serving_engine(
        seed in 0u64..1_000_000,
        max_attempts in 0u32..8,
        backoff_ms in 0.0f64..50.0,
    ) {
        let chip = ChipConfig::dtu20();
        let base = ServeConfig {
            duration_ms: 80.0,
            seed,
            tenants: vec![TenantSpec::poisson("web", 0, 300.0)],
            ..Default::default()
        };
        let mut model = AnalyticModel::new("m", 0.4);
        let plain = run_serving(&base, &chip, &mut [&mut model]).unwrap();

        let cfg = ServeConfig {
            faults: FaultPlan { seed, name: "empty".into(), events: Vec::new() },
            retry: RetryPolicy { max_attempts, backoff_ms, max_backoff_ms: 99.0, jitter: 0.7 },
            ..base
        };
        let mut model = AnalyticModel::new("m", 0.4);
        let faulted = run_serving(&cfg, &chip, &mut [&mut model]).unwrap();
        prop_assert_eq!(plain.report, faulted.report);
        prop_assert_eq!(plain.trace.events, faulted.trace.events);
    }

    /// The exponential-backoff schedule is bounded: never negative,
    /// never beyond the configured ceiling times the jitter factor,
    /// for any attempt number and RNG state.
    #[test]
    fn backoff_never_exceeds_the_configured_ceiling(
        attempt in 1u32..64,
        backoff_ms in 0.0f64..20.0,
        max_backoff_ms in 0.0f64..40.0,
        jitter in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let policy = RetryPolicy { max_attempts: 3, backoff_ms, max_backoff_ms, jitter };
        let mut rng = FaultRng::new(seed);
        let b = policy.backoff_for(attempt, &mut rng);
        prop_assert!(b >= 0.0, "negative backoff {b}");
        let ceiling = max_backoff_ms.max(0.0) * (1.0 + jitter);
        prop_assert!(
            b <= ceiling + 1e-9,
            "backoff {b} exceeds ceiling {ceiling} (attempt {attempt})"
        );
        if backoff_ms == 0.0 {
            prop_assert_eq!(b, 0.0);
        }
    }

    /// Under injected transient faults the engine never retries a batch
    /// beyond the attempt cap, never schedules a backoff beyond the
    /// ceiling, and accounts for every request exactly once — dropped
    /// requests (budget or deadline exhausted) never also complete.
    #[test]
    fn serving_retries_respect_cap_deadline_and_accounting(
        seed in 0u64..1_000_000,
        max_attempts in 0u32..4,
        fault_times in prop::collection::vec(5.0f64..70.0, 1..5),
    ) {
        let chip = ChipConfig::dtu20();
        let retry = RetryPolicy {
            max_attempts,
            backoff_ms: 1.0,
            max_backoff_ms: 4.0,
            jitter: 0.5,
        };
        let events: Vec<FaultEvent> = fault_times
            .iter()
            .map(|&ms| FaultEvent {
                at_ns: ms * 1e6,
                cluster: 0,
                group: 0,
                kind: FaultKind::EccError { correctable: false },
            })
            .collect();
        let cfg = ServeConfig {
            duration_ms: 80.0,
            seed,
            faults: FaultPlan { seed, name: "ecc".into(), events },
            retry,
            tenants: vec![TenantSpec::poisson("web", 0, 300.0)],
            ..Default::default()
        };
        let mut model = AnalyticModel::new("m", 0.4);
        let out = run_serving(&cfg, &chip, &mut [&mut model]).unwrap();
        let r = &out.report;

        for e in &out.trace.events {
            match &e.kind {
                ServeEventKind::Retry { attempt, backoff_ms } => {
                    prop_assert!(
                        *attempt <= max_attempts,
                        "retry attempt {attempt} beyond cap {max_attempts}"
                    );
                    prop_assert!(
                        *backoff_ms <= retry.max_backoff_ms * (1.0 + retry.jitter) + 1e-9,
                        "backoff {backoff_ms} beyond ceiling"
                    );
                }
                ServeEventKind::Fault { attempt, .. } => {
                    // The failing attempt may be the one that breaks
                    // the cap — that is what triggers the drop.
                    prop_assert!(*attempt <= max_attempts + 1);
                }
                _ => {}
            }
        }
        prop_assert_eq!(
            r.offered,
            r.completed + r.shed + r.fault_dropped,
            "every offered request must complete, shed, or fault-drop exactly once"
        );
        prop_assert_eq!(r.retries, out.trace.events.iter().filter(|e| {
            matches!(e.kind, ServeEventKind::Retry { .. })
        }).count() as u64);
    }
}
