//! Property-based tests over core data structures and invariants.

use dtu_isa::DataType;
use dtu_sim::MatrixEngine;
use dtu_tensor::{
    compress, decompress, pad, slice, PadSpec, Permutation, Shape, SliceSpec, Tensor,
};
use proptest::prelude::*;

proptest! {
    /// The sparse wire codec is lossless for arbitrary finite data.
    #[test]
    fn sparse_codec_roundtrip(data in prop::collection::vec(-1e6f32..1e6, 0..500)) {
        // Inject extra exact zeros so both paths get exercised.
        let data: Vec<f32> = data
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i % 3 == 0 { 0.0 } else { v })
            .collect();
        let blocks = compress(&data);
        let back = decompress(&blocks).expect("own output must decode");
        prop_assert_eq!(back, data);
    }

    /// VMM agrees with the reference matmul for every FP32 catalog shape.
    #[test]
    fn vmm_matches_reference(
        rows in prop::sample::select(vec![4usize, 8, 16]),
        seed in 0u64..1_000_000,
    ) {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as i32 % 1000) as f32 / 250.0 - 2.0
        };
        let v = Tensor::from_fn(Shape::new(vec![rows]), |_| next());
        let m = Tensor::from_fn(Shape::new(vec![rows, 16]), |_| next());
        let acc = Tensor::zeros(Shape::new(vec![16]));
        let mut eng = MatrixEngine::default();
        let got = eng.vmm(&v, &m, &acc, DataType::Fp32).expect("catalog shape");
        let want = v
            .reshape(Shape::new(vec![1, rows]))
            .expect("same length")
            .matmul(&m)
            .expect("valid")
            .reshape(Shape::new(vec![16]))
            .expect("same length");
        let err = got.max_abs_diff(&want).expect("same shape");
        prop_assert!(err < 1e-3, "err {}", err);
    }

    /// The sorting facility equals a stable host sort for any input.
    #[test]
    fn sort_facility_equals_std(data in prop::collection::vec(-1e4f32..1e4, 1..=32)) {
        let input = Tensor::from_vec(data.clone());
        let mut eng = MatrixEngine::default();
        let art = eng.sort(&input).expect("fits engine");
        let mut want = data;
        want.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        prop_assert_eq!(art.sorted.data(), want.as_slice());
    }

    /// Permutations: inverse composes to identity and apply/inverse-apply
    /// round-trips values.
    #[test]
    fn permutation_laws(perm in prop::sample::subsequence((0..6usize).collect::<Vec<_>>(), 0..=6)) {
        // Build a permutation by rotating the chosen subsequence through
        // the identity.
        let n = 6usize;
        let mut p: Vec<usize> = (0..n).collect();
        for (i, &j) in perm.iter().enumerate() {
            p.swap(i, j);
        }
        let perm = Permutation::new(p).expect("constructed as a bijection");
        let inv = perm.inverse();
        prop_assert!(perm.compose(&inv).expect("same rank").is_identity());
        prop_assert!(inv.compose(&perm).expect("same rank").is_identity());
        let values: Vec<usize> = (100..100 + n).collect();
        let there = perm.apply(&values).expect("same rank");
        let back = inv.apply(&there).expect("same rank");
        prop_assert_eq!(back, values);
    }

    /// pad then slice recovers the original tensor for any symmetric pad.
    #[test]
    fn pad_slice_roundtrip(
        h in 1usize..8,
        w in 1usize..8,
        ph in 0usize..4,
        pw in 0usize..4,
        fill in -10f32..10.0,
    ) {
        let t = Tensor::from_fn(Shape::new(vec![h, w]), |i| (i[0] * w + i[1]) as f32);
        let padded = pad(
            &t,
            &[PadSpec::symmetric(ph), PadSpec::symmetric(pw)],
            fill,
        ).expect("spec matches rank");
        let back = slice(
            &padded,
            &[
                SliceSpec::range(ph, ph + h),
                SliceSpec::range(pw, pw + w),
            ],
        ).expect("within bounds");
        prop_assert_eq!(back, t);
    }

    /// Quantisation is idempotent and respects per-format error bounds.
    #[test]
    fn quantize_idempotent_and_bounded(v in -6e4f32..6e4) {
        for dt in [DataType::Tf32, DataType::Fp16, DataType::Bf16] {
            let q = dt.quantize(v);
            prop_assert_eq!(dt.quantize(q), q, "{} not idempotent", dt);
            if v != 0.0 && v.abs() < 6e4 {
                let eps = dt.relative_epsilon().expect("float format");
                let rel = ((q - v) / v).abs() as f64;
                prop_assert!(rel <= eps * 1.001, "{}: rel {} > {}", dt, rel, eps);
            }
        }
    }

    /// The GEMM tiler handles arbitrary shapes against the host matmul.
    #[test]
    fn gemm_any_shape_matches(m in 1usize..12, k in 1usize..40, n in 1usize..24) {
        let a = Tensor::from_fn(Shape::new(vec![m, k]), |i| {
            ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.2 - 1.0
        });
        let b = Tensor::from_fn(Shape::new(vec![k, n]), |i| {
            ((i[0] * 3 + i[1] * 5) % 9) as f32 * 0.25 - 1.0
        });
        let mut eng = MatrixEngine::default();
        let got = eng.gemm(&a, &b, DataType::Fp32).expect("tiler covers all");
        let want = a.matmul(&b).expect("valid");
        let err = got.max_abs_diff(&want).expect("same shape");
        prop_assert!(err < 1e-2, "err {} at {}x{}x{}", err, m, k, n);
    }
}

/// Builds a random layered CNN-ish DAG from a compact spec: each layer
/// is (op_selector, input_back_offset).
fn random_graph(spec: &[(u8, u8)]) -> dtu_graph::Graph {
    use dtu_graph::{BinaryKind, Graph, Op, TensorType};
    let mut g = Graph::new("random");
    let mut nodes = vec![g.input("x", TensorType::fixed(&[1, 8, 16, 16]))];
    for &(op_sel, back) in spec {
        let a = nodes[nodes.len() - 1 - (back as usize % nodes.len().min(3))];
        let last = *nodes.last().expect("non-empty");
        let id = match op_sel % 6 {
            0 => g.add_node(Op::conv2d(8, 3, 1, 1), vec![a]).expect("legal"),
            1 => g.add_node(Op::Relu, vec![last]).expect("legal"),
            2 => g.add_node(Op::BatchNorm, vec![last]).expect("legal"),
            3 => g
                .add_node(
                    Op::Binary {
                        kind: BinaryKind::Add,
                    },
                    vec![last, a],
                )
                .expect("legal"),
            4 => g
                .add_node(
                    Op::Activation {
                        func: dtu_isa::SfuFunc::Tanh,
                    },
                    vec![last],
                )
                .expect("legal"),
            _ => g
                .add_node(Op::conv2d(8, 1, 1, 0), vec![last])
                .expect("legal"),
        };
        nodes.push(id);
    }
    g.mark_output(*nodes.last().expect("non-empty"));
    g
}

proptest! {
    /// Fusion plans partition the non-input nodes exactly, for arbitrary
    /// layered DAGs, under both the expert rules and the search pass.
    #[test]
    fn fusion_plans_partition_random_graphs(
        spec in prop::collection::vec((0u8..6, 0u8..3), 1..25)
    ) {
        use dtu_graph::{fuse, search_fuse, FusionConfig, Op, SearchConfig};
        let g = random_graph(&spec);
        let non_inputs = g
            .nodes()
            .iter()
            .filter(|n| !matches!(n.op, Op::Input { .. }))
            .count();
        for plan in [
            fuse(&g, &FusionConfig::default()).expect("fuses"),
            search_fuse(&g, &SearchConfig::default()).expect("searches").plan,
        ] {
            let mut seen = std::collections::BTreeSet::new();
            for group in &plan.groups {
                for &n in &group.nodes {
                    prop_assert!(seen.insert(n), "node covered twice");
                }
            }
            prop_assert_eq!(seen.len(), non_inputs);
        }
    }

    /// The optimiser preserves output shapes on arbitrary layered DAGs
    /// and never grows the graph.
    #[test]
    fn optimizer_preserves_semantics_on_random_graphs(
        spec in prop::collection::vec((0u8..6, 0u8..3), 1..25)
    ) {
        use dtu_graph::optimize;
        let g = random_graph(&spec);
        let before = g.infer_shapes().expect("valid");
        let (opt, _) = optimize(&g).expect("optimises");
        let after = opt.infer_shapes().expect("still valid");
        prop_assert!(opt.len() <= g.len());
        prop_assert_eq!(
            &before[g.outputs().last().expect("has output")],
            &after[opt.outputs().last().expect("has output")]
        );
    }

    /// Compiled random graphs run to completion on the chip (no
    /// deadlocks, no illegal commands) on both generations.
    #[test]
    fn random_graphs_compile_and_run(
        spec in prop::collection::vec((0u8..6, 0u8..3), 1..12)
    ) {
        use dtu::{Accelerator, Session, SessionOptions};
        let g = random_graph(&spec);
        for accel in [Accelerator::cloudblazer_i20(), Accelerator::cloudblazer_i10()] {
            let report = Session::compile(&accel, &g, SessionOptions::default())
                .expect("compiles")
                .run()
                .expect("runs");
            prop_assert!(report.latency_ms() > 0.0);
        }
    }
}
