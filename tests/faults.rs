//! End-to-end fault-injection acceptance across sim, core, serve, and
//! harness: byte-determinism of the `topsexec faults` flow, empty-plan
//! transparency, and graceful degradation under every preset.

use dtu::faults::{FaultPlan, FaultSession, PRESETS};
use dtu::{
    run_resilient, Accelerator, DtuError, Graph, Op, RecoveryPolicy, Session, SessionOptions,
    TensorType,
};
use dtu_harness::{run_fault_sweep, SessionCache, SweepModel};
use dtu_models::Model;
use dtu_serve::{run_serving, AnalyticModel, RetryPolicy, ServeConfig, TenantSpec};
use dtu_sim::{ChipConfig, SimError};

fn toy_graph(batch: usize) -> Graph {
    let mut g = Graph::new("toy");
    let x = g.input("x", TensorType::fixed(&[batch, 8, 16, 16]));
    let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
    g.mark_output(c);
    g
}

/// The acceptance command — `topsexec faults resnet50 --seed 7
/// --plan core-failure` — must produce byte-identical JSON however
/// many workers run it and however warm the cache is.
#[test]
fn acceptance_fault_sweep_is_byte_identical_across_runs() {
    let accel = Accelerator::cloudblazer_i20();
    let grid = [SweepModel::new("resnet50", |b| Model::Resnet50.build(b))];
    let plans = ["core-failure"];
    let severities = [0.5, 1.0];

    let cold = SessionCache::memory_only();
    let first = run_fault_sweep(&accel, &grid, &plans, &severities, 7, &cold, 1).unwrap();
    // Second run: different worker count, *warm* cache (same handle).
    let second = run_fault_sweep(&accel, &grid, &plans, &severities, 7, &cold, 4).unwrap();
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "fault report must be byte-identical across runs, jobs, and cache temperature"
    );
    assert!(first.points.iter().all(|p| p.ok));
    assert!(first
        .points
        .iter()
        .all(|p| p.remaps == 1 && p.final_groups == 5));
}

/// An empty plan must be invisible: the faulted entry points produce
/// exactly the report of the plain ones.
#[test]
fn empty_plan_is_byte_identical_to_the_no_fault_path() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = toy_graph(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).unwrap();
    let plain = session.run().unwrap();

    let chip = accel.config();
    let mut faults = FaultSession::new(&FaultPlan::empty(), chip.clusters, chip.groups_per_cluster);
    let faulted = session.run_faulted(&mut faults).unwrap();
    assert_eq!(plain, faulted, "empty plan must not perturb the simulator");
    assert_eq!(faults.injected(), 0);

    // Same through the recovery loop: no retries, no remaps, same report.
    let mut faults = FaultSession::new(&FaultPlan::empty(), chip.clusters, chip.groups_per_cluster);
    let resilient = run_resilient(
        &accel,
        &graph,
        &SessionOptions::default(),
        &mut faults,
        &RecoveryPolicy::default(),
    )
    .unwrap();
    assert_eq!(resilient.report, plain);
    assert_eq!(resilient.retries, 0);
    assert!(resilient.remaps.is_empty());
}

/// The serving engine with an empty plan and an aggressive retry
/// policy must reproduce the fault-free run exactly — report and trace.
#[test]
fn serving_with_empty_plan_matches_the_fault_free_run() {
    let base = ServeConfig {
        duration_ms: 150.0,
        seed: 7,
        tenants: vec![TenantSpec::poisson("web", 0, 400.0)],
        ..Default::default()
    };
    let mut model = AnalyticModel::new("m", 0.4);
    let chip = ChipConfig::dtu20();
    let plain = run_serving(&base, &chip, &mut [&mut model]).unwrap();

    let wild = ServeConfig {
        faults: FaultPlan::empty(),
        retry: RetryPolicy {
            max_attempts: 9,
            backoff_ms: 123.0,
            max_backoff_ms: 999.0,
            jitter: 1.0,
        },
        ..base
    };
    let mut model = AnalyticModel::new("m", 0.4);
    let faulted = run_serving(&wild, &chip, &mut [&mut model]).unwrap();
    assert_eq!(plain.report, faulted.report);
    assert_eq!(plain.trace.events, faulted.trace.events);
}

/// A permanent core failure must degrade, not kill: recovery remaps
/// onto the survivors and still delivers a report.
#[test]
fn core_failure_degrades_gracefully_through_recovery() {
    let accel = Accelerator::cloudblazer_i20();
    let chip = accel.config();
    let graph = toy_graph(1);
    // Size the plan's horizon from a fault-free run so the failure
    // lands inside the execution window (as `run_fault_sweep` does).
    let baseline = Session::compile(&accel, &graph, SessionOptions::default())
        .unwrap()
        .run()
        .unwrap();
    let plan = FaultPlan::preset(
        "core-failure",
        7,
        1.0,
        chip.clusters,
        chip.groups_per_cluster,
        baseline.latency_ms() * 1e6,
    )
    .unwrap();
    let mut faults = FaultSession::new(&plan, chip.clusters, chip.groups_per_cluster);
    let r = run_resilient(
        &accel,
        &graph,
        &SessionOptions::default(),
        &mut faults,
        &RecoveryPolicy::default(),
    )
    .unwrap();
    assert!(r.degraded(), "a core failure must force a remap");
    let total = chip.clusters * chip.groups_per_cluster;
    assert!(r.final_groups().unwrap() < total);
    assert!(r.report.latency_ms() > 0.0);
}

/// Every named preset builds a valid plan and either completes under
/// recovery or surfaces a typed fault error — never a panic and never
/// an unrelated error kind.
#[test]
fn every_preset_runs_to_a_typed_outcome() {
    let accel = Accelerator::cloudblazer_i20();
    let chip = accel.config();
    let graph = toy_graph(1);
    for &name in PRESETS {
        let plan =
            FaultPlan::preset(name, 7, 1.0, chip.clusters, chip.groups_per_cluster, 1e9).unwrap();
        let mut faults = FaultSession::new(&plan, chip.clusters, chip.groups_per_cluster);
        match run_resilient(
            &accel,
            &graph,
            &SessionOptions::default(),
            &mut faults,
            &RecoveryPolicy::default(),
        ) {
            Ok(r) => assert!(r.report.latency_ms() > 0.0, "{name}: empty report"),
            Err(DtuError::Sim(SimError::Fault(e))) => {
                // Budget exhaustion is a legal outcome; it must carry
                // a located, labelled fault.
                let _ = e.is_permanent();
            }
            Err(other) => panic!("{name}: unexpected error kind {other}"),
        }
    }
}
