//! Integration tests for the Table II bandwidth-relief features, measured
//! at the quantity they actually target: bytes on the wire, not latency
//! (at FP16 batch 1 the wire savings hide behind compute — see
//! EXPERIMENTS.md).

use dtu::{Accelerator, ChipConfig, Session, SessionOptions};
use dtu_models::Model;
use dtu_tensor::{im2col, Shape, Tensor};

fn wire_bytes(cfg: ChipConfig, model: Model) -> u64 {
    let accel = Accelerator::with_config(cfg).unwrap();
    let graph = model.build(1);
    Session::compile(&accel, &graph, SessionOptions::default())
        .unwrap()
        .run()
        .unwrap()
        .raw()
        .counters
        .dma_wire_bytes
}

#[test]
fn sparse_dma_cuts_wire_traffic_on_relu_heavy_models() {
    // "Enable sparse data decompression during data transfer with DMA ...
    // to alleviate the growing bandwidth pressure" (Table II). ResNet-50
    // stages post-ReLU activations, ~45% zeros.
    let with = wire_bytes(ChipConfig::dtu20(), Model::Resnet50);
    let mut cfg = ChipConfig::dtu20();
    cfg.features.sparse_dma = false;
    let without = wire_bytes(cfg, Model::Resnet50);
    assert!(
        with < without * 85 / 100,
        "sparse DMA saved too little: {with} vs {without} wire bytes"
    );
}

#[test]
fn dma_config_time_drops_with_repeat_mode() {
    let time = |repeat: bool| {
        let mut cfg = ChipConfig::dtu20();
        cfg.features.dma_repeat = repeat;
        let accel = Accelerator::with_config(cfg).unwrap();
        let graph = Model::Unet.build(1); // large staged activations => tiled
        Session::compile(&accel, &graph, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap()
            .raw()
            .counters
            .dma_config_ns
    };
    let with = time(true);
    let without = time(false);
    assert!(
        with < without,
        "repeat mode must cut DMA configuration time: {with} vs {without} ns"
    );
}

#[test]
fn conv_via_im2col_gemm_matches_direct_convolution() {
    // The functional path the compiler's tensorizer assumes: lowering a
    // convolution to im2col + GEMM is exact.
    let (c_in, h, w, c_out, k, stride, pad) =
        (3usize, 6usize, 6usize, 4usize, 3usize, 1usize, 1usize);
    let input = Tensor::from_fn(Shape::new(vec![c_in, h, w]), |i| {
        ((i[0] * 31 + i[1] * 7 + i[2] * 3) % 11) as f32 * 0.2 - 1.0
    });
    // Weights [c_out, c_in, k, k].
    let weights = Tensor::from_fn(Shape::new(vec![c_out, c_in, k, k]), |i| {
        ((i[0] * 13 + i[1] * 5 + i[2] * 3 + i[3]) % 7) as f32 * 0.25 - 0.75
    });

    // Direct convolution reference.
    let out_h = (h + 2 * pad - k) / stride + 1;
    let out_w = (w + 2 * pad - k) / stride + 1;
    let mut direct = Tensor::zeros(Shape::new(vec![c_out, out_h, out_w]));
    for oc in 0..c_out {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0f32;
                for ic in 0..c_in {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                acc += input.get(&[ic, iy as usize, ix as usize]).unwrap()
                                    * weights.get(&[oc, ic, ky, kx]).unwrap();
                            }
                        }
                    }
                }
                direct.set(&[oc, oy, ox], acc).unwrap();
            }
        }
    }

    // im2col + matmul: cols [out_h*out_w, c_in*k*k] x W^T [c_in*k*k, c_out].
    let cols = im2col(&input, k, k, stride, stride, pad, pad).unwrap();
    let w_mat = Tensor::from_fn(Shape::new(vec![c_in * k * k, c_out]), |i| {
        let (row, oc) = (i[0], i[1]);
        let ic = row / (k * k);
        let ky = (row % (k * k)) / k;
        let kx = row % k;
        weights.get(&[oc, ic, ky, kx]).unwrap()
    });
    let gemm_out = cols.matmul(&w_mat).unwrap();
    for oc in 0..c_out {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let got = gemm_out.get(&[oy * out_w + ox, oc]).unwrap();
                let want = direct.get(&[oc, oy, ox]).unwrap();
                assert!(
                    (got - want).abs() < 1e-4,
                    "mismatch at ({oc},{oy},{ox}): {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn wire_traffic_scales_with_model_size() {
    let small = wire_bytes(ChipConfig::dtu20(), Model::Resnet50);
    let big = wire_bytes(ChipConfig::dtu20(), Model::Unet);
    assert!(
        big > small * 3,
        "UNet should move far more data: {big} vs {small}"
    );
}
