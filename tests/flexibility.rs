//! Flexibility-dimension tests (§VI-D "Flexibility v.s. Diversity"):
//! data-type selection, dynamic shapes, model import, custom operator
//! development, and the search-based fusion extension.

use dtu::{Accelerator, DataType, Session, SessionOptions};
use dtu_graph::{
    export_model, fuse, parse_model, plan_cost_ns, search_fuse, FusionConfig, SearchConfig,
};
use dtu_models::Model;

#[test]
fn int8_runs_faster_than_fp16_on_compute_bound_models() {
    // Table I: INT8 peaks at 256 TOPS vs FP16's 128 TFLOPS, so a
    // compute-bound model quantised to INT8 must speed up substantially.
    let accel = Accelerator::cloudblazer_i20();
    let fp16 = Model::Vgg16.build(1);
    let int8 = fp16.with_dtype(DataType::Int8);
    let lat = |g| {
        Session::compile(&accel, g, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap()
            .latency_ms()
    };
    let l16 = lat(&fp16);
    let l8 = lat(&int8);
    assert!(
        l8 < l16 * 0.75,
        "INT8 ({l8:.3} ms) not clearly faster than FP16 ({l16:.3} ms)"
    );
}

#[test]
fn fp32_runs_slower_than_fp16() {
    let accel = Accelerator::cloudblazer_i20();
    let fp16 = Model::Resnet50.build(1);
    let fp32 = fp16.with_dtype(DataType::Fp32);
    let lat = |g| {
        Session::compile(&accel, g, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap()
            .latency_ms()
    };
    assert!(lat(&fp32) > lat(&fp16) * 1.5);
}

#[test]
fn every_benchmark_model_exports_and_reimports() {
    // The textual format round-trips the whole Table III suite.
    for model in Model::ALL {
        let g = model.build(1);
        let text = export_model(&g);
        let g2 = parse_model(&text).unwrap_or_else(|e| panic!("{model}: reimport failed: {e}"));
        assert_eq!(g.len(), g2.len(), "{model}: node count changed");
        let s1 = g.infer_shapes().unwrap();
        let s2 = g2.infer_shapes().unwrap();
        for (a, b) in g.nodes().iter().zip(g2.nodes()) {
            assert_eq!(s1[&a.id], s2[&b.id], "{model}: {} shape changed", a.name);
        }
    }
}

#[test]
fn imported_model_runs_on_the_accelerator() {
    let text = r"
model imported_cnn
input x fp16 1x3x32x32
conv c1 x out=16 k=3 s=1 p=1
bn b1 c1
relu r1 b1
conv c2 r1 out=32 k=3 s=2 p=1
relu r2 c2
gpool g1 r2
reshape f1 g1 dims=1x32
dense d1 f1 units=10
softmax sm d1
output sm
";
    let g = parse_model(text).unwrap();
    let accel = Accelerator::cloudblazer_i20();
    let report = Session::compile(&accel, &g, SessionOptions::default())
        .unwrap()
        .run()
        .unwrap();
    assert!(report.latency_ms() > 0.0);
}

#[test]
fn search_fusion_never_loses_to_expert_rules_on_real_models() {
    let cfg = SearchConfig::default();
    for model in [Model::Resnet50, Model::SrResnet, Model::Conformer] {
        let g = model.build(1);
        let expert = fuse(&g, &FusionConfig::default()).unwrap();
        let expert_cost = plan_cost_ns(&g, &expert, &cfg).unwrap();
        let searched = search_fuse(&g, &cfg).unwrap();
        assert!(
            searched.estimated_cost_ns <= expert_cost * 1.001,
            "{model}: search {:.0} ns worse than expert {expert_cost:.0} ns",
            searched.estimated_cost_ns
        );
    }
}

#[test]
fn search_fusion_discovers_deeper_fusions_than_expert_rules() {
    // On SRResNet's long conv chains the search should merge further
    // than epilogue-only expert rules (the paper's hoped-for "more
    // beneficial solutions").
    let g = Model::SrResnet.build(1);
    let expert = fuse(&g, &FusionConfig::default()).unwrap().kernel_count();
    let searched = search_fuse(&g, &SearchConfig::default())
        .unwrap()
        .plan
        .kernel_count();
    assert!(
        searched <= expert,
        "search produced {searched} kernels vs expert {expert}"
    );
}

#[test]
fn dynamic_sequence_length_bert_binds_at_runtime() {
    use dtu_graph::{Dim, Graph, Op, TensorType};
    // A dynamic-sequence attention block (dynamic tensors + shape
    // inference, the Table II software row).
    let mut g = Graph::new("dyn_attn");
    let x = g.input(
        "x",
        TensorType {
            dtype: DataType::Fp16,
            dims: vec![Dim::Fixed(1), Dim::Dynamic("seq".into()), Dim::Fixed(256)],
        },
    );
    let q = g.add_node(Op::Dense { units: 256 }, vec![x]).unwrap();
    let ln = g.add_node(Op::LayerNorm, vec![q]).unwrap();
    g.mark_output(ln);
    let shapes = g.infer_shapes().unwrap();
    assert_eq!(shapes[&ln].dims[1], Dim::Dynamic("seq".into()));

    let accel = Accelerator::cloudblazer_i20();
    for seq in [64usize, 384] {
        let bound = g.bind("seq", seq);
        let report = Session::compile(&accel, &bound, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(report.latency_ms() > 0.0, "seq {seq}");
    }
}
