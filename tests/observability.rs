//! Live-observability integration tests: the log-bucketed latency
//! histogram cross-checked against the exact serving percentile, and
//! the flight recorder's black-box dump round-tripped through the
//! Chrome/Perfetto loader after a real `core-failure` serving run.

use dtu::Accelerator;
use dtu_harness::{run_slo_scenario, slo_point_seed, SessionCache, SloScenario, SweepModel};
use dtu_models::Model;
use dtu_telemetry::{chrome, LogHistogram};

/// Deterministic xorshift64* stream so the cross-check replays the
/// exact same samples every run.
fn rng_stream(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let u = (s >> 11) as f64 / (1u64 << 53) as f64;
        // Latency-shaped mixture: a 0.5..10.5 ms body with a sparse
        // 25..525 ms tail, so interior and extreme quantiles both see
        // realistic spreads across many histogram buckets.
        let body = 0.5 + 10.0 * u;
        out.push(if s.is_multiple_of(97) {
            body * 50.0
        } else {
            body
        });
    }
    out
}

#[test]
fn histogram_quantiles_track_exact_percentiles_within_two_percent() {
    let samples = rng_stream(0xC0FFEE, 10_000);
    let mut hist = LogHistogram::new();
    let mut exact = samples.clone();
    for &v in &samples {
        hist.record(v);
    }
    exact.sort_by(|a, b| a.partial_cmp(b).unwrap());

    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
        let want = dtu_serve::percentile(&exact, q);
        let got = hist.quantile(q);
        let rel = (got - want).abs() / want;
        assert!(
            rel <= 0.02,
            "q={q}: histogram {got} vs exact {want} ({:.2}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn histogram_handles_empty_and_single_sample_edges() {
    // Both sides define the empty stream as 0.
    let empty = LogHistogram::new();
    assert_eq!(empty.quantile(0.5), 0.0);
    assert_eq!(dtu_serve::percentile(&[], 0.5), 0.0);

    // A single sample is exact at every quantile — the extreme-rank
    // paths return the tracked min/max, not a bucket mid-point.
    let mut one = LogHistogram::new();
    one.record(3.75);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(one.quantile(q), 3.75);
        assert_eq!(dtu_serve::percentile(&[3.75], q), 3.75);
    }
}

#[test]
fn core_failure_flight_dump_round_trips_through_the_perfetto_loader() {
    let accel = Accelerator::cloudblazer_i20();
    let cache = SessionCache::memory_only();
    let model = SweepModel::new("resnet50", |b| Model::Resnet50.build(b));
    let scenario = SloScenario::default();

    // Same content-derived point seed the `topsexec slo` CLI uses, so
    // this test exercises the exact run the acceptance criteria name.
    let seed = slo_point_seed("resnet50", "core-failure", 1.0, 7);
    let (point, mon) =
        run_slo_scenario(&accel, &model, "core-failure", 1.0, seed, &scenario, &cache).unwrap();

    // The injected core failure must page and leave a black-box dump.
    assert!(
        point.burn_alerts >= 1,
        "core failure did not page: {point:?}"
    );
    let dump = mon
        .flight
        .dumps()
        .first()
        .expect("a fault landed, so the flight recorder must have dumped");
    assert!(!dump.spans.is_empty());

    // The alert's exemplar — the slowest request of the window that
    // tripped the burn rate — must resolve to a span inside a dump.
    let exemplar = mon
        .burn_alerts()
        .find_map(|(_, a)| a.exemplar)
        .expect("burn alert carries an exemplar");
    assert!(
        mon.flight
            .dumps()
            .iter()
            .any(|d| d.resolves_label(&format!("req {exemplar}"))),
        "exemplar span {exemplar} not found in any flight dump"
    );

    // Round trip: the emitted Chrome trace must load back through the
    // Perfetto-compatible parser with every span accounted for.
    let trace = dump.to_chrome_trace(true);
    let events = chrome::parse(&trace).unwrap();
    let durations = events.iter().filter(|e| e.ph == "X").count();
    assert_eq!(durations, dump.spans.len());
    assert!(
        events.iter().any(|e| e.ph == "M"),
        "rich traces carry process metadata"
    );
    assert!(events
        .iter()
        .filter(|e| e.ph == "X")
        .all(|e| e.dur >= 0.0 && e.ts.is_finite()));

    // The clean counterpart stays silent: no alerts, no dumps.
    let clean_seed = slo_point_seed("resnet50", "none", 1.0, 7);
    let (clean, clean_mon) =
        run_slo_scenario(&accel, &model, "none", 1.0, clean_seed, &scenario, &cache).unwrap();
    assert_eq!(clean.burn_alerts, 0);
    assert_eq!(clean.fault_alerts, 0);
    assert!(clean_mon.flight.dumps().is_empty());
    assert_eq!(clean.grade(), "within-budget");
}
