//! Fleet-layer integration tests: routing determinism across worker
//! counts and cache temperature, the power-of-two-choices balance
//! bound, chip-loss accounting, compile sharing through the
//! content-addressed session cache, and rolling-deploy availability.

use dtu_fleet::{run_fleet, ChipKill, FleetConfig, FleetTenant, FleetTopology, RollPlan};
use dtu_graph::{Graph, Op, TensorType};
use dtu_harness::{SessionCache, SweepModel};
use dtu_sim::ChipConfig;
use proptest::prelude::*;

fn toy_model() -> SweepModel<'static> {
    SweepModel::new("toy", |batch| {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[batch, 16, 24, 24]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        g.mark_output(c);
        g
    })
}

fn tiny_cfg(seed: u64) -> FleetConfig {
    FleetConfig {
        duration_ms: 1000.0,
        epoch_ms: 500.0,
        seed,
        cells_per_replica: 2,
        roll: None,
        kill: None,
    }
}

proptest! {
    /// The fleet report's JSON is a pure function of (topology,
    /// tenants, config): byte-identical whether the per-chip epoch
    /// simulations ran on one worker or four, and whether the artifact
    /// cache was cold or pre-warmed by a previous identical run.
    #[test]
    fn fleet_json_is_byte_identical_across_jobs_and_cache_temperature(seed in 0u64..1000) {
        let topo = FleetTopology::homogeneous(1, 2, &ChipConfig::dtu20()).unwrap();
        let cfg = tiny_cfg(seed);

        let cold = SessionCache::memory_only();
        let tenants = vec![FleetTenant::new(toy_model(), 600.0)];
        let j1 = run_fleet(&topo, &tenants, &cfg, &cold, 1).unwrap().to_json();

        let tenants = vec![FleetTenant::new(toy_model(), 600.0)];
        let j4 = run_fleet(&topo, &tenants, &cfg, &cold, 4).unwrap().to_json();
        prop_assert_eq!(&j1, &j4, "jobs 1 vs 4 diverged");

        // `cold` is now warm: every artifact of the run is cached.
        let tenants = vec![FleetTenant::new(toy_model(), 600.0)];
        let warm = run_fleet(&topo, &tenants, &cfg, &cold, 4).unwrap();
        prop_assert_eq!(&j1, &warm.to_json(), "cold vs warm cache diverged");
        prop_assert_eq!(warm.cache.misses, 0, "a warm cache compiles nothing");
    }
}

/// Power-of-two-choices keeps per-chip offered load within a small
/// constant factor under uniform traffic — no chip starves, no chip
/// hot-spots.
#[test]
fn fleet_load_stays_balanced_under_uniform_traffic() {
    let topo = FleetTopology::homogeneous(2, 4, &ChipConfig::dtu20()).unwrap();
    let tenants = vec![FleetTenant::new(toy_model(), 4000.0)];
    let cache = SessionCache::memory_only();
    let cfg = FleetConfig {
        duration_ms: 4000.0,
        epoch_ms: 500.0,
        ..tiny_cfg(11)
    };
    let r = run_fleet(&topo, &tenants, &cfg, &cache, 2).unwrap();
    assert!(r.chips_detail.iter().all(|c| c.offered > 0));
    assert!(
        r.load_ratio <= 2.0,
        "p2c bound violated: load ratio {}",
        r.load_ratio
    );
    assert!(r.accounting_balances());
}

/// Killing a whole chip mid-run loses capacity, not requests: the
/// scheduler re-places replicas on survivors and
/// `offered == completed + shed + fault_dropped` holds fleet-wide,
/// per tenant, and per chip.
#[test]
fn chip_loss_preserves_the_accounting_invariant() {
    let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
    let mut tenant = FleetTenant::new(toy_model(), 2000.0);
    tenant.replicas = 2;
    let cache = SessionCache::memory_only();
    let cfg = FleetConfig {
        duration_ms: 3000.0,
        epoch_ms: 1000.0,
        kill: Some(ChipKill {
            chip: 0,
            at_ms: 1400.0,
        }),
        ..tiny_cfg(7)
    };
    let r = run_fleet(&topo, &[tenant], &cfg, &cache, 2).unwrap();
    assert_eq!(r.chips_lost, 1);
    assert!(r.chips_detail[0].dead);
    assert_eq!(
        r.chips_detail[0].groups_lost,
        ChipConfig::dtu20().total_groups() as u64
    );
    assert_eq!(r.replica_moves, 1, "the lost replica moved to a survivor");
    assert!(r.accounting_balances(), "accounting leaked after chip loss");
    assert!(r.completed > 0, "survivors kept serving");
}

/// The compile-sharing audit: one model on K identical chips compiles
/// each (graph, batch, placement) artifact exactly once fleet-wide —
/// every other replica hits the shared content-addressed cache. Run
/// with one worker so no two chips race to compile the same artifact
/// (cache counters are schedule-dependent under concurrency).
#[test]
fn identical_chips_share_compiled_sessions_fleet_wide() {
    let chip = ChipConfig::dtu20();
    let cfg = tiny_cfg(3);

    // Baseline: the artifacts one chip alone compiles at this rate.
    let solo_cache = SessionCache::memory_only();
    let solo_topo = FleetTopology::homogeneous(1, 1, &chip).unwrap();
    let tenants = vec![FleetTenant::new(toy_model(), 500.0)];
    let solo = run_fleet(&solo_topo, &tenants, &cfg, &solo_cache, 1).unwrap();
    assert!(solo.cache.misses > 0, "the solo run compiles something");

    // K chips at K x the load dispatch the same batch buckets, yet the
    // fleet compiles no more artifacts than the single chip did.
    let k = 4;
    let fleet_cache = SessionCache::memory_only();
    let fleet_topo = FleetTopology::homogeneous(1, k, &chip).unwrap();
    let tenants = vec![FleetTenant::new(toy_model(), 500.0 * k as f64)];
    let fleet = run_fleet(&fleet_topo, &tenants, &cfg, &fleet_cache, 1).unwrap();
    assert_eq!(
        fleet.cache.misses, solo.cache.misses,
        "K identical chips must compile each artifact exactly once"
    );
    assert!(
        fleet.cache.memory_hits > solo.cache.memory_hits,
        "the other K-1 replicas hit the shared cache"
    );
}

/// A rolling deploy swaps every chip to the new version and reports
/// per-tenant availability over the epochs the roll was in flight.
#[test]
fn rolling_deploy_reports_availability_during_the_roll() {
    let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
    let tenants = vec![FleetTenant::new(toy_model(), 2000.0)];
    let cache = SessionCache::memory_only();
    let cfg = FleetConfig {
        duration_ms: 5000.0,
        epoch_ms: 1000.0,
        roll: Some(RollPlan::new(1000.0, 1)),
        ..tiny_cfg(5)
    };
    let r = run_fleet(&topo, &tenants, &cfg, &cache, 2).unwrap();
    assert_eq!(r.chips_rolled, 4);
    assert!(r.chips_detail.iter().all(|c| c.version == "v2"));
    let avail = r.tenants[0]
        .roll_availability
        .expect("traffic arrived during the roll");
    assert!(avail > 0.0 && avail <= 1.0);
    assert!(r.accounting_balances());
}
