//! Generative-serving integration tests: the continuous batcher's
//! accounting identity under KV pressure, schedule-independence of the
//! offered workload, determinism of the compiled path across `--jobs`
//! and cache temperature, and the report's TTFT/TPOT/e2e percentiles
//! cross-checked against `dtu_serve::percentile` over samples
//! reconstructed from the event trace by an independent replay.

use dtu::Accelerator;
use dtu_harness::{run_generative_serve, SessionCache};
use dtu_models::GenerativeConfig;
use dtu_serve::{
    percentile, run_generative, AnalyticTokenModel, ArrivalProcess, GenerativeScenario,
    KvCacheConfig, ServeEventKind,
};
use dtu_sim::ChipConfig;

fn kv(total_pages: usize) -> KvCacheConfig {
    KvCacheConfig {
        page_tokens: 16,
        bytes_per_token: 1024,
        total_pages,
        l2_pages: 16,
        l3_gb_per_s: 100.0,
    }
}

fn scenario(total_pages: usize) -> GenerativeScenario {
    GenerativeScenario {
        duration_ms: 400.0,
        seed: 7,
        arrival: ArrivalProcess::Poisson { qps: 150.0 },
        prompt_tokens: 64,
        min_new_tokens: 2,
        max_new_tokens: 40,
        max_concurrency: 8,
        queue_depth: 64,
        ttft_deadline_ms: f64::INFINITY,
        tpot_deadline_ms: f64::INFINITY,
        kv: kv(total_pages),
    }
}

#[test]
fn batcher_accounting_balances_with_midstream_preemption() {
    // A pool far smaller than the concurrent worst case forces
    // mid-stream evictions; every preempted request must still drain
    // to completion (or have been shed at arrival), never vanish.
    let mut sc = scenario(40);
    sc.arrival = ArrivalProcess::Poisson { qps: 2500.0 };
    sc.duration_ms = 120.0;
    sc.queue_depth = 1024;
    let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
    let r = &out.report;
    assert_eq!(
        r.offered,
        r.completed + r.shed + r.fault_dropped,
        "accounting identity: {r:?}"
    );
    assert_eq!(r.fault_dropped, 0);
    assert!(r.preemptions > 0, "constrained pool must preempt: {r:?}");
    assert!(r.kv.exhaustions > 0, "reservations must have failed");
    assert!(r.completed > 0, "preemption must not starve completion");
    let preempt_events = out
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, ServeEventKind::Preempt { .. }))
        .count() as u64;
    assert_eq!(preempt_events, r.preemptions);
}

#[test]
fn kv_exhaustion_shows_up_as_shed_accounting() {
    // Four pages can never hold prompt 64 + answer: every arrival is
    // impossible and must be shed at admission, not livelocked.
    let mut sc = scenario(4);
    sc.min_new_tokens = 64;
    sc.max_new_tokens = 64;
    let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
    let r = &out.report;
    assert!(r.offered > 0);
    assert_eq!(r.shed, r.offered);
    assert_eq!(r.completed, 0);
    assert_eq!(r.offered, r.completed + r.shed + r.fault_dropped);
}

#[test]
fn offered_lengths_are_schedule_independent() {
    // The per-request output length depends only on (seed, id): a
    // wildly different schedule (tiny pool vs ample pool) must draw
    // identical targets.
    let ample = scenario(1 << 20);
    let tight = scenario(40);
    for id in 0..200u64 {
        assert_eq!(ample.target_tokens(id), tight.target_tokens(id));
    }
}

/// Replays the event trace with an independent state machine and
/// recovers each request's (ttft, tpot, e2e) sample. Only valid for
/// preemption-free runs, where admission order is exactly arrival
/// (FIFO) order.
fn replay_samples(
    sc: &GenerativeScenario,
    trace: &dtu_serve::ServingTrace,
) -> Vec<(f64, f64, f64)> {
    struct Live {
        arrival_ms: f64,
        first_ms: f64,
        produced: usize,
        target: usize,
    }
    let mut waiting: std::collections::VecDeque<(u64, f64)> = Default::default();
    let mut running: Vec<Live> = Vec::new();
    let mut samples = Vec::new();
    let finish = |l: &Live, end: f64, out: &mut Vec<(f64, f64, f64)>| {
        let ttft = l.first_ms - l.arrival_ms;
        let tpot = if l.target > 1 {
            (end - l.first_ms) / (l.target - 1) as f64
        } else {
            0.0
        };
        out.push((ttft, tpot, end - l.arrival_ms));
    };
    for e in &trace.events {
        let t = e.t_ns / 1e6;
        match e.kind {
            ServeEventKind::Arrival { req, .. } => waiting.push_back((req, t)),
            ServeEventKind::Prefill {
                batch, service_ms, ..
            } => {
                let end = t + service_ms;
                for _ in 0..batch {
                    let (id, arrival_ms) = waiting.pop_front().expect("joiner was queued");
                    let live = Live {
                        arrival_ms,
                        first_ms: end,
                        produced: 1,
                        target: sc.target_tokens(id),
                    };
                    if live.produced >= live.target {
                        finish(&live, end, &mut samples);
                    } else {
                        running.push(live);
                    }
                }
            }
            ServeEventKind::DecodeStep { service_ms, .. } => {
                let end = t + service_ms;
                let mut i = 0;
                while i < running.len() {
                    running[i].produced += 1;
                    if running[i].produced >= running[i].target {
                        let live = running.remove(i);
                        finish(&live, end, &mut samples);
                    } else {
                        i += 1;
                    }
                }
            }
            _ => {}
        }
    }
    assert!(running.is_empty() && waiting.is_empty(), "run must drain");
    samples
}

#[test]
fn report_percentiles_match_exact_percentile_over_replayed_samples() {
    // Ample KV: no preemptions, so the trace replay is exact and the
    // report's TTFT/TPOT/e2e stats must equal `percentile` over the
    // independently reconstructed per-request samples.
    let sc = scenario(1 << 20);
    let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
    assert_eq!(out.report.preemptions, 0, "replay requires FIFO admission");
    let samples = replay_samples(&sc, &out.trace);
    assert_eq!(samples.len() as u64, out.report.completed);
    assert!(samples.len() > 20, "need a real population to cross-check");

    let close = |a: f64, b: f64, what: &str| {
        let tol = 1e-9 * a.abs().max(b.abs()).max(1e-6);
        assert!((a - b).abs() <= tol, "{what}: report {a} vs replay {b}");
    };
    for (pick, stats, what) in [
        (0usize, &out.report.ttft, "ttft"),
        (1, &out.report.tpot, "tpot"),
        (2, &out.report.e2e, "e2e"),
    ] {
        let mut v: Vec<f64> = samples.iter().map(|s| [s.0, s.1, s.2][pick]).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        close(stats.p50_ms, percentile(&v, 0.50), &format!("{what} p50"));
        close(stats.p95_ms, percentile(&v, 0.95), &format!("{what} p95"));
        close(stats.p99_ms, percentile(&v, 0.99), &format!("{what} p99"));
        close(
            stats.max_ms,
            *v.last().expect("non-empty"),
            &format!("{what} max"),
        );
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        close(stats.mean_ms, mean, &format!("{what} mean"));
        assert_eq!(stats.count, v.len() as u64);
    }
}

#[test]
fn compiled_path_is_byte_identical_across_jobs_and_cache_temperature() {
    let accel = Accelerator::cloudblazer_i20();
    let cfg = GenerativeConfig::tiny();
    let sc = GenerativeScenario {
        duration_ms: 30.0,
        seed: 7,
        arrival: ArrivalProcess::Poisson { qps: 500.0 },
        prompt_tokens: 32,
        min_new_tokens: 2,
        max_new_tokens: 10,
        max_concurrency: 4,
        queue_depth: 64,
        ttft_deadline_ms: f64::INFINITY,
        tpot_deadline_ms: f64::INFINITY,
        kv: KvCacheConfig::for_chip(&ChipConfig::dtu20(), cfg.kv_bytes_per_token()),
    };
    let cold = SessionCache::memory_only();
    let serial = run_generative_serve(&accel, &cfg, &sc, &cold, 1, None).unwrap();
    let warm = SessionCache::memory_only();
    let first = run_generative_serve(&accel, &cfg, &sc, &warm, 4, None).unwrap();
    let rerun = run_generative_serve(&accel, &cfg, &sc, &warm, 4, None).unwrap();
    assert_eq!(serial.report.to_json(), first.report.to_json());
    assert_eq!(serial.report.to_json(), rerun.report.to_json());
    assert_eq!(serial.trace, rerun.trace);
    assert!(serial.report.completed > 0);
    assert!(serial.report.decode_tokens > 0);
}
