//! Integration tests for the profiler (Fig. 11's software-stack tool).

use dtu::{Accelerator, Session, SessionOptions, TraceKind};
use dtu_models::Model;

#[test]
fn traced_run_matches_untraced_and_covers_the_timeline() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::Resnet50.build(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).unwrap();
    let plain = session.run().unwrap();
    let (traced, timeline) = session.run_traced().unwrap();

    // Tracing must not perturb the simulation.
    assert_eq!(plain.latency_ms(), traced.latency_ms());

    // One kernel event per launch.
    let kernel_events = timeline.of_kind(TraceKind::Kernel).count() as u64;
    assert_eq!(kernel_events, traced.raw().counters.kernel_launches);

    // Events are well-formed and within the run.
    for e in timeline.events() {
        assert!(e.end_ns >= e.start_ns, "negative interval: {e:?}");
        assert!(
            e.end_ns <= traced.raw().latency_ns + 1.0,
            "event past the end of the run: {e:?}"
        );
    }

    // Kernel time across 6 groups exceeds the wall clock (parallelism).
    assert!(timeline.total_ns(TraceKind::Kernel) > traced.raw().latency_ns);
}

#[test]
fn hot_kernel_report_names_the_heaviest_work() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::Vgg16.build(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).unwrap();
    let (_, timeline) = session.run_traced().unwrap();
    let hottest = timeline.hottest(TraceKind::Kernel, 3);
    assert_eq!(hottest.len(), 3);
    // VGG's hottest kernels are conv or the giant fc.
    for e in &hottest {
        assert!(
            e.label.contains("conv") || e.label.contains("dense"),
            "unexpected hot kernel {e:?}"
        );
    }
    let report = timeline.report(3);
    assert!(report.contains("hottest kernels"));
}

#[test]
fn chrome_trace_export_is_loadable_json() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::CenterNet.build(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).unwrap();
    let (_, timeline) = session.run_traced().unwrap();
    let json = timeline.to_chrome_trace();
    assert!(json.starts_with('[') && json.ends_with(']'));
    // Minimal structural validation: balanced braces, one record per event.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);
    assert_eq!(opens, timeline.len());
    assert!(!json.contains('\n'), "single-line JSON expected");
}

#[test]
fn dvfs_activity_shows_in_kernel_frequencies() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::Resnet50.build(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).unwrap();
    let (report, timeline) = session.run_traced().unwrap();
    if report.mean_freq_mhz() < 1399.0 {
        // The governor acted: some kernels must record a lower clock.
        let downclocked = timeline
            .of_kind(TraceKind::Kernel)
            .filter(|e| e.freq_mhz < 1400)
            .count();
        assert!(downclocked > 0, "mean freq dropped but no kernel shows it");
    }
}
