//! Shape-level assertions for every figure of the paper's evaluation.
//!
//! Absolute microseconds are not the claim under test (our substrate is
//! a simulator); who wins, by roughly what factor, and where the
//! crossovers fall are.

use dtu_bench::{evaluate_suite, geomean, LatencyRow};
use dtu_isa::DataType;
use dtu_models::Model;
use gpu_baseline::{a10_spec, i10_spec, i20_spec, t4_spec};
use std::sync::OnceLock;

fn suite() -> &'static [LatencyRow] {
    static SUITE: OnceLock<Vec<LatencyRow>> = OnceLock::new();
    SUITE.get_or_init(evaluate_suite)
}

#[test]
fn fig12_bandwidth_and_peak_ratios() {
    let (i10, i20, t4, a10) = (i10_spec(), i20_spec(), t4_spec(), a10_spec());
    assert!((i20.bandwidth_gb_s / i10.bandwidth_gb_s - 1.6).abs() < 0.01);
    assert!((i20.bandwidth_gb_s / t4.bandwidth_gb_s - 2.56).abs() < 0.01);
    assert!((i20.bandwidth_gb_s / a10.bandwidth_gb_s - 1.365).abs() < 0.01);
    // i20 has the highest FP16 peak and INT8 peak of the four.
    for s in [&i10, &t4, &a10] {
        assert!(i20.fp16_tflops >= s.fp16_tflops);
        assert!(i20.int8_tops >= s.int8_tops);
    }
    // A10 alone has the 1.5x memory capacity.
    assert!(a10.memory_gb > i20.memory_gb);
}

#[test]
fn fig13_geomean_speedups_near_paper() {
    let rows = suite();
    let g_t4 = geomean(
        &rows
            .iter()
            .map(LatencyRow::speedup_vs_t4)
            .collect::<Vec<_>>(),
    );
    let g_a10 = geomean(
        &rows
            .iter()
            .map(LatencyRow::speedup_vs_a10)
            .collect::<Vec<_>>(),
    );
    // Paper: 2.22x and 1.16x. Allow +-20% on the model.
    assert!(
        (1.8..2.8).contains(&g_t4),
        "GeoMean vs T4 {g_t4:.2} outside [1.8, 2.8] (paper 2.22)"
    );
    assert!(
        (0.95..1.40).contains(&g_a10),
        "GeoMean vs A10 {g_a10:.2} outside [0.95, 1.40] (paper 1.16)"
    );
}

#[test]
fn fig13_i20_wins_all_object_detection() {
    for r in suite() {
        if r.model.category() == "Object Detection" {
            assert!(
                r.speedup_vs_t4() > 1.0 && r.speedup_vs_a10() > 1.0,
                "{}: detection must favour the i20 (T4 {:.2}x, A10 {:.2}x)",
                r.model.name(),
                r.speedup_vs_t4(),
                r.speedup_vs_a10()
            );
        }
    }
}

#[test]
fn fig13_a10_wins_some_classification() {
    // Paper: A10 outperforms the i20 on 3 of 10, in image classification.
    let a10_wins: Vec<&LatencyRow> = suite()
        .iter()
        .filter(|r| r.speedup_vs_a10() < 1.0)
        .collect();
    assert!(
        !a10_wins.is_empty() && a10_wins.len() <= 4,
        "A10 should win a few models, got {}",
        a10_wins.len()
    );
    for r in &a10_wins {
        assert_eq!(
            r.model.category(),
            "Image Classification",
            "{} lost to A10 but is not classification",
            r.model.name()
        );
    }
}

#[test]
fn fig13_srresnet_is_the_best_case() {
    let rows = suite();
    let sr = rows
        .iter()
        .find(|r| r.model == Model::SrResnet)
        .expect("suite covers SRResnet");
    for r in rows {
        assert!(
            sr.speedup_vs_t4() >= r.speedup_vs_t4(),
            "{} beats SRResnet vs T4",
            r.model.name()
        );
        assert!(
            sr.speedup_vs_a10() >= r.speedup_vs_a10(),
            "{} beats SRResnet vs A10",
            r.model.name()
        );
    }
    // Rough factors: paper 4.34x / 2.37x.
    assert!(sr.speedup_vs_t4() > 3.0, "{:.2}", sr.speedup_vs_t4());
    assert!(sr.speedup_vs_a10() > 1.8, "{:.2}", sr.speedup_vs_a10());
}

#[test]
fn fig14_peak_efficiency_relations() {
    let (i10, i20, t4, a10) = (i10_spec(), i20_spec(), t4_spec(), a10_spec());
    // T4 leads FP16 peak efficiency; i20 leads FP32.
    let f16 = |s: &gpu_baseline::PlatformSpec| s.peak_per_tdp(DataType::Fp16);
    let f32p = |s: &gpu_baseline::PlatformSpec| s.peak_per_tdp(DataType::Fp32);
    for s in [&i10, &i20, &a10] {
        assert!(f16(&t4) > f16(s), "T4 must lead FP16 peak efficiency");
    }
    for s in [&i10, &t4, &a10] {
        assert!(f32p(&i20) > f32p(s), "i20 must lead FP32 peak efficiency");
    }
    // Numeric anchors from §VI-C.
    assert!((f16(&t4) / f16(&i10) - 1.74).abs() < 0.03);
    assert!((f32p(&i20) / f32p(&t4) - 1.84).abs() < 0.04);
}

#[test]
fn fig15_energy_efficiency_geomeans() {
    let rows = suite();
    let e_t4 = geomean(
        &rows
            .iter()
            .map(LatencyRow::efficiency_vs_t4)
            .collect::<Vec<_>>(),
    );
    let e_a10 = geomean(
        &rows
            .iter()
            .map(LatencyRow::efficiency_vs_a10)
            .collect::<Vec<_>>(),
    );
    // Paper: 1.04x and 1.17x.
    assert!(
        (0.85..1.35).contains(&e_t4),
        "efficiency GeoMean vs T4 {e_t4:.2} (paper 1.04)"
    );
    assert!(
        (0.95..1.40).contains(&e_a10),
        "efficiency GeoMean vs A10 {e_a10:.2} (paper 1.17)"
    );
    // T4 remains more efficient on a good chunk of the suite ("better
    // than Nvidia T4 for half of the tested DNNs").
    let t4_losses = rows.iter().filter(|r| r.efficiency_vs_t4() < 1.0).count();
    assert!(
        (2..=6).contains(&t4_losses),
        "expected T4 to stay ahead on a few DNNs, got {t4_losses}"
    );
}

#[test]
fn fig15_srresnet_best_efficiency_case() {
    let rows = suite();
    let sr = rows
        .iter()
        .find(|r| r.model == Model::SrResnet)
        .expect("suite covers SRResnet");
    // Paper: 2.03x / 2.39x.
    assert!(sr.efficiency_vs_t4() > 1.5, "{:.2}", sr.efficiency_vs_t4());
    assert!(
        sr.efficiency_vs_a10() > 1.8,
        "{:.2}",
        sr.efficiency_vs_a10()
    );
}
