//! Integration tests for the §VI-D power-management experiment and the
//! CPME/LPME machinery end to end.

use dtu::{Accelerator, ChipConfig, Session, SessionOptions};
use dtu_models::Model;

fn run(cfg: ChipConfig, model: Model) -> (f64, f64, f64) {
    let accel = Accelerator::with_config(cfg).expect("valid config");
    let graph = model.build(1);
    let r = Session::compile(&accel, &graph, SessionOptions::default())
        .expect("compile")
        .run()
        .expect("run");
    (r.latency_ms(), r.samples_per_joule(), r.mean_freq_mhz())
}

#[test]
fn power_management_trades_tiny_latency_for_energy() {
    for model in [Model::Resnet50, Model::BertLarge] {
        let (lat_on, eff_on, f_on) = run(ChipConfig::dtu20(), model);
        let mut off = ChipConfig::dtu20();
        off.features.power_management = false;
        let (lat_off, eff_off, f_off) = run(off, model);

        // PM off pins f_max (floating-point time-weighting tolerance).
        assert!(
            (f_off - 1400.0).abs() < 0.1,
            "{model}: PM-off must pin 1.4 GHz, got {f_off}"
        );
        // PM on downclocks stall-heavy windows.
        assert!(f_on < f_off, "{model}: governor never acted");
        // Paper: <= 3.2% perf drop; we allow a modest margin on the model.
        let drop = lat_on / lat_off - 1.0;
        assert!(
            drop < 0.08,
            "{model}: perf drop {:.1}% too large",
            drop * 100.0
        );
        // Paper: +13% energy efficiency; require a clear gain.
        let gain = eff_on / eff_off - 1.0;
        assert!(
            gain > 0.05,
            "{model}: efficiency gain {:.1}% too small",
            gain * 100.0
        );
    }
}

#[test]
fn dvfs_stays_within_the_advertised_range() {
    let (_, _, f) = run(ChipConfig::dtu20(), Model::Conformer);
    assert!(
        (1000.0..=1400.0).contains(&f),
        "mean frequency {f:.0} MHz outside the 1.0-1.4 GHz DVFS range"
    );
}

#[test]
fn energy_scales_with_work_across_models() {
    let small = run(ChipConfig::dtu20(), Model::Resnet50);
    let big = run(ChipConfig::dtu20(), Model::Unet);
    // UNet does ~40x the FLOPs of ResNet-50; it must cost clearly more
    // energy per sample (samples/J much lower).
    assert!(small.1 > big.1 * 5.0, "{} vs {}", small.1, big.1);
}

#[test]
fn cpme_budgets_are_conserved_under_load() {
    use dtu_power::{Cpme, UnitId};
    let units: Vec<(UnitId, u64)> = (0..6).map(|g| (UnitId::core(g / 3, g), 10_000)).collect();
    let mut cpme = Cpme::new(150_000, &units).expect("fits");
    // Hammer it with borrow/return cycles.
    for round in 0..100 {
        let u = units[round % 6].0;
        let got = cpme.request(u, 7_000);
        assert!(got <= 7_000);
        if round % 2 == 0 {
            let held = cpme.allocation_mw(u) - 10_000;
            cpme.release(u, held.min(3_000))
                .expect("release within loan");
        }
        assert!(cpme.is_consistent(), "budget conservation violated");
    }
}

#[test]
fn lpme_throttles_under_a_constrained_tdp() {
    // Power-integrity management (Fig. 9): under a tight board limit the
    // LPMEs must insert stalls or borrow from the CPME — the run slows
    // down but average power stays under the limit.
    let mut tight = ChipConfig::dtu20();
    tight.tdp_watts = 60.0; // well below the 150 W envelope
    let accel_tight = Accelerator::with_config(tight).unwrap();
    let accel_free = Accelerator::cloudblazer_i20();
    let graph = Model::Vgg16.build(1);
    let run = |accel: &Accelerator| {
        Session::compile(accel, &graph, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap()
    };
    let constrained = run(&accel_tight);
    let free = run(&accel_free);
    let throttle_ns = constrained.raw().counters.power_stall_ns;
    assert!(
        throttle_ns > 0.0 || constrained.latency_ms() >= free.latency_ms(),
        "a 60 W limit must visibly constrain the run"
    );
    // Integrity: the constrained run's average power respects its limit
    // within the model's first-order accuracy.
    assert!(
        constrained.average_watts() < 90.0,
        "constrained run drew {:.1} W against a 60 W budget",
        constrained.average_watts()
    );
}
