//! Failure injection: the stack must reject invalid inputs with typed
//! errors, not panics or silent nonsense.

use dtu::{Accelerator, ChipConfig, DtuError, Graph, Op, Session, SessionOptions, TensorType};
use dtu_compiler::{compile, CompileError, CompilerConfig, Placement};
use dtu_sim::{
    Chip, Command, DmaDescriptor, DmaEngine, DmaError, DmaPath, GroupId, MemLevel, Program,
    SimError, Stream, SyncPattern,
};

#[test]
fn oversized_model_rejected_with_capacity_numbers() {
    // 20 GB of FP16 weights cannot fit the 16 GB device.
    let mut g = Graph::new("huge");
    let x = g.input("x", TensorType::fixed(&[1, 100_000]));
    let d = g.add_node(Op::Dense { units: 100_000 }, vec![x]).unwrap();
    g.mark_output(d);
    let accel = Accelerator::cloudblazer_i20();
    match Session::compile(&accel, &g, SessionOptions::default()) {
        Err(DtuError::Compile(CompileError::ModelTooLarge {
            required,
            available,
        })) => {
            assert!(required > available);
            assert_eq!(available, 16 * 1024 * 1024 * 1024);
        }
        other => panic!("expected ModelTooLarge, got {other:?}"),
    }
}

#[test]
fn malformed_graphs_surface_graph_errors() {
    let accel = Accelerator::cloudblazer_i20();
    // No outputs.
    let mut g = Graph::new("noout");
    g.input("x", TensorType::fixed(&[1, 4]));
    assert!(matches!(
        Session::compile(&accel, &g, SessionOptions::default()),
        Err(DtuError::Compile(CompileError::Graph(_)))
    ));
    // Rank mismatch discovered by shape inference.
    let mut g = Graph::new("badshape");
    let x = g.input("x", TensorType::fixed(&[1, 4]));
    let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
    g.mark_output(c);
    assert!(Session::compile(&accel, &g, SessionOptions::default()).is_err());
}

#[test]
fn placement_outside_chip_rejected() {
    let accel = Accelerator::cloudblazer_i20();
    let mut g = Graph::new("m");
    let x = g.input("x", TensorType::fixed(&[1, 8, 8, 8]));
    let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
    g.mark_output(c);
    let opts = SessionOptions {
        placement: Some(Placement::explicit(vec![GroupId::new(7, 7)])),
        ..Default::default()
    };
    assert!(matches!(
        Session::compile(&accel, &g, opts),
        Err(DtuError::Compile(CompileError::BadPlacement { .. }))
    ));
}

#[test]
fn scheduler_reports_deadlocks_with_pending_events() {
    let chip = Chip::new(ChipConfig::dtu20());
    let mut p = Program::new("dead");
    let mut a = Stream::new(GroupId::new(0, 0));
    a.push(Command::RegisterEvent {
        event: 1,
        pattern: SyncPattern::NToOne { producers: 2 },
    })
    .push(Command::Signal { event: 1 })
    .push(Command::Wait { event: 1 }); // second producer never arrives
    p.add_stream(a);
    match chip.run(&p) {
        Err(SimError::Deadlock { pending_events }) => assert_eq!(pending_events, vec![1]),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn dtu10_rejects_dtu20_only_dma_features() {
    let engine = DmaEngine::new(&ChipConfig::dtu10());
    // Direct L1<->L3.
    assert!(matches!(
        engine.check(&DmaDescriptor::copy(
            DmaPath::new(MemLevel::L1, MemLevel::L3),
            64
        )),
        Err(DmaError::IllegalPath { .. })
    ));
    // Broadcast.
    let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64);
    d.broadcast = 3;
    assert!(matches!(
        engine.check(&d),
        Err(DmaError::FeatureDisabled { .. })
    ));
}

#[test]
fn programs_with_dtu20_dma_fail_cleanly_on_dtu10() {
    // Hand-build a program using repeat-mode DMA and run it on DTU 1.0.
    let chip = Chip::new(ChipConfig::dtu10());
    let mut p = Program::new("wrongchip");
    let mut s = Stream::new(GroupId::new(0, 0));
    let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4096);
    d.repeat = 4;
    s.push(Command::Dma {
        descriptor: d,
        overlapped: false,
    });
    p.add_stream(s);
    assert!(matches!(chip.run(&p), Err(SimError::Dma(_))));
}

#[test]
fn invalid_chip_configs_rejected() {
    for mutate in [
        (|c: &mut ChipConfig| c.clusters = 0) as fn(&mut ChipConfig),
        |c| c.groups_per_cluster = 5,
        |c| c.clock_mhz = 0,
        |c| c.l3_gb_per_s = -1.0,
    ] {
        let mut cfg = ChipConfig::dtu20();
        mutate(&mut cfg);
        assert!(Accelerator::with_config(cfg).is_err());
    }
}

#[test]
fn compile_on_mismatched_chip_features_still_runs() {
    // CompilerConfig derived from DTU 2.0 but compiled FOR dtu10 target
    // must not emit features the chip lacks when configured correctly.
    let chip10 = ChipConfig::dtu10();
    let mut g = Graph::new("m");
    let x = g.input("x", TensorType::fixed(&[1, 8, 32, 32]));
    let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
    let r = g.add_node(Op::Relu, vec![c]).unwrap();
    let c2 = g.add_node(Op::conv2d(16, 3, 1, 1), vec![r]).unwrap();
    g.mark_output(c2);
    let p = Placement::explicit(vec![GroupId::new(0, 0)]);
    let prog = compile(&g, &chip10, &p, &CompilerConfig::for_chip(&chip10)).unwrap();
    let chip = Chip::new(chip10);
    chip.run(&prog).expect("feature-matched program must run");
}
