//! Cross-crate functional correctness: the simulated engines really
//! compute, and agree with host references.

use dtu_compiler::{assign_banks, packetize, tensorize_vmm, vectorize_map};
use dtu_isa::{DataType, SfuFunc};
use dtu_sim::{Interpreter, MatrixEngine, Spu};
use dtu_tensor::{compress, decompress, Shape, Tensor};

#[test]
fn gemm_on_vmm_engine_matches_host_matmul() {
    let mut eng = MatrixEngine::default();
    for (m, k, n) in [(1usize, 25088usize, 16usize), (7, 33, 20), (16, 16, 16)] {
        let a = Tensor::from_fn(Shape::new(vec![m, k]), |i| {
            ((i[0] * 31 + i[1] * 7) % 13) as f32 * 0.125 - 0.75
        });
        let b = Tensor::from_fn(Shape::new(vec![k, n]), |i| {
            ((i[0] * 5 + i[1] * 11) % 17) as f32 * 0.0625 - 0.5
        });
        let got = eng.gemm(&a, &b, DataType::Fp32).expect("catalog covers");
        let want = a.matmul(&b).expect("valid shapes");
        let err = got.max_abs_diff(&want).expect("same shape");
        // Relative tolerance against the largest magnitude in the output.
        let scale = want.data().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        assert!(
            err <= scale * 1e-4 + 1e-3,
            "gemm {m}x{k}x{n}: err {err} vs scale {scale}"
        );
    }
}

#[test]
fn sort_facility_equals_std_sort_across_sizes() {
    let mut eng = MatrixEngine::default();
    for n in 1..=32 {
        let input = Tensor::from_fn(Shape::new(vec![n]), |i| {
            (((i[0] * 2654435761) % 97) as f32) / 9.7 - 5.0
        });
        let art = eng.sort(&input).expect("fits");
        let mut want = input.data().to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert_eq!(art.sorted.data(), want.as_slice(), "n = {n}");
    }
}

#[test]
fn spu_accuracy_meets_the_inference_tolerance() {
    // §VI-A configures 0.01% tolerated precision difference for most
    // DNNs; activation evaluation must not be the accuracy bottleneck at
    // normal activation magnitudes.
    let mut spu = Spu::default();
    for func in [
        SfuFunc::Tanh,
        SfuFunc::Sigmoid,
        SfuFunc::Gelu,
        SfuFunc::Swish,
    ] {
        for i in 0..500 {
            let x = -4.0 + 8.0 * i as f64 / 499.0;
            let got = spu.eval(func, x as f32).expect("supported") as f64;
            let want = match func {
                SfuFunc::Tanh => x.tanh(),
                SfuFunc::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                SfuFunc::Gelu => 0.5 * x * (1.0 + libm_erf(x / std::f64::consts::SQRT_2)),
                SfuFunc::Swish => x / (1.0 + (-x).exp()),
                _ => unreachable!(),
            };
            assert!(
                (got - want).abs() < 2e-3,
                "{func:?}({x:.3}): {got} vs {want}"
            );
        }
    }
}

/// Abramowitz–Stegun erf, same reference the SPU LUT builder uses.
fn libm_erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[test]
fn dsl_pipeline_matches_reference_over_many_shapes() {
    // tensorize -> bank-allocate -> packetize -> interpret, vs host math.
    for rows in [4usize, 8, 16] {
        let instrs = {
            let mut v = tensorize_vmm(rows, 600, 0, 700);
            v.extend(vectorize_map(SfuFunc::Sigmoid, 16, 700, 800));
            v
        };
        let packets = packetize(&assign_banks(&instrs));
        let mut it = Interpreter::new(64 * 1024, DataType::Fp32);
        for r in 0..rows {
            for c in 0..16 {
                it.poke_l1(r * 16 + c, ((r * 16 + c) % 9) as f32 * 0.1 - 0.4)
                    .unwrap();
            }
        }
        let x: Vec<f32> = (0..rows).map(|r| r as f32 * 0.3 - 0.5).collect();
        for (i, v) in x.iter().enumerate() {
            it.poke_l1(600 + i, *v).unwrap();
        }
        let report = it.run(&packets).expect("executes");
        assert_eq!(report.bank_conflict_stalls, 0, "allocator left conflicts");
        for c in 0..16 {
            let dot: f32 = (0..rows)
                .map(|r| x[r] * (((r * 16 + c) % 9) as f32 * 0.1 - 0.4))
                .sum();
            let want = 1.0 / (1.0 + (-dot as f64).exp());
            let got = it.peek_l1(800 + c).unwrap() as f64;
            assert!(
                (got - want).abs() < 2e-3,
                "rows {rows} col {c}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn sparse_codec_roundtrips_model_like_data() {
    // Post-ReLU activations: ~half zeros, then exact roundtrip.
    let act: Vec<f32> = (0..10_000)
        .map(|i| {
            let v = ((i * 2654435761usize) % 2000) as f32 / 100.0 - 10.0;
            v.max(0.0)
        })
        .collect();
    let blocks = compress(&act);
    let restored = decompress(&blocks).expect("valid blocks");
    assert_eq!(restored, act);
    let wire: usize = blocks.iter().map(|b| b.wire_bytes(4)).sum();
    let dense = act.len() * 4;
    assert!(
        wire < dense * 7 / 10,
        "sparse wire {wire} not clearly below dense {dense}"
    );
}

#[test]
fn quantisation_error_within_configured_tolerance() {
    // The FP16 pipeline must stay within the paper's configured 0.01%
    // (1e-4) relative precision difference for well-scaled values.
    for i in 1..1000 {
        let v = i as f32 * 0.317;
        let q = DataType::Fp16.quantize(v);
        let rel = ((q - v) / v).abs();
        assert!(rel < 5e-4, "fp16 rel err {rel} at {v}");
    }
}

#[test]
fn mixed_precision_mlp_accuracy() {
    // §VI-A configures tolerated precision differences between CPU and
    // accelerator runs. Execute a 2-layer tanh MLP functionally on the
    // engines in FP32 / FP16 / BF16 and bound the output divergence.
    let run = |dtype: DataType| -> Vec<f32> {
        let mut eng = MatrixEngine::default();
        let mut spu = Spu::default();
        let x = Tensor::from_fn(Shape::new(vec![1, 16]), |i| (i[1] as f32 - 8.0) * 0.1);
        let w1 = Tensor::from_fn(Shape::new(vec![16, 16]), |i| {
            ((i[0] * 16 + i[1]) % 7) as f32 * 0.05 - 0.15
        });
        let w2 = Tensor::from_fn(Shape::new(vec![16, 16]), |i| {
            ((i[0] * 5 + i[1] * 3) % 9) as f32 * 0.04 - 0.16
        });
        let h = eng.gemm(&x, &w1, dtype).expect("catalog shape");
        let h = spu.eval_tensor(SfuFunc::Tanh, &h).expect("supported");
        let y = eng.gemm(&h, &w2, dtype).expect("catalog shape");
        y.into_data()
    };
    let fp32 = run(DataType::Fp32);
    for (dtype, tol) in [(DataType::Fp16, 5e-3), (DataType::Bf16, 2e-2)] {
        let out = run(dtype);
        for (a, b) in fp32.iter().zip(&out) {
            let denom = a.abs().max(0.1);
            assert!(
                ((a - b) / denom).abs() < tol,
                "{dtype}: {b} vs fp32 {a} beyond {tol}"
            );
        }
    }
}
