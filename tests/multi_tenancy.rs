//! Integration tests for Fig. 7: resource abstraction, placement
//! scaling, and tenant isolation.

use dtu::{Accelerator, Placement, Session, SessionOptions, WorkloadSize};
use dtu_compiler::{compile, CompilerConfig};
use dtu_models::Model;
use dtu_sim::{GroupId, Program};

#[test]
fn placement_scaling_is_monotone() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::Resnet50.build(1);
    let mut last = f64::INFINITY;
    for size in [
        WorkloadSize::Small,
        WorkloadSize::Medium,
        WorkloadSize::Large,
        WorkloadSize::FullChip,
    ] {
        let lat = Session::compile(
            &accel,
            &graph,
            SessionOptions {
                size,
                ..Default::default()
            },
        )
        .unwrap()
        .run()
        .unwrap()
        .latency_ms();
        assert!(
            lat <= last * 1.001,
            "more resources should not slow the workload ({lat:.3} > {last:.3})"
        );
        last = lat;
    }
}

#[test]
fn isolated_tenants_interfere_only_through_hbm() {
    let accel = Accelerator::cloudblazer_i20();
    let chip_cfg = accel.config().clone();
    let graph = Model::Resnet50.build(1);
    let ccfg = CompilerConfig::for_chip(&chip_cfg);

    let solo_prog = compile(
        &graph,
        &chip_cfg,
        &Placement::explicit(vec![GroupId::new(0, 0)]),
        &ccfg,
    )
    .unwrap();
    let solo = accel.chip().run(&solo_prog).unwrap().latency_ns;

    // Six tenants, one per group, all running at once.
    let mut combined = Program::new("six-tenants");
    for c in 0..2 {
        for g in 0..3 {
            let p = Placement::explicit(vec![GroupId::new(c, g)]);
            let prog = compile(&graph, &chip_cfg, &p, &ccfg).unwrap();
            for s in prog.streams {
                combined.add_stream(s);
            }
        }
    }
    let six = accel.chip().run(&combined).unwrap().latency_ns;
    let interference = six / solo;
    // Compute resources are isolated; only HBM bandwidth is shared, so
    // slowdown must stay far below the 6x a shared-everything design
    // would suffer.
    assert!(
        interference < 2.0,
        "interference factor {interference:.2} too high for isolated groups"
    );
    assert!(interference >= 1.0);
}

#[test]
fn six_tenants_multiply_throughput() {
    let accel = Accelerator::cloudblazer_i20();
    let chip_cfg = accel.config().clone();
    let graph = Model::Resnet50.build(1);
    let ccfg = CompilerConfig::for_chip(&chip_cfg);

    let solo_prog = compile(
        &graph,
        &chip_cfg,
        &Placement::explicit(vec![GroupId::new(0, 0)]),
        &ccfg,
    )
    .unwrap();
    let solo_lat = accel.chip().run(&solo_prog).unwrap().latency_ns;
    let solo_tp = 1e9 / solo_lat;

    let mut combined = Program::new("six-tenants");
    for c in 0..2 {
        for g in 0..3 {
            let p = Placement::explicit(vec![GroupId::new(c, g)]);
            let prog = compile(&graph, &chip_cfg, &p, &ccfg).unwrap();
            for s in prog.streams {
                combined.add_stream(s);
            }
        }
    }
    let six_lat = accel.chip().run(&combined).unwrap().latency_ns;
    let six_tp = 6.0 * 1e9 / six_lat;
    assert!(
        six_tp > 3.0 * solo_tp,
        "multi-tenancy throughput {six_tp:.0}/s not well above {solo_tp:.0}/s"
    );
}

#[test]
fn cross_cluster_placement_works() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::CenterNet.build(1);
    let p = Placement::explicit(vec![GroupId::new(0, 0), GroupId::new(1, 0)]);
    let report = Session::compile(
        &accel,
        &graph,
        SessionOptions {
            placement: Some(p),
            ..Default::default()
        },
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(report.latency_ms() > 0.0);
}
