//! Workspace integration: every Table III model compiles and runs on
//! both chip generations through the public facade.

use dtu::{Accelerator, Session, SessionOptions};
use dtu_models::Model;

#[test]
fn all_ten_models_run_on_i20() {
    let accel = Accelerator::cloudblazer_i20();
    for model in Model::ALL {
        let graph = model.build(1);
        let session = Session::compile(&accel, &graph, SessionOptions::default())
            .unwrap_or_else(|e| panic!("{model}: compile failed: {e}"));
        let report = session
            .run()
            .unwrap_or_else(|e| panic!("{model}: run failed: {e}"));
        assert!(report.latency_ms() > 0.0, "{model}: zero latency");
        assert!(report.energy_joules() > 0.0, "{model}: zero energy");
        assert!(
            report.raw().counters.kernel_launches > 0,
            "{model}: no kernels launched"
        );
        assert!(report.raw().counters.macs > 0, "{model}: no MACs retired");
    }
}

#[test]
fn i20_beats_i10_on_every_model() {
    // The Fig. 13 footnote: "Cloudblazer i10 ... performs worse than
    // Cloudblazer i20 for all tested DNNs".
    let i20 = Accelerator::cloudblazer_i20();
    let i10 = Accelerator::cloudblazer_i10();
    for model in Model::ALL {
        let graph = model.build(1);
        let l20 = Session::compile(&i20, &graph, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap()
            .latency_ms();
        let l10 = Session::compile(&i10, &graph, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap()
            .latency_ms();
        assert!(
            l10 > l20,
            "{model}: i10 ({l10:.3} ms) not slower than i20 ({l20:.3} ms)"
        );
    }
}

#[test]
fn average_power_stays_under_tdp() {
    let accel = Accelerator::cloudblazer_i20();
    for model in [Model::Vgg16, Model::YoloV3, Model::BertLarge] {
        let graph = model.build(1);
        let report = Session::compile(&accel, &graph, SessionOptions::default())
            .unwrap()
            .run()
            .unwrap();
        let w = report.average_watts();
        assert!(
            w > 10.0 && w <= 160.0,
            "{model}: implausible board power {w:.1} W (TDP 150 W)"
        );
    }
}

#[test]
fn batching_improves_throughput() {
    let accel = Accelerator::cloudblazer_i20();
    let tp = |batch: usize| {
        let graph = Model::Vgg16.build(batch);
        Session::compile(&accel, &graph, SessionOptions::batched(batch))
            .unwrap()
            .run()
            .unwrap()
            .throughput()
    };
    let t1 = tp(1);
    let t8 = tp(8);
    let t16 = tp(16);
    assert!(t8 > t1, "batch 8 ({t8:.0}/s) not above batch 1 ({t1:.0}/s)");
    assert!(
        t16 > t8,
        "batch 16 ({t16:.0}/s) not above batch 8 ({t8:.0}/s)"
    );
}

#[test]
fn dynamic_batch_model_binds_and_runs() {
    use dtu_graph::{Dim, Graph, Op, TensorType};
    let mut g = Graph::new("dyn");
    let x = g.input(
        "x",
        TensorType {
            dtype: dtu::DataType::Fp16,
            dims: vec![
                Dim::Dynamic("batch".into()),
                Dim::Fixed(3),
                Dim::Fixed(32),
                Dim::Fixed(32),
            ],
        },
    );
    let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
    g.mark_output(c);

    let accel = Accelerator::cloudblazer_i20();
    // Unbound dynamic batch cannot be costed -> compile error.
    assert!(Session::compile(&accel, &g, SessionOptions::default()).is_err());
    // Bound: runs.
    let bound = g.bind("batch", 4);
    let report = Session::compile(&accel, &bound, SessionOptions::default())
        .unwrap()
        .run()
        .unwrap();
    assert!(report.latency_ms() > 0.0);
}
