//! Integration tests for the cross-layer telemetry subsystem: span
//! recording through compiler + session + simulator, counter
//! conservation, attribution exactness, and the zero-cost-when-disabled
//! guarantee.

use dtu::telemetry::{AttributionReport, Counter, Layer, NullRecorder, SpanKind, TraceBuffer};
use dtu::{Accelerator, DataType, Session, SessionOptions};
use dtu_models::Model;

fn recorded_run(
    model: Model,
) -> (
    dtu::InferenceReport,
    TraceBuffer,
    usize, // stream (group) count of the compiled program
) {
    let accel = Accelerator::cloudblazer_i20();
    let graph = model.build(1);
    let mut buf = TraceBuffer::new();
    let session =
        Session::compile_recorded(&accel, &graph, SessionOptions::default(), &mut buf).unwrap();
    let streams = session.program().streams.len();
    let report = session.run_recorded(&mut buf).unwrap();
    (report, buf, streams)
}

#[test]
fn counters_conserve_core_time() {
    let (report, buf, streams) = recorded_run(Model::Resnet50);
    let snap = buf
        .snapshots()
        .iter()
        .find(|s| s.label.starts_with("chip:"))
        .expect("chip-wide counter snapshot");
    let accounted = snap.set.get(Counter::ComputeBusyNs)
        + snap.set.get(Counter::MemoryStallNs)
        + snap.set.get(Counter::SyncWaitNs)
        + snap.set.get(Counter::CodeLoadStallNs)
        + snap.set.get(Counter::PowerStallNs);
    // Each of the program's streams (one per processing group) can
    // account at most the wall clock; the total is bounded by
    // wall-clock time times the number of active lanes.
    let bound = report.raw().latency_ns * streams as f64;
    assert!(accounted > 0.0, "a real model must account core time");
    assert!(
        accounted <= bound + 1.0,
        "accounted {accounted} ns exceeds {streams} lanes x {} ns",
        report.raw().latency_ns
    );
    // The same conservation holds span by span: no kernel interval
    // accounts more than its own duration per category sum.
    for s in buf.spans().iter().filter(|s| s.kind == SpanKind::Kernel) {
        let per_span =
            s.counters.get(Counter::ComputeBusyNs) + s.counters.get(Counter::MemoryStallNs);
        assert!(
            per_span <= s.duration_ns() + 1.0,
            "kernel '{}' accounts {per_span} ns in a {} ns span",
            s.label,
            s.duration_ns()
        );
    }
}

#[test]
fn attribution_sums_to_end_to_end_latency() {
    let (report, buf, _) = recorded_run(Model::Resnet50);
    let accel = Accelerator::cloudblazer_i20();
    let machine = accel.config().machine_spec(
        accel.config().total_groups(),
        DataType::Fp16.ops_multiplier(),
    );
    let attr = AttributionReport::from_spans(buf.spans(), report.raw().latency_ns, machine);
    // Acceptance bound: per-operator latencies sum to within 1% of the
    // end-to-end latency (segment attribution makes this exact).
    let total = report.raw().latency_ns;
    assert!(
        (attr.attributed_ns() - total).abs() <= 0.01 * total,
        "attributed {} vs end-to-end {total}",
        attr.attributed_ns()
    );
    // A real convnet crosses several distinct bottleneck classes worth
    // of operators, and utilisation metrics stay in range.
    assert!(attr.ops.len() > 10);
    for o in &attr.ops {
        let u = o.mac_utilization(&attr.machine);
        assert!((0.0..=1.0 + 1e-9).contains(&u), "{}: mac% {u}", o.name);
        let hit = o.icache_hit_rate();
        assert!((0.0..=1.0).contains(&hit));
    }
}

#[test]
fn one_trace_spans_compiler_session_and_sim_layers() {
    let (report, buf, _) = recorded_run(Model::BertLarge);
    let layers: std::collections::BTreeSet<Layer> = buf.spans().iter().map(|s| s.layer).collect();
    assert!(layers.contains(&Layer::Compiler));
    assert!(layers.contains(&Layer::Session));
    assert!(layers.contains(&Layer::Sim));
    // Sim spans live inside the session envelope on the shared clock.
    for s in buf.spans().iter().filter(|s| s.layer == Layer::Sim) {
        assert!(s.start_ns >= 0.0);
        assert!(s.end_ns <= report.raw().latency_ns + 1.0);
    }
    // The rich Chrome export is one loadable JSON array with process
    // metadata naming the layers.
    let json = buf.to_chrome_trace(true);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("process_name"));
    assert!(json.contains(Layer::Compiler.name()));
    assert!(json.contains(Layer::Sim.name()));
}

#[test]
fn disabled_recorder_changes_no_numbers() {
    let accel = Accelerator::cloudblazer_i20();
    let graph = Model::InceptionV4.build(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).unwrap();
    let plain = session.run().unwrap();
    let mut null = NullRecorder;
    let nulled = session.run_recorded(&mut null).unwrap();
    assert_eq!(plain.raw(), nulled.raw(), "NullRecorder must be invisible");
    // And a full recording must not perturb the simulation either.
    let mut buf = TraceBuffer::new();
    let recorded = session.run_recorded(&mut buf).unwrap();
    assert_eq!(plain.raw(), recorded.raw());
    assert!(!buf.is_empty());
}
