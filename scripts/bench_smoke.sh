#!/usr/bin/env sh
# Perf smoke gate: times a warm 12-point sweep (resnet50/vgg16/bert x
# batches 1,2,4,8) plus the resnet50 profile run, writes a
# `{wall_ms, points, cache_hit_rate}` snapshot, and — in check mode —
# fails on a >25% regression against the committed BENCH_4.json.
#
#   scripts/bench_smoke.sh            check against the committed
#                                     baseline; snapshot goes to
#                                     target/BENCH_4.json
#   scripts/bench_smoke.sh --write    regenerate the committed baseline
#                                     BENCH_4.json at the repo root
#
# Wall-clock baselines are machine-relative: after moving to faster or
# slower CI hardware, intentionally regenerate with --write and commit
# the diff (same flow as the golden figures, see docs/CLI.md).
set -eu
cd "$(dirname "$0")/.."
mode="${1:-check}"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT INT TERM

cargo build --release -p dtu-bench --bin topsexec >/dev/null
bin=./target/release/topsexec

# Cold pass populates the artifact cache so the timed pass runs warm.
"$bin" sweep --models resnet50,vgg16,bert --batches 1,2,4,8 --jobs 4 \
    --cache-dir "$work/cache" --format json >/dev/null 2>&1

python3 - "$bin" "$work" "$mode" <<'PY'
import json, subprocess, sys, time

topsexec, work, mode = sys.argv[1:4]
t0 = time.monotonic()
sweep = subprocess.run(
    [topsexec, "sweep", "--models", "resnet50,vgg16,bert",
     "--batches", "1,2,4,8", "--jobs", "4",
     "--cache-dir", f"{work}/cache", "--format", "json"],
    check=True, capture_output=True, text=True)
subprocess.run(
    [topsexec, "profile", "resnet50",
     "--trace-out", f"{work}/profile.trace.json"],
    check=True, capture_output=True)
wall_ms = (time.monotonic() - t0) * 1e3

report = json.loads(sweep.stdout)
cache = report["cache"]
hits = cache["memory_hits"] + cache["disk_hits"]
current = {
    "wall_ms": round(wall_ms, 1),
    "points": len(report["points"]),
    "cache_hit_rate": round(hits / max(1, hits + cache["misses"]), 4),
}
payload = json.dumps(current, indent=2) + "\n"

if mode == "--write":
    with open("BENCH_4.json", "w") as f:
        f.write(payload)
    print(f"bench baseline written to BENCH_4.json: {current}")
    sys.exit(0)

with open("target/BENCH_4.json", "w") as f:
    f.write(payload)
base = json.load(open("BENCH_4.json"))
print(f"bench smoke: current {current}")
print(f"             baseline {base}")

failures = []
if current["points"] != base["points"]:
    failures.append(
        f"sweep point count changed: {base['points']} -> {current['points']}")
if current["wall_ms"] > 1.25 * base["wall_ms"]:
    failures.append(
        f"warm sweep + profile wall time regressed >25%: "
        f"{base['wall_ms']} -> {current['wall_ms']} ms")
if current["cache_hit_rate"] < base["cache_hit_rate"] - 0.25:
    failures.append(
        f"cache hit rate regressed >25%: "
        f"{base['cache_hit_rate']} -> {current['cache_hit_rate']}")
if failures:
    print("bench smoke FAILED:\n  " + "\n  ".join(failures))
    print("if intentional, regenerate with scripts/bench_smoke.sh --write")
    sys.exit(1)
print("bench smoke OK (snapshot at target/BENCH_4.json)")
PY
