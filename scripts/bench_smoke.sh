#!/usr/bin/env sh
# Perf smoke gate: times a *warm* 12-point sweep (resnet50/vgg16/bert x
# batches 1,2,4,8) under BOTH timing backends in one `--timing both`
# invocation, writes a `{interpreted_wall_ms, analytic_wall_ms,
# speedup, points, max_rtol}` snapshot, and — in check mode — fails on
# a >25% wall-clock regression against the committed BENCH_9.json or
# on the analytic fast path dropping below its 10x speedup floor.
#
#   scripts/bench_smoke.sh            check against the committed
#                                     baseline; snapshot goes to
#                                     target/BENCH_9.json
#   scripts/bench_smoke.sh --write    regenerate the committed baseline
#                                     BENCH_9.json at the repo root
#
# Wall-clock baselines are machine-relative: after moving to faster or
# slower CI hardware, intentionally regenerate with --write and commit
# the diff (same flow as the golden figures, see docs/CLI.md). The 10x
# speedup floor and the 5% rtol bound are machine-independent and are
# never relaxed by --write.
set -eu
cd "$(dirname "$0")/.."
mode="${1:-check}"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT INT TERM

cargo build --release -p dtu-bench --bin topsexec >/dev/null
bin=./target/release/topsexec

# Cold pass populates the compiled-session cache AND the analytic
# calibration + price cache, so the timed pass runs warm on both
# backends. `--timing both` also enforces the 5% rtol bound, so a
# diverging analytic model fails the gate here too.
"$bin" sweep --models resnet50,vgg16,bert --batches 1,2,4,8 --jobs 4 \
    --timing both --rtol-bound 0.05 \
    --cache-dir "$work/cache" --format json >/dev/null 2>&1

"$bin" sweep --models resnet50,vgg16,bert --batches 1,2,4,8 --jobs 4 \
    --timing both --rtol-bound 0.05 \
    --cache-dir "$work/cache" --format json \
    --wall-out "$work/wall.json" >/dev/null 2>&1

python3 - "$work" "$mode" <<'PY'
import json, sys

work, mode = sys.argv[1:3]
wall = json.load(open(f"{work}/wall.json"))
current = {
    "interpreted_wall_ms": round(wall["interpreted_wall_ms"], 1),
    "analytic_wall_ms": round(wall["analytic_wall_ms"], 3),
    "speedup": round(wall["speedup"], 1),
    "points": wall["points"],
    "max_rtol": wall["max_rtol"],
}
payload = json.dumps(current, indent=2) + "\n"

failures = []
if current["speedup"] < 10.0:
    failures.append(
        f"warm analytic sweep must be >=10x faster than the interpreter, "
        f"got {current['speedup']}x ({current['interpreted_wall_ms']} ms vs "
        f"{current['analytic_wall_ms']} ms)")
if current["max_rtol"] > 0.05:
    failures.append(
        f"analytic latency diverged from the interpreter: max rtol "
        f"{current['max_rtol']} > 0.05")

if mode == "--write":
    if failures:
        print("bench smoke REFUSED to write a failing baseline:\n  "
              + "\n  ".join(failures))
        sys.exit(1)
    with open("BENCH_9.json", "w") as f:
        f.write(payload)
    print(f"bench baseline written to BENCH_9.json: {current}")
    sys.exit(0)

with open("target/BENCH_9.json", "w") as f:
    f.write(payload)
base = json.load(open("BENCH_9.json"))
print(f"bench smoke: current {current}")
print(f"             baseline {base}")

if current["points"] != base["points"]:
    failures.append(
        f"sweep point count changed: {base['points']} -> {current['points']}")
if current["interpreted_wall_ms"] > 1.25 * base["interpreted_wall_ms"]:
    failures.append(
        f"warm interpreted sweep wall time regressed >25%: "
        f"{base['interpreted_wall_ms']} -> {current['interpreted_wall_ms']} ms")
if current["analytic_wall_ms"] > 1.25 * base["analytic_wall_ms"]:
    failures.append(
        f"warm analytic sweep wall time regressed >25%: "
        f"{base['analytic_wall_ms']} -> {current['analytic_wall_ms']} ms")
if failures:
    print("bench smoke FAILED:\n  " + "\n  ".join(failures))
    print("if intentional, regenerate with scripts/bench_smoke.sh --write")
    sys.exit(1)
print("bench smoke OK (snapshot at target/BENCH_9.json)")
PY
