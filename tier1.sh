#!/usr/bin/env sh
# Tier-1 gate: format, build, test, lint, and a profiling smoke run.
# Runnable from any directory; it changes to its own location first.
set -eu
cd "$(dirname "$0")"
cargo fmt --all --check
cargo build --release
cargo build --release -p dtu-bench --bin topsexec
cargo test -q
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# The telemetry pipeline end to end: `topsexec profile` must emit a
# non-empty, valid-JSON Perfetto/Chrome trace.
# Clean the scratch dir on normal exit *and* on interrupt/termination —
# a bare EXIT trap leaks it when the shell is killed mid-run.
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT INT TERM
./target/release/topsexec profile resnet50 --trace-out "$trace_dir/trace.json" > /dev/null
python3 - "$trace_dir/trace.json" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty JSON array"
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace must contain duration spans"
assert len({e["pid"] for e in spans}) >= 3, "trace must cover >= 3 layers"
PY

# The parallel experiment engine end to end: a cold sweep populates the
# compiled-session cache, a warm sweep must hit it and emit valid JSON.
./target/release/topsexec sweep --models resnet50 --batches 1,2 --jobs 4 \
    --cache-dir "$trace_dir/cache" --format json > "$trace_dir/cold.json"
./target/release/topsexec sweep --models resnet50 --batches 1,2 --jobs 4 \
    --cache-dir "$trace_dir/cache" --format json > "$trace_dir/warm.json"
python3 - "$trace_dir/warm.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
points = report["points"]
assert len(points) == 2, f"expected 2 grid points, got {len(points)}"
assert all(p["latency_ms"] > 0 for p in points), "latencies must be positive"
cache = report["cache"]
hits = cache["memory_hits"] + cache["disk_hits"]
assert hits >= 1, f"warm sweep must hit the session cache, stats: {cache}"
PY
# The analytic timing fast path end to end: `--timing both` runs the
# interpreter and the calibrated analytic backend over the same grid
# and exits nonzero past the 5% rtol bound; the comparison JSON is
# re-checked for the per-point bound here.
./target/release/topsexec sweep --models resnet50 --batches 1,2 --jobs 4 \
    --timing both --rtol-bound 0.05 --cache-dir "$trace_dir/cache" \
    --format json > "$trace_dir/fastpath.json"
python3 - "$trace_dir/fastpath.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["within_bound"] is True, f"analytic diverged: {r['max_rtol']}"
assert len(r["points"]) == 2 and all(p["rtol"] <= 0.05 for p in r["points"]), r
PY
# The fleet layer end to end: a 4-chip cluster run must emit valid,
# accounting-balanced JSON, hit the shared session cache at least once
# (jobs=1 keeps the cache tally schedule-independent), and be
# byte-identical across worker counts.
./target/release/topsexec fleet resnet50 --chips 4 --qps 4000 \
    --duration 2000 --seed 7 --jobs 1 --no-disk-cache \
    --format table > "$trace_dir/fleet.txt"
grep -E 'cache: [0-9]+ memory' "$trace_dir/fleet.txt" > /dev/null
python3 - "$trace_dir/fleet.txt" <<'PY'
import re, sys
m = re.search(r"cache: (\d+) memory \+ (\d+) disk hits, (\d+) misses",
              open(sys.argv[1]).read())
assert m and int(m.group(1)) + int(m.group(2)) >= 1, \
    "fleet chips must share compiled sessions"
PY
./target/release/topsexec fleet resnet50 --chips 4 --qps 4000 \
    --duration 2000 --seed 7 --jobs 1 --no-disk-cache > "$trace_dir/fleet_j1.json"
./target/release/topsexec fleet resnet50 --chips 4 --qps 4000 \
    --duration 2000 --seed 7 --jobs 4 --no-disk-cache > "$trace_dir/fleet_j4.json"
cmp "$trace_dir/fleet_j1.json" "$trace_dir/fleet_j4.json"
python3 - "$trace_dir/fleet_j1.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["accounting_balanced"] is True, "fleet accounting leaked"
assert r["offered"] > 0 and r["completed"] > 0, "fleet served nothing"
PY

# The generative serving path end to end: the continuous batcher must
# emit valid, accounting-balanced JSON with real decode work, and the
# report must be byte-identical across --jobs and cache temperature.
./target/release/topsexec serve --generative --gen-model tiny --seed 7 \
    --jobs 1 --cache-dir "$trace_dir/gcache" > "$trace_dir/gen_j1.json" 2>/dev/null
./target/release/topsexec serve --generative --gen-model tiny --seed 7 \
    --jobs 4 --cache-dir "$trace_dir/gcache" > "$trace_dir/gen_j4.json" 2>/dev/null
cmp "$trace_dir/gen_j1.json" "$trace_dir/gen_j4.json"
python3 - "$trace_dir/gen_j1.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["offered"] == r["completed"] + r["shed"] + r["fault_dropped"], \
    "generative accounting leaked"
assert r["decode_tokens"] > 0 and r["prefill_tokens"] > 0, "no token work"
assert r["ttft"]["count"] == r["completed"], "TTFT sampled per completion"
PY
# The generative monitor must be strictly observational: attaching it
# may not change a byte of the report.
./target/release/topsexec serve --generative --gen-model tiny --seed 7 \
    --jobs 4 --monitor --cache-dir "$trace_dir/gcache" \
    > "$trace_dir/gen_mon.json" 2>/dev/null
cmp "$trace_dir/gen_j1.json" "$trace_dir/gen_mon.json"

echo "tier1 OK"
