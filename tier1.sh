#!/usr/bin/env sh
# Tier-1 gate: format, build, test, lint, and a profiling smoke run.
# Run from the repo root.
set -eu
cargo fmt --all --check
cargo build --release
cargo build --release -p dtu-bench --bin topsexec
cargo test -q
cargo clippy --workspace -- -D warnings

# The telemetry pipeline end to end: `topsexec profile` must emit a
# non-empty, valid-JSON Perfetto/Chrome trace.
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
./target/release/topsexec profile resnet50 --trace-out "$trace_dir/trace.json" > /dev/null
python3 - "$trace_dir/trace.json" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty JSON array"
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace must contain duration spans"
assert len({e["pid"] for e in spans}) >= 3, "trace must cover >= 3 layers"
PY
echo "tier1 OK"
