#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repo root.
set -eu
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
