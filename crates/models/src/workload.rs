//! The [`Workload`] trait: one interface over single-shot and
//! generative models so `dtu-serve` can compile, cache, and serve both
//! through the same path.
//!
//! A single-shot workload (any [`Model`]) produces one graph per batch
//! size and is done after one forward pass. A generative workload
//! ([`GenerativeModel`]) additionally exposes a per-token decode graph
//! and a KV-cache growth rate, which the serving layer uses to run
//! continuous batching against a paged KV allocator.

use crate::generative::{decode_graph, prefill_graph, GenerativeConfig};
use crate::Model;
use dtu_graph::Graph;

/// A servable model: anything that can emit compile-ready graphs for
/// the serving stack.
///
/// The two methods beyond [`build`](Workload::build) have defaults that
/// describe a single-shot model (no decode phase, no KV-cache), so
/// implementing the trait for a plain feed-forward network is one
/// method.
pub trait Workload {
    /// Display name (used for telemetry labels and cache keys).
    fn name(&self) -> String;

    /// The single-shot graph at `batch` — for a generative workload,
    /// the **prefill** graph over its configured prompt length.
    fn build(&self, batch: usize) -> Graph;

    /// The per-token **decode** graph at `batch` sequences against a
    /// `context`-token KV-cache. `None` for single-shot workloads.
    fn decode(&self, batch: usize, context: usize) -> Option<Graph> {
        let _ = (batch, context);
        None
    }

    /// Bytes the KV-cache grows per generated token per sequence.
    /// Zero for single-shot workloads.
    fn kv_bytes_per_token(&self) -> u64 {
        0
    }
}

impl Workload for Model {
    fn name(&self) -> String {
        Model::name(*self).to_string()
    }

    fn build(&self, batch: usize) -> Graph {
        Model::build(*self, batch)
    }
}

/// A decoder-only generative transformer bound to a prompt length —
/// the [`Workload`] wrapper around [`GenerativeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenerativeModel {
    /// The transformer architecture.
    pub config: GenerativeConfig,
    /// Prompt length the prefill graph is built for.
    pub prompt: usize,
}

impl GenerativeModel {
    /// Wraps a configuration at a prompt length.
    pub fn new(config: GenerativeConfig, prompt: usize) -> Self {
        GenerativeModel { config, prompt }
    }
}

impl Workload for GenerativeModel {
    fn name(&self) -> String {
        format!(
            "gen-l{}d{}-p{}",
            self.config.layers, self.config.d_model, self.prompt
        )
    }

    fn build(&self, batch: usize) -> Graph {
        prefill_graph(&self.config, batch, self.prompt)
    }

    fn decode(&self, batch: usize, context: usize) -> Option<Graph> {
        Some(decode_graph(&self.config, batch, context))
    }

    fn kv_bytes_per_token(&self) -> u64 {
        self.config.kv_bytes_per_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shot_models_have_no_decode_phase() {
        let m = Model::Resnet50;
        assert!(m.decode(1, 128).is_none());
        assert_eq!(Workload::kv_bytes_per_token(&m), 0);
        assert_eq!(Workload::name(&m), "Resnet50 v1.5");
        assert!(!Workload::build(&m, 1).is_empty());
    }

    #[test]
    fn generative_model_exposes_both_phases() {
        let m = GenerativeModel::new(GenerativeConfig::tiny(), 64);
        let prefill = m.build(2);
        assert!(!prefill.is_empty());
        let decode = m.decode(2, 96).expect("decode graph");
        assert!(!decode.is_empty());
        assert!(m.kv_bytes_per_token() > 0);
        assert_eq!(m.name(), "gen-l2d256-p64");
    }
}
