//! The ten Table III benchmark DNNs, expressed as `dtu-graph` graphs.
//!
//! | Category | Model | Input |
//! |---|---|---|
//! | Object detection | YOLOv3 | 3x608x608 |
//! | Object detection | CenterNet | 3x512x512 |
//! | Object detection | RetinaFace | 3x640x640 |
//! | Image classification | VGG16 | 3x224x224 |
//! | Image classification | ResNet-50 v1.5 | 3x224x224 |
//! | Image classification | Inception v4 | 3x299x299 |
//! | Segmentation | UNet | 3x512x512 |
//! | Super resolution | SRResNet | 224x224x3 |
//! | NLP | BERT-Large | seq 384 |
//! | Speech | Conformer | 80x401 |
//!
//! The architectures follow the cited reference implementations at the
//! layer-topology level: layer counts, channel widths, kernel sizes,
//! strides, skip connections, attention shapes. Weights are not
//! represented (latency and energy depend on shapes, not values).
//! Conformer's 1x31 depthwise-temporal convolution is approximated by a
//! 3x3 depthwise convolution over a `[N, C, T, 1]` layout (the only
//! structural approximation; see DESIGN.md).
//!
//! Beyond the paper's single-shot suite, the [`generative`] module adds
//! a decoder-only transformer with an explicit prefill/decode split,
//! and the [`Workload`] trait unifies both workload classes behind one
//! compile/serve interface.
//!
//! # Example
//!
//! ```
//! use dtu_models::Model;
//!
//! let g = Model::Resnet50.build(1);
//! assert!(g.len() > 100);
//! let shapes = g.infer_shapes().unwrap();
//! assert!(!shapes.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generative;
mod nlp;
mod speech;
mod vision;
mod workload;

pub use generative::{decode_graph, prefill_graph, GenerativeConfig};
pub use nlp::bert_large;
pub use speech::conformer;
pub use vision::{centernet, inception_v4, resnet50, retinaface, srresnet, unet, vgg16, yolo_v3};
pub use workload::{GenerativeModel, Workload};

use dtu_graph::Graph;
use std::fmt;

/// The benchmark suite of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// YOLOv3 object detection, 3x608x608.
    YoloV3,
    /// CenterNet object detection, 3x512x512.
    CenterNet,
    /// RetinaFace face detection, 3x640x640.
    RetinaFace,
    /// VGG16 image classification, 3x224x224.
    Vgg16,
    /// ResNet-50 v1.5 image classification, 3x224x224.
    Resnet50,
    /// Inception v4 image classification, 3x299x299.
    InceptionV4,
    /// UNet segmentation, 3x512x512.
    Unet,
    /// SRResNet super-resolution, 224x224x3 (NHWC source layout).
    SrResnet,
    /// BERT-Large, sequence length 384.
    BertLarge,
    /// Conformer speech recognition, 80x401 features.
    Conformer,
}

impl Model {
    /// All ten models in Table III order.
    pub const ALL: [Model; 10] = [
        Model::YoloV3,
        Model::CenterNet,
        Model::RetinaFace,
        Model::Vgg16,
        Model::Resnet50,
        Model::InceptionV4,
        Model::Unet,
        Model::SrResnet,
        Model::BertLarge,
        Model::Conformer,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Model::YoloV3 => "Yolo v3",
            Model::CenterNet => "CenterNet",
            Model::RetinaFace => "Retinaface",
            Model::Vgg16 => "VGG16",
            Model::Resnet50 => "Resnet50 v1.5",
            Model::InceptionV4 => "Inception v4",
            Model::Unet => "Unet",
            Model::SrResnet => "SRResnet",
            Model::BertLarge => "Bert large",
            Model::Conformer => "Conformer",
        }
    }

    /// The application category of Table III.
    pub fn category(self) -> &'static str {
        match self {
            Model::YoloV3 | Model::CenterNet | Model::RetinaFace => "Object Detection",
            Model::Vgg16 | Model::Resnet50 | Model::InceptionV4 => "Image Classification",
            Model::Unet => "Segmentation",
            Model::SrResnet => "Super Resolution",
            Model::BertLarge => "NLP",
            Model::Conformer => "Speech Recognition",
        }
    }

    /// The input size string of Table III.
    pub fn input_size(self) -> &'static str {
        match self {
            Model::YoloV3 => "3x608x608",
            Model::CenterNet => "3x512x512",
            Model::RetinaFace => "3x640x640",
            Model::Vgg16 | Model::Resnet50 => "3x224x224",
            Model::InceptionV4 => "3x299x299",
            Model::Unet => "3x512x512",
            Model::SrResnet => "224x224x3",
            Model::BertLarge => "384",
            Model::Conformer => "80x401",
        }
    }

    /// Builds the model graph at a batch size.
    pub fn build(self, batch: usize) -> Graph {
        match self {
            Model::YoloV3 => yolo_v3(batch),
            Model::CenterNet => centernet(batch),
            Model::RetinaFace => retinaface(batch),
            Model::Vgg16 => vgg16(batch),
            Model::Resnet50 => resnet50(batch),
            Model::InceptionV4 => inception_v4(batch),
            Model::Unet => unet(batch),
            Model::SrResnet => srresnet(batch),
            Model::BertLarge => bert_large(batch),
            Model::Conformer => conformer(batch),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::graph_costs;

    #[test]
    fn all_models_build_and_infer_at_batch_1() {
        for m in Model::ALL {
            let g = m.build(1);
            assert!(!g.is_empty(), "{m} is empty");
            assert!(!g.outputs().is_empty(), "{m} has no outputs");
            g.infer_shapes()
                .unwrap_or_else(|e| panic!("{m} shape inference failed: {e}"));
        }
    }

    #[test]
    fn all_models_cost_at_batch_1_and_8() {
        for m in Model::ALL {
            for batch in [1usize, 8] {
                let g = m.build(batch);
                let (_, total) = graph_costs(&g)
                    .unwrap_or_else(|e| panic!("{m} costing failed at batch {batch}: {e}"));
                assert!(total.macs > 0, "{m} has no MACs");
            }
        }
    }

    #[test]
    fn gflops_in_expected_ballparks() {
        // Published single-sample GFLOPs (2*MACs), generous tolerances —
        // these pin the op-mix to the real architectures.
        let expect: [(Model, f64, f64); 10] = [
            (Model::YoloV3, 80.0, 220.0),     // ~140 @608
            (Model::CenterNet, 20.0, 90.0),   // backbone+deconv @512
            (Model::RetinaFace, 30.0, 160.0), // r50+FPN @640
            (Model::Vgg16, 25.0, 40.0),       // ~31
            (Model::Resnet50, 6.0, 12.0),     // ~8.2
            (Model::InceptionV4, 16.0, 40.0), // ~24
            (Model::Unet, 100.0, 500.0),      // @512 heavy
            (Model::SrResnet, 100.0, 280.0),  // full-res res blocks + 4x tail
            (Model::BertLarge, 120.0, 280.0), // ~180 @384
            (Model::Conformer, 10.0, 120.0),  // encoder @401 frames
        ];
        for (m, lo, hi) in expect {
            let g = m.build(1);
            let (_, total) = graph_costs(&g).unwrap();
            let gflops = total.flops() as f64 / 1e9;
            assert!(
                gflops > lo && gflops < hi,
                "{m}: {gflops:.1} GFLOPs outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn batch_scales_macs_linearly() {
        for m in [Model::Vgg16, Model::BertLarge] {
            let (_, c1) = graph_costs(&m.build(1)).unwrap();
            let (_, c8) = graph_costs(&m.build(8)).unwrap();
            let ratio = c8.macs as f64 / c1.macs as f64;
            assert!((ratio - 8.0).abs() < 0.2, "{m}: batch-8 MAC ratio {ratio}");
        }
    }

    #[test]
    fn detection_models_have_larger_inputs_than_classification() {
        // §VI-D: detection inputs are >2x larger, with a lower share of
        // high-density ops.
        let det_pixels = 608 * 608;
        let cls_pixels = 224 * 224;
        assert!(det_pixels > 2 * cls_pixels);
    }

    #[test]
    fn classification_has_higher_matrix_op_share_than_detection() {
        // §VI-D profiling: ~81%+ matrix-dense share in classification,
        // lower in detection. We compare kernel-count shares.
        let share = |m: Model| {
            let g = m.build(1);
            let anchors = g.count_ops(|op| op.is_compute_anchor()) as f64;
            anchors / g.len() as f64
        };
        let cls = (share(Model::Vgg16) + share(Model::Resnet50)) / 2.0;
        let det = (share(Model::YoloV3) + share(Model::RetinaFace)) / 2.0;
        assert!(
            cls > det,
            "classification share {cls:.2} not above detection {det:.2}"
        );
    }

    #[test]
    fn metadata_matches_table3() {
        assert_eq!(Model::ALL.len(), 10);
        assert_eq!(Model::YoloV3.input_size(), "3x608x608");
        assert_eq!(Model::SrResnet.input_size(), "224x224x3");
        assert_eq!(Model::BertLarge.category(), "NLP");
        assert_eq!(Model::Conformer.category(), "Speech Recognition");
        assert_eq!(Model::Resnet50.to_string(), "Resnet50 v1.5");
        // Six distinct categories.
        let cats: std::collections::BTreeSet<_> = Model::ALL.iter().map(|m| m.category()).collect();
        assert_eq!(cats.len(), 6);
    }

    #[test]
    fn bert_uses_sfu_heavily() {
        let (_, c) = graph_costs(&Model::BertLarge.build(1)).unwrap();
        assert!(c.sfu_ops > 10_000_000, "gelu+softmax should dominate SFU");
    }

    #[test]
    fn srresnet_enters_through_layout_transform() {
        let g = Model::SrResnet.build(1);
        // First non-input node is the NHWC->NCHW transpose.
        let first = g
            .nodes()
            .iter()
            .find(|n| !matches!(n.op, dtu_graph::Op::Input { .. }))
            .unwrap();
        assert!(first.op.is_layout_op(), "got {}", first.op);
    }
}
