//! Conformer speech encoder (Gulati et al.): convolutional subsampling
//! followed by 16 conformer blocks at d_model 512, over 80x401 filterbank
//! features (Table III / the NeMo ASR reference).
//!
//! The 1x31 depthwise temporal convolution of the conv module is
//! approximated by a 3x3 depthwise convolution over a `[N, C, T, 1]`
//! layout; every other shape matches the reference.

use dtu_graph::{BinaryKind, Dim, Graph, NodeId, Op, TensorType};
use dtu_isa::SfuFunc;

const BLOCKS: usize = 16;
const D_MODEL: usize = 512;
const HEADS: usize = 8;
const HEAD_DIM: usize = D_MODEL / HEADS;
const FFN: usize = 2048;
const FEATS: usize = 80;
const FRAMES: usize = 401;
/// Frames after two stride-2 subsampling convolutions.
const SEQ: usize = 101;
const SUB_CH: usize = 256;
const VOCAB: usize = 1024;

fn dense(g: &mut Graph, x: NodeId, units: usize) -> NodeId {
    g.add_node(Op::Dense { units }, vec![x]).expect("dense")
}

fn add(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    g.add_node(
        Op::Binary {
            kind: BinaryKind::Add,
        },
        vec![a, b],
    )
    .expect("add")
}

fn mul(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    g.add_node(
        Op::Binary {
            kind: BinaryKind::Mul,
        },
        vec![a, b],
    )
    .expect("mul")
}

fn ln(g: &mut Graph, x: NodeId) -> NodeId {
    g.add_node(Op::LayerNorm, vec![x]).expect("ln")
}

fn swish(g: &mut Graph, x: NodeId) -> NodeId {
    g.add_node(
        Op::Activation {
            func: SfuFunc::Swish,
        },
        vec![x],
    )
    .expect("swish")
}

/// Half-step feed-forward module: LN → dense(2048) → swish → dense(512).
fn ffn_module(g: &mut Graph, x: NodeId) -> NodeId {
    let n = ln(g, x);
    let up = dense(g, n, FFN);
    let act = swish(g, up);
    let down = dense(g, act, D_MODEL);
    add(g, down, x)
}

/// Multi-head self-attention module with pre-norm.
fn mhsa_module(g: &mut Graph, x: NodeId, batch: usize) -> NodeId {
    let n = ln(g, x);
    let q = dense(g, n, D_MODEL);
    let k = dense(g, n, D_MODEL);
    let v = dense(g, n, D_MODEL);
    let heads = |g: &mut Graph, t: NodeId, transposed: bool| {
        let split = g
            .add_node(
                Op::Reshape {
                    dims: vec![
                        Dim::Fixed(batch),
                        Dim::Fixed(SEQ),
                        Dim::Fixed(HEADS),
                        Dim::Fixed(HEAD_DIM),
                    ],
                },
                vec![t],
            )
            .expect("split");
        let perm = if transposed {
            vec![0, 2, 3, 1]
        } else {
            vec![0, 2, 1, 3]
        };
        g.add_node(Op::Transpose { perm }, vec![split])
            .expect("perm")
    };
    let qh = heads(g, q, false);
    let kh = heads(g, k, true);
    let vh = heads(g, v, false);
    let scores = g.add_node(Op::MatMul, vec![qh, kh]).expect("qk");
    let probs = g.add_node(Op::Softmax, vec![scores]).expect("softmax");
    let ctx = g.add_node(Op::MatMul, vec![probs, vh]).expect("av");
    let merged = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 2, 1, 3],
            },
            vec![ctx],
        )
        .expect("perm");
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![Dim::Fixed(batch), Dim::Fixed(SEQ), Dim::Fixed(D_MODEL)],
            },
            vec![merged],
        )
        .expect("merge");
    let proj = dense(g, flat, D_MODEL);
    add(g, proj, x)
}

/// Convolution module: LN → pointwise GLU → depthwise temporal conv →
/// BN → swish → pointwise → residual.
fn conv_module(g: &mut Graph, x: NodeId, batch: usize) -> NodeId {
    let n = ln(g, x);
    // GLU: two pointwise projections, one gated by sigmoid.
    let a = dense(g, n, D_MODEL);
    let b = dense(g, n, D_MODEL);
    let gate = g
        .add_node(
            Op::Activation {
                func: SfuFunc::Sigmoid,
            },
            vec![b],
        )
        .expect("sigmoid");
    let glu = mul(g, a, gate);
    // Depthwise conv over time: reshape [b, seq, d] -> [b, d, seq, 1].
    let img = g
        .add_node(
            Op::Reshape {
                dims: vec![
                    Dim::Fixed(batch),
                    Dim::Fixed(SEQ),
                    Dim::Fixed(D_MODEL),
                    Dim::Fixed(1),
                ],
            },
            vec![glu],
        )
        .expect("reshape");
    let tchw = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 2, 1, 3],
            },
            vec![img],
        )
        .expect("to_chw");
    let dw = g
        .add_node(Op::depthwise_conv2d(D_MODEL, 3, 1, 1), vec![tchw])
        .expect("dwconv");
    let bn = g.add_node(Op::BatchNorm, vec![dw]).expect("bn");
    let act = swish(g, bn);
    let back = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 2, 1, 3],
            },
            vec![act],
        )
        .expect("to_seq");
    // Depthwise conv with "same" height padding adds 2 pad columns on the
    // singleton width; slice back via reshape to [b, seq, d*w] then dense.
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![Dim::Fixed(batch), Dim::Fixed(SEQ), Dim::Fixed(D_MODEL)],
            },
            vec![back],
        )
        .expect("flatten");
    let pw = dense(g, flat, D_MODEL);
    add(g, pw, x)
}

/// One conformer block: FFN/2 → MHSA → Conv → FFN/2 → LN.
fn conformer_block(g: &mut Graph, x: NodeId, batch: usize) -> NodeId {
    let a = ffn_module(g, x);
    let b = mhsa_module(g, a, batch);
    let c = conv_module(g, b, batch);
    let d = ffn_module(g, c);
    ln(g, d)
}

/// Builds the Conformer encoder over 80x401 features.
pub fn conformer(batch: usize) -> Graph {
    let mut g = Graph::new("Conformer");
    let feats = g.input("features", TensorType::fixed(&[batch, 1, FEATS, FRAMES]));
    // Subsampling: two 3x3 stride-2 convs -> [b, 256, 20, 101].
    let c1 = g
        .add_node(Op::conv2d(SUB_CH, 3, 2, 1), vec![feats])
        .expect("sub1");
    let r1 = g.add_node(Op::Relu, vec![c1]).expect("relu");
    let c2 = g
        .add_node(Op::conv2d(SUB_CH, 3, 2, 1), vec![r1])
        .expect("sub2");
    let r2 = g.add_node(Op::Relu, vec![c2]).expect("relu");
    // To sequence: [b, 256, 20, 101] -> [b, 101, 256*20] -> dense 512.
    let perm = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 3, 1, 2],
            },
            vec![r2],
        )
        .expect("to_seq");
    let freq = FEATS.div_ceil(4); // 20
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![
                    Dim::Fixed(batch),
                    Dim::Fixed(SEQ),
                    Dim::Fixed(SUB_CH * freq),
                ],
            },
            vec![perm],
        )
        .expect("flatten");
    let mut x = dense(&mut g, flat, D_MODEL);
    for _ in 0..BLOCKS {
        x = conformer_block(&mut g, x, batch);
    }
    // CTC head.
    let logits = dense(&mut g, x, VOCAB);
    let probs = g.add_node(Op::Softmax, vec![logits]).expect("softmax");
    g.mark_output(probs);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::graph_costs;

    #[test]
    fn conformer_shapes() {
        let g = conformer(1);
        let shapes = g.infer_shapes().unwrap();
        let out = &shapes[&g.outputs()[0]];
        assert_eq!(
            out.dims,
            vec![Dim::Fixed(1), Dim::Fixed(SEQ), Dim::Fixed(VOCAB)]
        );
    }

    #[test]
    fn block_count() {
        let g = conformer(1);
        // 16 blocks x 1 depthwise conv.
        assert_eq!(
            g.count_ops(|op| matches!(op, Op::Conv2d { groups, .. } if *groups > 1)),
            16
        );
        assert_eq!(g.count_ops(|op| matches!(op, Op::Softmax)), 17); // 16 attn + ctc
    }

    #[test]
    fn flops_scale() {
        let (_, c) = graph_costs(&conformer(1)).unwrap();
        let gflops = c.flops() as f64 / 1e9;
        assert!((10.0..60.0).contains(&gflops), "{gflops}");
    }

    #[test]
    fn subsampling_reduces_sequence_4x() {
        assert_eq!(SEQ, FRAMES.div_ceil(4));
    }
}
