//! BERT-Large (Devlin et al.): 24 layers, hidden 1024, 16 heads,
//! sequence length 384 (Table III).

use dtu_graph::{BinaryKind, Dim, Graph, NodeId, Op, TensorType};
use dtu_isa::SfuFunc;

const LAYERS: usize = 24;
const HIDDEN: usize = 1024;
const HEADS: usize = 16;
const HEAD_DIM: usize = HIDDEN / HEADS;
const FFN: usize = 4096;
const SEQ: usize = 384;
const VOCAB: usize = 30_522;

fn dense(g: &mut Graph, x: NodeId, units: usize) -> NodeId {
    g.add_node(Op::Dense { units }, vec![x]).expect("dense")
}

fn add(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    g.add_node(
        Op::Binary {
            kind: BinaryKind::Add,
        },
        vec![a, b],
    )
    .expect("add")
}

fn layer_norm(g: &mut Graph, x: NodeId) -> NodeId {
    g.add_node(Op::LayerNorm, vec![x]).expect("ln")
}

/// Projects `[b, seq, hidden]` into per-head layout `[b, heads, seq, d]`
/// (or `[b, heads, d, seq]` when `transposed`).
fn to_heads(g: &mut Graph, x: NodeId, batch: usize, transposed: bool) -> NodeId {
    let split = g
        .add_node(
            Op::Reshape {
                dims: vec![
                    Dim::Fixed(batch),
                    Dim::Fixed(SEQ),
                    Dim::Fixed(HEADS),
                    Dim::Fixed(HEAD_DIM),
                ],
            },
            vec![x],
        )
        .expect("split_heads");
    let perm = if transposed {
        vec![0, 2, 3, 1] // [b, heads, d, seq] — key layout
    } else {
        vec![0, 2, 1, 3] // [b, heads, seq, d]
    };
    g.add_node(Op::Transpose { perm }, vec![split])
        .expect("head_transpose")
}

/// One encoder layer: self-attention + FFN, post-norm residuals.
fn encoder_layer(g: &mut Graph, x: NodeId, batch: usize) -> NodeId {
    // Self-attention.
    let q = dense(g, x, HIDDEN);
    let k = dense(g, x, HIDDEN);
    let v = dense(g, x, HIDDEN);
    let qh = to_heads(g, q, batch, false);
    let kh = to_heads(g, k, batch, true);
    let vh = to_heads(g, v, batch, false);
    let scores = g.add_node(Op::MatMul, vec![qh, kh]).expect("qk");
    let probs = g.add_node(Op::Softmax, vec![scores]).expect("softmax");
    let ctx = g.add_node(Op::MatMul, vec![probs, vh]).expect("av");
    let merged = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 2, 1, 3],
            },
            vec![ctx],
        )
        .expect("merge_transpose");
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![Dim::Fixed(batch), Dim::Fixed(SEQ), Dim::Fixed(HIDDEN)],
            },
            vec![merged],
        )
        .expect("merge");
    let proj = dense(g, flat, HIDDEN);
    let res1 = add(g, proj, x);
    let norm1 = layer_norm(g, res1);
    // Feed-forward.
    let up = dense(g, norm1, FFN);
    let act = g
        .add_node(
            Op::Activation {
                func: SfuFunc::Gelu,
            },
            vec![up],
        )
        .expect("gelu");
    let down = dense(g, act, HIDDEN);
    let res2 = add(g, down, norm1);
    layer_norm(g, res2)
}

/// Builds BERT-Large at sequence length 384.
pub fn bert_large(batch: usize) -> Graph {
    let mut g = Graph::new("Bert large");
    let tokens = g.input("tokens", TensorType::fixed(&[batch, SEQ]));
    let emb = g
        .add_node(
            Op::Embedding {
                vocab: VOCAB,
                width: HIDDEN,
            },
            vec![tokens],
        )
        .expect("embedding");
    // Learned position/segment embeddings enter as a second operand.
    let pos = g.input("positions", TensorType::fixed(&[batch, SEQ, HIDDEN]));
    let summed = add(&mut g, emb, pos);
    let mut x = layer_norm(&mut g, summed);
    for _ in 0..LAYERS {
        x = encoder_layer(&mut g, x, batch);
    }
    g.mark_output(x); // sequence output
                      // Pooler: first-token dense + tanh.
    let pooled = dense(&mut g, x, HIDDEN);
    let tanh = g
        .add_node(
            Op::Activation {
                func: SfuFunc::Tanh,
            },
            vec![pooled],
        )
        .expect("tanh");
    g.mark_output(tanh);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::graph_costs;

    #[test]
    fn bert_shapes() {
        let g = bert_large(1);
        let shapes = g.infer_shapes().unwrap();
        let seq_out = &shapes[&g.outputs()[0]];
        assert_eq!(
            seq_out.dims,
            vec![Dim::Fixed(1), Dim::Fixed(SEQ), Dim::Fixed(HIDDEN)]
        );
    }

    #[test]
    fn bert_layer_count() {
        let g = bert_large(1);
        // 24 layers x 2 LN + embedding LN = 49 LayerNorms.
        assert_eq!(g.count_ops(|op| matches!(op, Op::LayerNorm)), 49);
        // 24 x 6 dense + pooler = 145.
        assert_eq!(g.count_ops(|op| matches!(op, Op::Dense { .. })), 145);
        assert_eq!(g.count_ops(|op| matches!(op, Op::Softmax)), 24);
    }

    #[test]
    fn bert_macs_near_published() {
        let (_, c) = graph_costs(&bert_large(1)).unwrap();
        let gmacs = c.macs as f64 / 1e9;
        // ~(4 + 0.3 + 6.4)·SEQ-scaled per layer ≈ 120 GMACs total.
        assert!((90.0..160.0).contains(&gmacs), "{gmacs} GMACs");
    }

    #[test]
    fn attention_shapes_square_in_seq() {
        let g = bert_large(1);
        let shapes = g.infer_shapes().unwrap();
        let score_shapes: Vec<_> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Softmax))
            .map(|n| shapes[&n.id].dims.clone())
            .collect();
        assert_eq!(score_shapes.len(), 24);
        for dims in score_shapes {
            assert_eq!(
                dims,
                vec![
                    Dim::Fixed(1),
                    Dim::Fixed(HEADS),
                    Dim::Fixed(SEQ),
                    Dim::Fixed(SEQ)
                ]
            );
        }
    }
}
