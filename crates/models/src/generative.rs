//! Decoder-only generative transformer with an explicit prefill/decode
//! split.
//!
//! Autoregressive generation has two phases with very different cost
//! profiles, and this module emits a separate graph family for each:
//!
//! * **Prefill** ([`prefill_graph`]) processes the whole prompt in one
//!   pass — full-sequence GEMMs, square `[seq, seq]` attention, exactly
//!   the compute-bound shape of the single-shot BERT builder. Its side
//!   effect (not represented as graph outputs) is the populated
//!   KV-cache; the first output token falls out of its last position.
//! * **Decode** ([`decode_graph`]) advances every sequence by one
//!   token: the new token's `[batch, 1, d_model]` activations attend
//!   against an **explicit KV-cache tensor** per layer
//!   (`kv_k_<l>` / `kv_v_<l>` graph inputs of shape
//!   `[batch, heads, head_dim, context]` and
//!   `[batch, heads, context, head_dim]`), so every matmul is
//!   GEMV-shaped (`seq = 1`) and the arithmetic intensity collapses —
//!   the bandwidth-bound regime the paged KV allocator in `dtu-serve`
//!   charges against the three-level memory model. The token's own
//!   K/V projections are marked as graph outputs (the cache append).
//!
//! The default [`GenerativeConfig::gpt_1b`] is a ~1B-parameter-class
//! configuration (16 layers, d_model 2048, 16 heads, FFN 8192);
//! [`GenerativeConfig::tiny`] is a 2-layer miniature for tests and CI
//! smoke runs.

use dtu_graph::{BinaryKind, Dim, Graph, NodeId, Op, TensorType};
use dtu_isa::SfuFunc;

/// Architecture of a decoder-only generative transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenerativeConfig {
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads per layer (`d_model % heads == 0`).
    pub heads: usize,
    /// Model (hidden) width.
    pub d_model: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Vocabulary size (embedding + logits width).
    pub vocab: usize,
    /// Maximum total sequence length (prompt + generated) the KV-cache
    /// is sized for.
    pub max_seq: usize,
}

/// KV-cache element size, bytes (fp16 activations).
const KV_ELEM_BYTES: u64 = 2;

impl GenerativeConfig {
    /// ~1B-parameter-class configuration (16 × d2048, GPT-2-XL-ish).
    pub fn gpt_1b() -> Self {
        GenerativeConfig {
            layers: 16,
            heads: 16,
            d_model: 2048,
            ffn: 8192,
            vocab: 32_000,
            max_seq: 2048,
        }
    }

    /// Miniature 2-layer configuration for tests and CI smoke runs.
    pub fn tiny() -> Self {
        GenerativeConfig {
            layers: 2,
            heads: 4,
            d_model: 256,
            ffn: 1024,
            vocab: 1_000,
            max_seq: 512,
        }
    }

    /// Width of one attention head.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Approximate parameter count (attention + FFN + tied embedding).
    pub fn params(&self) -> u64 {
        let d = self.d_model as u64;
        let per_layer = 4 * d * d + 2 * d * self.ffn as u64;
        self.layers as u64 * per_layer + self.vocab as u64 * d
    }

    /// Bytes the KV-cache grows by per token per sequence: K and V,
    /// every layer, fp16.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.d_model as u64 * KV_ELEM_BYTES
    }
}

fn dense(g: &mut Graph, x: NodeId, units: usize) -> NodeId {
    g.add_node(Op::Dense { units }, vec![x]).expect("dense")
}

fn add(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    g.add_node(
        Op::Binary {
            kind: BinaryKind::Add,
        },
        vec![a, b],
    )
    .expect("add")
}

fn layer_norm(g: &mut Graph, x: NodeId) -> NodeId {
    g.add_node(Op::LayerNorm, vec![x]).expect("ln")
}

fn gelu(g: &mut Graph, x: NodeId) -> NodeId {
    g.add_node(
        Op::Activation {
            func: SfuFunc::Gelu,
        },
        vec![x],
    )
    .expect("gelu")
}

/// Projects `[b, seq, d_model]` into per-head layout
/// `[b, heads, seq, head_dim]` (or `[b, heads, head_dim, seq]` when
/// `transposed` — the key layout).
fn to_heads(
    g: &mut Graph,
    x: NodeId,
    cfg: &GenerativeConfig,
    batch: usize,
    seq: usize,
    transposed: bool,
) -> NodeId {
    let split = g
        .add_node(
            Op::Reshape {
                dims: vec![
                    Dim::Fixed(batch),
                    Dim::Fixed(seq),
                    Dim::Fixed(cfg.heads),
                    Dim::Fixed(cfg.head_dim()),
                ],
            },
            vec![x],
        )
        .expect("split_heads");
    let perm = if transposed {
        vec![0, 2, 3, 1]
    } else {
        vec![0, 2, 1, 3]
    };
    g.add_node(Op::Transpose { perm }, vec![split])
        .expect("head_transpose")
}

/// Merges `[b, heads, seq, head_dim]` back to `[b, seq, d_model]`.
fn merge_heads(
    g: &mut Graph,
    x: NodeId,
    cfg: &GenerativeConfig,
    batch: usize,
    seq: usize,
) -> NodeId {
    let back = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 2, 1, 3],
            },
            vec![x],
        )
        .expect("merge_transpose");
    g.add_node(
        Op::Reshape {
            dims: vec![Dim::Fixed(batch), Dim::Fixed(seq), Dim::Fixed(cfg.d_model)],
        },
        vec![back],
    )
    .expect("merge")
}

/// Feed-forward block with pre-norm residual.
fn mlp(g: &mut Graph, x: NodeId, cfg: &GenerativeConfig) -> NodeId {
    let normed = layer_norm(g, x);
    let up = dense(g, normed, cfg.ffn);
    let act = gelu(g, up);
    let down = dense(g, act, cfg.d_model);
    add(g, down, x)
}

/// One prefill decoder layer: full-sequence self-attention + MLP,
/// pre-norm residuals. Causality is a masking detail with no cost-model
/// consequence, so the score tensor stays the full `[seq, seq]` square.
fn prefill_layer(
    g: &mut Graph,
    x: NodeId,
    cfg: &GenerativeConfig,
    batch: usize,
    seq: usize,
) -> NodeId {
    let normed = layer_norm(g, x);
    let q = dense(g, normed, cfg.d_model);
    let k = dense(g, normed, cfg.d_model);
    let v = dense(g, normed, cfg.d_model);
    let qh = to_heads(g, q, cfg, batch, seq, false);
    let kh = to_heads(g, k, cfg, batch, seq, true);
    let vh = to_heads(g, v, cfg, batch, seq, false);
    let scores = g.add_node(Op::MatMul, vec![qh, kh]).expect("qk");
    let probs = g.add_node(Op::Softmax, vec![scores]).expect("softmax");
    let ctx = g.add_node(Op::MatMul, vec![probs, vh]).expect("av");
    let merged = merge_heads(g, ctx, cfg, batch, seq);
    let proj = dense(g, merged, cfg.d_model);
    let attn_out = add(g, proj, x);
    mlp(g, attn_out, cfg)
}

/// One decode layer: the single new token attends against the explicit
/// per-layer KV-cache inputs. Every dense/matmul has `seq = 1` — the
/// GEMV shape whose cost is dominated by streaming the `context`-long
/// cache, not by arithmetic.
fn decode_layer(
    g: &mut Graph,
    x: NodeId,
    cfg: &GenerativeConfig,
    layer: usize,
    batch: usize,
    context: usize,
) -> NodeId {
    let normed = layer_norm(g, x);
    let q = dense(g, normed, cfg.d_model);
    // This token's K/V projections: the cache append. They feed nothing
    // inside the step (the matmuls read the cache inputs), so they are
    // marked as outputs to keep their cost in the graph.
    let k_tok = dense(g, normed, cfg.d_model);
    let v_tok = dense(g, normed, cfg.d_model);
    g.mark_output(k_tok);
    g.mark_output(v_tok);
    let qh = to_heads(g, q, cfg, batch, 1, false);
    // Explicit KV-cache tensors, one pair per layer.
    let k_cache = g.input(
        format!("kv_k_{layer}"),
        TensorType::fixed(&[batch, cfg.heads, cfg.head_dim(), context]),
    );
    let v_cache = g.input(
        format!("kv_v_{layer}"),
        TensorType::fixed(&[batch, cfg.heads, context, cfg.head_dim()]),
    );
    // [b, h, 1, d] x [b, h, d, ctx] -> [b, h, 1, ctx]: a GEMV per head.
    let scores = g.add_node(Op::MatMul, vec![qh, k_cache]).expect("qk");
    let probs = g.add_node(Op::Softmax, vec![scores]).expect("softmax");
    // [b, h, 1, ctx] x [b, h, ctx, d] -> [b, h, 1, d].
    let ctx_out = g.add_node(Op::MatMul, vec![probs, v_cache]).expect("av");
    let merged = merge_heads(g, ctx_out, cfg, batch, 1);
    let proj = dense(g, merged, cfg.d_model);
    let attn_out = add(g, proj, x);
    mlp(g, attn_out, cfg)
}

/// Builds the prefill graph: the whole `prompt`-token prompt in one
/// full-sequence pass at `batch` sequences.
pub fn prefill_graph(cfg: &GenerativeConfig, batch: usize, prompt: usize) -> Graph {
    let mut g = Graph::new(format!("gen-prefill-{prompt}"));
    let tokens = g.input("tokens", TensorType::fixed(&[batch, prompt]));
    let emb = g
        .add_node(
            Op::Embedding {
                vocab: cfg.vocab,
                width: cfg.d_model,
            },
            vec![tokens],
        )
        .expect("embedding");
    let pos = g.input(
        "positions",
        TensorType::fixed(&[batch, prompt, cfg.d_model]),
    );
    let mut x = add(&mut g, emb, pos);
    for _ in 0..cfg.layers {
        x = prefill_layer(&mut g, x, cfg, batch, prompt);
    }
    let final_norm = layer_norm(&mut g, x);
    g.mark_output(final_norm);
    g
}

/// Builds the per-token decode graph: one new token per sequence
/// attending against a `context`-token KV-cache.
pub fn decode_graph(cfg: &GenerativeConfig, batch: usize, context: usize) -> Graph {
    let mut g = Graph::new(format!("gen-decode-{context}"));
    let tokens = g.input("tokens", TensorType::fixed(&[batch, 1]));
    let emb = g
        .add_node(
            Op::Embedding {
                vocab: cfg.vocab,
                width: cfg.d_model,
            },
            vec![tokens],
        )
        .expect("embedding");
    let pos = g.input("positions", TensorType::fixed(&[batch, 1, cfg.d_model]));
    let mut x = add(&mut g, emb, pos);
    for layer in 0..cfg.layers {
        x = decode_layer(&mut g, x, cfg, layer, batch, context);
    }
    let final_norm = layer_norm(&mut g, x);
    // Next-token logits: the [1, d_model] x [d_model, vocab] GEMV.
    let logits = dense(&mut g, final_norm, cfg.vocab);
    g.mark_output(logits);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::graph_costs;

    #[test]
    fn gpt_1b_is_a_1b_class_model() {
        let p = GenerativeConfig::gpt_1b().params();
        assert!(
            (0.7e9..1.5e9).contains(&(p as f64)),
            "{p} params not ~1B-class"
        );
    }

    #[test]
    fn kv_bytes_per_token_matches_hand_math() {
        let cfg = GenerativeConfig::gpt_1b();
        // 2 tensors x 16 layers x 2048 width x 2 bytes = 128 KiB.
        assert_eq!(cfg.kv_bytes_per_token(), 128 * 1024);
        assert_eq!(
            GenerativeConfig::tiny().kv_bytes_per_token(),
            2 * 2 * 256 * 2
        );
    }

    #[test]
    fn prefill_shapes_infer() {
        let cfg = GenerativeConfig::tiny();
        let g = prefill_graph(&cfg, 2, 64);
        let shapes = g.infer_shapes().unwrap();
        let out = &shapes[&g.outputs()[0]];
        assert_eq!(
            out.dims,
            vec![Dim::Fixed(2), Dim::Fixed(64), Dim::Fixed(cfg.d_model)]
        );
    }

    #[test]
    fn decode_shapes_are_gemv() {
        let cfg = GenerativeConfig::tiny();
        let g = decode_graph(&cfg, 4, 128);
        let shapes = g.infer_shapes().unwrap();
        // Attention scores are [b, heads, 1, context] — a row vector,
        // not the prefill's [seq, seq] square.
        for n in g.nodes().iter().filter(|n| matches!(n.op, Op::Softmax)) {
            assert_eq!(
                shapes[&n.id].dims,
                vec![
                    Dim::Fixed(4),
                    Dim::Fixed(cfg.heads),
                    Dim::Fixed(1),
                    Dim::Fixed(128)
                ]
            );
        }
        // Logits close the graph.
        let logits = &shapes[g.outputs().last().unwrap()];
        assert_eq!(
            logits.dims,
            vec![Dim::Fixed(4), Dim::Fixed(1), Dim::Fixed(cfg.vocab)]
        );
    }

    #[test]
    fn decode_has_explicit_kv_inputs_per_layer() {
        let cfg = GenerativeConfig::tiny();
        let g = decode_graph(&cfg, 1, 32);
        let inputs = g.count_ops(|op| matches!(op, Op::Input { .. }));
        // tokens + positions + 2 KV tensors per layer.
        assert_eq!(inputs, 2 + 2 * cfg.layers);
    }

    #[test]
    fn decode_marks_cache_appends_as_outputs() {
        let cfg = GenerativeConfig::tiny();
        let g = decode_graph(&cfg, 1, 32);
        // 2 K/V appends per layer + logits.
        assert_eq!(g.outputs().len(), 2 * cfg.layers + 1);
    }

    #[test]
    fn decode_macs_scale_much_slower_than_prefill() {
        // The whole point of the split: prefill cost grows ~linearly in
        // prompt tokens; a decode step's MACs barely move with context
        // (the context-dependent term is the GEMV against the cache).
        let cfg = GenerativeConfig::tiny();
        let (_, pre) = graph_costs(&prefill_graph(&cfg, 1, 256)).unwrap();
        let (_, dec) = graph_costs(&decode_graph(&cfg, 1, 256)).unwrap();
        assert!(
            dec.macs * 16 < pre.macs,
            "decode step {} MACs should be far below prefill {}",
            dec.macs,
            pre.macs
        );
        // Context doubling adds only the cache-GEMV term.
        let (_, dec2) = graph_costs(&decode_graph(&cfg, 1, 512)).unwrap();
        let growth = dec2.macs as f64 / dec.macs as f64;
        assert!(growth < 1.5, "decode MACs grew {growth}x with context");
    }

    #[test]
    fn prefill_macs_scale_linearly_in_batch() {
        let cfg = GenerativeConfig::tiny();
        let (_, c1) = graph_costs(&prefill_graph(&cfg, 1, 128)).unwrap();
        let (_, c4) = graph_costs(&prefill_graph(&cfg, 4, 128)).unwrap();
        let ratio = c4.macs as f64 / c1.macs as f64;
        assert!((ratio - 4.0).abs() < 0.2, "batch-4 MAC ratio {ratio}");
    }
}
