//! The eight computer-vision benchmarks of Table III.
//!
//! Rectangular (1x7 / 7x1) Inception kernels and the SRResNet pixel
//! shuffle are expressed through square-kernel / reshape equivalents with
//! matched channel widths, keeping MAC counts within a few percent of
//! the reference implementations.

use dtu_graph::{BinaryKind, Dim, Graph, NodeId, Op, PoolKind, TensorType};

/// conv → folded BN → ReLU.
fn cbr(g: &mut Graph, x: NodeId, out_c: usize, k: usize, s: usize, p: usize) -> NodeId {
    let c = g
        .add_node(Op::conv2d(out_c, k, s, p), vec![x])
        .expect("conv");
    let b = g.add_node(Op::BatchNorm, vec![c]).expect("bn");
    g.add_node(Op::Relu, vec![b]).expect("relu")
}

/// conv → folded BN → LeakyReLU (the Darknet/YOLO stack).
fn cbl(g: &mut Graph, x: NodeId, out_c: usize, k: usize, s: usize, p: usize) -> NodeId {
    let c = g
        .add_node(Op::conv2d(out_c, k, s, p), vec![x])
        .expect("conv");
    let b = g.add_node(Op::BatchNorm, vec![c]).expect("bn");
    g.add_node(Op::LeakyRelu { alpha: 0.1 }, vec![b])
        .expect("leaky")
}

/// plain conv → ReLU (VGG / UNet style, no BN).
fn cr(g: &mut Graph, x: NodeId, out_c: usize, k: usize, s: usize, p: usize) -> NodeId {
    let c = g
        .add_node(Op::conv2d(out_c, k, s, p), vec![x])
        .expect("conv");
    g.add_node(Op::Relu, vec![c]).expect("relu")
}

fn maxpool(g: &mut Graph, x: NodeId, k: usize, s: usize) -> NodeId {
    g.add_node(
        Op::Pool {
            kind: PoolKind::Max,
            kernel: k,
            stride: s,
        },
        vec![x],
    )
    .expect("pool")
}

fn add(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    g.add_node(
        Op::Binary {
            kind: BinaryKind::Add,
        },
        vec![a, b],
    )
    .expect("add")
}

/// VGG16 at 3x224x224 (Simonyan & Zisserman).
pub fn vgg16(batch: usize) -> Graph {
    let mut g = Graph::new("VGG16");
    let mut x = g.input("image", TensorType::fixed(&[batch, 3, 224, 224]));
    for (reps, ch) in [(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)] {
        for _ in 0..reps {
            x = cr(&mut g, x, ch, 3, 1, 1);
        }
        x = maxpool(&mut g, x, 2, 2);
    }
    // 7x7x512 -> flatten -> fc4096 -> fc4096 -> fc1000 -> softmax.
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![Dim::Fixed(batch), Dim::Fixed(7 * 7 * 512)],
            },
            vec![x],
        )
        .expect("flatten");
    let f1 = g
        .add_node(Op::Dense { units: 4096 }, vec![flat])
        .expect("fc1");
    let r1 = g.add_node(Op::Relu, vec![f1]).expect("relu");
    let f2 = g
        .add_node(Op::Dense { units: 4096 }, vec![r1])
        .expect("fc2");
    let r2 = g.add_node(Op::Relu, vec![f2]).expect("relu");
    let f3 = g
        .add_node(Op::Dense { units: 1000 }, vec![r2])
        .expect("fc3");
    let sm = g.add_node(Op::Softmax, vec![f3]).expect("softmax");
    g.mark_output(sm);
    g
}

/// One ResNet bottleneck block (v1.5: stride lives on the 3x3).
fn bottleneck(g: &mut Graph, x: NodeId, mid: usize, stride: usize, project: bool) -> NodeId {
    let a = cbr(g, x, mid, 1, 1, 0);
    let b = cbr(g, a, mid, 3, stride, 1);
    let c = g
        .add_node(Op::conv2d(mid * 4, 1, 1, 0), vec![b])
        .expect("expand");
    let c = g.add_node(Op::BatchNorm, vec![c]).expect("bn");
    let shortcut = if project || stride != 1 {
        let s = g
            .add_node(Op::conv2d(mid * 4, 1, stride, 0), vec![x])
            .expect("proj");
        g.add_node(Op::BatchNorm, vec![s]).expect("bn")
    } else {
        x
    };
    let sum = add(g, c, shortcut);
    g.add_node(Op::Relu, vec![sum]).expect("relu")
}

/// Builds the ResNet-50 v1.5 trunk, returning (C3, C4, C5) feature maps
/// at strides 8/16/32 (used standalone and as the RetinaFace backbone).
fn resnet50_trunk(g: &mut Graph, image: NodeId) -> (NodeId, NodeId, NodeId) {
    let stem = cbr(g, image, 64, 7, 2, 3);
    let mut x = maxpool(g, stem, 2, 2);
    // Stage 1: 3 blocks, mid 64.
    x = bottleneck(g, x, 64, 1, true);
    for _ in 0..2 {
        x = bottleneck(g, x, 64, 1, false);
    }
    // Stage 2: 4 blocks, mid 128.
    x = bottleneck(g, x, 128, 2, true);
    for _ in 0..3 {
        x = bottleneck(g, x, 128, 1, false);
    }
    let c3 = x;
    // Stage 3: 6 blocks, mid 256.
    x = bottleneck(g, x, 256, 2, true);
    for _ in 0..5 {
        x = bottleneck(g, x, 256, 1, false);
    }
    let c4 = x;
    // Stage 4: 3 blocks, mid 512.
    x = bottleneck(g, x, 512, 2, true);
    for _ in 0..2 {
        x = bottleneck(g, x, 512, 1, false);
    }
    (c3, c4, x)
}

/// ResNet-50 v1.5 at 3x224x224 (He et al.).
pub fn resnet50(batch: usize) -> Graph {
    let mut g = Graph::new("Resnet50 v1.5");
    let image = g.input("image", TensorType::fixed(&[batch, 3, 224, 224]));
    let (_, _, c5) = resnet50_trunk(&mut g, image);
    let pool = g
        .add_node(
            Op::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
            vec![c5],
        )
        .expect("gap");
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![Dim::Fixed(batch), Dim::Fixed(2048)],
            },
            vec![pool],
        )
        .expect("flatten");
    let fc = g
        .add_node(Op::Dense { units: 1000 }, vec![flat])
        .expect("fc");
    let sm = g.add_node(Op::Softmax, vec![fc]).expect("softmax");
    g.mark_output(sm);
    g
}

/// One Inception-A cell at 35x35 (output 384 channels).
fn inception_a(g: &mut Graph, x: NodeId) -> NodeId {
    let b0 = cbr(g, x, 96, 1, 1, 0);
    let b1a = cbr(g, x, 64, 1, 1, 0);
    let b1 = cbr(g, b1a, 96, 3, 1, 1);
    let b2a = cbr(g, x, 64, 1, 1, 0);
    let b2b = cbr(g, b2a, 96, 3, 1, 1);
    let b2 = cbr(g, b2b, 96, 3, 1, 1);
    let b3p = g
        .add_node(
            Op::Pool {
                kind: PoolKind::Avg,
                kernel: 3,
                stride: 1,
            },
            vec![x],
        )
        .expect("pool");
    // 3x3/1 pool shrinks by 2 without padding; pad back to 35x35 via a
    // stride-1 1x1 conv on the unpooled input instead (MAC-equivalent).
    let _ = b3p;
    let b3 = cbr(g, x, 96, 1, 1, 0);
    g.add_node(Op::Concat { axis: 1 }, vec![b0, b1, b2, b3])
        .expect("concat")
}

/// One Inception-B cell at 17x17 (output 1024 channels; square-kernel
/// equivalent of the 1x7/7x1 factorised branches).
fn inception_b(g: &mut Graph, x: NodeId) -> NodeId {
    let b0 = cbr(g, x, 384, 1, 1, 0);
    let b1a = cbr(g, x, 192, 1, 1, 0);
    let b1b = cbr(g, b1a, 224, 3, 1, 1);
    let b1 = cbr(g, b1b, 256, 3, 1, 1);
    let b2a = cbr(g, x, 192, 1, 1, 0);
    let b2b = cbr(g, b2a, 224, 3, 1, 1);
    let b2 = cbr(g, b2b, 256, 3, 1, 1);
    let b3 = cbr(g, x, 128, 1, 1, 0);
    g.add_node(Op::Concat { axis: 1 }, vec![b0, b1, b2, b3])
        .expect("concat")
}

/// One Inception-C cell at 8x8 (output 1536 channels).
fn inception_c(g: &mut Graph, x: NodeId) -> NodeId {
    let b0 = cbr(g, x, 256, 1, 1, 0);
    let b1a = cbr(g, x, 384, 1, 1, 0);
    let b1l = cbr(g, b1a, 256, 3, 1, 1);
    let b1r = cbr(g, b1a, 256, 3, 1, 1);
    let b2a = cbr(g, x, 384, 1, 1, 0);
    let b2b = cbr(g, b2a, 512, 3, 1, 1);
    let b2l = cbr(g, b2b, 256, 3, 1, 1);
    let b2r = cbr(g, b2b, 256, 3, 1, 1);
    let b3 = cbr(g, x, 256, 1, 1, 0);
    g.add_node(Op::Concat { axis: 1 }, vec![b0, b1l, b1r, b2l, b2r, b3])
        .expect("concat")
}

/// Inception v4 at 3x299x299 (Szegedy et al.).
pub fn inception_v4(batch: usize) -> Graph {
    let mut g = Graph::new("Inception v4");
    let image = g.input("image", TensorType::fixed(&[batch, 3, 299, 299]));
    // Stem: 299 -> 35x35x384.
    let s1 = cbr(&mut g, image, 32, 3, 2, 0); // 149
    let s2 = cbr(&mut g, s1, 32, 3, 1, 0); // 147
    let s3 = cbr(&mut g, s2, 64, 3, 1, 1); // 147
    let p1 = maxpool(&mut g, s3, 3, 2); // 73
    let s4 = cbr(&mut g, p1, 96, 1, 1, 0);
    let s5 = cbr(&mut g, s4, 192, 3, 1, 0); // 71
    let s6 = cbr(&mut g, s5, 384, 3, 2, 0); // 35
    let mut x = s6;
    for _ in 0..4 {
        x = inception_a(&mut g, x);
    }
    // Reduction A: 35 -> 17, 1024 channels.
    let ra0 = cbr(&mut g, x, 384, 3, 2, 0);
    let ra1a = cbr(&mut g, x, 192, 1, 1, 0);
    let ra1b = cbr(&mut g, ra1a, 224, 3, 1, 1);
    let ra1 = cbr(&mut g, ra1b, 256, 3, 2, 0);
    let rap = maxpool(&mut g, x, 3, 2);
    x = g
        .add_node(Op::Concat { axis: 1 }, vec![ra0, ra1, rap])
        .expect("concat");
    for _ in 0..7 {
        x = inception_b(&mut g, x);
    }
    // Reduction B: 17 -> 8, 1536 channels.
    let rb0a = cbr(&mut g, x, 192, 1, 1, 0);
    let rb0 = cbr(&mut g, rb0a, 192, 3, 2, 0);
    let rb1a = cbr(&mut g, x, 256, 1, 1, 0);
    let rb1b = cbr(&mut g, rb1a, 320, 3, 1, 1);
    let rb1 = cbr(&mut g, rb1b, 320, 3, 2, 0);
    let rbp = maxpool(&mut g, x, 3, 2);
    x = g
        .add_node(Op::Concat { axis: 1 }, vec![rb0, rb1, rbp])
        .expect("concat");
    for _ in 0..3 {
        x = inception_c(&mut g, x);
    }
    let pool = g
        .add_node(
            Op::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
            vec![x],
        )
        .expect("gap");
    let flat = g
        .add_node(
            Op::Reshape {
                dims: vec![Dim::Fixed(batch), Dim::Fixed(1536)],
            },
            vec![pool],
        )
        .expect("flatten");
    let fc = g
        .add_node(Op::Dense { units: 1000 }, vec![flat])
        .expect("fc");
    let sm = g.add_node(Op::Softmax, vec![fc]).expect("softmax");
    g.mark_output(sm);
    g
}

/// One Darknet residual unit: 1x1 halve, 3x3 restore, add.
fn darknet_residual(g: &mut Graph, x: NodeId, channels: usize) -> NodeId {
    let a = cbl(g, x, channels / 2, 1, 1, 0);
    let b = cbl(g, a, channels, 3, 1, 1);
    add(g, b, x)
}

/// YOLOv3 at 3x608x608 (Redmon & Farhadi): Darknet-53 plus the
/// three-scale detection head.
pub fn yolo_v3(batch: usize) -> Graph {
    let mut g = Graph::new("Yolo v3");
    let image = g.input("image", TensorType::fixed(&[batch, 3, 608, 608]));
    let mut x = cbl(&mut g, image, 32, 3, 1, 1);
    let mut routes: Vec<NodeId> = Vec::new();
    for (blocks, channels) in [(1usize, 64usize), (2, 128), (8, 256), (8, 512), (4, 1024)] {
        x = cbl(&mut g, x, channels, 3, 2, 1); // downsample
        for _ in 0..blocks {
            x = darknet_residual(&mut g, x, channels);
        }
        if channels == 256 || channels == 512 {
            routes.push(x); // 76x76x256 and 38x38x512
        }
    }
    // Detection head: conv-set then predict at each of three scales.
    let conv_set = |g: &mut Graph, x: NodeId, ch: usize| {
        let a = cbl(g, x, ch, 1, 1, 0);
        let b = cbl(g, a, ch * 2, 3, 1, 1);
        let c = cbl(g, b, ch, 1, 1, 0);
        let d = cbl(g, c, ch * 2, 3, 1, 1);
        cbl(g, d, ch, 1, 1, 0)
    };
    let s1 = conv_set(&mut g, x, 512);
    let p1a = cbl(&mut g, s1, 1024, 3, 1, 1);
    let p1 = g
        .add_node(Op::conv2d(255, 1, 1, 0), vec![p1a])
        .expect("det1");
    g.mark_output(p1);

    let u1a = cbl(&mut g, s1, 256, 1, 1, 0);
    let u1 = g
        .add_node(Op::Upsample { scale: 2 }, vec![u1a])
        .expect("up");
    let cat1 = g
        .add_node(Op::Concat { axis: 1 }, vec![u1, routes[1]])
        .expect("concat");
    let s2 = conv_set(&mut g, cat1, 256);
    let p2a = cbl(&mut g, s2, 512, 3, 1, 1);
    let p2 = g
        .add_node(Op::conv2d(255, 1, 1, 0), vec![p2a])
        .expect("det2");
    g.mark_output(p2);

    let u2a = cbl(&mut g, s2, 128, 1, 1, 0);
    let u2 = g
        .add_node(Op::Upsample { scale: 2 }, vec![u2a])
        .expect("up");
    let cat2 = g
        .add_node(Op::Concat { axis: 1 }, vec![u2, routes[0]])
        .expect("concat");
    let s3 = conv_set(&mut g, cat2, 128);
    let p3a = cbl(&mut g, s3, 256, 3, 1, 1);
    let p3 = g
        .add_node(Op::conv2d(255, 1, 1, 0), vec![p3a])
        .expect("det3");
    g.mark_output(p3);
    g
}

/// One ResNet-18 basic block.
fn basic_block(g: &mut Graph, x: NodeId, channels: usize, stride: usize) -> NodeId {
    let a = cbr(g, x, channels, 3, stride, 1);
    let b = g
        .add_node(Op::conv2d(channels, 3, 1, 1), vec![a])
        .expect("conv");
    let b = g.add_node(Op::BatchNorm, vec![b]).expect("bn");
    let shortcut = if stride != 1 {
        let s = g
            .add_node(Op::conv2d(channels, 1, stride, 0), vec![x])
            .expect("proj");
        g.add_node(Op::BatchNorm, vec![s]).expect("bn")
    } else {
        x
    };
    let sum = add(g, b, shortcut);
    g.add_node(Op::Relu, vec![sum]).expect("relu")
}

/// CenterNet (ResNet-18 + three deconv stages + keypoint heads) at
/// 3x512x512 (Duan et al. / Zhou et al. reference code).
pub fn centernet(batch: usize) -> Graph {
    let mut g = Graph::new("CenterNet");
    let image = g.input("image", TensorType::fixed(&[batch, 3, 512, 512]));
    let stem = cbr(&mut g, image, 64, 7, 2, 3);
    let mut x = maxpool(&mut g, stem, 2, 2);
    for (channels, stride) in [(64usize, 1usize), (128, 2), (256, 2), (512, 2)] {
        x = basic_block(&mut g, x, channels, stride);
        x = basic_block(&mut g, x, channels, 1);
    }
    // Three deconv stages: 16x16x512 -> 128x128x64.
    for ch in [256usize, 128, 64] {
        let d = g
            .add_node(
                Op::ConvTranspose2d {
                    out_channels: ch,
                    kernel: 2,
                    stride: 2,
                },
                vec![x],
            )
            .expect("deconv");
        let b = g.add_node(Op::BatchNorm, vec![d]).expect("bn");
        x = g.add_node(Op::Relu, vec![b]).expect("relu");
    }
    // Heads: heatmaps (80 classes), size (2), offset (2).
    for out_ch in [80usize, 2, 2] {
        let h = cr(&mut g, x, 64, 3, 1, 1);
        let o = g
            .add_node(Op::conv2d(out_ch, 1, 1, 0), vec![h])
            .expect("head");
        g.mark_output(o);
    }
    g
}

/// The SSH context module of RetinaFace: 3x3, 5x5 (two 3x3), and 7x7
/// (three 3x3) branches concatenated to 256 channels.
fn ssh(g: &mut Graph, x: NodeId) -> NodeId {
    let b3 = g.add_node(Op::conv2d(128, 3, 1, 1), vec![x]).expect("ssh3");
    let c5a = cbr(g, x, 64, 3, 1, 1);
    let b5 = g
        .add_node(Op::conv2d(64, 3, 1, 1), vec![c5a])
        .expect("ssh5");
    let c7a = cbr(g, c5a, 64, 3, 1, 1);
    let b7 = g
        .add_node(Op::conv2d(64, 3, 1, 1), vec![c7a])
        .expect("ssh7");
    let cat = g
        .add_node(Op::Concat { axis: 1 }, vec![b3, b5, b7])
        .expect("concat");
    g.add_node(Op::Relu, vec![cat]).expect("relu")
}

/// RetinaFace (ResNet-50 + FPN + SSH + multi-task heads) at 3x640x640
/// (Deng et al.).
pub fn retinaface(batch: usize) -> Graph {
    let mut g = Graph::new("Retinaface");
    let image = g.input("image", TensorType::fixed(&[batch, 3, 640, 640]));
    let (c3, c4, c5) = resnet50_trunk(&mut g, image);
    // FPN: lateral 1x1 to 256, top-down upsample+add, 3x3 smooth.
    let l5 = cbr(&mut g, c5, 256, 1, 1, 0);
    let l4 = cbr(&mut g, c4, 256, 1, 1, 0);
    let l3 = cbr(&mut g, c3, 256, 1, 1, 0);
    let u5 = g.add_node(Op::Upsample { scale: 2 }, vec![l5]).expect("up");
    let p4 = add(&mut g, l4, u5);
    let p4 = cbr(&mut g, p4, 256, 3, 1, 1);
    let u4 = g.add_node(Op::Upsample { scale: 2 }, vec![p4]).expect("up");
    let p3 = add(&mut g, l3, u4);
    let p3 = cbr(&mut g, p3, 256, 3, 1, 1);
    // SSH context + heads per level: class (2 anchors x 2), bbox (2x4),
    // landmarks (2x10).
    for level in [p3, p4, l5] {
        let feat = ssh(&mut g, level);
        for out_ch in [4usize, 8, 20] {
            let h = g
                .add_node(Op::conv2d(out_ch, 1, 1, 0), vec![feat])
                .expect("head");
            g.mark_output(h);
        }
    }
    g
}

/// UNet at 3x512x512 (Ronneberger et al., "same"-padded variant).
pub fn unet(batch: usize) -> Graph {
    let mut g = Graph::new("Unet");
    let image = g.input("image", TensorType::fixed(&[batch, 3, 512, 512]));
    let mut skips: Vec<NodeId> = Vec::new();
    let mut x = image;
    // Encoder: 64, 128, 256, 512.
    for ch in [64usize, 128, 256, 512] {
        x = cr(&mut g, x, ch, 3, 1, 1);
        x = cr(&mut g, x, ch, 3, 1, 1);
        skips.push(x);
        x = maxpool(&mut g, x, 2, 2);
    }
    // Bottleneck: 1024.
    x = cr(&mut g, x, 1024, 3, 1, 1);
    x = cr(&mut g, x, 1024, 3, 1, 1);
    // Decoder.
    for (ch, skip) in [(512usize, 3usize), (256, 2), (128, 1), (64, 0)] {
        let up = g
            .add_node(
                Op::ConvTranspose2d {
                    out_channels: ch,
                    kernel: 2,
                    stride: 2,
                },
                vec![x],
            )
            .expect("deconv");
        let cat = g
            .add_node(Op::Concat { axis: 1 }, vec![up, skips[skip]])
            .expect("concat");
        x = cr(&mut g, cat, ch, 3, 1, 1);
        x = cr(&mut g, x, ch, 3, 1, 1);
    }
    let out = g.add_node(Op::conv2d(2, 1, 1, 0), vec![x]).expect("final");
    g.mark_output(out);
    g
}

/// One SRResNet residual block: conv-BN-PReLU-conv-BN + add.
fn sr_block(g: &mut Graph, x: NodeId) -> NodeId {
    let a = g.add_node(Op::conv2d(64, 3, 1, 1), vec![x]).expect("conv");
    let a = g.add_node(Op::BatchNorm, vec![a]).expect("bn");
    let a = g
        .add_node(Op::LeakyRelu { alpha: 0.2 }, vec![a])
        .expect("prelu");
    let b = g.add_node(Op::conv2d(64, 3, 1, 1), vec![a]).expect("conv");
    let b = g.add_node(Op::BatchNorm, vec![b]).expect("bn");
    add(g, b, x)
}

/// SRResNet 4x super-resolution at 224x224x3 (Ledig et al.). The input
/// arrives NHWC (Table III lists `224x224x3`) and is transposed to NCHW
/// by the DMA engine before the first convolution; the two 2x upsamplers
/// use conv-to-256-channels followed by a pixel-shuffle reshape.
pub fn srresnet(batch: usize) -> Graph {
    let mut g = Graph::new("SRResnet");
    let image = g.input("image", TensorType::fixed(&[batch, 224, 224, 3]));
    let nchw = g
        .add_node(
            Op::Transpose {
                perm: vec![0, 3, 1, 2],
            },
            vec![image],
        )
        .expect("to_nchw");
    let head = g
        .add_node(Op::conv2d(64, 9, 1, 4), vec![nchw])
        .expect("conv9");
    let head = g
        .add_node(Op::LeakyRelu { alpha: 0.2 }, vec![head])
        .expect("prelu");
    let mut x = head;
    for _ in 0..16 {
        x = sr_block(&mut g, x);
    }
    let tail = g.add_node(Op::conv2d(64, 3, 1, 1), vec![x]).expect("conv");
    let tail = g.add_node(Op::BatchNorm, vec![tail]).expect("bn");
    let mut x = add(&mut g, tail, head);
    // Two pixel-shuffle 2x upsamplers: conv to 256ch then reshape
    // [N,256,H,W] -> [N,64,2H,2W] (element-count preserving).
    let mut h = 224usize;
    for _ in 0..2 {
        let c = g.add_node(Op::conv2d(256, 3, 1, 1), vec![x]).expect("conv");
        let c = g
            .add_node(Op::LeakyRelu { alpha: 0.2 }, vec![c])
            .expect("prelu");
        let shuffled = g
            .add_node(
                Op::Reshape {
                    dims: vec![
                        Dim::Fixed(batch),
                        Dim::Fixed(64),
                        Dim::Fixed(h * 2),
                        Dim::Fixed(h * 2),
                    ],
                },
                vec![c],
            )
            .expect("pixelshuffle");
        x = shuffled;
        h *= 2;
    }
    let out = g.add_node(Op::conv2d(3, 9, 1, 4), vec![x]).expect("conv9");
    g.mark_output(out);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::graph_costs;

    #[test]
    fn vgg16_shapes() {
        let g = vgg16(1);
        let shapes = g.infer_shapes().unwrap();
        let out = &shapes[g.outputs().last().unwrap()];
        assert_eq!(out.len(), Some(1000));
        // 13 convs + 3 FCs.
        assert_eq!(g.count_ops(|op| matches!(op, Op::Conv2d { .. })), 13);
        assert_eq!(g.count_ops(|op| matches!(op, Op::Dense { .. })), 3);
    }

    #[test]
    fn vgg16_flops_about_31g() {
        let (_, c) = graph_costs(&vgg16(1)).unwrap();
        let gflops = c.flops() as f64 / 1e9;
        assert!((25.0..40.0).contains(&gflops), "{gflops}");
    }

    #[test]
    fn resnet50_structure() {
        let g = resnet50(1);
        // 3+4+6+3 = 16 bottlenecks x 3 convs + 4 projections + stem = 53.
        assert_eq!(g.count_ops(|op| matches!(op, Op::Conv2d { .. })), 53);
        let (_, c) = graph_costs(&g).unwrap();
        let gflops = c.flops() as f64 / 1e9;
        assert!((6.0..12.0).contains(&gflops), "{gflops}");
    }

    #[test]
    fn yolo_has_three_scales() {
        let g = yolo_v3(1);
        assert_eq!(g.outputs().len(), 3);
        let shapes = g.infer_shapes().unwrap();
        let spatial: Vec<usize> = g
            .outputs()
            .iter()
            .map(|o| shapes[o].dims[2].value().unwrap())
            .collect();
        assert_eq!(spatial, vec![19, 38, 76]);
        for o in g.outputs() {
            assert_eq!(shapes[o].dims[1].value(), Some(255));
        }
    }

    #[test]
    fn centernet_head_resolution() {
        let g = centernet(1);
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(g.outputs().len(), 3);
        let hm = &shapes[&g.outputs()[0]];
        assert_eq!(hm.dims[1].value(), Some(80));
        assert_eq!(hm.dims[2].value(), Some(128)); // 512 / 4
    }

    #[test]
    fn retinaface_heads_per_level() {
        let g = retinaface(1);
        assert_eq!(g.outputs().len(), 9); // 3 levels x 3 tasks
        let shapes = g.infer_shapes().unwrap();
        // P3 head at stride 8: 80x80.
        assert_eq!(shapes[&g.outputs()[0]].dims[2].value(), Some(80));
    }

    #[test]
    fn unet_output_matches_input_resolution() {
        let g = unet(1);
        let shapes = g.infer_shapes().unwrap();
        let out = &shapes[&g.outputs()[0]];
        assert_eq!(out.dims[2].value(), Some(512));
        assert_eq!(out.dims[1].value(), Some(2));
    }

    #[test]
    fn srresnet_outputs_4x_upscale() {
        let g = srresnet(1);
        let shapes = g.infer_shapes().unwrap();
        let out = &shapes[&g.outputs()[0]];
        assert_eq!(out.dims[1].value(), Some(3));
        assert_eq!(out.dims[2].value(), Some(896)); // 224 x 4
    }

    #[test]
    fn inception_channel_arithmetic() {
        let g = inception_v4(1);
        let shapes = g.infer_shapes().unwrap();
        // All concats produce the canonical stage widths.
        let widths: Vec<usize> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Concat { .. }))
            .map(|n| shapes[&n.id].dims[1].value().unwrap())
            .collect();
        assert!(widths.contains(&384));
        assert!(widths.contains(&1024));
        assert!(widths.contains(&1536));
    }
}
