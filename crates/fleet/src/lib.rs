//! dtu-fleet: cluster-scale serving over N×M simulated DTUs.
//!
//! One Cloudblazer card carries several DTU chips and one rack carries
//! several cards; cloud inference at the scale the paper targets is a
//! *fleet* problem, not a chip problem. This crate layers a
//! deterministic cluster simulation above [`dtu_serve`]:
//!
//! - [`FleetTopology`] — N chips × M cards, homogeneous or mixed
//!   ([`ChipConfig`](dtu_sim::ChipConfig) per chip), each chip an
//!   independent serving engine.
//! - [`place`] — the fleet scheduler: replicas spread for throughput,
//!   placed by content-hashed *artifact fingerprint* for compile
//!   locality, so identical artifacts compile once in the shared
//!   [`SessionCache`](dtu_harness::SessionCache) and are reused
//!   fleet-wide.
//! - [`route_epoch`] — cross-chip routing: power-of-two-choices over
//!   projected load and EWMA queueing delay, deterministic
//!   tie-breaking.
//! - [`RollPlan`] — rolling deploys: drain, swap, re-admit, with
//!   per-tenant availability accounted while the roll is in flight.
//! - [`run_fleet`] — the engine: per-chip epoch simulations executed
//!   on the harness's parallel [`ExperimentPlan`](dtu_harness::ExperimentPlan)
//!   pool with routing epochs as sync points, merged into a
//!   [`FleetReport`] whose JSON is byte-identical across worker
//!   counts.
//!
//! Chip loss is a first-class event: a [`ChipKill`] takes a whole chip
//! down mid-run (via `dtu-faults` core failures), the scheduler
//! re-places its replicas on survivors, and the
//! `offered == completed + shed + fault_dropped` invariant is enforced
//! fleet-wide, per tenant, and per chip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deploy;
mod engine;
mod monitor;
mod report;
mod route;
mod schedule;
mod topology;

pub use deploy::{RollPlan, RollState};
pub use engine::{
    calibrate_fleet, run_fleet, run_fleet_monitored, run_fleet_monitored_with_timing,
    run_fleet_with_timing, ChipKill, FleetConfig,
};
pub use monitor::{
    FleetAlert, FleetChipRow, FleetFrame, FleetMonitor, FleetTenantRow, OffenderShare,
};
pub use report::{FleetChipReport, FleetReport, FleetTenantReport};
pub use route::{
    route_epoch, trace_base, trace_chip, trace_epoch, EpochRoutes, RouteCell, RouterState,
};
pub use schedule::{artifact_key, place, replace_after_loss, FleetPlacement, FleetTenant};
pub use topology::{FleetChip, FleetTopology};

/// Shared graph builders for the crate's unit tests: one toy conv
/// model, parameterised by channel count so two tenants can carry
/// distinct artifact fingerprints.
#[cfg(test)]
pub(crate) mod testutil {
    use dtu_graph::{Graph, Op, TensorType};
    use dtu_harness::SweepModel;

    /// A tiny conv tenant; `channels` differentiates graph
    /// fingerprints between named tenants.
    pub(crate) fn toy_model_with(name: &str, channels: usize) -> SweepModel<'static> {
        SweepModel::new(name.to_string(), move |batch| {
            let mut g = Graph::new("toy");
            let x = g.input("x", TensorType::fixed(&[batch, channels, 16, 16]));
            let c = g
                .add_node(Op::conv2d(16, 3, 1, 1), vec![x])
                .expect("conv2d on a fresh input graph always wires");
            g.mark_output(c);
            g
        })
    }

    /// The default single-tenant toy model.
    pub(crate) fn toy_model() -> SweepModel<'static> {
        toy_model_with("toy", 16)
    }
}

use dtu_harness::HarnessError;

/// Errors a fleet simulation can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The topology, tenants, or run configuration are unusable.
    Config(String),
    /// The no-leaks accounting invariant broke (a bug, never
    /// expected).
    Accounting(String),
    /// A per-chip simulation failed on the harness pool.
    Harness(HarnessError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "fleet config error: {msg}"),
            FleetError::Accounting(msg) => write!(f, "fleet accounting violation: {msg}"),
            FleetError::Harness(e) => write!(f, "fleet chip simulation failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Harness(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HarnessError> for FleetError {
    fn from(e: HarnessError) -> Self {
        FleetError::Harness(e)
    }
}
