//! Rolling deploys: drain a chip for one epoch, swap the model-version
//! label, re-admit.
//!
//! The roll walks the fleet in chip order, taking up to
//! [`RollPlan::chips_per_epoch`] chips out of the routing table per
//! epoch. A draining chip serves no new epoch traffic (its in-flight
//! work from the previous epoch has already drained — epochs are the
//! engine's sync points), then re-enters the next epoch labelled with
//! the new version. Because versions are *labels* over the same model
//! graph, the swap costs no recompilation — the content-addressed
//! session cache recognises the artifact — which models a config/label
//! rollout; a rollout that changes the graph would simply miss the
//! cache and compile on first dispatch.
//!
//! Availability during the roll is accounted by the engine: epochs in
//! which any chip drains are tagged, and per-tenant
//! `completed / offered` over those epochs is reported as
//! `roll_availability`.

/// A rolling-deploy schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RollPlan {
    /// Simulated time the roll begins, ms.
    pub start_ms: f64,
    /// Chips drained per epoch (at least 1).
    pub chips_per_epoch: usize,
    /// Version label chips start with.
    pub from_version: String,
    /// Version label rolled chips carry.
    pub to_version: String,
}

impl RollPlan {
    /// A roll starting at `start_ms`, draining `chips_per_epoch` chips
    /// per epoch, labelled `v1` → `v2`.
    pub fn new(start_ms: f64, chips_per_epoch: usize) -> Self {
        RollPlan {
            start_ms,
            chips_per_epoch: chips_per_epoch.max(1),
            from_version: "v1".to_string(),
            to_version: "v2".to_string(),
        }
    }
}

/// Mutable per-run state of a roll.
#[derive(Debug, Clone, PartialEq)]
pub struct RollState {
    /// Per-chip version label.
    pub version: Vec<String>,
    /// Chips draining (out of the routing table) this epoch.
    pub draining: Vec<bool>,
    /// Chips that have completed the swap.
    pub rolled: Vec<bool>,
}

impl RollState {
    /// Fresh state: every chip on `plan.from_version`, nothing
    /// draining.
    pub fn new(chips: usize, plan: &RollPlan) -> Self {
        RollState {
            version: vec![plan.from_version.clone(); chips],
            draining: vec![false; chips],
            rolled: vec![false; chips],
        }
    }

    /// Advances the roll at the start of an epoch beginning at
    /// `epoch_start_ms`: chips that drained last epoch swap to the new
    /// version and re-admit, then (if the roll has started) the next
    /// un-rolled alive chips begin draining. Dead chips are skipped —
    /// they cannot drain and never swap. Returns whether any chip
    /// drains this epoch.
    pub fn begin_epoch(&mut self, plan: &RollPlan, epoch_start_ms: f64, alive: &[bool]) -> bool {
        for chip in 0..self.version.len() {
            if self.draining[chip] {
                self.draining[chip] = false;
                self.rolled[chip] = true;
                self.version[chip] = plan.to_version.clone();
            }
        }
        if epoch_start_ms + 1e-9 < plan.start_ms {
            return false;
        }
        let mut started = 0;
        for (chip, &up) in alive.iter().enumerate() {
            if started == plan.chips_per_epoch {
                break;
            }
            if up && !self.rolled[chip] {
                self.draining[chip] = true;
                started += 1;
            }
        }
        started > 0
    }

    /// Finalises the roll at the end of the run: a chip still draining
    /// when the horizon closes has fully drained (epochs are the
    /// engine's sync points), so it completes its swap.
    pub fn finish(&mut self, plan: &RollPlan) {
        for chip in 0..self.version.len() {
            if self.draining[chip] {
                self.draining[chip] = false;
                self.rolled[chip] = true;
                self.version[chip] = plan.to_version.clone();
            }
        }
    }

    /// Whether every alive chip has swapped.
    pub fn complete(&self, alive: &[bool]) -> bool {
        self.rolled
            .iter()
            .zip(alive)
            .all(|(&rolled, &alive)| rolled || !alive)
    }

    /// Chips that completed the swap.
    pub fn rolled_count(&self) -> usize {
        self.rolled.iter().filter(|&&r| r).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_walks_the_fleet_in_chip_order() {
        let plan = RollPlan::new(1000.0, 2);
        let mut state = RollState::new(4, &plan);
        let alive = vec![true; 4];
        // Before start: nothing drains.
        assert!(!state.begin_epoch(&plan, 0.0, &alive));
        assert_eq!(state.rolled_count(), 0);
        // Epoch at 1000 ms: chips 0 and 1 drain.
        assert!(state.begin_epoch(&plan, 1000.0, &alive));
        assert_eq!(state.draining, vec![true, true, false, false]);
        // Next epoch: 0 and 1 swap, 2 and 3 drain.
        assert!(state.begin_epoch(&plan, 2000.0, &alive));
        assert_eq!(state.version[0], "v2");
        assert_eq!(state.version[2], "v1");
        assert_eq!(state.draining, vec![false, false, true, true]);
        // Final epoch: everything swapped, nothing left to drain.
        assert!(!state.begin_epoch(&plan, 3000.0, &alive));
        assert!(state.complete(&alive));
        assert_eq!(state.rolled_count(), 4);
        assert!(state.version.iter().all(|v| v == "v2"));
    }

    #[test]
    fn dead_chips_are_skipped_but_do_not_block_completion() {
        let plan = RollPlan::new(0.0, 4);
        let mut state = RollState::new(3, &plan);
        let alive = vec![true, false, true];
        assert!(state.begin_epoch(&plan, 0.0, &alive));
        assert_eq!(state.draining, vec![true, false, true]);
        assert!(!state.begin_epoch(&plan, 1000.0, &alive));
        assert!(state.complete(&alive));
        assert_eq!(state.rolled_count(), 2);
        assert_eq!(state.version[1], "v1", "the dead chip never swaps");
    }
}
