//! The fleet engine: epoch-synchronised execution of per-chip serving
//! simulations on the harness worker pool.
//!
//! Time is divided into *routing epochs*. At the start of each epoch
//! the router assigns every tenant's fleet-wide load to live replicas
//! (`crate::route_epoch`), then every chip with traffic runs an
//! independent [`dtu_serve`] simulation of the epoch as one point of a
//! fresh [`ExperimentPlan`] — the epoch boundary is the
//! synchronisation point where results merge, the router's EWMA
//! updates, rolls advance, and chip losses re-place replicas. Each
//! epoch's serve run drains (admitted requests complete), which models
//! in-flight work finishing before the next routing decision.
//!
//! Determinism: per-(chip, epoch) serve seeds are content hashes of
//! (fleet seed, chip, epoch); results merge in chip order whatever the
//! worker schedule did; the router and scheduler use no hash-map
//! iteration. Two runs with the same inputs produce byte-identical
//! [`FleetReport::to_json`] output for any `--jobs` and any cache
//! temperature.
//!
//! Chip loss: a [`ChipKill`] schedules the permanent failure of every
//! processing group on one chip (a [`FaultKind::CoreFailure`] per
//! group, built on the same `dtu-faults` plan machinery the per-chip
//! presets use). When the failure aborts the chip's epoch mid-run, the
//! engine re-runs the epoch truncated at the kill time with the same
//! seed — the arrival prefix is identical — so the dead chip's books
//! close exactly: requests that would have arrived after the kill are
//! never offered (clients fail over at the next epoch), and
//! `offered == completed + shed + fault_dropped` holds fleet-wide.

use crate::monitor::{FleetMonitor, SliceStats};
use crate::route::trace_base;
use crate::{
    place, replace_after_loss, route_epoch, FleetChipReport, FleetError, FleetReport, FleetTenant,
    FleetTenantReport, FleetTopology, RollPlan, RollState, RouterState,
};
use dtu_compiler::Fnv1a;
use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
use dtu_harness::{ExperimentPlan, HarnessError, SessionCache};
use dtu_serve::{
    run_serving, run_serving_live, ArrivalProcess, BatchPolicy, CompiledModel, LiveConfig,
    LiveMonitor, RetryPolicy, ScalePolicy, ServeConfig, ServeError, ServiceModel, SlaPolicy,
    TenantSpec,
};
use dtu_sim::{AnalyticBackend, AnalyticTiming, Chip, SimError};
use dtu_telemetry::LogHistogram;

/// A scheduled whole-chip failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipKill {
    /// The chip to kill.
    pub chip: usize,
    /// Simulated failure time, ms (clamped into the run; a time past
    /// the horizon never fires).
    pub at_ms: f64,
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Arrival horizon, ms (each epoch's serve run then drains).
    pub duration_ms: f64,
    /// Routing-epoch length, ms.
    pub epoch_ms: f64,
    /// Fleet seed; folded into every routing and serve seed.
    pub seed: u64,
    /// Routing cells per live replica per epoch (balancing
    /// granularity).
    pub cells_per_replica: usize,
    /// Optional rolling deploy to run.
    pub roll: Option<RollPlan>,
    /// Optional whole-chip failure to inject.
    pub kill: Option<ChipKill>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            duration_ms: 10_000.0,
            epoch_ms: 1_000.0,
            seed: 7,
            cells_per_replica: 2,
            roll: None,
            kill: None,
        }
    }
}

/// One tenant's share of one chip-epoch simulation.
#[derive(Debug, Clone)]
struct TenantSlice {
    /// Fleet tenant index.
    tenant: usize,
    offered: u64,
    completed: u64,
    shed: u64,
    violations: u64,
    retries: u64,
    fault_dropped: u64,
    groups_lost: u64,
    /// Exact latency histogram of the slice's completions.
    hist: LogHistogram,
    /// `mean_queue_delay_ms * completed`, for completion-weighted
    /// delay merging at the epoch barrier.
    queue_delay_weight: f64,
}

/// The result of one chip's epoch, merged at the epoch barrier.
#[derive(Debug, Clone)]
struct ChipEpochOutcome {
    chip: usize,
    killed: bool,
    faults_injected: u64,
    groups_lost: u64,
    slices: Vec<TenantSlice>,
    /// The per-chip live monitor, when the run is observed. For a
    /// killed chip this is the *aborted* run's monitor — the operator's
    /// view of the failure — while the slices come from the truncated
    /// re-run so the books still close.
    monitor: Option<LiveMonitor>,
}

/// The content-derived serve seed for one (chip, epoch).
fn chip_epoch_seed(fleet_seed: u64, chip: usize, epoch: usize) -> u64 {
    let mut key = Fnv1a::new();
    key.write_str("fleet-serve/");
    key.write_u64(fleet_seed);
    key.write_u64(chip as u64);
    key.write_u64(epoch as u64);
    key.finish()
}

/// A fault plan that permanently fails every processing group of a
/// chip at `at_ms` (relative to the epoch start).
fn chip_kill_plan(cfg: &dtu_sim::ChipConfig, at_ms: f64, seed: u64) -> FaultPlan {
    let mut events = Vec::with_capacity(cfg.total_groups());
    for cluster in 0..cfg.clusters {
        for group in 0..cfg.groups_per_cluster {
            events.push(FaultEvent {
                at_ns: at_ms * 1e6,
                cluster,
                group,
                kind: FaultKind::CoreFailure,
            });
        }
    }
    FaultPlan {
        seed,
        name: "chip-kill".to_string(),
        events,
    }
}

/// Builds the per-chip serve configuration for one epoch.
fn chip_serve_config(
    tenants: &[FleetTenant<'_>],
    assignment: &[(usize, f64)],
    groups_per_cluster: usize,
    duration_ms: f64,
    seed: u64,
    faults: FaultPlan,
) -> ServeConfig {
    ServeConfig {
        duration_ms,
        seed,
        record_requests: true,
        faults,
        retry: RetryPolicy::default(),
        tenants: assignment
            .iter()
            .map(|&(t, qps)| {
                let spec = &tenants[t];
                TenantSpec {
                    name: spec.model.name().to_string(),
                    model: 0, // fixed up by the caller (one model per tenant)
                    arrival: ArrivalProcess::Poisson { qps },
                    batch: if spec.max_batch > 1 {
                        BatchPolicy::dynamic(spec.max_batch, spec.batch_timeout_ms)
                    } else {
                        BatchPolicy::none()
                    },
                    sla: SlaPolicy::new(spec.deadline_ms, spec.queue_depth),
                    scale: if spec.autoscale {
                        ScalePolicy::elastic(
                            spec.deadline_ms * 0.5,
                            spec.deadline_ms * 0.1,
                            groups_per_cluster,
                        )
                    } else {
                        ScalePolicy::none()
                    },
                    cluster: None,
                    initial_groups: spec.initial_groups,
                }
            })
            .collect(),
    }
}

fn job_err(label: &str) -> impl Fn(ServeError) -> HarnessError + '_ {
    move |e| HarnessError::Job {
        label: label.to_string(),
        message: e.to_string(),
    }
}

/// Runs one chip's slice of one epoch: compiles the assigned tenants'
/// models through the shared cache, serves the epoch, and reduces the
/// outcome to per-tenant slices. A whole-chip kill that aborts the run
/// is retried truncated at the kill time (same seed, identical arrival
/// prefix) so the dead chip's accounting closes exactly.
///
/// `monitor_base` attaches a [`LiveMonitor`] whose span labels and
/// exemplars carry the given fleet trace base. The monitored run is
/// observationally identical to a plain one (the `run_serving_live`
/// contract), and a kill-aborted epoch re-runs *without* the monitor,
/// so the slices — and therefore the report — never depend on whether
/// the fleet was observed.
#[allow(clippy::too_many_arguments)]
fn run_chip_epoch(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
    assignment: &[(usize, f64)],
    chip_idx: usize,
    epoch_len_ms: f64,
    serve_seed: u64,
    kill_offset_ms: Option<f64>,
    monitor_base: Option<u64>,
    cache: &SessionCache,
    timing: Option<&AnalyticTiming>,
) -> Result<ChipEpochOutcome, HarnessError> {
    let fleet_chip = topology.chip(chip_idx);
    let chip_cfg = &fleet_chip.config;
    let label = format!("chip{chip_idx}");
    let chip = Chip::new(chip_cfg.clone());
    // Declared before the models so the backend outlives their borrows.
    let backend = timing.map(|t| AnalyticBackend::new(t.clone()));
    let mut models: Vec<CompiledModel<'_>> = assignment
        .iter()
        .map(|&(t, _)| {
            let spec = &tenants[t];
            let mut m = CompiledModel::new(&chip, spec.model.name(), |b| spec.model.build(b))
                .with_source(cache);
            if let Some(b) = backend.as_ref() {
                m = m.with_timing(b);
            }
            m
        })
        .collect();

    let faults = match kill_offset_ms {
        Some(at_ms) => chip_kill_plan(chip_cfg, at_ms, serve_seed),
        None => FaultPlan::empty(),
    };
    let mut cfg = chip_serve_config(
        tenants,
        assignment,
        chip_cfg.groups_per_cluster,
        epoch_len_ms,
        serve_seed,
        faults,
    );
    for (i, t) in cfg.tenants.iter_mut().enumerate() {
        t.model = i;
    }

    let mut live = monitor_base.map(|base| {
        LiveMonitor::new(LiveConfig {
            trace_base: base,
            ..LiveConfig::default()
        })
    });
    let mut refs: Vec<&mut dyn ServiceModel> = models
        .iter_mut()
        .map(|m| m as &mut dyn ServiceModel)
        .collect();
    let first = match live.as_mut() {
        Some(m) => run_serving_live(&cfg, chip_cfg, &mut refs, m),
        None => run_serving(&cfg, chip_cfg, &mut refs),
    };
    let outcome = match first {
        Ok(out) => out,
        Err(ServeError::Sim(SimError::Fault(_))) if kill_offset_ms.is_some() => {
            // The kill took the chip down mid-epoch. Re-run the exact
            // arrival prefix (same seed, horizon truncated at the kill
            // time, no faults) so every request that arrived before
            // the failure is accounted; later arrivals never existed.
            // The re-run is unmonitored — the aborted monitor already
            // holds the operator's view of the failure, and the slices
            // must match the plain (unobserved) path byte for byte.
            cfg.duration_ms = kill_offset_ms.unwrap_or(0.0);
            cfg.faults = FaultPlan::empty();
            let mut refs: Vec<&mut dyn ServiceModel> = models
                .iter_mut()
                .map(|m| m as &mut dyn ServiceModel)
                .collect();
            run_serving(&cfg, chip_cfg, &mut refs).map_err(job_err(&label))?
        }
        Err(other) => return Err(job_err(&label)(other)),
    };

    let killed = kill_offset_ms.is_some();
    let mut slices: Vec<TenantSlice> = assignment
        .iter()
        .zip(&outcome.report.tenants)
        .map(|(&(t, _), rep)| TenantSlice {
            tenant: t,
            offered: rep.offered,
            completed: rep.completed,
            shed: rep.shed,
            violations: rep.violations,
            retries: rep.retries,
            fault_dropped: rep.fault_dropped,
            groups_lost: rep.groups_lost,
            hist: LogHistogram::new(),
            queue_delay_weight: rep.mean_queue_delay_ms * rep.completed as f64,
        })
        .collect();
    for req in &outcome.requests {
        slices[req.tenant].hist.record(req.done_ms - req.arrival_ms);
    }
    // A killed chip loses all its groups whichever code path the serve
    // run took (the abort-and-truncate path reports none itself).
    let chip_groups = chip_cfg.total_groups() as u64;
    Ok(ChipEpochOutcome {
        chip: chip_idx,
        killed,
        faults_injected: if killed {
            chip_groups
        } else {
            outcome.report.faults_injected
        },
        groups_lost: if killed {
            chip_groups
        } else {
            slices.iter().map(|s| s.groups_lost).sum()
        },
        slices,
        monitor: live,
    })
}

/// Per-chip accounting accumulated across epochs.
#[derive(Debug, Clone, Default)]
struct ChipAccum {
    offered: u64,
    completed: u64,
    shed: u64,
    fault_dropped: u64,
    groups_lost: u64,
    dead: bool,
}

/// Per-tenant accounting accumulated across epochs.
#[derive(Debug, Clone, Default)]
struct TenantAccum {
    offered: u64,
    completed: u64,
    shed: u64,
    violations: u64,
    fault_dropped: u64,
    hist: LogHistogram,
    roll_offered: u64,
    roll_completed: u64,
}

/// Runs the whole fleet simulation and merges the outcome into a
/// [`FleetReport`].
///
/// `jobs` is the harness worker-pool width for the per-chip epoch
/// simulations; it affects wall-clock only, never the report
/// ([`FleetReport::to_json`] is byte-identical across job counts).
///
/// # Errors
///
/// [`FleetError::Config`] for impossible topologies, placements, or
/// epoch settings; [`FleetError::Harness`] when a chip simulation
/// fails for a non-kill reason; [`FleetError::Accounting`] if the
/// fleet-wide `offered == completed + shed + fault_dropped` invariant
/// breaks (a bug, never expected).
pub fn run_fleet(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
    cfg: &FleetConfig,
    cache: &SessionCache,
    jobs: usize,
) -> Result<FleetReport, FleetError> {
    run_fleet_inner(topology, tenants, cfg, cache, jobs, None, None)
}

/// Calibrates one [`AnalyticTiming`] per chip in the topology, reusing
/// the fit across chips with identical configs (the homogeneous-fleet
/// common case probes exactly once).
///
/// # Errors
///
/// [`FleetError::Config`] when a chip config cannot be calibrated.
pub fn calibrate_fleet(topology: &FleetTopology) -> Result<Vec<AnalyticTiming>, FleetError> {
    let mut distinct: Vec<(dtu_sim::ChipConfig, AnalyticTiming)> = Vec::new();
    let mut timings = Vec::with_capacity(topology.len());
    for chip in 0..topology.len() {
        let cfg = &topology.chip(chip).config;
        let timing = match distinct.iter().find(|(c, _)| c == cfg) {
            Some((_, t)) => t.clone(),
            None => {
                let t = AnalyticTiming::calibrate(cfg).map_err(|e| {
                    FleetError::Config(format!("calibration failed for chip {chip}: {e}"))
                })?;
                distinct.push((cfg.clone(), t.clone()));
                t
            }
        };
        timings.push(timing);
    }
    Ok(timings)
}

/// Runs the fleet with every chip's serve pricing routed through a
/// calibrated analytic timing backend (`timings[chip]`, one per chip —
/// see [`calibrate_fleet`]) instead of the interpreter. Determinism
/// guarantees are unchanged: byte-identical reports across `jobs` and
/// cache temperature.
///
/// # Errors
///
/// Exactly as [`run_fleet`], plus [`FleetError::Config`] when
/// `timings.len()` does not match the topology.
pub fn run_fleet_with_timing(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
    cfg: &FleetConfig,
    cache: &SessionCache,
    jobs: usize,
    timings: &[AnalyticTiming],
) -> Result<FleetReport, FleetError> {
    if timings.len() != topology.len() {
        return Err(FleetError::Config(format!(
            "{} timings supplied for {} chips",
            timings.len(),
            topology.len()
        )));
    }
    run_fleet_inner(topology, tenants, cfg, cache, jobs, None, Some(timings))
}

/// Runs the fleet simulation with a [`FleetMonitor`] riding along:
/// every chip-epoch carries a live monitor whose trace ids encode the
/// (epoch, chip) that served each request, and the fleet monitor
/// merges them into per-tenant and per-chip rollups at every epoch
/// barrier.
///
/// The monitor is observational only: the returned report is
/// byte-identical to what [`run_fleet`] produces for the same inputs
/// (asserted by the crate tests and the CI conformance job).
///
/// # Errors
///
/// Exactly as [`run_fleet`].
pub fn run_fleet_monitored(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
    cfg: &FleetConfig,
    cache: &SessionCache,
    jobs: usize,
) -> Result<(FleetReport, FleetMonitor), FleetError> {
    let specs: Vec<(&str, f64)> = tenants
        .iter()
        .map(|t| (t.model.name(), t.deadline_ms))
        .collect();
    let mut monitor = FleetMonitor::new(topology.len(), &specs);
    let report = run_fleet_inner(
        topology,
        tenants,
        cfg,
        cache,
        jobs,
        Some(&mut monitor),
        None,
    )?;
    Ok((report, monitor))
}

/// [`run_fleet_monitored`] with analytic timing, combining the
/// guarantees of both variants: the monitor is observational and the
/// report matches [`run_fleet_with_timing`] byte for byte.
///
/// # Errors
///
/// Exactly as [`run_fleet_with_timing`].
pub fn run_fleet_monitored_with_timing(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
    cfg: &FleetConfig,
    cache: &SessionCache,
    jobs: usize,
    timings: &[AnalyticTiming],
) -> Result<(FleetReport, FleetMonitor), FleetError> {
    if timings.len() != topology.len() {
        return Err(FleetError::Config(format!(
            "{} timings supplied for {} chips",
            timings.len(),
            topology.len()
        )));
    }
    let specs: Vec<(&str, f64)> = tenants
        .iter()
        .map(|t| (t.model.name(), t.deadline_ms))
        .collect();
    let mut monitor = FleetMonitor::new(topology.len(), &specs);
    let report = run_fleet_inner(
        topology,
        tenants,
        cfg,
        cache,
        jobs,
        Some(&mut monitor),
        Some(timings),
    )?;
    Ok((report, monitor))
}

fn run_fleet_inner(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
    cfg: &FleetConfig,
    cache: &SessionCache,
    jobs: usize,
    mut monitor: Option<&mut FleetMonitor>,
    timings: Option<&[AnalyticTiming]>,
) -> Result<FleetReport, FleetError> {
    if cfg.epoch_ms.is_nan()
        || cfg.epoch_ms <= 0.0
        || cfg.duration_ms.is_nan()
        || cfg.duration_ms <= 0.0
    {
        return Err(FleetError::Config(
            "fleet duration and epoch length must be positive".into(),
        ));
    }
    if let Some(kill) = &cfg.kill {
        if kill.chip >= topology.len() {
            return Err(FleetError::Config(format!(
                "kill targets chip {} but the fleet has {}",
                kill.chip,
                topology.len()
            )));
        }
    }
    let n = topology.len();
    let stats_before = cache.stats();
    let mut placement = place(topology, tenants)?;
    let initial_replicas: Vec<usize> = placement.replicas.iter().map(Vec::len).collect();

    let mut alive = vec![true; n];
    let mut router = RouterState::new(n);
    let mut roll_state = cfg.roll.as_ref().map(|p| RollState::new(n, p));
    let mut chip_accum = vec![ChipAccum::default(); n];
    let mut tenant_accum = vec![TenantAccum::default(); tenants.len()];
    let mut routed_cells = 0u64;
    let mut replica_moves = 0u64;
    let mut chips_lost = 0u64;
    let mut faults_injected = 0u64;
    let mut retries = 0u64;

    let epochs = (cfg.duration_ms / cfg.epoch_ms).ceil() as usize;
    for epoch in 0..epochs {
        let epoch_start = epoch as f64 * cfg.epoch_ms;
        let epoch_len = (cfg.duration_ms - epoch_start).min(cfg.epoch_ms);

        // A kill landing in this epoch either fires before routing
        // (offset ~0: the chip receives no traffic at all) or mid-run
        // (the chip's simulation aborts and truncates).
        let mut kill_this_epoch: Option<(usize, f64)> = None;
        if let Some(kill) = &cfg.kill {
            if alive[kill.chip] && kill.at_ms < epoch_start + epoch_len {
                let offset = (kill.at_ms - epoch_start).max(0.0);
                if offset <= 1e-9 {
                    alive[kill.chip] = false;
                    chip_accum[kill.chip].dead = true;
                    chip_accum[kill.chip].groups_lost =
                        topology.chip(kill.chip).config.total_groups() as u64;
                    chips_lost += 1;
                    replica_moves +=
                        replace_after_loss(&mut placement, kill.chip, &alive, topology, tenants)
                            as u64;
                    if let Some(m) = monitor.as_deref_mut() {
                        // The chip dies before serving this epoch, so
                        // the page charges the load it carried last.
                        m.on_chip_kill(epoch, epoch_start, kill.chip, true);
                    }
                } else {
                    kill_this_epoch = Some((kill.chip, offset));
                }
            }
        }

        let rolling = match (&cfg.roll, roll_state.as_mut()) {
            (Some(plan), Some(state)) => state.begin_epoch(plan, epoch_start, &alive),
            _ => false,
        };
        let draining: Vec<bool> = roll_state
            .as_ref()
            .map_or_else(|| vec![false; n], |s| s.draining.clone());

        let live: Vec<Vec<usize>> = placement
            .replicas
            .iter()
            .map(|reps| {
                reps.iter()
                    .copied()
                    .filter(|&c| alive[c] && !draining[c])
                    .collect()
            })
            .collect();
        let qps: Vec<f64> = tenants.iter().map(|t| t.qps).collect();
        let routes = route_epoch(&qps, &live, &router, cfg.seed, epoch, cfg.cells_per_replica);
        routed_cells += routes.cells;
        if let Some(m) = monitor.as_deref_mut() {
            m.on_route(epoch, epoch_start, &routes);
        }

        let mut plan: ExperimentPlan<'_, ChipEpochOutcome> = ExperimentPlan::new();
        for chip in 0..n {
            let assignment = routes.on_chip(chip);
            if assignment.is_empty() {
                continue;
            }
            let mut key = Fnv1a::new();
            key.write_str("fleet-point/");
            key.write_u64(cfg.seed);
            key.write_u64(epoch as u64);
            key.write_u64(chip as u64);
            let serve_seed = chip_epoch_seed(cfg.seed, chip, epoch);
            let kill_offset = kill_this_epoch
                .filter(|&(c, _)| c == chip)
                .map(|(_, offset)| offset);
            let monitor_base = monitor.as_ref().map(|_| trace_base(epoch, chip));
            let timing = timings.map(|ts| &ts[chip]);
            plan.add_point(
                key.finish(),
                format!("chip{chip} e{epoch}"),
                &[],
                move |_| {
                    run_chip_epoch(
                        topology,
                        tenants,
                        &assignment,
                        chip,
                        epoch_len,
                        serve_seed,
                        kill_offset,
                        monitor_base,
                        cache,
                        timing,
                    )
                },
            );
        }

        // Epoch barrier: merge in chip (insertion) order, whatever the
        // worker schedule did.
        for result in plan.run(jobs) {
            let out = result.map_err(FleetError::Harness)?;
            if let Some(m) = monitor.as_deref_mut() {
                let assignment = routes.on_chip(out.chip);
                let stats: Vec<SliceStats> = out
                    .slices
                    .iter()
                    .map(|s| SliceStats {
                        tenant: s.tenant,
                        offered: s.offered,
                        violations: s.violations,
                        fault_dropped: s.fault_dropped,
                    })
                    .collect();
                m.absorb_chip_epoch(
                    epoch_start,
                    out.chip,
                    &assignment,
                    epoch_len,
                    &stats,
                    out.monitor.as_ref(),
                    out.killed,
                );
                if out.killed {
                    let at_ms =
                        kill_this_epoch.map_or(epoch_start, |(_, offset)| epoch_start + offset);
                    m.on_chip_kill(epoch, at_ms, out.chip, false);
                }
            }
            faults_injected += out.faults_injected;
            let accum = &mut chip_accum[out.chip];
            let (mut chip_completed, mut delay_weight) = (0u64, 0.0f64);
            for slice in &out.slices {
                accum.offered += slice.offered;
                accum.completed += slice.completed;
                accum.shed += slice.shed;
                accum.fault_dropped += slice.fault_dropped;
                retries += slice.retries;
                chip_completed += slice.completed;
                delay_weight += slice.queue_delay_weight;
                let t = &mut tenant_accum[slice.tenant];
                t.offered += slice.offered;
                t.completed += slice.completed;
                t.shed += slice.shed;
                t.violations += slice.violations;
                t.fault_dropped += slice.fault_dropped;
                t.hist.merge(&slice.hist);
                if rolling {
                    t.roll_offered += slice.offered;
                    t.roll_completed += slice.completed;
                }
            }
            if out.killed {
                accum.dead = true;
                accum.groups_lost = out.groups_lost;
                alive[out.chip] = false;
                chips_lost += 1;
                replica_moves +=
                    replace_after_loss(&mut placement, out.chip, &alive, topology, tenants) as u64;
            } else {
                accum.groups_lost += out.groups_lost;
                let delay = if chip_completed > 0 {
                    delay_weight / chip_completed as f64
                } else {
                    0.0
                };
                router.observe(out.chip, delay);
            }
        }
        if let Some(m) = monitor.as_deref_mut() {
            m.end_epoch(epoch, epoch_start + epoch_len);
        }
    }

    if let Some(m) = monitor {
        m.finish(epochs.saturating_sub(1));
    }
    if let (Some(plan), Some(state)) = (&cfg.roll, roll_state.as_mut()) {
        state.finish(plan);
    }

    let offered: u64 = chip_accum.iter().map(|c| c.offered).sum();
    let completed: u64 = chip_accum.iter().map(|c| c.completed).sum();
    let shed: u64 = chip_accum.iter().map(|c| c.shed).sum();
    let fault_dropped: u64 = chip_accum.iter().map(|c| c.fault_dropped).sum();
    let violations: u64 = tenant_accum.iter().map(|t| t.violations).sum();

    let loads: Vec<u64> = (0..n)
        .filter(|&c| alive[c] && chip_accum[c].offered > 0)
        .map(|c| chip_accum[c].offered)
        .collect();
    let load_ratio = if loads.len() < 2 {
        1.0
    } else {
        let max = *loads.iter().max().expect("non-empty") as f64;
        let min = *loads.iter().min().expect("non-empty") as f64;
        max / min
    };

    let tenant_reports: Vec<FleetTenantReport> = tenants
        .iter()
        .zip(&tenant_accum)
        .zip(&initial_replicas)
        .map(|((spec, acc), &replicas)| FleetTenantReport {
            name: spec.model.name().to_string(),
            replicas,
            offered: acc.offered,
            completed: acc.completed,
            shed: acc.shed,
            violations: acc.violations,
            fault_dropped: acc.fault_dropped,
            p50_ms: acc.hist.quantile(0.50),
            p99_ms: acc.hist.quantile(0.99),
            mean_ms: acc.hist.mean(),
            max_ms: acc.hist.max(),
            availability: if acc.offered == 0 {
                1.0
            } else {
                acc.completed as f64 / acc.offered as f64
            },
            roll_availability: if acc.roll_offered == 0 {
                None
            } else {
                Some(acc.roll_completed as f64 / acc.roll_offered as f64)
            },
        })
        .collect();

    let chips_detail: Vec<FleetChipReport> = (0..n)
        .map(|c| FleetChipReport {
            chip: c,
            card: topology.chip(c).card,
            offered: chip_accum[c].offered,
            completed: chip_accum[c].completed,
            shed: chip_accum[c].shed,
            fault_dropped: chip_accum[c].fault_dropped,
            groups_lost: chip_accum[c].groups_lost,
            dead: chip_accum[c].dead,
            version: roll_state
                .as_ref()
                .map_or_else(|| "v1".to_string(), |s| s.version[c].clone()),
            ewma_delay_ms: router.ewma_delay_ms[c],
        })
        .collect();

    let report = FleetReport {
        chips: n,
        cards: topology.cards(),
        chip_name: topology.chip(0).config.name.clone(),
        duration_ms: cfg.duration_ms,
        epoch_ms: cfg.epoch_ms,
        epochs,
        seed: cfg.seed,
        offered,
        completed,
        shed,
        violations,
        retries,
        fault_dropped,
        faults_injected,
        routed_cells,
        replica_moves,
        chips_lost,
        chips_rolled: roll_state.as_ref().map_or(0, |s| s.rolled_count()) as u64,
        load_ratio,
        tenants: tenant_reports,
        chips_detail,
        cache: cache.stats().delta_since(stats_before),
    };
    if !report.accounting_balances() {
        return Err(FleetError::Accounting(format!(
            "offered {} != completed {} + shed {} + fault_dropped {}",
            report.offered, report.completed, report.shed, report.fault_dropped
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_model;
    use crate::RollPlan;
    use dtu_sim::ChipConfig;
    use dtu_telemetry::AlertKind;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            duration_ms: 2000.0,
            epoch_ms: 1000.0,
            seed: 7,
            cells_per_replica: 2,
            roll: None,
            kill: None,
        }
    }

    #[test]
    fn fleet_run_serves_and_balances() {
        let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
        let tenants = vec![FleetTenant::new(toy_model(), 2000.0)];
        let cache = SessionCache::memory_only();
        let r = run_fleet(&topo, &tenants, &small_cfg(), &cache, 2).unwrap();
        assert!(r.offered > 3000, "2000 qps x 2 s arrived: {}", r.offered);
        assert!(r.accounting_balances());
        assert_eq!(r.chips_lost, 0);
        assert!(r.load_ratio < 2.5, "balanced: {}", r.load_ratio);
        assert!(r.tenants[0].p99_ms >= r.tenants[0].p50_ms);
        assert!(r.cache.misses > 0, "first run compiles");
    }

    #[test]
    fn chip_kill_mid_run_degrades_gracefully() {
        let topo = FleetTopology::homogeneous(1, 3, &ChipConfig::dtu20()).unwrap();
        let tenants = vec![FleetTenant::new(toy_model(), 1500.0)];
        let cache = SessionCache::memory_only();
        let cfg = FleetConfig {
            kill: Some(ChipKill {
                chip: 1,
                at_ms: 500.0,
            }),
            ..small_cfg()
        };
        let r = run_fleet(&topo, &tenants, &cfg, &cache, 2).unwrap();
        assert_eq!(r.chips_lost, 1);
        assert!(r.chips_detail[1].dead);
        assert_eq!(
            r.chips_detail[1].groups_lost,
            ChipConfig::dtu20().total_groups() as u64
        );
        assert!(r.accounting_balances(), "no accounting leaks after kill");
        // Replicas were already everywhere (replicas = 0), so nothing
        // to move, but the survivors keep serving.
        assert!(r.chips_detail[0].offered > 0);
        assert!(r.chips_detail[2].offered > 0);
    }

    #[test]
    fn kill_at_epoch_start_routes_no_traffic_to_the_dead_chip() {
        let topo = FleetTopology::homogeneous(1, 2, &ChipConfig::dtu20()).unwrap();
        let tenants = vec![FleetTenant::new(toy_model(), 1000.0)];
        let cache = SessionCache::memory_only();
        let cfg = FleetConfig {
            kill: Some(ChipKill {
                chip: 0,
                at_ms: 0.0,
            }),
            ..small_cfg()
        };
        let r = run_fleet(&topo, &tenants, &cfg, &cache, 1).unwrap();
        assert_eq!(r.chips_detail[0].offered, 0);
        assert!(r.chips_detail[0].dead);
        assert!(r.chips_detail[1].offered > 0);
        assert!(r.accounting_balances());
    }

    #[test]
    fn rolling_deploy_swaps_every_chip_and_reports_availability() {
        let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
        let tenants = vec![FleetTenant::new(toy_model(), 2000.0)];
        let cache = SessionCache::memory_only();
        let cfg = FleetConfig {
            duration_ms: 6000.0,
            roll: Some(RollPlan::new(1000.0, 2)),
            ..small_cfg()
        };
        let r = run_fleet(&topo, &tenants, &cfg, &cache, 2).unwrap();
        assert_eq!(r.chips_rolled, 4);
        assert!(r.chips_detail.iter().all(|c| c.version == "v2"));
        let roll = r.tenants[0].roll_availability.expect("traffic during roll");
        assert!(roll > 0.0 && roll <= 1.0);
        assert!(r.accounting_balances());
    }

    #[test]
    fn reports_are_byte_identical_across_jobs() {
        let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
        let cfg = FleetConfig {
            roll: Some(RollPlan::new(1000.0, 1)),
            kill: Some(ChipKill {
                chip: 3,
                at_ms: 1500.0,
            }),
            duration_ms: 4000.0,
            ..small_cfg()
        };
        let cache1 = SessionCache::memory_only();
        let tenants1 = vec![FleetTenant::new(toy_model(), 1200.0)];
        let r1 = run_fleet(&topo, &tenants1, &cfg, &cache1, 1).unwrap();
        let cache8 = SessionCache::memory_only();
        let tenants8 = vec![FleetTenant::new(toy_model(), 1200.0)];
        let r8 = run_fleet(&topo, &tenants8, &cfg, &cache8, 8).unwrap();
        assert_eq!(r1.to_json(), r8.to_json());
    }

    #[test]
    fn monitored_report_is_byte_identical_to_plain() {
        // The hardest case: a roll in flight and a mid-epoch kill.
        let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
        let cfg = FleetConfig {
            roll: Some(RollPlan::new(1000.0, 1)),
            kill: Some(ChipKill {
                chip: 3,
                at_ms: 1500.0,
            }),
            duration_ms: 4000.0,
            ..small_cfg()
        };
        let cache_plain = SessionCache::memory_only();
        let tenants_plain = vec![FleetTenant::new(toy_model(), 1200.0)];
        let plain = run_fleet(&topo, &tenants_plain, &cfg, &cache_plain, 2).unwrap();
        let cache_mon = SessionCache::memory_only();
        let tenants_mon = vec![FleetTenant::new(toy_model(), 1200.0)];
        let (monitored, fm) =
            run_fleet_monitored(&topo, &tenants_mon, &cfg, &cache_mon, 2).unwrap();
        assert_eq!(
            plain.to_json(),
            monitored.to_json(),
            "observation must not change the report"
        );
        assert_eq!(fm.frames().len(), monitored.epochs, "one frame per epoch");
        assert!(fm.frames().iter().all(|f| !f.tenants.is_empty()));
    }

    #[test]
    fn chip_kill_pages_with_resolving_flight_dump() {
        let topo = FleetTopology::homogeneous(1, 3, &ChipConfig::dtu20()).unwrap();
        let tenants = vec![FleetTenant::new(toy_model(), 1500.0)];
        let cache = SessionCache::memory_only();
        let cfg = FleetConfig {
            kill: Some(ChipKill {
                chip: 1,
                at_ms: 1500.0,
            }),
            duration_ms: 3000.0,
            ..small_cfg()
        };
        let (report, fm) = run_fleet_monitored(&topo, &tenants, &cfg, &cache, 2).unwrap();
        assert_eq!(report.chips_lost, 1);
        // The kill paged: a fault alert attributed to the chip…
        let kill = fm
            .alerts()
            .iter()
            .find(|a| a.event.kind == AlertKind::Fault)
            .expect("kill emits a fleet alert");
        assert_eq!(kill.chip, Some(1));
        // …whose exemplar decodes to the killed chip and resolves in
        // the frozen dump of that chip's ring.
        let id = kill.event.exemplar.expect("alert carries an exemplar");
        assert_eq!(crate::trace_chip(id), Some(1));
        let dump = fm
            .dumps()
            .iter()
            .find(|d| d.reason.contains("chip1 killed"))
            .expect("kill freezes a dump");
        assert!(dump.resolves_label(&format!("req {id}")));
        assert!(dump.spans.iter().any(|s| s.label.starts_with("route e")));
        // Burn attribution names the killed chip as the top offender.
        let top = fm.top_offenders(3);
        assert_eq!(top[0].chip, 1, "killed chip owns the badness: {top:?}");
        assert!(fm.chip_dead(1));
        // The compliance report is well-formed JSON mentioning it.
        let json = fm.compliance_json();
        assert!(json.contains("\"chips_dead\":[1]"));
    }

    #[test]
    fn analytic_timing_tracks_the_interpreter_fleet_wide() {
        let topo = FleetTopology::homogeneous(1, 3, &ChipConfig::dtu20()).unwrap();
        let cfg = small_cfg();
        let cache_a = SessionCache::memory_only();
        let tenants_a = vec![FleetTenant::new(toy_model(), 1500.0)];
        let interp = run_fleet(&topo, &tenants_a, &cfg, &cache_a, 2).unwrap();
        let timings = calibrate_fleet(&topo).unwrap();
        assert_eq!(timings.len(), 3);
        let cache_b = SessionCache::memory_only();
        let tenants_b = vec![FleetTenant::new(toy_model(), 1500.0)];
        let fast = run_fleet_with_timing(&topo, &tenants_b, &cfg, &cache_b, 2, &timings).unwrap();
        // Arrivals are seed-driven, independent of pricing.
        assert_eq!(interp.offered, fast.offered);
        assert!(fast.accounting_balances());
        // Sub-1e-6-rtol pricing keeps the discrete outcome essentially
        // identical; allow a little slack for threshold crossings.
        let drift = (interp.completed as f64 - fast.completed as f64).abs()
            / interp.completed.max(1) as f64;
        assert!(
            drift < 0.02,
            "completed drifted {drift}: interpreted {} vs analytic {}",
            interp.completed,
            fast.completed
        );
    }

    #[test]
    fn analytic_fleet_report_is_byte_identical_across_jobs() {
        let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
        let cfg = small_cfg();
        let timings = calibrate_fleet(&topo).unwrap();
        let cache1 = SessionCache::memory_only();
        let tenants1 = vec![FleetTenant::new(toy_model(), 1200.0)];
        let r1 = run_fleet_with_timing(&topo, &tenants1, &cfg, &cache1, 1, &timings).unwrap();
        let cache8 = SessionCache::memory_only();
        let tenants8 = vec![FleetTenant::new(toy_model(), 1200.0)];
        let r8 = run_fleet_with_timing(&topo, &tenants8, &cfg, &cache8, 8, &timings).unwrap();
        assert_eq!(r1.to_json(), r8.to_json());
    }

    #[test]
    fn timing_count_must_match_topology() {
        let topo = FleetTopology::homogeneous(1, 2, &ChipConfig::dtu20()).unwrap();
        let tenants = vec![FleetTenant::new(toy_model(), 100.0)];
        let cache = SessionCache::memory_only();
        let one = calibrate_fleet(&FleetTopology::homogeneous(1, 1, &ChipConfig::dtu20()).unwrap())
            .unwrap();
        assert!(matches!(
            run_fleet_with_timing(&topo, &tenants, &small_cfg(), &cache, 1, &one),
            Err(FleetError::Config(_))
        ));
    }

    #[test]
    fn bad_configs_fail_loudly() {
        let topo = FleetTopology::homogeneous(1, 2, &ChipConfig::dtu20()).unwrap();
        let cache = SessionCache::memory_only();
        let tenants = vec![FleetTenant::new(toy_model(), 100.0)];
        let bad_epoch = FleetConfig {
            epoch_ms: 0.0,
            ..small_cfg()
        };
        assert!(run_fleet(&topo, &tenants, &bad_epoch, &cache, 1).is_err());
        let bad_kill = FleetConfig {
            kill: Some(ChipKill {
                chip: 9,
                at_ms: 0.0,
            }),
            ..small_cfg()
        };
        assert!(run_fleet(&topo, &tenants, &bad_kill, &cache, 1).is_err());
    }
}
