//! The fleet-wide report: per-tenant percentiles from exact
//! [`LogHistogram`] merges, per-chip accounting, and deterministic
//! JSON/table rendering.
//!
//! Like every other report in the workspace, [`FleetReport::to_json`]
//! is schedule-independent: no wall-clock, no worker count, and no
//! cache provenance (concurrent lookups of one artifact may race to
//! compile, making hit counts schedule-dependent — see
//! `SessionCache::compile_session`). The cache delta *is* carried on
//! the struct and shown by [`FleetReport::to_table`], where humans
//! want it and byte-identity is not promised.

use dtu_harness::CacheStats;
use dtu_telemetry::json::{array, number, JsonObject};
use dtu_telemetry::{Counter, CounterSet};

/// One tenant's fleet-wide slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTenantReport {
    /// Tenant (model) name.
    pub name: String,
    /// Replicas placed at the start of the run.
    pub replicas: usize,
    /// Requests offered fleet-wide.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by per-replica admission control.
    pub shed: u64,
    /// Completions past the SLA deadline.
    pub violations: u64,
    /// Requests dropped by faults.
    pub fault_dropped: u64,
    /// p50 latency over all completions, ms (exact histogram merge).
    pub p50_ms: f64,
    /// p99 latency, ms.
    pub p99_ms: f64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Worst completion, ms.
    pub max_ms: f64,
    /// `completed / offered` over the whole run (1 when idle).
    pub availability: f64,
    /// `completed / offered` over the epochs in which some chip was
    /// draining for the rolling deploy; `None` when no roll ran or no
    /// traffic arrived while rolling.
    pub roll_availability: Option<f64>,
}

/// One chip's slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChipReport {
    /// Chip index.
    pub chip: usize,
    /// Card the chip sits on.
    pub card: usize,
    /// Requests routed to (offered on) the chip.
    pub offered: u64,
    /// Requests the chip completed.
    pub completed: u64,
    /// Requests the chip shed.
    pub shed: u64,
    /// Requests dropped by faults on the chip.
    pub fault_dropped: u64,
    /// Processing groups permanently lost on the chip.
    pub groups_lost: u64,
    /// Whether the chip died during the run.
    pub dead: bool,
    /// Model-version label at the end of the run.
    pub version: String,
    /// The router's final EWMA of the chip's queueing delay, ms.
    pub ewma_delay_ms: f64,
}

/// The merged outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Chips simulated.
    pub chips: usize,
    /// Cards they sit on.
    pub cards: usize,
    /// Name of the (first) chip configuration.
    pub chip_name: String,
    /// Arrival horizon, ms.
    pub duration_ms: f64,
    /// Routing-epoch length, ms.
    pub epoch_ms: f64,
    /// Epochs executed.
    pub epochs: usize,
    /// Fleet seed.
    pub seed: u64,
    /// Requests offered fleet-wide.
    pub offered: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Requests shed fleet-wide.
    pub shed: u64,
    /// Deadline violations fleet-wide.
    pub violations: u64,
    /// Batch retries caused by injected faults.
    pub retries: u64,
    /// Requests dropped by faults fleet-wide.
    pub fault_dropped: u64,
    /// Fault events that fired.
    pub faults_injected: u64,
    /// Routing cells the balancer assigned over all epochs.
    pub routed_cells: u64,
    /// Replica moves performed after chip losses.
    pub replica_moves: u64,
    /// Whole chips lost during the run.
    pub chips_lost: u64,
    /// Chips that completed the rolling deploy.
    pub chips_rolled: u64,
    /// Max/min per-chip offered load over chips that stayed alive and
    /// received traffic (1 when fewer than two such chips).
    pub load_ratio: f64,
    /// Per-tenant breakdown.
    pub tenants: Vec<FleetTenantReport>,
    /// Per-chip breakdown.
    pub chips_detail: Vec<FleetChipReport>,
    /// Session-cache delta attributable to this run (table-only:
    /// compile races make it schedule-dependent, so it is excluded
    /// from the byte-identical JSON).
    pub cache: CacheStats,
}

impl FleetReport {
    /// Whether `offered == completed + shed + fault_dropped` holds
    /// fleet-wide, per tenant, and per chip — the no-accounting-leaks
    /// invariant chip losses must preserve.
    pub fn accounting_balances(&self) -> bool {
        let fleet = self.offered == self.completed + self.shed + self.fault_dropped;
        let tenants = self
            .tenants
            .iter()
            .all(|t| t.offered == t.completed + t.shed + t.fault_dropped);
        let chips = self
            .chips_detail
            .iter()
            .all(|c| c.offered == c.completed + c.shed + c.fault_dropped);
        fleet && tenants && chips
    }

    /// The deterministic JSON report: schedule-independent (no
    /// wall-clock, no worker count, no cache provenance), so two runs
    /// with the same inputs are byte-identical whatever `--jobs` was
    /// and however warm the artifact cache is.
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(tenant_json).collect();
        let chips: Vec<String> = self.chips_detail.iter().map(chip_json).collect();
        JsonObject::new()
            .raw(
                "fleet",
                &JsonObject::new()
                    .int("chips", self.chips as i64)
                    .int("cards", self.cards as i64)
                    .string("chip", &self.chip_name)
                    .raw("duration_ms", &number(self.duration_ms))
                    .raw("epoch_ms", &number(self.epoch_ms))
                    .int("epochs", self.epochs as i64)
                    .int("seed", self.seed as i64)
                    .build(),
            )
            .int("offered", self.offered as i64)
            .int("completed", self.completed as i64)
            .int("shed", self.shed as i64)
            .int("violations", self.violations as i64)
            .int("retries", self.retries as i64)
            .int("fault_dropped", self.fault_dropped as i64)
            .int("faults_injected", self.faults_injected as i64)
            .int("routed_cells", self.routed_cells as i64)
            .int("replica_moves", self.replica_moves as i64)
            .int("chips_lost", self.chips_lost as i64)
            .int("chips_rolled", self.chips_rolled as i64)
            .raw("load_ratio", &number(self.load_ratio))
            .raw(
                "accounting_balanced",
                if self.accounting_balances() {
                    "true"
                } else {
                    "false"
                },
            )
            .raw("tenants", &array(&tenants))
            .raw("chips", &array(&chips))
            .build()
    }

    /// A human-readable fixed-width table (includes the cache delta,
    /// which the JSON deliberately omits).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} chips on {} cards ({}), {} epochs x {:.0} ms, seed {}",
            self.chips, self.cards, self.chip_name, self.epochs, self.epoch_ms, self.seed
        );
        let _ = writeln!(
            out,
            "traffic: {} offered, {} completed, {} shed, {} late, {} fault-dropped; load ratio {:.2}",
            self.offered, self.completed, self.shed, self.violations, self.fault_dropped,
            self.load_ratio
        );
        if self.chips_lost > 0 || self.chips_rolled > 0 {
            let _ = writeln!(
                out,
                "events: {} chips lost ({} replica moves), {} chips rolled, {} faults injected",
                self.chips_lost, self.replica_moves, self.chips_rolled, self.faults_injected
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>4} {:>10} {:>10} {:>8} {:>9} {:>9} {:>6} {:>6}",
            "tenant", "rep", "offered", "done", "shed", "p50(ms)", "p99(ms)", "avail", "roll"
        );
        for t in &self.tenants {
            let roll = t
                .roll_availability
                .map_or_else(|| "-".to_string(), |a| format!("{a:.3}"));
            let _ = writeln!(
                out,
                "{:<14} {:>4} {:>10} {:>10} {:>8} {:>9.3} {:>9.3} {:>6.3} {:>6}",
                t.name,
                t.replicas,
                t.offered,
                t.completed,
                t.shed,
                t.p50_ms,
                t.p99_ms,
                t.availability,
                roll
            );
        }
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>10} {:>10} {:>8} {:>7} {:>6} {:>5} {:>10}",
            "chip", "card", "offered", "done", "shed", "lost", "dead", "ver", "ewma(ms)"
        );
        for c in &self.chips_detail {
            let _ = writeln!(
                out,
                "{:<6} {:>5} {:>10} {:>10} {:>8} {:>7} {:>6} {:>5} {:>10.3}",
                c.chip,
                c.card,
                c.offered,
                c.completed,
                c.shed,
                c.groups_lost,
                if c.dead { "yes" } else { "no" },
                c.version,
                c.ewma_delay_ms
            );
        }
        let _ = writeln!(
            out,
            "cache: {} memory + {} disk hits, {} misses ({:.0}% hit rate)",
            self.cache.memory_hits,
            self.cache.disk_hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        );
        out
    }

    /// Prometheus text exposition for the run: the fleet counters
    /// (HELP/TYPE via the telemetry registry) followed by per-tenant
    /// (`{tenant="..."}`) and per-chip (`{chip="N"}`) labeled series.
    /// Deterministic like [`FleetReport::to_json`]: tenant and chip
    /// order is fixed, no wall-clock, no cache provenance.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = self.counters().to_prometheus(&[]);
        fn series<T, F: Fn(&T) -> (String, f64)>(
            out: &mut String,
            name: &str,
            help: &str,
            kind: &str,
            rows: &[T],
            f: F,
        ) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for row in rows {
                let (labels, v) = f(row);
                let _ = writeln!(out, "{name}{{{labels}}} {v}");
            }
        }
        let tl = |t: &FleetTenantReport| format!("tenant=\"{}\"", t.name);
        series(
            &mut out,
            "dtu_fleet_tenant_offered_total",
            "Requests offered to a tenant fleet-wide",
            "counter",
            &self.tenants,
            |t| (tl(t), t.offered as f64),
        );
        series(
            &mut out,
            "dtu_fleet_tenant_completed_total",
            "Requests a tenant completed fleet-wide",
            "counter",
            &self.tenants,
            |t| (tl(t), t.completed as f64),
        );
        series(
            &mut out,
            "dtu_fleet_tenant_shed_total",
            "Requests shed by admission control for a tenant",
            "counter",
            &self.tenants,
            |t| (tl(t), t.shed as f64),
        );
        series(
            &mut out,
            "dtu_fleet_tenant_violations_total",
            "Completions past a tenant's SLA deadline",
            "counter",
            &self.tenants,
            |t| (tl(t), t.violations as f64),
        );
        series(
            &mut out,
            "dtu_fleet_tenant_p99_ms",
            "Tenant p99 latency over the run, ms",
            "gauge",
            &self.tenants,
            |t| (tl(t), t.p99_ms),
        );
        series(
            &mut out,
            "dtu_fleet_tenant_availability",
            "Tenant completed/offered over the run",
            "gauge",
            &self.tenants,
            |t| (tl(t), t.availability),
        );
        let cl = |c: &FleetChipReport| format!("chip=\"{}\"", c.chip);
        series(
            &mut out,
            "dtu_fleet_chip_offered_total",
            "Requests routed to a chip",
            "counter",
            &self.chips_detail,
            |c| (cl(c), c.offered as f64),
        );
        series(
            &mut out,
            "dtu_fleet_chip_completed_total",
            "Requests a chip completed",
            "counter",
            &self.chips_detail,
            |c| (cl(c), c.completed as f64),
        );
        series(
            &mut out,
            "dtu_fleet_chip_shed_total",
            "Requests a chip shed",
            "counter",
            &self.chips_detail,
            |c| (cl(c), c.shed as f64),
        );
        series(
            &mut out,
            "dtu_fleet_chip_dead",
            "Whether the chip died during the run (1 = dead)",
            "gauge",
            &self.chips_detail,
            |c| (cl(c), if c.dead { 1.0 } else { 0.0 }),
        );
        series(
            &mut out,
            "dtu_fleet_chip_ewma_delay_ms",
            "Router EWMA of the chip's queueing delay, ms",
            "gauge",
            &self.chips_detail,
            |c| (cl(c), c.ewma_delay_ms),
        );
        out
    }

    /// The run's fleet counters for the telemetry registry.
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.add(Counter::FleetRoutedCells, self.routed_cells as f64);
        set.add(Counter::FleetReplicaMoves, self.replica_moves as f64);
        set.add(Counter::FleetChipsLost, self.chips_lost as f64);
        set
    }
}

fn tenant_json(t: &FleetTenantReport) -> String {
    let obj = JsonObject::new()
        .string("name", &t.name)
        .int("replicas", t.replicas as i64)
        .int("offered", t.offered as i64)
        .int("completed", t.completed as i64)
        .int("shed", t.shed as i64)
        .int("violations", t.violations as i64)
        .int("fault_dropped", t.fault_dropped as i64)
        .raw("p50_ms", &number(t.p50_ms))
        .raw("p99_ms", &number(t.p99_ms))
        .raw("mean_ms", &number(t.mean_ms))
        .raw("max_ms", &number(t.max_ms))
        .raw("availability", &number(t.availability));
    match t.roll_availability {
        Some(a) => obj.raw("roll_availability", &number(a)),
        None => obj.raw("roll_availability", "null"),
    }
    .build()
}

fn chip_json(c: &FleetChipReport) -> String {
    JsonObject::new()
        .int("chip", c.chip as i64)
        .int("card", c.card as i64)
        .int("offered", c.offered as i64)
        .int("completed", c.completed as i64)
        .int("shed", c.shed as i64)
        .int("fault_dropped", c.fault_dropped as i64)
        .int("groups_lost", c.groups_lost as i64)
        .raw("dead", if c.dead { "true" } else { "false" })
        .string("version", &c.version)
        .raw("ewma_delay_ms", &number(c.ewma_delay_ms))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetReport {
        FleetReport {
            chips: 2,
            cards: 1,
            chip_name: "DTU 2.0 (Cloudblazer i20)".into(),
            duration_ms: 2000.0,
            epoch_ms: 1000.0,
            epochs: 2,
            seed: 7,
            offered: 100,
            completed: 90,
            shed: 8,
            violations: 3,
            retries: 0,
            fault_dropped: 2,
            faults_injected: 6,
            routed_cells: 16,
            replica_moves: 1,
            chips_lost: 1,
            chips_rolled: 0,
            load_ratio: 1.5,
            tenants: vec![FleetTenantReport {
                name: "resnet50".into(),
                replicas: 2,
                offered: 100,
                completed: 90,
                shed: 8,
                violations: 3,
                fault_dropped: 2,
                p50_ms: 4.0,
                p99_ms: 9.0,
                mean_ms: 4.5,
                max_ms: 11.0,
                availability: 0.9,
                roll_availability: None,
            }],
            chips_detail: vec![
                FleetChipReport {
                    chip: 0,
                    card: 0,
                    offered: 60,
                    completed: 55,
                    shed: 3,
                    fault_dropped: 2,
                    groups_lost: 6,
                    dead: true,
                    version: "v1".into(),
                    ewma_delay_ms: 1.5,
                },
                FleetChipReport {
                    chip: 1,
                    card: 0,
                    offered: 40,
                    completed: 35,
                    shed: 5,
                    fault_dropped: 0,
                    groups_lost: 0,
                    dead: false,
                    version: "v1".into(),
                    ewma_delay_ms: 0.5,
                },
            ],
            cache: CacheStats {
                memory_hits: 3,
                disk_hits: 0,
                misses: 1,
            },
        }
    }

    #[test]
    fn json_excludes_cache_but_table_shows_it() {
        let r = sample();
        let json = r.to_json();
        assert!(!json.contains("memory_hits"), "cache is table-only");
        assert!(json.contains("\"accounting_balanced\":true"));
        assert!(json.contains("\"roll_availability\":null"));
        let table = r.to_table();
        assert!(table.contains("cache: 3 memory + 0 disk hits, 1 misses"));
        assert!(table.contains("chips lost"));
    }

    #[test]
    fn accounting_invariant_checks_every_level() {
        let mut r = sample();
        assert!(r.accounting_balances());
        r.chips_detail[1].completed -= 1;
        assert!(!r.accounting_balances(), "a per-chip leak is caught");
        let mut r2 = sample();
        r2.offered += 1;
        assert!(!r2.accounting_balances(), "a fleet-level leak is caught");
    }

    #[test]
    fn prometheus_exposition_labels_tenants_and_chips() {
        let text = sample().to_prometheus();
        // Fleet counters come through the registry with HELP/TYPE.
        assert!(text.contains(
            "# HELP dtu_fleet_routed_cells_total Routing cells assigned by the fleet router"
        ));
        assert!(text.contains("# TYPE dtu_fleet_routed_cells_total counter"));
        assert!(text.contains("dtu_fleet_routed_cells_total 16"));
        assert!(text.contains("dtu_fleet_replica_moves_total 1"));
        assert!(text.contains("dtu_fleet_chips_lost_total 1"));
        // Per-tenant series carry the tenant label.
        assert!(text.contains("# TYPE dtu_fleet_tenant_p99_ms gauge"));
        assert!(text.contains("dtu_fleet_tenant_completed_total{tenant=\"resnet50\"} 90"));
        assert!(text.contains("dtu_fleet_tenant_p99_ms{tenant=\"resnet50\"} 9"));
        assert!(text.contains("dtu_fleet_tenant_availability{tenant=\"resnet50\"} 0.9"));
        // Per-chip series carry the chip label; dead chips read 1.
        assert!(text.contains("dtu_fleet_chip_offered_total{chip=\"0\"} 60"));
        assert!(text.contains("dtu_fleet_chip_dead{chip=\"0\"} 1"));
        assert!(text.contains("dtu_fleet_chip_dead{chip=\"1\"} 0"));
        assert!(text.contains("dtu_fleet_chip_ewma_delay_ms{chip=\"1\"} 0.5"));
        // Every HELP line has a matching TYPE line.
        let helps = text.matches("# HELP ").count();
        let types = text.matches("# TYPE ").count();
        assert_eq!(helps, types);
    }

    #[test]
    fn counters_export_the_fleet_metrics() {
        let set = sample().counters();
        assert_eq!(set.get(Counter::FleetRoutedCells), 16.0);
        assert_eq!(set.get(Counter::FleetReplicaMoves), 1.0);
        assert_eq!(set.get(Counter::FleetChipsLost), 1.0);
    }
}
