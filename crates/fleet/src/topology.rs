//! Fleet topology: which chips exist, on which cards, with which
//! [`ChipConfig`].
//!
//! The topology is deliberately just a flat, indexable list of chips —
//! chip index is the identity every other fleet layer (placement,
//! routing, deploys, reports) speaks in. Cards are bookkeeping for
//! reports and future card-level failure domains; they do not affect
//! scheduling. Because each chip carries its own [`ChipConfig`],
//! heterogeneous fleets (a rack mixing i10 and i20 boards) fall out
//! for free: the config *is* the single source of truth, and the
//! fingerprint-keyed placement in [`crate::place`] treats chips with
//! identical configs as sharing compiled artifacts.

use crate::FleetError;
use dtu_sim::ChipConfig;

/// One chip of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChip {
    /// Card the chip sits on.
    pub card: usize,
    /// Slot within the card.
    pub slot: usize,
    /// The chip's hardware configuration.
    pub config: ChipConfig,
}

/// An indexed set of chips across cards.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTopology {
    chips: Vec<FleetChip>,
    cards: usize,
}

impl FleetTopology {
    /// A fleet of `cards` × `chips_per_card` identical chips.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when either dimension is zero.
    pub fn homogeneous(
        cards: usize,
        chips_per_card: usize,
        config: &ChipConfig,
    ) -> Result<Self, FleetError> {
        if cards == 0 || chips_per_card == 0 {
            return Err(FleetError::Config(
                "fleet needs at least one card with at least one chip".into(),
            ));
        }
        let chips = (0..cards * chips_per_card)
            .map(|i| FleetChip {
                card: i / chips_per_card,
                slot: i % chips_per_card,
                config: config.clone(),
            })
            .collect();
        Ok(FleetTopology { chips, cards })
    }

    /// A fleet assembled from explicit chips (heterogeneous allowed).
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when `chips` is empty.
    pub fn from_chips(chips: Vec<FleetChip>) -> Result<Self, FleetError> {
        if chips.is_empty() {
            return Err(FleetError::Config("fleet needs at least one chip".into()));
        }
        let cards = chips.iter().map(|c| c.card + 1).max().unwrap_or(1);
        Ok(FleetTopology { chips, cards })
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the fleet has no chips (never true for a constructed
    /// topology; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Number of cards.
    pub fn cards(&self) -> usize {
        self.cards
    }

    /// The chip at `index`.
    pub fn chip(&self, index: usize) -> &FleetChip {
        &self.chips[index]
    }

    /// All chips, in index order.
    pub fn iter(&self) -> impl Iterator<Item = &FleetChip> + '_ {
        self.chips.iter()
    }

    /// How many tenants of `initial_groups` groups each the chip at
    /// `index` can host: tenants claim their groups within a single
    /// cluster, so capacity is per-cluster slots summed over clusters.
    pub fn chip_tenant_capacity(&self, index: usize, initial_groups: usize) -> usize {
        let cfg = &self.chips[index].config;
        let per_cluster = cfg.groups_per_cluster / initial_groups.max(1);
        cfg.clusters * per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_lays_out_cards_and_slots() {
        let t = FleetTopology::homogeneous(2, 3, &ChipConfig::dtu20()).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.cards(), 2);
        assert_eq!((t.chip(0).card, t.chip(0).slot), (0, 0));
        assert_eq!((t.chip(4).card, t.chip(4).slot), (1, 1));
        assert!(FleetTopology::homogeneous(0, 3, &ChipConfig::dtu20()).is_err());
        assert!(FleetTopology::homogeneous(2, 0, &ChipConfig::dtu20()).is_err());
    }

    #[test]
    fn tenant_capacity_counts_per_cluster_slots() {
        let t = FleetTopology::homogeneous(1, 1, &ChipConfig::dtu20()).unwrap();
        // i20: 2 clusters x 3 groups. Two-group tenants: one per cluster.
        assert_eq!(t.chip_tenant_capacity(0, 2), 2);
        assert_eq!(t.chip_tenant_capacity(0, 1), 6);
        assert_eq!(t.chip_tenant_capacity(0, 3), 2);
        // i10: 4 clusters x 1 group.
        let t10 = FleetTopology::homogeneous(1, 1, &ChipConfig::dtu10()).unwrap();
        assert_eq!(t10.chip_tenant_capacity(0, 1), 4);
        assert_eq!(t10.chip_tenant_capacity(0, 2), 0);
    }

    #[test]
    fn explicit_chips_may_mix_configs() {
        let chips = vec![
            FleetChip {
                card: 0,
                slot: 0,
                config: ChipConfig::dtu20(),
            },
            FleetChip {
                card: 1,
                slot: 0,
                config: ChipConfig::dtu10(),
            },
        ];
        let t = FleetTopology::from_chips(chips).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cards(), 2);
        assert_ne!(t.chip(0).config, t.chip(1).config);
        assert!(FleetTopology::from_chips(Vec::new()).is_err());
    }
}
