//! Cross-chip request routing: power-of-two-choices with deterministic
//! tie-breaking.
//!
//! Each routing epoch, every tenant's fleet-wide offered load is split
//! into small *cells* and each cell is assigned to one live replica by
//! the classic power-of-two-choices rule: draw two candidate replicas
//! from a seeded [`FaultRng`], score each by its projected epoch load
//! weighted by the router's EWMA of observed queueing delay, and send
//! the cell to the better one (lower chip index on an exact tie). The
//! projection is updated as cells are assigned, so one hot tenant
//! cannot pile all its cells onto the same replica.
//!
//! Determinism: the RNG seed is a content hash of (fleet seed, epoch,
//! tenant), cells are assigned in (tenant, cell) order, and ties break
//! by index — the routing table is a pure function of the inputs, so
//! fleet reports are byte-identical whatever `--jobs` executed the
//! resulting per-chip simulations.

use dtu_compiler::Fnv1a;
use dtu_faults::FaultRng;

/// Load-feedback state the router carries across epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterState {
    /// Per-chip EWMA of the observed mean queueing delay, ms.
    pub ewma_delay_ms: Vec<f64>,
    /// EWMA smoothing factor in `(0, 1]`.
    pub alpha: f64,
}

impl RouterState {
    /// Fresh state for `chips` chips (no delay observed yet).
    pub fn new(chips: usize) -> Self {
        RouterState {
            ewma_delay_ms: vec![0.0; chips],
            alpha: 0.4,
        }
    }

    /// Folds one epoch's observed mean queueing delay on `chip` into
    /// the EWMA.
    pub fn observe(&mut self, chip: usize, delay_ms: f64) {
        let prev = self.ewma_delay_ms[chip];
        self.ewma_delay_ms[chip] = prev + self.alpha * (delay_ms - prev);
    }
}

/// One slice of a tenant's epoch traffic bound for one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteCell {
    /// Tenant index.
    pub tenant: usize,
    /// Destination chip.
    pub chip: usize,
    /// Offered load of the cell, queries per simulated second.
    pub qps: f64,
}

/// The routing table for one epoch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochRoutes {
    /// Per-(tenant, chip) offered load, merged over cells and sorted
    /// by (tenant, chip).
    pub assignments: Vec<RouteCell>,
    /// Cells the router assigned (before merging).
    pub cells: u64,
}

impl EpochRoutes {
    /// The tenants and loads routed to `chip`, in tenant order.
    pub fn on_chip(&self, chip: usize) -> Vec<(usize, f64)> {
        self.assignments
            .iter()
            .filter(|c| c.chip == chip)
            .map(|c| (c.tenant, c.qps))
            .collect()
    }
}

/// The trace-id base for one (epoch, chip) serving simulation.
///
/// Per-chip request ids are small integers starting at zero; adding
/// this base turns them into fleet-unique trace ids that encode their
/// origin: bits 40.. hold `epoch + 1` (so a zero base — the default for
/// non-fleet runs — is never confused with epoch 0), bits 24..40 hold
/// the chip, and bits 0..24 hold the per-chip request counter. The
/// encoding lets every span of a routed request — router decision,
/// queue, batch, kernel — stitch into one cross-chip trace, and lets
/// [`trace_chip`] walk an exemplar back to the chip that served it.
pub fn trace_base(epoch: usize, chip: usize) -> u64 {
    ((epoch as u64 + 1) << 40) | ((chip as u64) << 24)
}

/// Decodes the owning chip from a fleet trace id; `None` for ids from
/// un-based (single-chip) runs.
pub fn trace_chip(id: u64) -> Option<usize> {
    if id >> 40 == 0 {
        return None;
    }
    Some(((id >> 24) & 0xFFFF) as usize)
}

/// Decodes the routing epoch from a fleet trace id; `None` for ids
/// from un-based (single-chip) runs.
pub fn trace_epoch(id: u64) -> Option<usize> {
    match id >> 40 {
        0 => None,
        e => Some((e - 1) as usize),
    }
}

/// The deterministic RNG stream for one (seed, epoch, tenant) routing
/// decision.
fn route_rng(seed: u64, epoch: usize, tenant: usize) -> FaultRng {
    let mut key = Fnv1a::new();
    key.write_str("fleet-route/");
    key.write_u64(seed);
    key.write_u64(epoch as u64);
    key.write_u64(tenant as u64);
    FaultRng::new(key.finish())
}

/// Routes every tenant's epoch load over its live replicas.
///
/// `tenant_qps[t]` is tenant `t`'s fleet-wide offered rate for the
/// epoch and `live_replicas[t]` its currently routable chips (dead and
/// draining chips already excluded); a tenant with no live replicas
/// routes nothing. `cells_per_replica` controls the granularity of
/// balancing: more cells approach an ideal split at the cost of more
/// per-chip tenant queues.
pub fn route_epoch(
    tenant_qps: &[f64],
    live_replicas: &[Vec<usize>],
    state: &RouterState,
    seed: u64,
    epoch: usize,
    cells_per_replica: usize,
) -> EpochRoutes {
    let mut projected = vec![0.0f64; state.ewma_delay_ms.len()];
    let mut per_pair: Vec<Vec<f64>> = live_replicas
        .iter()
        .map(|_| vec![0.0; state.ewma_delay_ms.len()])
        .collect();
    let mut cells = 0u64;
    for (t, replicas) in live_replicas.iter().enumerate() {
        let qps = tenant_qps[t];
        if replicas.is_empty() || qps <= 0.0 {
            continue;
        }
        let n_cells = replicas.len() * cells_per_replica.max(1);
        let cell_qps = qps / n_cells as f64;
        let mut rng = route_rng(seed, epoch, t);
        for _ in 0..n_cells {
            let chosen = if replicas.len() == 1 {
                replicas[0]
            } else {
                let a = replicas[rng.next_index(replicas.len())];
                let b = replicas[rng.next_index(replicas.len())];
                let score = |c: usize| projected[c] * (1.0 + state.ewma_delay_ms[c]);
                let (sa, sb) = (score(a), score(b));
                if sa < sb {
                    a
                } else if sb < sa {
                    b
                } else {
                    a.min(b)
                }
            };
            projected[chosen] += cell_qps;
            per_pair[t][chosen] += cell_qps;
            cells += 1;
        }
    }
    let mut assignments = Vec::new();
    for (t, loads) in per_pair.iter().enumerate() {
        for (chip, &qps) in loads.iter().enumerate() {
            if qps > 0.0 {
                assignments.push(RouteCell {
                    tenant: t,
                    chip,
                    qps,
                });
            }
        }
    }
    EpochRoutes { assignments, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_round_trip_their_origin() {
        let base = trace_base(3, 12);
        let id = base + 4071;
        assert_eq!(trace_chip(id), Some(12));
        assert_eq!(trace_epoch(id), Some(3));
        // Epoch 0 is distinguishable from the un-based default.
        let first = trace_base(0, 0) + 9;
        assert_eq!(trace_epoch(first), Some(0));
        assert_eq!(trace_chip(first), Some(0));
        // Plain single-chip runs (base 0) decode to nothing.
        assert_eq!(trace_chip(9), None);
        assert_eq!(trace_epoch(9), None);
    }

    #[test]
    fn routing_is_deterministic_and_conserves_load() {
        let state = RouterState::new(4);
        let replicas = vec![vec![0, 1, 2, 3], vec![1, 3]];
        let r1 = route_epoch(&[1000.0, 400.0], &replicas, &state, 7, 3, 2);
        let r2 = route_epoch(&[1000.0, 400.0], &replicas, &state, 7, 3, 2);
        assert_eq!(r1, r2);
        let total: f64 = r1.assignments.iter().map(|c| c.qps).sum();
        assert!((total - 1400.0).abs() < 1e-9);
        // Tenant 1 only ever lands on its replicas.
        assert!(r1
            .assignments
            .iter()
            .filter(|c| c.tenant == 1)
            .all(|c| c.chip == 1 || c.chip == 3));
    }

    #[test]
    fn power_of_two_choices_balances_uniform_traffic() {
        let state = RouterState::new(8);
        let replicas = vec![(0..8).collect::<Vec<_>>()];
        let mut per_chip = [0.0f64; 8];
        for epoch in 0..10 {
            let r = route_epoch(&[8000.0], &replicas, &state, 11, epoch, 4);
            for c in &r.assignments {
                per_chip[c.chip] += c.qps;
            }
        }
        let max = per_chip.iter().cloned().fold(0.0f64, f64::max);
        let min = per_chip.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0, "every chip serves some load");
        assert!(
            max / min <= 2.0,
            "p2c keeps the load ratio bounded: max {max} / min {min}"
        );
    }

    #[test]
    fn delay_feedback_steers_load_away() {
        let mut state = RouterState::new(2);
        // Chip 0 reports heavy queueing; chip 1 is idle.
        for _ in 0..5 {
            state.observe(0, 40.0);
            state.observe(1, 0.0);
        }
        let replicas = vec![vec![0, 1]];
        let r = route_epoch(&[1000.0], &replicas, &state, 3, 0, 8);
        let on = |chip| {
            r.assignments
                .iter()
                .filter(|c| c.chip == chip)
                .map(|c| c.qps)
                .sum::<f64>()
        };
        assert!(
            on(1) > on(0),
            "the slow chip receives less: {} vs {}",
            on(0),
            on(1)
        );
    }

    #[test]
    fn dead_tenants_and_zero_load_route_nothing() {
        let state = RouterState::new(2);
        let r = route_epoch(&[100.0, 100.0], &[vec![], vec![0]], &state, 1, 0, 2);
        assert!(r.assignments.iter().all(|c| c.tenant == 1));
        let r0 = route_epoch(&[0.0], &[vec![0, 1]], &state, 1, 0, 2);
        assert!(r0.assignments.is_empty());
        assert_eq!(r0.cells, 0);
    }
}
