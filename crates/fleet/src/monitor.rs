//! Fleet-wide observability: the [`FleetMonitor`] aggregator.
//!
//! Each chip-epoch simulation rides a per-chip
//! [`LiveMonitor`](dtu_serve::LiveMonitor) whose span labels and
//! exemplars carry a fleet-unique trace base
//! ([`trace_base`](crate::trace_base)): bits of every request id name
//! the (epoch, chip) that served it. At every routing-epoch barrier the
//! engine hands those monitors to the `FleetMonitor`, which merges
//! their windowed series and histograms — shifted from the epoch-local
//! clock onto the fleet clock — into per-tenant and per-chip rollups,
//! runs fleet-scope SLO burn-rate trackers over the merged windows
//! (via [`SloTracker::fold_window`]), and attributes badness to (chip,
//! tenant) pairs: deadline violations, fault drops, and — when a chip
//! dies — the load it was carrying but could no longer serve.
//!
//! The monitor is strictly observational. The engine's
//! [`FleetReport`](crate::FleetReport) is built from the plain
//! simulation results alone, so a monitored run's JSON stays
//! byte-identical to an unmonitored one (asserted by the engine
//! tests), exactly like the per-chip `LiveMonitor` contract.
//!
//! On a burn-rate transition or a [`ChipKill`](crate::ChipKill) the
//! monitor freezes the offending chip's fleet-time span ring together
//! with the retained routing-decision markers into one [`FlightDump`],
//! loadable in Perfetto like any other dump — the cross-chip "black
//! box" of what the fleet was doing leading up to the incident.

use crate::route::EpochRoutes;
use dtu_serve::LiveMonitor;
use dtu_telemetry::clock::NS_PER_MS;
use dtu_telemetry::flight::MAX_DUMPS;
use dtu_telemetry::json::{array, number, JsonObject};
use dtu_telemetry::slo::{EVAL_WINDOW_NS, FAST_WINDOW_NS};
use dtu_telemetry::{
    AlertEvent, AlertKind, FlightDump, FlightRecorder, Layer, SloSpec, SloTracker, Span,
    TimeSeries, WindowedHistogram,
};
use std::collections::VecDeque;

/// Spans retained per chip in the fleet-time rings.
pub const CHIP_RING_CAPACITY: usize = 4096;
/// Routing-decision markers retained for dumps.
pub const ROUTE_RING_CAPACITY: usize = 512;
/// Windows retained per fleet rollup ring (~2 min of history).
const RING_WINDOWS: usize = 128;

/// One tenant's fleet-scope rollup.
#[derive(Debug, Clone)]
struct TenantScope {
    name: String,
    completions: TimeSeries,
    violations: TimeSeries,
    sheds: TimeSeries,
    fault_drops: TimeSeries,
    latency: WindowedHistogram,
    slo: SloTracker,
}

impl TenantScope {
    fn new(name: &str, deadline_ms: f64) -> Self {
        let series = || TimeSeries::new(EVAL_WINDOW_NS, RING_WINDOWS);
        TenantScope {
            name: name.to_string(),
            completions: series(),
            violations: series(),
            sheds: series(),
            fault_drops: series(),
            latency: WindowedHistogram::new(EVAL_WINDOW_NS, RING_WINDOWS),
            slo: SloTracker::new(SloSpec::new(
                format!("{name} p99<{deadline_ms}ms"),
                0.99,
                deadline_ms,
            )),
        }
    }
}

/// One chip's fleet-scope rollup.
#[derive(Debug, Clone)]
struct ChipScope {
    completions: TimeSeries,
    violations: TimeSeries,
    sheds: TimeSeries,
    latency: WindowedHistogram,
    /// The chip's spans on the fleet clock (absorbed every epoch).
    ring: FlightRecorder,
    dead: bool,
}

impl ChipScope {
    fn new() -> Self {
        let series = || TimeSeries::new(EVAL_WINDOW_NS, RING_WINDOWS);
        ChipScope {
            completions: series(),
            violations: series(),
            sheds: series(),
            latency: WindowedHistogram::new(EVAL_WINDOW_NS, RING_WINDOWS),
            ring: FlightRecorder::new(CHIP_RING_CAPACITY),
            dead: false,
        }
    }
}

/// One fleet-scope alert, tagged with where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAlert {
    /// Routing epoch during which the alert transitioned.
    pub epoch: usize,
    /// The tenant whose SLO transitioned (`None` for whole-chip
    /// events like a kill).
    pub tenant: Option<usize>,
    /// The chip the burn is attributed to, when one dominates.
    pub chip: Option<usize>,
    /// The underlying alert, on the fleet clock.
    pub event: AlertEvent,
}

/// One tenant's row of a fleet dashboard frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTenantRow {
    /// Tenant (model) name.
    pub name: String,
    /// Completions per simulated second over the trailing fast window.
    pub qps: f64,
    /// Sheds per simulated second.
    pub shed_rate: f64,
    /// Fault drops per simulated second.
    pub drop_rate: f64,
    /// Windowed p99 latency, ms.
    pub p99_ms: f64,
    /// Fast-window SLO burn rate.
    pub burn_fast: f64,
    /// Slow-window SLO burn rate.
    pub burn_slow: f64,
    /// Whether the tenant's fleet-scope alert is firing.
    pub firing: bool,
}

/// One chip's row of a fleet dashboard frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChipRow {
    /// Chip index.
    pub chip: usize,
    /// Completions per simulated second over the trailing fast window.
    pub qps: f64,
    /// Sheds per simulated second.
    pub shed_rate: f64,
    /// Windowed p99 latency, ms.
    pub p99_ms: f64,
    /// The chip's windowed violation ratio against the tightest tenant
    /// error budget (a per-chip burn rate).
    pub burn: f64,
    /// Whether the chip died.
    pub dead: bool,
    /// FIRE marker: the chip is dead, or some tenant is firing and
    /// this chip's burn is at or past the alert threshold.
    pub fire: bool,
}

/// One rendered dashboard frame (what `topsexec fleet top` replays).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFrame {
    /// Routing epoch the frame closes.
    pub epoch: usize,
    /// Frame time (the epoch's end), ms on the fleet clock.
    pub t_ms: f64,
    /// Per-tenant rows, in tenant order.
    pub tenants: Vec<FleetTenantRow>,
    /// Per-chip rows, in chip order.
    pub chips: Vec<FleetChipRow>,
    /// Cumulative alerts emitted up to this frame.
    pub alerts: usize,
}

/// One (chip, tenant) pair's share of the fleet's badness.
#[derive(Debug, Clone, PartialEq)]
pub struct OffenderShare {
    /// Chip index.
    pub chip: usize,
    /// Tenant (model) name.
    pub tenant: String,
    /// Badness charged to the pair: deadline violations, fault drops,
    /// and unserved load on a killed chip.
    pub bad: f64,
    /// The pair's fraction of all badness (0 when the fleet is clean).
    pub share: f64,
}

/// Engine-side view of one tenant slice, enough for attribution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SliceStats {
    pub tenant: usize,
    pub offered: u64,
    pub violations: u64,
    pub fault_dropped: u64,
}

/// The fleet-scope observability aggregator (see the module docs).
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    tenants: Vec<TenantScope>,
    chips: Vec<ChipScope>,
    route_ring: VecDeque<Span>,
    alerts: Vec<FleetAlert>,
    frames: Vec<FleetFrame>,
    dumps: Vec<FlightDump>,
    triggers: u64,
    /// Badness per (chip, tenant) pair.
    bad: Vec<Vec<f64>>,
    /// Offered load per (chip, tenant) in the chip's last served epoch
    /// — what an epoch-start kill is charged with.
    last_offered: Vec<Vec<f64>>,
    /// Tightest tenant error budget (the per-chip burn denominator).
    min_budget: f64,
    /// Lowest tenant burn threshold (the FIRE marker cutoff).
    min_threshold: f64,
    next_eval_ns: f64,
    max_seen_ns: f64,
}

impl FleetMonitor {
    /// Creates a monitor for `chips` chips and the given tenants, each
    /// `(name, sla_deadline_ms)` pair becoming one fleet-scope
    /// p99-meets-deadline SLO.
    pub fn new(chips: usize, tenants: &[(&str, f64)]) -> Self {
        let scopes: Vec<TenantScope> = tenants
            .iter()
            .map(|&(name, deadline)| TenantScope::new(name, deadline))
            .collect();
        let min_budget = scopes
            .iter()
            .map(|t| t.slo.spec.error_budget)
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        let min_threshold = scopes
            .iter()
            .map(|t| t.slo.spec.burn_threshold)
            .fold(f64::INFINITY, f64::min)
            .min(1e9);
        FleetMonitor {
            tenants: scopes,
            chips: (0..chips).map(|_| ChipScope::new()).collect(),
            route_ring: VecDeque::new(),
            alerts: Vec::new(),
            frames: Vec::new(),
            dumps: Vec::new(),
            triggers: 0,
            bad: vec![vec![0.0; tenants.len()]; chips],
            last_offered: vec![vec![0.0; tenants.len()]; chips],
            min_budget,
            min_threshold,
            next_eval_ns: EVAL_WINDOW_NS,
            max_seen_ns: 0.0,
        }
    }

    // ---- engine hooks (routing-epoch sync points) ----------------------

    /// Records one epoch's routing decisions as marker spans — the
    /// context a flight dump wraps around the offending chip's ring.
    pub(crate) fn on_route(&mut self, epoch: usize, epoch_start_ms: f64, routes: &EpochRoutes) {
        let at_ns = epoch_start_ms * NS_PER_MS;
        for cell in &routes.assignments {
            let name = self
                .tenants
                .get(cell.tenant)
                .map_or("?", |t| t.name.as_str());
            let span = Span::marker(
                Layer::Serving,
                cell.tenant as u32,
                format!(
                    "route e{epoch} {name}->chip{} {:.0}qps",
                    cell.chip, cell.qps
                ),
                at_ns,
            );
            if self.route_ring.len() == ROUTE_RING_CAPACITY {
                self.route_ring.pop_front();
            }
            self.route_ring.push_back(span);
        }
    }

    /// Absorbs one chip's epoch at the barrier: merges the per-chip
    /// monitor's windows and spans onto the fleet clock (offset by the
    /// epoch start) and updates (chip, tenant) attribution from the
    /// engine's authoritative slice accounting.
    // One argument per fact the barrier knows; bundling them into a
    // struct would just move the field list one hop away.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn absorb_chip_epoch(
        &mut self,
        epoch_start_ms: f64,
        chip: usize,
        assignment: &[(usize, f64)],
        epoch_len_ms: f64,
        slices: &[SliceStats],
        live: Option<&LiveMonitor>,
        killed: bool,
    ) {
        let offset_ns = epoch_start_ms * NS_PER_MS;
        if let Some(live) = live {
            for (i, &(t, _)) in assignment.iter().enumerate() {
                let Some(tl) = live.tenants().get(i) else {
                    continue;
                };
                if let Some(ts) = self.tenants.get_mut(t) {
                    ts.completions.merge_offset(&tl.completions, offset_ns);
                    ts.violations.merge_offset(&tl.violations, offset_ns);
                    ts.sheds.merge_offset(&tl.sheds, offset_ns);
                    ts.fault_drops.merge_offset(&tl.fault_drops, offset_ns);
                    ts.latency.merge_offset(&tl.latency, offset_ns);
                }
                let cs = &mut self.chips[chip];
                cs.completions.merge_offset(&tl.completions, offset_ns);
                cs.violations.merge_offset(&tl.violations, offset_ns);
                cs.sheds.merge_offset(&tl.sheds, offset_ns);
                cs.latency.merge_offset(&tl.latency, offset_ns);
            }
            for s in live.flight.spans() {
                let mut shifted = s.clone();
                shifted.start_ns += offset_ns;
                shifted.end_ns += offset_ns;
                self.chips[chip].ring.record(shifted);
            }
            self.max_seen_ns = self.max_seen_ns.max(offset_ns + live.now_ns());
        }
        for s in slices {
            self.last_offered[chip][s.tenant] = s.offered as f64;
            let mut bad = (s.violations + s.fault_dropped) as f64;
            if killed {
                // A mid-epoch kill: charge the load routed to the chip
                // that it never got to serve (clients saw it vanish).
                let routed = assignment
                    .iter()
                    .find(|&&(t, _)| t == s.tenant)
                    .map_or(0.0, |&(_, qps)| qps);
                let expected = routed * epoch_len_ms / 1e3;
                bad += (expected - s.offered as f64).max(0.0);
            }
            self.bad[chip][s.tenant] += bad;
        }
    }

    /// Pages for a whole-chip loss: marks the chip dead, charges it the
    /// load it carried in its last served epoch when it died *before*
    /// serving this one (`charge_last_epoch`), emits a fault alert, and
    /// freezes the chip's ring into a flight dump.
    pub(crate) fn on_chip_kill(
        &mut self,
        epoch: usize,
        at_ms: f64,
        chip: usize,
        charge_last_epoch: bool,
    ) {
        let at_ns = at_ms * NS_PER_MS;
        if let Some(cs) = self.chips.get_mut(chip) {
            cs.dead = true;
        }
        if charge_last_epoch {
            for t in 0..self.tenants.len() {
                self.bad[chip][t] += self.last_offered[chip][t];
            }
        }
        let event = AlertEvent {
            t_ns: at_ns,
            slo: format!("chip{chip} killed"),
            kind: AlertKind::Fault,
            burn_fast: 0.0,
            burn_slow: 0.0,
            exemplar: self.resolving_exemplar(chip),
        };
        self.alerts.push(FleetAlert {
            epoch,
            tenant: None,
            chip: Some(chip),
            event,
        });
        self.dump_chip(format!("chip{chip} killed"), at_ns, chip);
    }

    /// Closes one routing epoch: folds every completed 1 s window into
    /// the fleet-scope SLO trackers, evaluates burn rates (attributing
    /// any transition to the top offending chip), and pushes one
    /// dashboard frame.
    pub(crate) fn end_epoch(&mut self, epoch: usize, epoch_end_ms: f64) {
        self.fold_until(epoch, epoch_end_ms * NS_PER_MS);
        let frame = self.frame_at(epoch, epoch_end_ms);
        self.frames.push(frame);
    }

    /// Folds any windows still pending after the final epoch (drained
    /// completions land past the horizon).
    pub(crate) fn finish(&mut self, last_epoch: usize) {
        let last = (self.max_seen_ns / EVAL_WINDOW_NS).ceil() * EVAL_WINDOW_NS;
        self.fold_until(last_epoch, last);
    }

    fn fold_until(&mut self, epoch: usize, end_ns: f64) {
        while self.next_eval_ns <= end_ns {
            let at = self.next_eval_ns;
            let w = at - EVAL_WINDOW_NS;
            for t in 0..self.tenants.len() {
                let event = {
                    let ts = &mut self.tenants[t];
                    let completed = ts.completions.sum_over(w, 0.0).round() as u64;
                    let violated = ts.violations.sum_over(w, 0.0).round() as u64;
                    ts.slo.fold_window(w, completed, violated);
                    let exemplar = ts
                        .latency
                        .exemplar_over(at, ts.slo.spec.fast_window_ns)
                        .map(|e| e.span_id);
                    ts.slo.evaluate(at, exemplar)
                };
                if let Some(event) = event {
                    let chip = self.top_offender_chip(t);
                    if event.kind == AlertKind::BurnRate {
                        if let Some(c) = chip {
                            self.dump_chip(format!("alert {} (chip{c})", event.slo), at, c);
                        }
                    }
                    self.alerts.push(FleetAlert {
                        epoch,
                        tenant: Some(t),
                        chip,
                        event,
                    });
                }
            }
            self.next_eval_ns += EVAL_WINDOW_NS;
        }
    }

    /// The chip carrying the most badness for tenant `t`, when any.
    fn top_offender_chip(&self, t: usize) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (chip, row) in self.bad.iter().enumerate() {
            let b = row[t];
            if b <= 0.0 {
                continue;
            }
            let better = match best {
                Some((bb, _)) => b > bb,
                None => true,
            };
            if better {
                best = Some((b, chip));
            }
        }
        best.map(|(_, chip)| chip)
    }

    fn dump_chip(&mut self, reason: String, at_ns: f64, chip: usize) {
        self.triggers += 1;
        if self.dumps.len() >= MAX_DUMPS {
            return;
        }
        let mut spans: Vec<Span> = self.route_ring.iter().cloned().collect();
        if let Some(cs) = self.chips.get(chip) {
            spans.extend(cs.ring.spans().cloned());
        }
        spans.sort_by(|a, b| {
            a.start_ns
                .partial_cmp(&b.start_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.dumps.push(FlightDump {
            reason,
            at_ns,
            spans,
        });
    }

    fn frame_at(&self, epoch: usize, t_ms: f64) -> FleetFrame {
        let now = t_ms * NS_PER_MS;
        let span = FAST_WINDOW_NS;
        let tenants = self
            .tenants
            .iter()
            .map(|ts| FleetTenantRow {
                name: ts.name.clone(),
                qps: ts.completions.rate_per_sec(now, span),
                shed_rate: ts.sheds.rate_per_sec(now, span),
                drop_rate: ts.fault_drops.rate_per_sec(now, span),
                p99_ms: ts.latency.merged_over(now, span).quantile(0.99),
                burn_fast: ts.slo.burn_fast(now),
                burn_slow: ts.slo.burn_slow(now),
                firing: ts.slo.firing(),
            })
            .collect();
        let any_firing = self.tenants.iter().any(|t| t.slo.firing());
        let chips = self
            .chips
            .iter()
            .enumerate()
            .map(|(c, cs)| {
                let done = cs.completions.sum_over(now, span);
                let burn = if done > 0.0 {
                    // max guards the tiny negative residue float
                    // accumulation can leave in an all-zero window.
                    (cs.violations.sum_over(now, span).max(0.0) / done) / self.min_budget
                } else {
                    0.0
                };
                FleetChipRow {
                    chip: c,
                    qps: cs.completions.rate_per_sec(now, span),
                    shed_rate: cs.sheds.rate_per_sec(now, span),
                    p99_ms: cs.latency.merged_over(now, span).quantile(0.99),
                    burn,
                    dead: cs.dead,
                    fire: cs.dead || (any_firing && burn >= self.min_threshold),
                }
            })
            .collect();
        FleetFrame {
            epoch,
            t_ms,
            tenants,
            chips,
            alerts: self.alerts.len(),
        }
    }

    // ---- operator-facing accessors -------------------------------------

    /// Per-epoch dashboard frames, oldest first.
    pub fn frames(&self) -> &[FleetFrame] {
        &self.frames
    }

    /// Every fleet-scope alert, in fleet-clock order.
    pub fn alerts(&self) -> &[FleetAlert] {
        &self.alerts
    }

    /// Retained flight dumps (first incidents win, like the per-chip
    /// recorder).
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Total dump triggers, including those past the retention cap.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// The top-`k` offending (chip, tenant) pairs by attributed
    /// badness, largest first (ties break by chip then tenant index).
    pub fn top_offenders(&self, k: usize) -> Vec<OffenderShare> {
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        let mut total = 0.0;
        for (chip, row) in self.bad.iter().enumerate() {
            for (t, &b) in row.iter().enumerate() {
                if b > 0.0 {
                    pairs.push((chip, t, b));
                    total += b;
                }
            }
        }
        pairs.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        pairs
            .into_iter()
            .take(k)
            .map(|(chip, t, bad)| OffenderShare {
                chip,
                tenant: self.tenants[t].name.clone(),
                bad,
                share: if total > 0.0 { bad / total } else { 0.0 },
            })
            .collect()
    }

    /// The newest exemplar of `chip` whose request span is still held
    /// in the chip's fleet-time ring — a trace id guaranteed to resolve
    /// in a dump of that ring.
    pub fn resolving_exemplar(&self, chip: usize) -> Option<u64> {
        let cs = self.chips.get(chip)?;
        let windows: Vec<_> = cs.latency.windows().collect();
        for w in windows.iter().rev() {
            let Some(e) = w.exemplar else {
                continue;
            };
            let label = format!("req {}", e.span_id);
            let late = format!("{label} (late)");
            if cs.ring.spans().any(|s| s.label == label || s.label == late) {
                return Some(e.span_id);
            }
        }
        None
    }

    /// Forces a flight dump of `chip`'s ring plus the routing context,
    /// as if an alert had frozen it. `topsexec fleet --flight-out`
    /// uses this when a run ends without any incident, so the flag
    /// always produces a loadable trace.
    pub fn snapshot_chip(&mut self, chip: usize, reason: &str) {
        let at_ns = self.max_seen_ns;
        self.dump_chip(reason.to_string(), at_ns, chip);
    }

    /// Whether the monitor marked `chip` dead.
    pub fn chip_dead(&self, chip: usize) -> bool {
        self.chips.get(chip).is_some_and(|c| c.dead)
    }

    /// The deterministic SLO compliance report (`topsexec fleet
    /// --slo`): per-tenant objective, totals, budget consumption, and
    /// firing state, plus the top offending (chip, tenant) pairs.
    pub fn compliance_json(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, ts)| {
                let burn_alerts = self
                    .alerts
                    .iter()
                    .filter(|a| a.tenant == Some(t) && a.event.kind == AlertKind::BurnRate)
                    .count();
                JsonObject::new()
                    .string("tenant", &ts.name)
                    .string("slo", &ts.slo.spec.name)
                    .int("completed", ts.slo.completed() as i64)
                    .int("violated", ts.slo.violated() as i64)
                    .raw("budget_consumed", &number(ts.slo.budget_consumed()))
                    .raw(
                        "compliant",
                        if ts.slo.budget_consumed() <= 1.0 {
                            "true"
                        } else {
                            "false"
                        },
                    )
                    .raw("firing", if ts.slo.firing() { "true" } else { "false" })
                    .int("burn_alerts", burn_alerts as i64)
                    .build()
            })
            .collect();
        let offenders: Vec<String> = self
            .top_offenders(5)
            .iter()
            .map(|o| {
                JsonObject::new()
                    .int("chip", o.chip as i64)
                    .string("tenant", &o.tenant)
                    .raw("bad", &number(o.bad))
                    .raw("share", &number(o.share))
                    .build()
            })
            .collect();
        let dead: Vec<String> = self
            .chips
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dead)
            .map(|(i, _)| i.to_string())
            .collect();
        JsonObject::new()
            .int("chips", self.chips.len() as i64)
            .raw("chips_dead", &array(&dead))
            .int("alerts", self.alerts.len() as i64)
            .int("dumps", self.dumps.len() as i64)
            .raw("tenants", &array(&tenants))
            .raw("top_offenders", &array(&offenders))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{trace_base, trace_chip, RouteCell};
    use dtu_serve::{LiveConfig, LiveMonitor, TenantSpec};

    /// A per-chip monitor with the fleet trace base for (epoch, chip).
    fn chip_live(epoch: usize, chip: usize) -> LiveMonitor {
        let mut m = LiveMonitor::new(LiveConfig {
            trace_base: trace_base(epoch, chip),
            ..LiveConfig::default()
        });
        m.begin(&[TenantSpec::poisson("m", 0, 100.0)]);
        m
    }

    fn routes_for(cells: &[(usize, usize, f64)]) -> EpochRoutes {
        EpochRoutes {
            assignments: cells
                .iter()
                .map(|&(tenant, chip, qps)| RouteCell { tenant, chip, qps })
                .collect(),
            cells: cells.len() as u64,
        }
    }

    #[test]
    fn merged_exemplar_resolves_to_the_owning_chip() {
        // Two chips serve the same tenant in epoch 0; chip 1 has the
        // slowest request. After the per-chip -> per-tenant merge the
        // tenant-level exemplar must still be a real span id whose
        // encoding names chip 1, and whose span lives in chip 1's ring.
        let mut fm = FleetMonitor::new(2, &[("m", 50.0)]);
        let mut live0 = chip_live(0, 0);
        live0.on_complete_request(0.3e9, 0, 4, 6.0, false);
        live0.finish(1e9);
        let mut live1 = chip_live(0, 1);
        live1.on_complete_request(0.4e9, 0, 9, 30.0, false);
        live1.finish(1e9);
        fm.absorb_chip_epoch(0.0, 0, &[(0, 50.0)], 1000.0, &[], Some(&live0), false);
        fm.absorb_chip_epoch(0.0, 1, &[(0, 50.0)], 1000.0, &[], Some(&live1), false);
        let e = fm.tenants[0]
            .latency
            .exemplar_over(1e9, 2e9)
            .expect("merged exemplar survives");
        assert_eq!(e.span_id, trace_base(0, 1) + 9, "slowest chip wins");
        assert_eq!(trace_chip(e.span_id), Some(1), "id encodes the chip");
        let label = format!("req {}", e.span_id);
        assert!(
            fm.chips[1].ring.spans().any(|s| s.label == label),
            "the exemplar's span is in the owning chip's ring"
        );
        assert_eq!(fm.resolving_exemplar(1), Some(e.span_id));
        // Chip 0's rollup only saw its own traffic.
        assert_eq!(fm.chips[0].completions.total(), 1.0);
        assert_eq!(fm.tenants[0].completions.total(), 2.0);
    }

    #[test]
    fn sustained_fleet_burn_alerts_and_attributes_the_hot_chip() {
        let mut fm = FleetMonitor::new(2, &[("m", 5.0)]);
        // Chip 1 violates half its deadline budget every epoch; chip 0
        // stays clean. Ten 1 s epochs of sustained burn.
        for epoch in 0..10 {
            let start = epoch as f64 * 1000.0;
            fm.on_route(epoch, start, &routes_for(&[(0, 0, 20.0), (0, 1, 20.0)]));
            let mut live0 = chip_live(epoch, 0);
            let mut live1 = chip_live(epoch, 1);
            for j in 0..20u64 {
                let t = j as f64 * 4e7;
                live0.on_complete_request(t, 0, j, 1.0, false);
                let late = j % 2 == 0;
                live1.on_complete_request(t, 0, j, if late { 40.0 } else { 1.0 }, late);
            }
            live0.finish(1e9);
            live1.finish(1e9);
            let s0 = [SliceStats {
                tenant: 0,
                offered: 20,
                violations: 0,
                fault_dropped: 0,
            }];
            let s1 = [SliceStats {
                tenant: 0,
                offered: 20,
                violations: 10,
                fault_dropped: 0,
            }];
            fm.absorb_chip_epoch(start, 0, &[(0, 20.0)], 1000.0, &s0, Some(&live0), false);
            fm.absorb_chip_epoch(start, 1, &[(0, 20.0)], 1000.0, &s1, Some(&live1), false);
            fm.end_epoch(epoch, start + 1000.0);
        }
        fm.finish(9);
        let fired: Vec<_> = fm
            .alerts()
            .iter()
            .filter(|a| a.event.kind == AlertKind::BurnRate)
            .collect();
        assert_eq!(fired.len(), 1, "steady breach fires exactly once");
        assert_eq!(fired[0].tenant, Some(0));
        assert_eq!(fired[0].chip, Some(1), "burn attributed to the hot chip");
        // The alert froze chip 1's ring with the routing context.
        let dump = &fm.dumps()[0];
        assert!(dump.reason.contains("chip1"));
        assert!(dump.spans.iter().any(|s| s.label.starts_with("route e")));
        // The alert's exemplar (captured at alert time) resolves in the
        // frozen dump and decodes to the hot chip; the live ring still
        // resolves the end-of-run exemplar.
        let id = fired[0].event.exemplar.expect("alert carries an exemplar");
        assert!(dump.resolves_label(&format!("req {id}")));
        assert_eq!(trace_chip(id), Some(1));
        let live_id = fm.resolving_exemplar(1).expect("live exemplar resolves");
        assert_eq!(trace_chip(live_id), Some(1));
        // Frames carry the burn and the FIRE marker.
        let last = fm.frames().last().expect("one frame per epoch");
        assert!(last.tenants[0].firing);
        assert!(last.chips[1].burn > last.chips[0].burn);
        assert!(last.chips[1].fire && !last.chips[0].fire);
        // The compliance report agrees.
        let json = fm.compliance_json();
        assert!(json.contains("\"compliant\":false"));
        assert!(json.contains("\"burn_alerts\":1"));
        let top = fm.top_offenders(1);
        assert_eq!(top[0].chip, 1);
        assert!(top[0].share > 0.9, "chip 1 owns the badness");
    }

    #[test]
    fn epoch_start_kill_charges_the_last_served_epoch() {
        let mut fm = FleetMonitor::new(2, &[("m", 50.0)]);
        let mut live1 = chip_live(0, 1);
        live1.on_complete_request(0.2e9, 0, 3, 2.0, false);
        live1.finish(1e9);
        let s1 = [SliceStats {
            tenant: 0,
            offered: 40,
            violations: 0,
            fault_dropped: 0,
        }];
        fm.absorb_chip_epoch(0.0, 1, &[(0, 40.0)], 1000.0, &s1, Some(&live1), false);
        fm.end_epoch(0, 1000.0);
        // Chip 1 dies on the next epoch boundary, before serving.
        fm.on_chip_kill(1, 1000.0, 1, true);
        assert!(fm.chip_dead(1));
        let top = fm.top_offenders(1);
        assert_eq!(top[0].chip, 1);
        assert_eq!(top[0].bad, 40.0, "charged its last epoch's load");
        // The kill paged: fault alert with a resolving exemplar + dump.
        let kill = fm
            .alerts()
            .iter()
            .find(|a| a.event.kind == AlertKind::Fault)
            .expect("kill pages");
        assert_eq!(kill.chip, Some(1));
        let id = kill.event.exemplar.expect("kill alert carries exemplar");
        assert_eq!(trace_chip(id), Some(1));
        assert!(fm.dumps()[0].resolves_label(&format!("req {id}")));
        assert!(fm.frames()[0].t_ms == 1000.0);
    }

    #[test]
    fn mid_epoch_kill_charges_unserved_load() {
        let mut fm = FleetMonitor::new(1, &[("m", 50.0)]);
        // 100 qps routed, but the chip died at 250 ms: 25 offered.
        let s = [SliceStats {
            tenant: 0,
            offered: 25,
            violations: 0,
            fault_dropped: 0,
        }];
        fm.absorb_chip_epoch(0.0, 0, &[(0, 100.0)], 1000.0, &s, None, true);
        fm.on_chip_kill(0, 250.0, 0, false);
        let top = fm.top_offenders(1);
        assert_eq!(top[0].chip, 0);
        assert_eq!(top[0].bad, 75.0, "expected 100 - 25 offered");
        assert_eq!(fm.triggers(), 1);
    }
}
