//! The fleet scheduler: which chips host which (tenant, model)
//! replicas.
//!
//! Placement balances two forces. **Replication for throughput**: a
//! tenant asks for `replicas` copies (0 = one per chip) and the
//! scheduler spreads them over the least-loaded chips. **Locality for
//! compile sharing**: the placement key is the *artifact fingerprint* —
//! `graph_fingerprint` of the tenant's batch-1 graph folded with the
//! chip's [`ChipConfig`] — so on a heterogeneous fleet the scheduler
//! prefers chips whose config already has this artifact placed
//! somewhere, minimising the number of distinct compilations the
//! shared [`dtu_harness::SessionCache`] must perform. On a homogeneous
//! fleet every chip shares one fingerprint and the session compiles
//! exactly once fleet-wide, however many replicas exist (audited by
//! the workspace tests).
//!
//! Everything here is pure bookkeeping over sorted vectors — no hash
//! iteration, no randomness — so placement is a deterministic function
//! of (topology, tenants).

use crate::{FleetError, FleetTopology};
use dtu_compiler::{graph_fingerprint, Fnv1a};
use dtu_harness::SweepModel;
use std::collections::BTreeSet;

/// One tenant of the fleet: a model, a fleet-wide offered load, and
/// the per-chip serving policies its replicas run with.
pub struct FleetTenant<'m> {
    /// The model every replica serves.
    pub model: SweepModel<'m>,
    /// Fleet-wide offered load, queries per simulated second, split
    /// across replicas by the router.
    pub qps: f64,
    /// Replicas to place (0 = one on every chip).
    pub replicas: usize,
    /// Dynamic-batching cap each replica runs with.
    pub max_batch: usize,
    /// Dynamic-batching timeout, ms.
    pub batch_timeout_ms: f64,
    /// SLA deadline, ms.
    pub deadline_ms: f64,
    /// Admission queue cap per replica.
    pub queue_depth: usize,
    /// Groups each replica starts with (claimed within one cluster).
    pub initial_groups: usize,
    /// Whether replicas may autoscale their group count.
    pub autoscale: bool,
}

impl std::fmt::Debug for FleetTenant<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTenant")
            .field("model", &self.model.name())
            .field("qps", &self.qps)
            .field("replicas", &self.replicas)
            .finish()
    }
}

impl<'m> FleetTenant<'m> {
    /// A tenant with the default serving policies: dynamic batching to
    /// 16, 50 ms deadline, 256-deep queue, two groups, no autoscaling.
    pub fn new(model: SweepModel<'m>, qps: f64) -> Self {
        FleetTenant {
            model,
            qps,
            replicas: 0,
            max_batch: 16,
            batch_timeout_ms: 2.0,
            deadline_ms: 50.0,
            queue_depth: 256,
            initial_groups: 2,
            autoscale: false,
        }
    }
}

/// The fingerprint a (tenant, chip) pair compiles under: the tenant's
/// batch-1 graph content folded with the chip's configuration. Two
/// chips with equal configs share every artifact of a tenant, so this
/// is the placement key for compile locality.
pub fn artifact_key(tenant: &FleetTenant<'_>, topology: &FleetTopology, chip: usize) -> u64 {
    let mut key = Fnv1a::new();
    key.write_str("fleet-artifact/");
    key.write_u64(graph_fingerprint(&tenant.model.build(1)));
    key.write_debug(&topology.chip(chip).config);
    key.finish()
}

/// Where every tenant's replicas live.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlacement {
    /// `replicas[t]` = sorted chip indices hosting tenant `t`.
    pub replicas: Vec<Vec<usize>>,
    /// `hosted[c]` = tenants placed on chip `c` (capacity accounting).
    hosted: Vec<usize>,
    /// Artifact fingerprints already placed somewhere in the fleet.
    placed_keys: BTreeSet<u64>,
}

impl FleetPlacement {
    /// Tenants currently hosted on chip `chip`.
    pub fn hosted_on(&self, chip: usize) -> usize {
        self.hosted[chip]
    }

    /// Distinct artifact fingerprints the placement compiles.
    pub fn distinct_artifacts(&self) -> usize {
        self.placed_keys.len()
    }
}

/// Chooses the best chip for one more replica of `tenant`: the
/// candidate minimising `(hosted tenants, artifact novelty, index)`
/// among chips with free capacity that do not already host the tenant.
fn best_chip(
    tenant_idx: usize,
    tenant: &FleetTenant<'_>,
    topology: &FleetTopology,
    placement: &FleetPlacement,
    excluded: &[bool],
) -> Option<usize> {
    let mut best: Option<(usize, usize, usize)> = None;
    for (chip, &excluded) in excluded.iter().enumerate().take(topology.len()) {
        if excluded || placement.replicas[tenant_idx].contains(&chip) {
            continue;
        }
        if placement.hosted[chip] >= topology.chip_tenant_capacity(chip, tenant.initial_groups) {
            continue;
        }
        let novelty = usize::from(
            !placement
                .placed_keys
                .contains(&artifact_key(tenant, topology, chip)),
        );
        let score = (placement.hosted[chip], novelty, chip);
        if best.is_none_or(|b| score < b) {
            best = Some(score);
        }
    }
    best.map(|(_, _, chip)| chip)
}

/// Places every tenant's replicas across the fleet.
///
/// Tenants are placed in order; each replica goes to the chip with the
/// fewest hosted tenants, ties broken first by artifact locality
/// (prefer a chip config the tenant is already compiled for) and then
/// by chip index. A tenant asking for more replicas than the fleet has
/// capacity for is clamped to what fits.
///
/// # Errors
///
/// [`FleetError::Config`] when a tenant cannot be placed at all
/// (every chip full or the tenant's `initial_groups` exceeds every
/// cluster).
pub fn place(
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
) -> Result<FleetPlacement, FleetError> {
    if tenants.is_empty() {
        return Err(FleetError::Config("fleet needs at least one tenant".into()));
    }
    let mut placement = FleetPlacement {
        replicas: vec![Vec::new(); tenants.len()],
        hosted: vec![0; topology.len()],
        placed_keys: BTreeSet::new(),
    };
    let excluded = vec![false; topology.len()];
    for (t, tenant) in tenants.iter().enumerate() {
        let desired = if tenant.replicas == 0 {
            topology.len()
        } else {
            tenant.replicas.min(topology.len())
        };
        for _ in 0..desired {
            let Some(chip) = best_chip(t, tenant, topology, &placement, &excluded) else {
                break;
            };
            placement.replicas[t].push(chip);
            placement.hosted[chip] += 1;
            placement
                .placed_keys
                .insert(artifact_key(tenant, topology, chip));
        }
        if placement.replicas[t].is_empty() {
            return Err(FleetError::Config(format!(
                "tenant '{}' cannot be placed: no chip has a free {}-group slot",
                tenant.model.name(),
                tenant.initial_groups
            )));
        }
        placement.replicas[t].sort_unstable();
    }
    Ok(placement)
}

/// Re-places the replicas a dead chip hosted onto survivors, mirroring
/// the scheduler's original preference order. Returns the number of
/// replica moves performed; replicas that fit nowhere are simply
/// dropped (the tenant keeps its surviving replicas).
pub fn replace_after_loss(
    placement: &mut FleetPlacement,
    dead_chip: usize,
    alive: &[bool],
    topology: &FleetTopology,
    tenants: &[FleetTenant<'_>],
) -> usize {
    let mut excluded: Vec<bool> = alive.iter().map(|&a| !a).collect();
    excluded[dead_chip] = true;
    let mut moves = 0;
    for (t, tenant) in tenants.iter().enumerate() {
        let Some(pos) = placement.replicas[t].iter().position(|&c| c == dead_chip) else {
            continue;
        };
        placement.replicas[t].remove(pos);
        placement.hosted[dead_chip] = placement.hosted[dead_chip].saturating_sub(1);
        if let Some(chip) = best_chip(t, tenant, topology, placement, &excluded) {
            placement.replicas[t].push(chip);
            placement.replicas[t].sort_unstable();
            placement.hosted[chip] += 1;
            placement
                .placed_keys
                .insert(artifact_key(tenant, topology, chip));
            moves += 1;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_model_with;
    use dtu_sim::ChipConfig;

    fn toy(name: &str) -> SweepModel<'static> {
        // Channel count scales with the name so differently-named
        // tenants carry distinct artifact fingerprints.
        toy_model_with(name, 8 * name.len().max(1))
    }

    #[test]
    fn replicas_spread_over_least_loaded_chips() {
        let topo = FleetTopology::homogeneous(1, 4, &ChipConfig::dtu20()).unwrap();
        let mut a = FleetTenant::new(toy("aa"), 100.0);
        a.replicas = 2;
        let mut b = FleetTenant::new(toy("bbb"), 100.0);
        b.replicas = 2;
        let p = place(&topo, &[a, b]).unwrap();
        assert_eq!(p.replicas[0], vec![0, 1]);
        // Tenant b lands on the chips tenant a left empty.
        assert_eq!(p.replicas[1], vec![2, 3]);
        assert!((0..4).all(|c| p.hosted_on(c) == 1));
    }

    #[test]
    fn zero_replicas_means_everywhere() {
        let topo = FleetTopology::homogeneous(2, 2, &ChipConfig::dtu20()).unwrap();
        let p = place(&topo, &[FleetTenant::new(toy("aa"), 100.0)]).unwrap();
        assert_eq!(p.replicas[0], vec![0, 1, 2, 3]);
        // Homogeneous fleet: one artifact fingerprint, one compile.
        assert_eq!(p.distinct_artifacts(), 1);
    }

    #[test]
    fn heterogeneous_fleet_prefers_configs_already_compiled() {
        use crate::FleetChip;
        let chips = vec![
            FleetChip {
                card: 0,
                slot: 0,
                config: ChipConfig::dtu20(),
            },
            FleetChip {
                card: 0,
                slot: 1,
                config: ChipConfig::dtu10(),
            },
            FleetChip {
                card: 1,
                slot: 0,
                config: ChipConfig::dtu20(),
            },
        ];
        let topo = FleetTopology::from_chips(chips).unwrap();
        let mut t = FleetTenant::new(toy("aa"), 100.0);
        t.initial_groups = 1;
        t.replicas = 2;
        let p = place(&topo, &[t]).unwrap();
        // First replica on chip 0; the second prefers chip 2 (same
        // config, artifact already placed) over chip 1 (new config).
        assert_eq!(p.replicas[0], vec![0, 2]);
        assert_eq!(p.distinct_artifacts(), 1);
    }

    #[test]
    fn over_capacity_placement_fails_loudly() {
        let topo = FleetTopology::homogeneous(1, 1, &ChipConfig::dtu20()).unwrap();
        // i20 hosts two 2-group tenants; the third cannot be placed.
        let tenants = vec![
            FleetTenant::new(toy("aa"), 10.0),
            FleetTenant::new(toy("bb"), 10.0),
            FleetTenant::new(toy("cc"), 10.0),
        ];
        let err = place(&topo, &tenants).unwrap_err();
        assert!(err.to_string().contains("cc"));
        assert!(place(&topo, &[]).is_err());
    }

    #[test]
    fn loss_replacement_moves_replicas_to_survivors() {
        let topo = FleetTopology::homogeneous(1, 3, &ChipConfig::dtu20()).unwrap();
        let mut t = FleetTenant::new(toy("aa"), 100.0);
        t.replicas = 2;
        let tenants = vec![t];
        let mut p = place(&topo, &tenants).unwrap();
        assert_eq!(p.replicas[0], vec![0, 1]);
        let alive = vec![false, true, true];
        let moves = replace_after_loss(&mut p, 0, &alive, &topo, &tenants);
        assert_eq!(moves, 1);
        assert_eq!(p.replicas[0], vec![1, 2]);
        // A chip not hosting the tenant loses nothing.
        let alive2 = vec![false, true, true];
        assert_eq!(replace_after_loss(&mut p, 0, &alive2, &topo, &tenants), 0);
    }
}
