//! Kernel images and descriptors.
//!
//! A *kernel* is the unit of code a compute core runs for one (possibly
//! fused) operator. The paper stresses that kernel code loading can drag
//! DNN execution — especially after operator fusion grows kernels — which
//! motivated the instruction cache and user-controlled prefetch (§III,
//! §IV-B). The simulator therefore needs to know, for every kernel, both
//! its *work* (the op-mix descriptor) and its *code size* (what the
//! instruction buffer must hold).

use crate::{DataType, Packet};
use std::fmt;

/// Globally unique kernel identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u64);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// The broad class of work a kernel performs, used by the power model and
/// the DVFS workload classifier (compute-bound / bandwidth-bound /
/// balanced, §IV-F2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpClass {
    /// Dense linear algebra (convolution / matmul) — compute-bound.
    #[default]
    MatrixDense,
    /// Element-wise arithmetic — bandwidth-bound.
    Elementwise,
    /// Transcendental activation — SFU-bound.
    Activation,
    /// Reduction / normalisation.
    Reduction,
    /// Data movement / layout (handled mostly by DMA).
    Movement,
    /// Embedding / gather — memory-latency-bound.
    Gather,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::MatrixDense => "matrix-dense",
            OpClass::Elementwise => "elementwise",
            OpClass::Activation => "activation",
            OpClass::Reduction => "reduction",
            OpClass::Movement => "movement",
            OpClass::Gather => "gather",
        };
        write!(f, "{s}")
    }
}

/// The work descriptor of a kernel: how many operations of each kind the
/// kernel performs, and how many bytes it touches at each memory level.
///
/// Model-scale simulation executes descriptors (a kernel with 10^9 MACs
/// cannot be interpreted instruction-by-instruction in reasonable time);
/// the descriptor fields are exactly the quantities the paper's own
/// analysis reasons in (MACs, bytes, arithmetic intensity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelDescriptor {
    /// Human-readable kernel name (operator or fused chain).
    pub name: String,
    /// Work classification.
    pub class: OpClass,
    /// Element type the kernel computes in.
    pub dtype: DataType,
    /// Multiply-accumulate operations (counted as 2 FLOPs each).
    pub macs: u64,
    /// Non-MAC vector ALU operations (element count).
    pub vector_ops: u64,
    /// SFU transcendental evaluations (element count).
    pub sfu_ops: u64,
    /// Bytes read from / written to L1 by the core.
    pub l1_bytes: u64,
    /// Bytes the kernel requires to be staged in L2.
    pub l2_bytes: u64,
    /// Bytes that must come from / go to L3 (HBM).
    pub l3_bytes: u64,
    /// Encoded code size in bytes.
    pub code_bytes: u64,
    /// Narrowest GEMM dimension of the dominant matrix op (0 when not a
    /// matrix kernel). Coarse GEMM engines (DTU 1.0) waste throughput
    /// when this is small; the fine-grained VMM engine does not.
    pub narrow_dim: u64,
}

impl KernelDescriptor {
    /// Creates an empty descriptor with a name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelDescriptor {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Total floating-point (or integer) operations: 2 per MAC plus the
    /// vector and SFU ops.
    pub fn total_ops(&self) -> u64 {
        2 * self.macs + self.vector_ops + self.sfu_ops
    }

    /// Arithmetic intensity in ops per L3 byte (`f64::INFINITY` when the
    /// kernel touches no HBM traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.l3_bytes == 0 {
            f64::INFINITY
        } else {
            self.total_ops() as f64 / self.l3_bytes as f64
        }
    }

    /// Merges another descriptor into this one (used by operator fusion:
    /// the fused kernel does both kernels' compute but skips the
    /// intermediate materialisation, which the *caller* accounts by
    /// reducing `l3_bytes`).
    pub fn absorb(&mut self, other: &KernelDescriptor) {
        self.macs += other.macs;
        self.vector_ops += other.vector_ops;
        self.sfu_ops += other.sfu_ops;
        self.l1_bytes += other.l1_bytes;
        self.l2_bytes += other.l2_bytes;
        self.l3_bytes += other.l3_bytes;
        self.code_bytes += other.code_bytes;
        if !other.name.is_empty() {
            if !self.name.is_empty() {
                self.name.push('+');
            }
            self.name.push_str(&other.name);
        }
    }
}

/// A compiled kernel: identity, descriptor, and (for small kernels that
/// the functional interpreter runs) the actual VLIW packet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelImage {
    id: KernelId,
    descriptor: KernelDescriptor,
    packets: Vec<Packet>,
}

impl KernelImage {
    /// Creates a kernel image. If `packets` is non-empty the descriptor's
    /// `code_bytes` is replaced by the packets' encoded size.
    pub fn new(id: KernelId, mut descriptor: KernelDescriptor, packets: Vec<Packet>) -> Self {
        if !packets.is_empty() {
            descriptor.code_bytes = packets.iter().map(Packet::encoded_bytes).sum::<usize>() as u64;
        }
        KernelImage {
            id,
            descriptor,
            packets,
        }
    }

    /// The kernel's id.
    pub fn id(&self) -> KernelId {
        self.id
    }

    /// The kernel's work descriptor.
    pub fn descriptor(&self) -> &KernelDescriptor {
        &self.descriptor
    }

    /// The packet stream (empty for descriptor-only kernels).
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.descriptor.code_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, RegClass, RegId, VectorOp};

    #[test]
    fn total_ops_counts_macs_twice() {
        let mut d = KernelDescriptor::new("conv");
        d.macs = 100;
        d.vector_ops = 10;
        d.sfu_ops = 5;
        assert_eq!(d.total_ops(), 215);
    }

    #[test]
    fn arithmetic_intensity() {
        let mut d = KernelDescriptor::new("k");
        d.macs = 500;
        d.l3_bytes = 100;
        assert_eq!(d.arithmetic_intensity(), 10.0);
        d.l3_bytes = 0;
        assert!(d.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn absorb_merges_work_and_names() {
        let mut a = KernelDescriptor::new("conv");
        a.macs = 10;
        a.code_bytes = 100;
        let mut b = KernelDescriptor::new("relu");
        b.sfu_ops = 4;
        b.code_bytes = 50;
        a.absorb(&b);
        assert_eq!(a.name, "conv+relu");
        assert_eq!(a.macs, 10);
        assert_eq!(a.sfu_ops, 4);
        assert_eq!(a.code_bytes, 150);
    }

    #[test]
    fn image_computes_code_size_from_packets() {
        let pkt = Packet::single(Instruction::Vector {
            op: VectorOp::Add,
            dst: RegId::new(RegClass::Vector, 0),
            srcs: vec![RegId::new(RegClass::Vector, 1)],
        });
        let img = KernelImage::new(
            KernelId(1),
            KernelDescriptor::new("tiny"),
            vec![pkt.clone()],
        );
        assert_eq!(img.code_bytes(), pkt.encoded_bytes() as u64);
        assert_eq!(img.packets().len(), 1);
        assert_eq!(img.id().to_string(), "k1");
    }

    #[test]
    fn descriptor_only_image_keeps_declared_size() {
        let mut d = KernelDescriptor::new("big");
        d.code_bytes = 4096;
        let img = KernelImage::new(KernelId(2), d, Vec::new());
        assert_eq!(img.code_bytes(), 4096);
        assert!(img.packets().is_empty());
    }

    #[test]
    fn op_class_display() {
        assert_eq!(OpClass::MatrixDense.to_string(), "matrix-dense");
        assert_eq!(OpClass::Gather.to_string(), "gather");
    }
}
