//! Machine number formats and their quantisation behaviour.

use std::fmt;

/// A machine data type supported by the DTU compute core.
///
/// Table I gives the peak throughput of the i20 per type; the relative
/// throughput multipliers come out of [`DataType::ops_multiplier`]. The
/// quantisation functions model the *value* effect of each format so the
/// functional simulator can report accuracy deltas against an FP32
/// reference (the paper configures 0.01%–0.05% tolerated precision
/// difference, §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// IEEE-754 single precision.
    Fp32,
    /// TensorFloat-32: FP32 range, 10 explicit mantissa bits.
    Tf32,
    /// IEEE-754 half precision.
    #[default]
    Fp16,
    /// bfloat16: FP32 range, 7 explicit mantissa bits.
    Bf16,
    /// 32-bit signed integer.
    Int32,
    /// 16-bit signed integer.
    Int16,
    /// 8-bit signed integer.
    Int8,
}

impl DataType {
    /// All supported types, widest first.
    pub const ALL: [DataType; 7] = [
        DataType::Fp32,
        DataType::Tf32,
        DataType::Fp16,
        DataType::Bf16,
        DataType::Int32,
        DataType::Int16,
        DataType::Int8,
    ];

    /// Storage size of one element, in bytes.
    ///
    /// TF32 is stored in 32-bit containers (as on real hardware).
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::Fp32 | DataType::Tf32 | DataType::Int32 => 4,
            DataType::Fp16 | DataType::Bf16 | DataType::Int16 => 2,
            DataType::Int8 => 1,
        }
    }

    /// Whether this is a floating-point format.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            DataType::Fp32 | DataType::Tf32 | DataType::Fp16 | DataType::Bf16
        )
    }

    /// Peak-throughput multiplier relative to FP32 on DTU 2.0.
    ///
    /// Table I: FP32 32 TFLOPS; TF32/FP16/BF16 128; INT8 256 TOPS. INT32 and
    /// INT16 track FP32 and FP16 respectively (the DTU 1.0 ratios, §II-A,
    /// scaled by the 2.0 uplift).
    pub fn ops_multiplier(self) -> f64 {
        match self {
            DataType::Fp32 | DataType::Int32 => 1.0,
            DataType::Tf32 | DataType::Fp16 | DataType::Bf16 | DataType::Int16 => 4.0,
            DataType::Int8 => 8.0,
        }
    }

    /// Explicit mantissa (fraction) bits for float formats; `None` for ints.
    pub fn mantissa_bits(self) -> Option<u32> {
        match self {
            DataType::Fp32 => Some(23),
            DataType::Tf32 => Some(10),
            DataType::Fp16 => Some(10),
            DataType::Bf16 => Some(7),
            _ => None,
        }
    }

    /// Quantises an `f32` value through this format and back.
    ///
    /// * Float formats: round-to-nearest-even mantissa truncation, plus
    ///   range clamping to the format's max finite value (FP16 only — TF32
    ///   and BF16 share FP32's exponent range).
    /// * Integer formats: round-to-nearest with saturation at the type
    ///   bounds.
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            DataType::Fp32 => v,
            DataType::Tf32 => truncate_mantissa(v, 10),
            DataType::Bf16 => truncate_mantissa(v, 7),
            DataType::Fp16 => {
                if v.is_nan() {
                    return v;
                }
                const FP16_MAX: f32 = 65504.0;
                let t = truncate_mantissa(v, 10);
                if t.is_finite() {
                    t.clamp(-FP16_MAX, FP16_MAX)
                } else if t.is_sign_positive() {
                    f32::INFINITY
                } else {
                    f32::NEG_INFINITY
                }
            }
            DataType::Int32 => saturate_round(v, i32::MIN as f64, i32::MAX as f64),
            DataType::Int16 => saturate_round(v, i16::MIN as f64, i16::MAX as f64),
            DataType::Int8 => saturate_round(v, i8::MIN as f64, i8::MAX as f64),
        }
    }

    /// Worst-case relative quantisation error for float formats
    /// (half a unit in the last place), used by accuracy assertions.
    pub fn relative_epsilon(self) -> Option<f64> {
        self.mantissa_bits()
            .map(|m| 0.5 * (2.0f64).powi(-(m as i32)))
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Fp32 => "FP32",
            DataType::Tf32 => "TF32",
            DataType::Fp16 => "FP16",
            DataType::Bf16 => "BF16",
            DataType::Int32 => "INT32",
            DataType::Int16 => "INT16",
            DataType::Int8 => "INT8",
        };
        write!(f, "{s}")
    }
}

/// Rounds an `f32` to `keep` mantissa bits with round-to-nearest-even.
fn truncate_mantissa(v: f32, keep: u32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    let bits = v.to_bits();
    let drop = 23 - keep;
    let mask: u32 = (1 << drop) - 1;
    let tail = bits & mask;
    let half = 1u32 << (drop - 1);
    let mut kept = bits & !mask;
    // Round to nearest, ties to even (on the lowest kept bit).
    if tail > half || (tail == half && (kept >> drop) & 1 == 1) {
        kept = kept.wrapping_add(1 << drop);
    }
    f32::from_bits(kept)
}

/// Rounds to nearest integer and saturates into `[lo, hi]`.
fn saturate_round(v: f32, lo: f64, hi: f64) -> f32 {
    if v.is_nan() {
        return 0.0;
    }
    ((v as f64).round().clamp(lo, hi)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_formats() {
        assert_eq!(DataType::Fp32.size_bytes(), 4);
        assert_eq!(DataType::Tf32.size_bytes(), 4);
        assert_eq!(DataType::Fp16.size_bytes(), 2);
        assert_eq!(DataType::Bf16.size_bytes(), 2);
        assert_eq!(DataType::Int8.size_bytes(), 1);
    }

    #[test]
    fn ops_multipliers_match_table1_ratios() {
        // Table I: 32 / 128 / 128 / 128 / 256 relative to FP32's 32.
        assert_eq!(DataType::Fp32.ops_multiplier(), 1.0);
        assert_eq!(DataType::Fp16.ops_multiplier(), 4.0);
        assert_eq!(DataType::Bf16.ops_multiplier(), 4.0);
        assert_eq!(DataType::Tf32.ops_multiplier(), 4.0);
        assert_eq!(DataType::Int8.ops_multiplier(), 8.0);
    }

    #[test]
    fn fp32_quantize_is_identity() {
        for v in [-1.5e20, -1.0, 0.0, 3.25, 7.7e-30] {
            assert_eq!(DataType::Fp32.quantize(v), v);
        }
    }

    #[test]
    fn bf16_drops_fine_mantissa() {
        // 1 + 2^-9 is below bf16 resolution near 1.0 (ulp = 2^-7).
        assert_eq!(DataType::Bf16.quantize(1.0 + 1.0 / 512.0), 1.0);
        // 1 + 2^-7 is exactly representable.
        assert_eq!(
            DataType::Bf16.quantize(1.0 + 1.0 / 128.0),
            1.0 + 1.0 / 128.0
        );
    }

    #[test]
    fn fp16_and_tf32_share_mantissa_resolution() {
        let v = 1.0 + 1.0 / 1024.0; // exactly a 10-bit mantissa step
        assert_eq!(DataType::Fp16.quantize(v), v);
        assert_eq!(DataType::Tf32.quantize(v), v);
        let fine = 1.0 + 1.0 / 4096.0;
        assert_eq!(DataType::Fp16.quantize(fine), 1.0);
    }

    #[test]
    fn fp16_saturates_range_tf32_does_not() {
        assert_eq!(DataType::Fp16.quantize(1.0e6), 65504.0);
        assert_eq!(DataType::Fp16.quantize(-1.0e6), -65504.0);
        assert!(DataType::Tf32.quantize(1.0e6) > 65504.0);
        assert_eq!(DataType::Fp16.quantize(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn int8_saturating_round() {
        assert_eq!(DataType::Int8.quantize(3.4), 3.0);
        assert_eq!(DataType::Int8.quantize(3.6), 4.0);
        assert_eq!(DataType::Int8.quantize(200.0), 127.0);
        assert_eq!(DataType::Int8.quantize(-200.0), -128.0);
        assert_eq!(DataType::Int8.quantize(f32::NAN), 0.0);
    }

    #[test]
    fn int16_int32_bounds() {
        assert_eq!(DataType::Int16.quantize(40000.0), 32767.0);
        assert_eq!(DataType::Int32.quantize(-3.0e10), i32::MIN as f32);
    }

    #[test]
    fn quantize_is_idempotent_for_floats() {
        for dt in [DataType::Tf32, DataType::Fp16, DataType::Bf16] {
            for v in [0.1f32, -2.7, 123.456, 1e-8, -65000.0] {
                let q = dt.quantize(v);
                assert_eq!(dt.quantize(q), q, "{dt} not idempotent at {v}");
            }
        }
    }

    #[test]
    fn relative_epsilon_ordering() {
        let e32 = DataType::Fp32.relative_epsilon().unwrap();
        let e16 = DataType::Fp16.relative_epsilon().unwrap();
        let eb = DataType::Bf16.relative_epsilon().unwrap();
        assert!(e32 < e16 && e16 < eb);
        assert!(DataType::Int8.relative_epsilon().is_none());
    }

    #[test]
    fn quantize_error_bounded_by_epsilon() {
        for dt in [DataType::Tf32, DataType::Fp16, DataType::Bf16] {
            let eps = dt.relative_epsilon().unwrap();
            for i in 1..1000 {
                let v = i as f32 * 0.37;
                let q = dt.quantize(v);
                let rel = ((q - v).abs() / v.abs()) as f64;
                assert!(rel <= eps * 1.0001, "{dt}: rel err {rel} > {eps} at {v}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Bf16.to_string(), "BF16");
        assert_eq!(DataType::Int8.to_string(), "INT8");
    }
}
