//! The vector-matrix-multiply pattern catalog.
//!
//! The motivation section argues that GEMM engines restricted to square
//! tiles handle tall-and-skinny matrices poorly, so DTU 2.0 implements
//! fine-grained VMM over many (vector length × matrix shape × data type)
//! combinations — Table II counts "more than 40 VMM patterns supported".
//! For FP32 the shapes are 16x16, 8x16, and 4x16, with matching vector
//! lengths 16, 8, and 4 (§IV-A1); narrower types scale the reachable rows
//! proportionally to their throughput multiplier.

use crate::DataType;
use std::fmt;

/// The shape of the matrix operand of one VMM macro-op: `rows x cols`.
///
/// The vector operand has `rows` elements; the accumulator holds `cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixShape {
    /// Matrix rows (and input vector length).
    pub rows: usize,
    /// Matrix columns (and accumulator width).
    pub cols: usize,
}

impl MatrixShape {
    /// Creates a shape.
    pub const fn new(rows: usize, cols: usize) -> Self {
        MatrixShape { rows, cols }
    }

    /// Multiply-accumulate operations one VMM with this shape performs.
    pub fn macs(self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for MatrixShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// One supported VMM pattern: a shape paired with a data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmmPattern {
    /// The matrix shape.
    pub shape: MatrixShape,
    /// The element type of vector, matrix, and accumulator inputs.
    pub dtype: DataType,
}

impl VmmPattern {
    /// Creates a pattern.
    pub const fn new(shape: MatrixShape, dtype: DataType) -> Self {
        VmmPattern { shape, dtype }
    }

    /// Cycles one macro-op occupies on the matrix pipeline.
    ///
    /// The engine retires a fixed number of MACs per cycle that scales with
    /// the type's throughput multiplier, so FP32 16x16 takes 1 cycle and
    /// the narrower shapes take proportionally less (minimum 1).
    pub fn cycles(self) -> u64 {
        let macs_per_cycle = 256.0 * self.dtype.ops_multiplier();
        ((self.shape.macs() as f64 / macs_per_cycle).ceil() as u64).max(1)
    }
}

impl fmt::Display for VmmPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VMM<{} {}>", self.shape, self.dtype)
    }
}

/// Row counts reachable at a given throughput multiplier.
///
/// FP32 (multiplier 1) reaches rows 4, 8, 16; 4x types add 32 and 64;
/// INT8 additionally reaches 128.
fn row_options(dtype: DataType) -> Vec<usize> {
    let mut rows = vec![4, 8, 16];
    if dtype.ops_multiplier() >= 4.0 {
        rows.push(32);
        rows.push(64);
    }
    if dtype.ops_multiplier() >= 8.0 {
        rows.push(128);
    }
    rows
}

/// Column counts reachable at a given throughput multiplier.
///
/// FP32/INT32 use the fixed 16-wide accumulator tile of §IV-A1; narrower
/// types can also drive a 32-wide tile (two accumulators ganged).
fn col_options(dtype: DataType) -> Vec<usize> {
    if dtype.ops_multiplier() >= 4.0 {
        vec![16, 32]
    } else {
        vec![16]
    }
}

/// Enumerates every VMM pattern the DTU 2.0 matrix engine supports.
///
/// The catalog covers all seven data types with type-appropriate row and
/// column counts, yielding the "more than 40" patterns Table II reports.
pub fn vmm_catalog() -> Vec<VmmPattern> {
    let mut out = Vec::new();
    for dtype in DataType::ALL {
        for rows in row_options(dtype) {
            for cols in col_options(dtype) {
                out.push(VmmPattern::new(MatrixShape::new(rows, cols), dtype));
            }
        }
    }
    out
}

/// Finds the catalog pattern with the given shape and type, if supported.
pub fn find_pattern(shape: MatrixShape, dtype: DataType) -> Option<VmmPattern> {
    vmm_catalog()
        .into_iter()
        .find(|p| p.shape == shape && p.dtype == dtype)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_more_than_40_patterns() {
        let n = vmm_catalog().len();
        assert!(n > 40, "catalog has only {n} patterns");
    }

    #[test]
    fn catalog_patterns_unique() {
        let cat = vmm_catalog();
        for (i, a) in cat.iter().enumerate() {
            for b in cat.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fp32_shapes_match_paper() {
        let cat = vmm_catalog();
        let fp32: Vec<_> = cat
            .iter()
            .filter(|p| p.dtype == DataType::Fp32)
            .map(|p| (p.shape.rows, p.shape.cols))
            .collect();
        assert_eq!(fp32, vec![(4, 16), (8, 16), (16, 16)]);
    }

    #[test]
    fn int8_reaches_widest_tile() {
        assert!(find_pattern(MatrixShape::new(128, 16), DataType::Int8).is_some());
        assert!(find_pattern(MatrixShape::new(128, 16), DataType::Fp16).is_none());
        assert!(find_pattern(MatrixShape::new(64, 16), DataType::Fp16).is_some());
    }

    #[test]
    fn cycles_scale_with_dtype() {
        let fp32 = VmmPattern::new(MatrixShape::new(16, 16), DataType::Fp32);
        let fp16 = VmmPattern::new(MatrixShape::new(64, 16), DataType::Fp16);
        let int8 = VmmPattern::new(MatrixShape::new(128, 16), DataType::Int8);
        assert_eq!(fp32.cycles(), 1);
        assert_eq!(fp16.cycles(), 1);
        assert_eq!(int8.cycles(), 1);
        // A shape too big for one cycle at FP32:
        let big = VmmPattern::new(MatrixShape::new(64, 16), DataType::Fp32);
        assert_eq!(big.cycles(), 4);
    }

    #[test]
    fn macs_and_display() {
        let s = MatrixShape::new(8, 16);
        assert_eq!(s.macs(), 128);
        assert_eq!(s.to_string(), "8x16");
        let p = VmmPattern::new(s, DataType::Bf16);
        assert_eq!(p.to_string(), "VMM<8x16 BF16>");
    }
}
