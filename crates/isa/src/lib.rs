//! Data types, VLIW instruction set, and kernel images for DTU 2.0.
//!
//! The paper's compute core adopts the VLIW architecture and supports the
//! full range of widely used data types, 8-bit up to 32-bit integer and
//! floating-point (§IV-A). This crate defines:
//!
//! * [`DataType`] — the machine number formats and their quantisation
//!   behaviour (FP32/TF32/FP16/BF16/INT32/INT16/INT8);
//! * the VLIW instruction set ([`Instruction`], [`Packet`], functional
//!   slot assignment, register names);
//! * [`KernelImage`] — a compiled kernel: packets plus the descriptor
//!   metadata (op mix, code size) the timing simulator charges;
//! * [`VmmPattern`] — the catalog of vector-matrix-multiply shapes the
//!   matrix engine supports ("more than 40 VMM patterns", Table II).
//!
//! # Example
//!
//! ```
//! use dtu_isa::DataType;
//! assert_eq!(DataType::Fp16.size_bytes(), 2);
//! // BF16 keeps FP32's range but only 8 semantic mantissa bits.
//! let q = DataType::Bf16.quantize(1.0 + 1.0 / 512.0);
//! assert_eq!(q, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtype;
mod kernel;
mod vliw;
mod vmm;

pub use dtype::DataType;
pub use kernel::{KernelDescriptor, KernelId, KernelImage, OpClass};
pub use vliw::{
    FunctionalUnit, Instruction, Packet, PacketizeError, RegClass, RegId, ScalarOp, SfuFunc,
    VectorOp,
};
pub use vmm::{find_pattern, vmm_catalog, MatrixShape, VmmPattern};
