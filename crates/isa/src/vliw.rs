//! The VLIW instruction set of the DTU compute core.
//!
//! Each cycle the core issues one *packet* — a bundle of independent
//! instructions, at most one per functional unit — in the spirit of the
//! ELI-512 VLIW design the paper cites. The software stack's packetizer
//! (§V-B, "VLIW packetizer") discovers independent instructions and packs
//! them; [`Packet::try_bundle`] enforces the structural rules the hardware
//! imposes.

use std::error::Error;
use std::fmt;

/// The functional units a packet has one issue slot for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionalUnit {
    /// Scalar ALU and control flow.
    Scalar,
    /// 512-bit vector ALU.
    Vector,
    /// Matrix (VMM) engine.
    Matrix,
    /// Special function unit (transcendentals).
    Sfu,
    /// Load pipe from L1 into registers.
    Load,
    /// Store pipe from registers into L1.
    Store,
    /// Synchronisation / DMA-configuration pipe.
    Sync,
}

impl FunctionalUnit {
    /// All seven issue slots.
    pub const ALL: [FunctionalUnit; 7] = [
        FunctionalUnit::Scalar,
        FunctionalUnit::Vector,
        FunctionalUnit::Matrix,
        FunctionalUnit::Sfu,
        FunctionalUnit::Load,
        FunctionalUnit::Store,
        FunctionalUnit::Sync,
    ];
}

impl fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FunctionalUnit::Scalar => "scalar",
            FunctionalUnit::Vector => "vector",
            FunctionalUnit::Matrix => "matrix",
            FunctionalUnit::Sfu => "sfu",
            FunctionalUnit::Load => "load",
            FunctionalUnit::Store => "store",
            FunctionalUnit::Sync => "sync",
        };
        write!(f, "{s}")
    }
}

/// Register file classes of the compute core (§IV-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Scalar registers.
    Scalar,
    /// 512-bit vector registers (32 of them).
    Vector,
    /// 32x512-bit matrix registers (2 of them).
    Matrix,
    /// 512-bit accumulation registers (1024 of them).
    Accum,
}

impl RegClass {
    /// Number of architectural registers in this class on DTU 2.0.
    pub fn count(self) -> usize {
        match self {
            RegClass::Scalar => 64,
            RegClass::Vector => 32,
            RegClass::Matrix => 2,
            RegClass::Accum => 1024,
        }
    }

    /// Number of banks the register file is split into.
    ///
    /// Bank conflicts stall the VLIW pipeline; the compiler's register
    /// allocator avoids them (§V-B "Register allocator").
    pub fn banks(self) -> usize {
        match self {
            RegClass::Scalar => 2,
            RegClass::Vector => 4,
            RegClass::Matrix => 1,
            RegClass::Accum => 8,
        }
    }
}

/// A register name: class plus index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId {
    /// Which register file.
    pub class: RegClass,
    /// Index within the file.
    pub index: usize,
}

impl RegId {
    /// Creates a register id, panicking in debug builds on out-of-range
    /// indices (the compiler is responsible for staying in range).
    pub fn new(class: RegClass, index: usize) -> Self {
        debug_assert!(index < class.count(), "register index out of range");
        RegId { class, index }
    }

    /// The bank this register lives in.
    pub fn bank(self) -> usize {
        self.index % self.class.banks()
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.class {
            RegClass::Scalar => "s",
            RegClass::Vector => "v",
            RegClass::Matrix => "m",
            RegClass::Accum => "acc",
        };
        write!(f, "{prefix}{}", self.index)
    }
}

/// Scalar ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Compare (sets a predicate).
    Cmp,
    /// Conditional branch.
    Branch,
    /// Loop counter decrement-and-branch.
    LoopEnd,
}

/// Vector ALU operations over 512-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorOp {
    /// Element-wise add.
    Add,
    /// Element-wise subtract.
    Sub,
    /// Element-wise multiply.
    Mul,
    /// Element-wise max.
    Max,
    /// Element-wise min.
    Min,
    /// Fused multiply-add.
    Fma,
    /// Horizontal reduction (sum).
    ReduceSum,
    /// Horizontal reduction (max).
    ReduceMax,
    /// Element-wise reciprocal estimate.
    Recip,
}

/// Transcendental functions accelerated by the SFU (§IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuFunc {
    /// exp(x).
    Exp,
    /// ln(x).
    Ln,
    /// 1/sqrt(x).
    Rsqrt,
    /// tanh(x).
    Tanh,
    /// logistic sigmoid.
    Sigmoid,
    /// softplus = ln(1+exp(x)).
    Softplus,
    /// Gaussian error linear unit.
    Gelu,
    /// swish = x·sigmoid(x).
    Swish,
    /// erf(x).
    Erf,
    /// sin(x).
    Sin,
}

impl SfuFunc {
    /// The roughly ten functions Table II says the SFU accelerates.
    pub const ALL: [SfuFunc; 10] = [
        SfuFunc::Exp,
        SfuFunc::Ln,
        SfuFunc::Rsqrt,
        SfuFunc::Tanh,
        SfuFunc::Sigmoid,
        SfuFunc::Softplus,
        SfuFunc::Gelu,
        SfuFunc::Swish,
        SfuFunc::Erf,
        SfuFunc::Sin,
    ];
}

/// One VLIW instruction, tagged by the functional unit that executes it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Scalar ALU operation.
    Scalar {
        /// Operation.
        op: ScalarOp,
        /// Destination register.
        dst: RegId,
        /// Source registers.
        srcs: Vec<RegId>,
    },
    /// Vector ALU operation.
    Vector {
        /// Operation.
        op: VectorOp,
        /// Destination register.
        dst: RegId,
        /// Source registers.
        srcs: Vec<RegId>,
    },
    /// Load a matrix-register row from a vector register.
    MatrixFill {
        /// Destination matrix register.
        dst: RegId,
        /// Row being filled.
        row: usize,
        /// Source vector register.
        src: RegId,
    },
    /// Vector-matrix multiply, accumulating into an accumulation register.
    Vmm {
        /// Pattern index into the VMM catalog.
        pattern: usize,
        /// Accumulation destination.
        acc: RegId,
        /// Input vector register.
        vec: RegId,
        /// Input matrix register.
        mat: RegId,
    },
    /// Read an accumulation register back into a vector register.
    AccRead {
        /// Destination vector register.
        dst: RegId,
        /// Source accumulation register.
        acc: RegId,
    },
    /// SFU transcendental over a vector register.
    Sfu {
        /// Which transcendental.
        func: SfuFunc,
        /// Destination register.
        dst: RegId,
        /// Source register.
        src: RegId,
    },
    /// Load from L1 into a register.
    Load {
        /// Destination register.
        dst: RegId,
        /// L1 byte address.
        addr: usize,
    },
    /// Store from a register into L1.
    Store {
        /// Source register.
        src: RegId,
        /// L1 byte address.
        addr: usize,
    },
    /// Signal a synchronisation event.
    SyncSignal {
        /// Event id.
        event: u32,
    },
    /// Wait on a synchronisation event.
    SyncWait {
        /// Event id.
        event: u32,
    },
    /// Prefetch the kernel image `kernel` into the instruction cache
    /// (the user-controlled prefetch of §IV-B).
    KernelPrefetch {
        /// Target kernel, by id.
        kernel: u64,
    },
}

impl Instruction {
    /// The functional unit this instruction issues on.
    pub fn unit(&self) -> FunctionalUnit {
        match self {
            Instruction::Scalar { .. } => FunctionalUnit::Scalar,
            Instruction::Vector { .. } => FunctionalUnit::Vector,
            Instruction::MatrixFill { .. }
            | Instruction::Vmm { .. }
            | Instruction::AccRead { .. } => FunctionalUnit::Matrix,
            Instruction::Sfu { .. } => FunctionalUnit::Sfu,
            Instruction::Load { .. } | Instruction::KernelPrefetch { .. } => FunctionalUnit::Load,
            Instruction::Store { .. } => FunctionalUnit::Store,
            Instruction::SyncSignal { .. } | Instruction::SyncWait { .. } => FunctionalUnit::Sync,
        }
    }

    /// Registers this instruction writes.
    pub fn writes(&self) -> Vec<RegId> {
        match self {
            Instruction::Scalar { dst, .. }
            | Instruction::Vector { dst, .. }
            | Instruction::MatrixFill { dst, .. }
            | Instruction::AccRead { dst, .. }
            | Instruction::Sfu { dst, .. }
            | Instruction::Load { dst, .. } => vec![*dst],
            Instruction::Vmm { acc, .. } => vec![*acc],
            _ => Vec::new(),
        }
    }

    /// Registers this instruction reads.
    pub fn reads(&self) -> Vec<RegId> {
        match self {
            Instruction::Scalar { srcs, .. } | Instruction::Vector { srcs, .. } => srcs.clone(),
            Instruction::MatrixFill { src, .. } => vec![*src],
            // VMM accumulates, so it also reads its destination.
            Instruction::Vmm { acc, vec, mat, .. } => vec![*acc, *vec, *mat],
            Instruction::AccRead { acc, .. } => vec![*acc],
            Instruction::Sfu { src, .. } => vec![*src],
            Instruction::Store { src, .. } => vec![*src],
            _ => Vec::new(),
        }
    }

    /// Encoded size of this instruction, in bytes (uniform 8-byte slots).
    pub fn encoded_bytes(&self) -> usize {
        8
    }
}

/// Error returned when instructions cannot form a legal packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketizeError {
    /// Two instructions claimed the same functional-unit slot.
    SlotConflict {
        /// The doubly-claimed unit.
        unit: FunctionalUnit,
    },
    /// One instruction in the bundle writes a register another reads or
    /// writes (packets must be mutually independent).
    Dependence {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for PacketizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketizeError::SlotConflict { unit } => {
                write!(f, "two instructions target the {unit} slot")
            }
            PacketizeError::Dependence { reason } => write!(f, "intra-packet dependence: {reason}"),
        }
    }
}

impl Error for PacketizeError {}

/// A VLIW issue packet: at most one instruction per functional unit, all
/// mutually independent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Packet {
    instrs: Vec<Instruction>,
}

impl Packet {
    /// Builds a packet, validating slot exclusivity and independence.
    ///
    /// # Errors
    ///
    /// Returns [`PacketizeError::SlotConflict`] if two instructions use the
    /// same unit and [`PacketizeError::Dependence`] if any instruction
    /// writes a register another touches.
    pub fn try_bundle(instrs: Vec<Instruction>) -> Result<Self, PacketizeError> {
        let mut used = Vec::new();
        for ins in &instrs {
            let u = ins.unit();
            if used.contains(&u) {
                return Err(PacketizeError::SlotConflict { unit: u });
            }
            used.push(u);
        }
        for (i, a) in instrs.iter().enumerate() {
            for b in instrs.iter().skip(i + 1) {
                for w in a.writes() {
                    if b.reads().contains(&w) || b.writes().contains(&w) {
                        return Err(PacketizeError::Dependence {
                            reason: format!("{w} written and touched in one packet"),
                        });
                    }
                }
                for w in b.writes() {
                    if a.reads().contains(&w) {
                        return Err(PacketizeError::Dependence {
                            reason: format!("{w} read and written in one packet"),
                        });
                    }
                }
            }
        }
        Ok(Packet { instrs })
    }

    /// A packet containing a single instruction (always legal).
    pub fn single(ins: Instruction) -> Self {
        Packet { instrs: vec![ins] }
    }

    /// The bundled instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of instructions in the packet.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the packet is a no-op bubble.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Encoded size in bytes (slot bytes plus a 4-byte header).
    pub fn encoded_bytes(&self) -> usize {
        4 + self
            .instrs
            .iter()
            .map(Instruction::encoded_bytes)
            .sum::<usize>()
    }

    /// Whether any pair of register operands in the packet collides on a
    /// register-file bank (a pipeline-stall hazard the register allocator
    /// tries to avoid).
    pub fn has_bank_conflict(&self) -> bool {
        let mut seen: Vec<(RegClass, usize)> = Vec::new();
        for ins in &self.instrs {
            for r in ins.reads() {
                let key = (r.class, r.bank());
                if seen.contains(&key) {
                    return true;
                }
                seen.push(key);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vreg(i: usize) -> RegId {
        RegId::new(RegClass::Vector, i)
    }

    fn vadd(dst: usize, a: usize, b: usize) -> Instruction {
        Instruction::Vector {
            op: VectorOp::Add,
            dst: vreg(dst),
            srcs: vec![vreg(a), vreg(b)],
        }
    }

    #[test]
    fn unit_assignment() {
        assert_eq!(vadd(0, 1, 2).unit(), FunctionalUnit::Vector);
        assert_eq!(
            Instruction::SyncWait { event: 3 }.unit(),
            FunctionalUnit::Sync
        );
        assert_eq!(
            Instruction::KernelPrefetch { kernel: 1 }.unit(),
            FunctionalUnit::Load
        );
    }

    #[test]
    fn bundle_accepts_independent_instructions() {
        let p = Packet::try_bundle(vec![
            vadd(0, 1, 2),
            Instruction::Sfu {
                func: SfuFunc::Tanh,
                dst: vreg(3),
                src: vreg(4),
            },
            Instruction::Load {
                dst: vreg(5),
                addr: 64,
            },
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn bundle_rejects_slot_conflict() {
        let err = Packet::try_bundle(vec![vadd(0, 1, 2), vadd(3, 4, 5)]).unwrap_err();
        assert_eq!(
            err,
            PacketizeError::SlotConflict {
                unit: FunctionalUnit::Vector
            }
        );
    }

    #[test]
    fn bundle_rejects_raw_dependence() {
        // SFU reads v0 which the vector op writes.
        let err = Packet::try_bundle(vec![
            vadd(0, 1, 2),
            Instruction::Sfu {
                func: SfuFunc::Exp,
                dst: vreg(3),
                src: vreg(0),
            },
        ])
        .unwrap_err();
        assert!(matches!(err, PacketizeError::Dependence { .. }));
    }

    #[test]
    fn bundle_rejects_war_dependence() {
        // Store reads v1; vector op writes v1.
        let err = Packet::try_bundle(vec![
            Instruction::Store {
                src: vreg(1),
                addr: 0,
            },
            vadd(1, 2, 3),
        ])
        .unwrap_err();
        assert!(matches!(err, PacketizeError::Dependence { .. }));
    }

    #[test]
    fn bundle_rejects_waw_dependence() {
        let err = Packet::try_bundle(vec![
            vadd(0, 1, 2),
            Instruction::Load {
                dst: vreg(0),
                addr: 0,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, PacketizeError::Dependence { .. }));
    }

    #[test]
    fn vmm_reads_its_accumulator() {
        let vmm = Instruction::Vmm {
            pattern: 0,
            acc: RegId::new(RegClass::Accum, 7),
            vec: vreg(1),
            mat: RegId::new(RegClass::Matrix, 0),
        };
        assert!(vmm.reads().contains(&RegId::new(RegClass::Accum, 7)));
        assert_eq!(vmm.writes(), vec![RegId::new(RegClass::Accum, 7)]);
    }

    #[test]
    fn bank_conflict_detection() {
        // Vector file has 4 banks; v0 and v4 share bank 0.
        let p = Packet::try_bundle(vec![vadd(1, 0, 4)]).unwrap();
        assert!(p.has_bank_conflict());
        let q = Packet::try_bundle(vec![vadd(1, 0, 2)]).unwrap();
        assert!(!q.has_bank_conflict());
    }

    #[test]
    fn encoded_size() {
        let p = Packet::try_bundle(vec![vadd(0, 1, 2)]).unwrap();
        assert_eq!(p.encoded_bytes(), 12);
        assert_eq!(Packet::default().encoded_bytes(), 4);
    }

    #[test]
    fn reg_display_and_bank() {
        let r = RegId::new(RegClass::Accum, 9);
        assert_eq!(r.to_string(), "acc9");
        assert_eq!(r.bank(), 1); // 9 % 8
    }

    #[test]
    fn packetize_error_display() {
        let e = PacketizeError::SlotConflict {
            unit: FunctionalUnit::Matrix,
        };
        assert!(e.to_string().contains("matrix"));
    }
}
