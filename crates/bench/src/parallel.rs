//! Harness-backed evaluation: the `repro_*` binaries' shared `--jobs` /
//! cache plumbing plus deduplicated parallel grid evaluation.
//!
//! Every binary parses the same three flags through [`RunnerArgs`]
//! (`--jobs`, `--cache-dir`, `--no-disk-cache`), builds one
//! [`SessionCache`], and routes its experiment points through an
//! `ExperimentPlan` so identical (chip, model, batch) points are
//! simulated once and compiled sessions are shared — within a run via
//! the in-memory tier and across runs via the on-disk artifact tier.

use crate::LatencyRow;
use dtu::{Accelerator, ChipConfig, SessionOptions};
use dtu_compiler::Fnv1a;
use dtu_harness::{available_jobs, ExperimentPlan, HarnessError, SessionCache};
use dtu_models::Model;
use gpu_baseline::{PlatformSpec, RooflineModel};
use std::path::PathBuf;

/// Command-line options shared by every `repro_*` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerArgs {
    /// Worker threads for the experiment plan (`--jobs`, default: all
    /// cores).
    pub jobs: usize,
    /// Artifact-cache directory override (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Whether the disk tier is enabled (`--no-disk-cache` clears it).
    pub disk_cache: bool,
}

/// The usage footer shared by the repro binaries.
pub const RUNNER_USAGE: &str = "common repro options:\n\
     \x20 --jobs <n>          worker threads (default: all cores)\n\
     \x20 --cache-dir <dir>   compiled-session artifact directory\n\
     \x20                     (default target/dtu-cache)\n\
     \x20 --no-disk-cache     keep the session cache in memory only";

impl RunnerArgs {
    /// Parses flags from an explicit argument list (the testable form
    /// of [`RunnerArgs::parse_or_exit`]). Expects the list *without*
    /// the program name.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown flags or missing/bad
    /// values; the empty string for `--help`.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<RunnerArgs, String> {
        let mut out = RunnerArgs {
            jobs: available_jobs(),
            cache_dir: None,
            disk_cache: true,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
            match a.as_str() {
                "--jobs" | "-j" => {
                    out.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs needs an integer".to_string())?
                }
                "--cache-dir" => out.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
                "--no-disk-cache" => out.disk_cache = false,
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(out)
    }

    /// Parses `std::env::args()`, printing usage and exiting on error.
    pub fn parse_or_exit() -> RunnerArgs {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                if e.is_empty() {
                    eprintln!("{RUNNER_USAGE}");
                    std::process::exit(0);
                }
                eprintln!("error: {e}\n\n{RUNNER_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The session cache the binary should compile through.
    pub fn cache(&self) -> SessionCache {
        if !self.disk_cache {
            return SessionCache::memory_only();
        }
        let dir = self
            .cache_dir
            .clone()
            .unwrap_or_else(SessionCache::default_disk_dir);
        SessionCache::with_disk(dir)
    }
}

/// One (chip, model, batch) point of an experiment grid.
#[derive(Debug, Clone)]
pub struct ChipPoint {
    /// Chip configuration the point runs on.
    pub cfg: ChipConfig,
    /// Model to evaluate.
    pub model: Model,
    /// Batch size (0 is treated as 1).
    pub batch: usize,
}

impl ChipPoint {
    /// A batch-1 point.
    pub fn new(cfg: ChipConfig, model: Model) -> Self {
        ChipPoint {
            cfg,
            model,
            batch: 1,
        }
    }
}

/// Content key of one grid point: structural chip config + model + batch.
fn point_key(cfg: &ChipConfig, model: Model, batch: usize) -> u64 {
    let mut key = Fnv1a::new();
    key.write_str("chip-point/");
    key.write_debug(cfg);
    key.write_str(model.name());
    key.write_u64(batch as u64);
    key.finish()
}

/// Compile (through `cache`) and simulate one grid point.
fn point_latency_ms(
    cfg: &ChipConfig,
    model: Model,
    batch: usize,
    cache: &SessionCache,
) -> Result<f64, HarnessError> {
    let accel = Accelerator::with_config(cfg.clone())?;
    let graph = model.build(batch.max(1));
    let options = if batch > 1 {
        SessionOptions::batched(batch)
    } else {
        SessionOptions::default()
    };
    let (session, _) = cache.compile_session(&accel, &graph, &options)?;
    Ok(session.run()?.latency_ms())
}

/// Evaluates every point's latency (ms) on `jobs` workers, compiling
/// through `cache`. Results align with `points` by index; duplicated
/// points are planned — and simulated — once.
///
/// # Panics
///
/// Panics on compile/run failure, like the rest of the harness: a
/// point that cannot run is an experiment-setup bug.
pub fn chip_latencies(points: &[ChipPoint], cache: &SessionCache, jobs: usize) -> Vec<f64> {
    let mut plan: ExperimentPlan<'_, f64> = ExperimentPlan::new();
    let ids: Vec<_> = points
        .iter()
        .map(|p| {
            let (cfg, model, batch) = (p.cfg.clone(), p.model, p.batch);
            let label = format!("{} b{} on {}", model.name(), batch.max(1), cfg.name);
            plan.add_point(point_key(&cfg, model, batch), label, &[], move |_| {
                point_latency_ms(&cfg, model, batch, cache)
            })
        })
        .collect();
    let results = plan.run(jobs);
    ids.iter()
        .map(|id| match &results[id.index()] {
            Ok(ms) => *ms,
            Err(e) => panic!("experiment point failed: {e}"),
        })
        .collect()
}

/// Evaluates one model on all three platforms through `cache` (batch 1,
/// FP16 — the Fig. 13 configuration).
fn try_evaluate_model(model: Model, cache: &SessionCache) -> Result<LatencyRow, HarnessError> {
    let roofline_err = |gpu: &str, e: &dyn std::fmt::Display| HarnessError::Job {
        label: model.name().to_string(),
        message: format!("{gpu} estimate failed: {e}"),
    };
    let graph = model.build(1);
    let t4 = RooflineModel::t4()
        .estimate(&graph)
        .map_err(|e| roofline_err("T4", &e))?;
    let a10 = RooflineModel::a10()
        .estimate(&graph)
        .map_err(|e| roofline_err("A10", &e))?;
    Ok(LatencyRow {
        model,
        i20_ms: point_latency_ms(&ChipConfig::dtu20(), model, 1, cache)?,
        t4_ms: t4.latency_ms,
        a10_ms: a10.latency_ms,
    })
}

/// Evaluates the full Table III suite on `jobs` workers, compiling
/// through `cache`. Row order matches [`Model::ALL`].
///
/// # Panics
///
/// As for [`chip_latencies`].
pub fn evaluate_suite_with(cache: &SessionCache, jobs: usize) -> Vec<LatencyRow> {
    let mut plan: ExperimentPlan<'_, LatencyRow> = ExperimentPlan::new();
    let ids: Vec<_> = Model::ALL
        .iter()
        .map(|&m| {
            let mut key = Fnv1a::new();
            key.write_str("suite/");
            key.write_str(m.name());
            plan.add_point(key.finish(), m.name().to_string(), &[], move |_| {
                try_evaluate_model(m, cache)
            })
        })
        .collect();
    let results = plan.run(jobs);
    ids.iter()
        .map(|id| match &results[id.index()] {
            Ok(row) => row.clone(),
            Err(e) => panic!("suite evaluation failed: {e}"),
        })
        .collect()
}

/// The four Table IV platform sheets as plan points, in the order the
/// spec-table binaries destructure them: (i10, i20, T4, A10).
///
/// The grid is tiny, but running it through the plan keeps the
/// spec-table binaries on the same engine — and the same `--jobs`
/// flag — as the simulation-heavy ones.
///
/// # Panics
///
/// As for [`chip_latencies`].
pub fn platform_specs(jobs: usize) -> (PlatformSpec, PlatformSpec, PlatformSpec, PlatformSpec) {
    type SpecFn = fn() -> PlatformSpec;
    let sheets: [(&str, SpecFn); 4] = [
        ("i10", gpu_baseline::i10_spec),
        ("i20", gpu_baseline::i20_spec),
        ("t4", gpu_baseline::t4_spec),
        ("a10", gpu_baseline::a10_spec),
    ];
    let mut plan: ExperimentPlan<'_, PlatformSpec> = ExperimentPlan::new();
    let ids = sheets.map(|(name, build)| {
        let mut key = Fnv1a::new();
        key.write_str("platform-spec/");
        key.write_str(name);
        plan.add_point(key.finish(), name.to_string(), &[], move |_| Ok(build()))
    });
    let results = plan.run(jobs);
    let spec = |i: usize| match &results[ids[i].index()] {
        Ok(s) => s.clone(),
        Err(e) => panic!("platform spec failed: {e}"),
    };
    (spec(0), spec(1), spec(2), spec(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunnerArgs, String> {
        RunnerArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn runner_args_defaults_and_flags() {
        let d = parse(&[]).unwrap();
        assert!(d.jobs >= 1);
        assert!(d.disk_cache);
        assert_eq!(d.cache_dir, None);
        let a = parse(&["--jobs", "3", "--no-disk-cache", "--cache-dir", "/tmp/x"]).unwrap();
        assert_eq!(a.jobs, 3);
        assert!(!a.disk_cache);
        assert_eq!(a.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn runner_args_rejects_unknown_and_malformed() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), "");
    }

    #[test]
    fn no_disk_cache_builds_memory_only() {
        let a = parse(&["--no-disk-cache"]).unwrap();
        let cache = a.cache();
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn chip_latencies_dedups_identical_points() {
        let cache = SessionCache::memory_only();
        let points = vec![
            ChipPoint::new(ChipConfig::dtu20(), Model::Resnet50),
            ChipPoint::new(ChipConfig::dtu20(), Model::Resnet50),
        ];
        let lat = chip_latencies(&points, &cache, 2);
        assert_eq!(lat.len(), 2);
        assert_eq!(lat[0], lat[1]);
        assert!(lat[0] > 0.0);
        // One planned point, one compile: the duplicate never reached
        // the cache, let alone the simulator.
        assert_eq!(cache.stats().lookups(), 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn chip_latencies_matches_serial_helper() {
        let cache = SessionCache::memory_only();
        let points = vec![ChipPoint::new(ChipConfig::dtu20(), Model::Resnet50)];
        let lat = chip_latencies(&points, &cache, 1);
        assert_eq!(
            lat[0],
            crate::chip_latency_ms(ChipConfig::dtu20(), Model::Resnet50, 1)
        );
    }
}
