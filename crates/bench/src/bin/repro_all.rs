//! Runs the complete evaluation — every table and figure — in one go.
//!
//! ```sh
//! cargo run --release --bin repro_all
//! ```
//!
//! Equivalent to running each `repro_*` binary in sequence; see
//! EXPERIMENTS.md for the paper-vs-measured comparison tables.

use std::process::{Command, ExitCode};

const BINARIES: &[&str] = &[
    "repro_specs",
    "repro_fig12",
    "repro_fig13",
    "repro_fig14",
    "repro_fig15",
    "repro_batch",
    "repro_power_mgmt",
    "repro_multitenancy",
    "repro_dma_repeat",
    "repro_opmix",
    "repro_ablation",
];

fn main() -> ExitCode {
    // The repro binaries live next to this one.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory");
    for bin in BINARIES {
        println!("\n================ {bin} ================\n");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("could not run {bin}: {e} (build the workspace first)");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("\nAll experiments regenerated. See EXPERIMENTS.md for the paper comparison.");
    ExitCode::SUCCESS
}
