//! Reproduces Fig. 15: DNN energy efficiency (Perf/TDP) across
//! platforms, normalised with T4, batch 1, FP16.
//!
//! The paper's metric is throughput per TDP watt, so each ratio is the
//! Fig. 13 speedup scaled by the TDP ratio (T4 70 W; A10 and i20 150 W).
//!
//! Paper reference points: i20 beats T4 and A10 by 4% and 17% on
//! average; SRResNet shows the largest improvement at 2.03x / 2.39x;
//! the i20 wins on power efficiency against T4 for about half the DNNs.

use dtu_bench::{evaluate_suite_with, geomean, LatencyRow, RunnerArgs};

fn main() {
    let run = RunnerArgs::parse_or_exit();
    let cache = run.cache();
    let rows = evaluate_suite_with(&cache, run.jobs);
    println!("== Fig. 15: DNN energy efficiency, Perf/TDP (normalised with T4) ==");
    println!("{:<16} {:>12} {:>12}", "DNN", "i20 vs T4", "i20 vs A10");
    for r in &rows {
        println!(
            "{:<16} {:>11.2}x {:>11.2}x",
            r.model.name(),
            r.efficiency_vs_t4(),
            r.efficiency_vs_a10()
        );
    }
    let e_t4 = geomean(
        &rows
            .iter()
            .map(LatencyRow::efficiency_vs_t4)
            .collect::<Vec<_>>(),
    );
    let e_a10 = geomean(
        &rows
            .iter()
            .map(LatencyRow::efficiency_vs_a10)
            .collect::<Vec<_>>(),
    );
    println!("{:<16} {:>11.2}x {:>11.2}x", "GeoMean", e_t4, e_a10);
    println!();
    println!("Paper: GeoMean 1.04x (vs T4) and 1.17x (vs A10)");
    let best = rows
        .iter()
        .max_by(|a, b| {
            a.efficiency_vs_t4()
                .partial_cmp(&b.efficiency_vs_t4())
                .unwrap()
        })
        .expect("non-empty");
    println!(
        "Best case: {} at {:.2}x / {:.2}x | paper: SRResnet at 2.03x / 2.39x",
        best.model.name(),
        best.efficiency_vs_t4(),
        best.efficiency_vs_a10()
    );
    let t4_wins = rows.iter().filter(|r| r.efficiency_vs_t4() > 1.0).count();
    println!("i20 more efficient than T4 on {t4_wins}/10 DNNs | paper: about half");
    let s = cache.stats();
    eprintln!(
        "[harness] {} workers; session cache: {} memory + {} disk hits, {} misses",
        run.jobs, s.memory_hits, s.disk_hits, s.misses
    );
}
