//! Calibration inspector: prints the full Fig. 13 comparison so the
//! platform efficiency profiles can be sanity-checked against the
//! paper's reported shape (GeoMean 2.22x vs T4, 1.16x vs A10; A10 wins
//! VGG16/Inception-class models; SRResNet is the i20's best case).

fn main() {
    let rows = dtu_bench::evaluate_suite();
    dtu_bench::print_latency_table(&rows);
}
