//! Reproduces Table II as a feature-ablation sweep: each hardware
//! innovation of DTU 2.0 is switched off individually and the latency
//! delta on representative models is measured. The final rows run the
//! full DTU 1.0 configuration — confirming the Fig. 13 footnote that the
//! i10 "performs worse than Cloudblazer i20 for all tested DNNs".

use dtu::{Accelerator, ChipConfig, Session, SessionOptions};
use dtu_models::Model;

fn latency(cfg: ChipConfig, model: Model) -> f64 {
    let accel = Accelerator::with_config(cfg).expect("valid config");
    let graph = model.build(1);
    Session::compile(&accel, &graph, SessionOptions::default())
        .expect("compile")
        .run()
        .expect("run")
        .latency_ms()
}

fn main() {
    let models = [Model::Resnet50, Model::YoloV3, Model::BertLarge];
    println!("== Table II ablation: disable one DTU 2.0 feature at a time ==");
    print!("{:<26}", "Configuration");
    for m in models {
        print!(" {:>16}", m.name());
    }
    println!();

    let base: Vec<f64> = models
        .iter()
        .map(|&m| latency(ChipConfig::dtu20(), m))
        .collect();
    print!("{:<26}", "DTU 2.0 (all features)");
    for b in &base {
        print!(" {:>13.3} ms", b);
    }
    println!();

    type Toggle = (&'static str, fn(&mut ChipConfig));
    let toggles: [Toggle; 8] = [
        ("- fine-grained VMM", |c| {
            c.features.fine_grained_vmm = false
        }),
        ("- enhanced SFU", |c| c.features.enhanced_sfu = false),
        ("- instruction cache", |c| {
            c.features.instruction_cache = false
        }),
        ("- multi-port L2", |c| c.features.multi_port_l2 = false),
        ("- sparse DMA", |c| c.features.sparse_dma = false),
        ("- repeat DMA", |c| c.features.dma_repeat = false),
        ("- L1<->L3 direct", |c| c.features.l1_l3_direct = false),
        ("- power management", |c| {
            c.features.power_management = false
        }),
    ];
    for (name, toggle) in toggles {
        let mut cfg = ChipConfig::dtu20();
        toggle(&mut cfg);
        print!("{name:<26}");
        for (i, &m) in models.iter().enumerate() {
            let l = latency(cfg.clone(), m);
            print!(" {:>8.3} ({:+5.1}%)", l, (l / base[i] - 1.0) * 100.0);
        }
        println!();
    }

    println!();
    println!("== Fig. 13 footnote: i20 vs i10, all ten DNNs ==");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "DNN", "i20 (ms)", "i10 (ms)", "speedup"
    );
    let mut all_win = true;
    for m in Model::ALL {
        let l20 = latency(ChipConfig::dtu20(), m);
        let l10 = latency(ChipConfig::dtu10(), m);
        if l10 <= l20 {
            all_win = false;
        }
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>9.2}x",
            m.name(),
            l20,
            l10,
            l10 / l20
        );
    }
    println!(
        "\ni20 faster than i10 on every DNN: {}",
        if all_win {
            "yes (matches the paper)"
        } else {
            "NO"
        }
    );
}
