//! Reproduces Table II as a feature-ablation sweep: each hardware
//! innovation of DTU 2.0 is switched off individually and the latency
//! delta on representative models is measured. The final rows run the
//! full DTU 1.0 configuration — confirming the Fig. 13 footnote that the
//! i10 "performs worse than Cloudblazer i20 for all tested DNNs".
//!
//! All ~47 (chip config, model) points of both sections go through one
//! deduplicated experiment plan: the three DTU 2.0 base rows reappear in
//! the i20-vs-i10 section and are simulated only once, and `--jobs`
//! spreads the rest over the worker pool.

use dtu::ChipConfig;
use dtu_bench::{chip_latencies, ChipPoint, RunnerArgs};
use dtu_models::Model;

fn main() {
    let run = RunnerArgs::parse_or_exit();
    let cache = run.cache();
    let models = [Model::Resnet50, Model::YoloV3, Model::BertLarge];

    type Toggle = (&'static str, fn(&mut ChipConfig));
    let toggles: [Toggle; 8] = [
        ("- fine-grained VMM", |c| {
            c.features.fine_grained_vmm = false
        }),
        ("- enhanced SFU", |c| c.features.enhanced_sfu = false),
        ("- instruction cache", |c| {
            c.features.instruction_cache = false
        }),
        ("- multi-port L2", |c| c.features.multi_port_l2 = false),
        ("- sparse DMA", |c| c.features.sparse_dma = false),
        ("- repeat DMA", |c| c.features.dma_repeat = false),
        ("- L1<->L3 direct", |c| c.features.l1_l3_direct = false),
        ("- power management", |c| {
            c.features.power_management = false
        }),
    ];

    // One plan for everything this binary prints. Point layout:
    //   [0..3)    DTU 2.0 base, the three representative models
    //   [3..27)   8 toggles x 3 models
    //   [27..37)  i20, all ten DNNs (3 points dedup against the base)
    //   [37..47)  i10, all ten DNNs
    let mut points = Vec::new();
    for &m in &models {
        points.push(ChipPoint::new(ChipConfig::dtu20(), m));
    }
    for (_, toggle) in &toggles {
        let mut cfg = ChipConfig::dtu20();
        toggle(&mut cfg);
        for &m in &models {
            points.push(ChipPoint::new(cfg.clone(), m));
        }
    }
    for m in Model::ALL {
        points.push(ChipPoint::new(ChipConfig::dtu20(), m));
    }
    for m in Model::ALL {
        points.push(ChipPoint::new(ChipConfig::dtu10(), m));
    }
    let lat = chip_latencies(&points, &cache, run.jobs);

    println!("== Table II ablation: disable one DTU 2.0 feature at a time ==");
    print!("{:<26}", "Configuration");
    for m in models {
        print!(" {:>16}", m.name());
    }
    println!();

    let base = &lat[0..3];
    print!("{:<26}", "DTU 2.0 (all features)");
    for b in base {
        print!(" {:>13.3} ms", b);
    }
    println!();

    for (t, (name, _)) in toggles.iter().enumerate() {
        print!("{name:<26}");
        for i in 0..models.len() {
            let l = lat[3 + t * models.len() + i];
            print!(" {:>8.3} ({:+5.1}%)", l, (l / base[i] - 1.0) * 100.0);
        }
        println!();
    }

    println!();
    println!("== Fig. 13 footnote: i20 vs i10, all ten DNNs ==");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "DNN", "i20 (ms)", "i10 (ms)", "speedup"
    );
    let i20 = &lat[27..37];
    let i10 = &lat[37..47];
    let mut all_win = true;
    for (i, m) in Model::ALL.into_iter().enumerate() {
        let (l20, l10) = (i20[i], i10[i]);
        if l10 <= l20 {
            all_win = false;
        }
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>9.2}x",
            m.name(),
            l20,
            l10,
            l10 / l20
        );
    }
    println!(
        "\ni20 faster than i10 on every DNN: {}",
        if all_win {
            "yes (matches the paper)"
        } else {
            "NO"
        }
    );
    let s = cache.stats();
    eprintln!(
        "[harness] {} points planned ({} after dedup), {} workers; cache: {} hits / {} misses",
        points.len(),
        s.lookups(),
        run.jobs,
        s.hits(),
        s.misses
    );
}
