//! Reproduces Fig. 12: comparisons of peak performance, memory capacity,
//! and bandwidth across platforms — (a) i20 vs i10 normalised with i10,
//! (b) i20 vs T4/A10 normalised with T4.

use dtu_bench::{platform_specs, RunnerArgs};
use gpu_baseline::PlatformSpec;

fn row(
    label: &str,
    f: impl Fn(&PlatformSpec) -> f64,
    specs: &[&PlatformSpec],
    base: &PlatformSpec,
) {
    print!("{label:<14}");
    for s in specs {
        print!(" {:>14.2}x", f(s) / f(base));
    }
    println!();
}

fn main() {
    let run = RunnerArgs::parse_or_exit();
    let (i10, i20, t4, a10) = platform_specs(run.jobs);

    println!("== Fig. 12(a): Cloudblazer i20 vs i10 (normalised with i10) ==");
    println!("{:<14} {:>15} {:>15}", "", "i10", "i20");
    let specs_a = [&i10, &i20];
    row("FP32 peak", |s| s.fp32_tflops, &specs_a, &i10);
    row("FP16 peak", |s| s.fp16_tflops, &specs_a, &i10);
    row("INT8 peak", |s| s.int8_tops, &specs_a, &i10);
    row("Memory", |s| s.memory_gb, &specs_a, &i10);
    row("Bandwidth", |s| s.bandwidth_gb_s, &specs_a, &i10);
    println!();

    println!("== Fig. 12(b): i20 vs Nvidia T4/A10 (normalised with T4) ==");
    println!("{:<14} {:>15} {:>15} {:>15}", "", "T4", "A10", "i20");
    let specs_b = [&t4, &a10, &i20];
    row("FP32 peak", |s| s.fp32_tflops, &specs_b, &t4);
    row("FP16 peak", |s| s.fp16_tflops, &specs_b, &t4);
    row("INT8 peak", |s| s.int8_tops, &specs_b, &t4);
    row("Memory", |s| s.memory_gb, &specs_b, &t4);
    row("Bandwidth", |s| s.bandwidth_gb_s, &specs_b, &t4);
    println!();
    println!(
        "Paper check: i20 bandwidth is {:.2}x i10, {:.2}x T4, {:.2}x A10 (expected 1.6x / 2.56x / 1.36x)",
        i20.bandwidth_gb_s / i10.bandwidth_gb_s,
        i20.bandwidth_gb_s / t4.bandwidth_gb_s,
        i20.bandwidth_gb_s / a10.bandwidth_gb_s
    );
}
