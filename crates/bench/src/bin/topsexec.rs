//! `topsexec`: the measurement CLI of the reproduced software stack,
//! playing the role `trtexec` plays in §VI-A of the paper.
//!
//! ```text
//! topsexec --model resnet50            # a Table III model by name
//! topsexec --import my_model.tops      # a textual-format model file
//! topsexec --model vgg16 --batch 16 --chip i10 --groups 3 --profile
//! topsexec --model bert --trace-out out.json --no-power-management
//! topsexec profile resnet50            # cross-layer trace + attribution
//! topsexec profile bert --trace-out bert.json --format prometheus
//! topsexec serve                       # multi-tenant serving scenario
//! topsexec serve --models resnet50,bert --qps 600 --bursty --trace-out t.jsonl
//! topsexec serve --generative          # continuous-batching LLM scenario
//! topsexec serve --generative --gen-model tiny --seed 7 --jobs 4
//! topsexec serve --llm --prompt 128 --max-new 64 --kv-budget 0.25
//! topsexec serve --generative --monitor --slo --flight-out blackbox.json
//! topsexec top --generative --gen-model tiny --duration 4000 --once
//! topsexec sweep                       # model x batch grid, parallel + cached
//! topsexec sweep --models resnet50,bert --batches 1,4,16 --jobs 4 --format json
//! topsexec sweep --check-golden tests/golden/figures.json   # CI figure gate
//! topsexec faults resnet50 --seed 7 --plan core-failure     # fault injection
//! topsexec faults --models resnet50,bert --plans none,ecc,thermal --severities 0.5,1
//! topsexec top --once                  # live serving dashboard (windowed QPS/p50/p99/burn)
//! topsexec top --models resnet50,bert --plan core-failure --severity 1
//! topsexec slo resnet50 --seed 7       # SLO compliance report (byte-deterministic JSON)
//! topsexec slo resnet50 --plan core-failure --flight-out blackbox.json
//! topsexec fleet resnet50 --chips 16 --seed 7   # cluster-scale serving simulation
//! topsexec fleet --chips 8 --kill-chip 3 --kill-at 5000 --format table
//! topsexec fleet top --chips 8 --once  # fleet dashboard (per-chip + per-tenant rows)
//! topsexec fleet resnet50 --slo        # fleet SLO compliance report with burn attribution
//! topsexec fleet --format prom         # Prometheus exposition with chip=/tenant= labels
//! ```

use dtu::serve::{
    faults::FaultPlan, run_serving, run_serving_live, run_serving_recorded, ArrivalProcess,
    BatchPolicy, CompiledModel, GenLiveConfig, GenMonitor, GenerativeScenario, KvCacheConfig,
    LiveConfig, LiveMonitor, ScalePolicy, ServeConfig, ServeError, ServiceModel, SlaPolicy,
    TenantSpec,
};
use dtu::telemetry::{AttributionReport, Recorder, SloSpec, TraceBuffer};
use dtu::{Accelerator, ChipConfig, DataType, Graph, Session, SessionOptions, WorkloadSize};
use dtu_fleet::{
    run_fleet, run_fleet_monitored, run_fleet_monitored_with_timing, run_fleet_with_timing,
    ChipKill, FleetConfig, FleetFrame, FleetMonitor, FleetTenant, FleetTopology, RollPlan,
};
use dtu_graph::parse_model;
use dtu_harness::{
    available_jobs, run_fault_sweep, run_slo_scenario, run_slo_sweep, run_sweep,
    run_sweep_analytic, slo_point_seed, CalibrationCache, SessionCache, SloScenario, SweepModel,
    SweepReport,
};
use dtu_models::{GenerativeConfig, Model};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    model: Option<String>,
    import: Option<String>,
    batch: usize,
    chip: String,
    groups: Option<usize>,
    profile: bool,
    trace: Option<String>,
    no_power_management: bool,
}

fn usage() -> &'static str {
    "usage: topsexec (--model <name> | --import <file.tops>) [options]\n\
     \x20      topsexec profile (<name> | --import <file.tops>) [profile options]\n\
     \x20      topsexec serve [serve options]\n\
     \x20      topsexec sweep [sweep options]\n\
     \x20      topsexec faults [<name>] [fault options]\n\
     \x20      topsexec top [top options]\n\
     \x20      topsexec slo [<name>] [slo options]\n\
     \x20      topsexec fleet [<name>] [fleet options]\n\
     \n\
     options:\n\
       --model <name>           one of: yolov3 centernet retinaface vgg16\n\
                                resnet50 inceptionv4 unet srresnet bert conformer\n\
       --import <file>          load a model in the textual .tops format\n\
       --batch <n>              batch size (default 1; >1 uses throughput mode)\n\
       --chip <i20|i10>         accelerator generation (default i20)\n\
       --groups <1|2|3>         restrict to N groups of cluster 0 (default: full chip)\n\
       --profile                print the profiler's hot-kernel report\n\
       --trace-out <file.json>  write a Chrome-trace timeline (--trace also accepted)\n\
       --no-power-management    pin the clock at f_max\n\
     \n\
     profile options (cross-layer telemetry trace + per-operator attribution):\n\
       --batch / --chip / --groups / --no-power-management as above\n\
       --trace-out <file.json>  Perfetto/Chrome trace path (default topsexec.trace.json)\n\
       --format <fmt>           attribution report format: table (default),\n\
                                prometheus, or json\n\
     \n\
     serve options (multi-tenant dynamic-batching scenario):\n\
       --models <a,b,...>       comma-separated model names, one tenant each\n\
                                (default resnet50,bert)\n\
       --qps <n>                mean arrival rate per tenant, queries/s (default 400)\n\
       --duration <ms>          arrival horizon (default 1000)\n\
       --max-batch <n>          dynamic-batching cap (default 8; 1 disables)\n\
       --batch-timeout <ms>     max co-batching wait (default 2)\n\
       --deadline <ms>          per-request SLA deadline (default 50)\n\
       --queue-depth <n>        admission queue cap, arrivals beyond shed (default 64)\n\
       --bursty                 Markov-modulated arrivals instead of Poisson\n\
       --no-autoscale           pin each tenant at one processing group\n\
       --seed <n>               run seed (default 0x5EED)\n\
       --chip <i20|i10>         accelerator generation (default i20)\n\
       --trace-out <file>       write the event trace: .json gets Chrome-trace\n\
                                spans, anything else JSON lines\n\
       --cache-dir <dir>        compiled-session artifact directory\n\
                                (default target/dtu-cache)\n\
       --no-disk-cache          keep the session cache in memory only\n\
     \n\
     serve --generative options (continuous-batching generative scenario;\n\
     --llm is a synonym; JSON report on stdout is byte-identical across\n\
     --jobs and cache temperature):\n\
       --gen-model <name>       decoder-only transformer config: gpt1b\n\
                                (16 layers, d_model 2048, ~1B params;\n\
                                default) or tiny (CI-sized)\n\
       --qps <n>                mean arrival rate, requests/s (default 200)\n\
       --duration <ms>          arrival horizon; admitted requests drain\n\
                                to completion past it (default 200)\n\
       --prompt <n>             prompt tokens per request (default 64)\n\
       --min-new <n>            minimum output tokens (default 4)\n\
       --max-new <n>            maximum output tokens (default 32); each\n\
                                request's target is drawn from the seed,\n\
                                independent of schedule\n\
       --max-concurrency <n>    running-batch cap (default 8)\n\
       --queue-depth <n>        admission queue cap, arrivals beyond\n\
                                shed (default 64)\n\
       --ttft-deadline <ms>     time-to-first-token SLO (default 100)\n\
       --tpot-deadline <ms>     time-per-output-token SLO (default 20)\n\
       --kv-budget <f>          fraction of L3 granted to the paged\n\
                                KV-cache pool, in (0,1] (default 1)\n\
       --bursty                 Markov-modulated arrivals instead of\n\
                                Poisson\n\
       --seed <n>               run seed (default 7)\n\
       --jobs <n>               session warm-up workers (default: all\n\
                                cores); does not affect the report\n\
       --timing <backend>       interpreted (default) or analytic: price\n\
                                every prefill/decode step with the\n\
                                calibrated analytic timing model\n\
       --monitor                attach the token-level live monitor\n\
                                (TTFT/TPOT burn-rate alerts and the\n\
                                flight-recorder tally on stderr); the\n\
                                stdout report stays byte-identical\n\
       --slo                    print the TTFT/TPOT SLO compliance\n\
                                report (per-objective budget, burn\n\
                                pages, preemption/KV-exhaustion counts)\n\
                                instead of the run report\n\
       --flight-out <file.json> write the flight dump (the first\n\
                                KV-pressure preemption or burn-rate\n\
                                page freezes the token timeline) as a\n\
                                Perfetto/Chrome trace\n\
       --format <json|prom>     run report format on stdout: json\n\
                                (default) or prom (Prometheus\n\
                                exposition with tenant= labels)\n\
       --chip / --trace-out / --cache-dir / --no-disk-cache as for serve\n\
     \n\
     sweep options (model x batch grid on the parallel experiment engine):\n\
       --models <a,b,...>       comma-separated model names\n\
                                (default resnet50,vgg16,bert)\n\
       --batches <1,2,...>      comma-separated batch sizes (default 1,2,4,8)\n\
       --chip <i20|i10>         accelerator generation (default i20)\n\
       --jobs <n>               worker threads (default: all cores)\n\
       --format <table|json>    report format on stdout (default table);\n\
                                json output is byte-stable across --jobs\n\
       --timing <backend>       interpreted (default): the cycle-walking\n\
                                simulator; analytic: the calibrated\n\
                                closed-form fast path (memoized prices,\n\
                                byte-stable across --jobs and cache\n\
                                temperature); both: run the two backends\n\
                                and print their latency comparison,\n\
                                failing past --rtol-bound\n\
       --rtol-bound <f>         max per-point relative latency divergence\n\
                                tolerated by --timing both (default 0.05)\n\
       --wall-out <file.json>   write per-backend wall-clock ms (and the\n\
                                speedup under --timing both) to a file,\n\
                                keeping stdout schedule-independent\n\
       --cache-dir <dir>        compiled-session artifact directory\n\
                                (default target/dtu-cache); --timing\n\
                                analytic keeps its calibration + price\n\
                                artifacts in the same directory\n\
       --no-disk-cache          keep the session cache in memory only\n\
       --write-golden <file>    regenerate the fig. 12-15 figure data and\n\
                                write it as the golden JSON (skips the grid)\n\
       --check-golden <file>    regenerate the fig. 12-15 figure data and\n\
                                fail unless it matches the golden within a\n\
                                1e-9 relative tolerance (the CI figure gate)\n\
     \n\
     fault options (model x fault-plan x severity degradation grid):\n\
       <name> / --models <a,..> model name(s) to inject into (default resnet50)\n\
       --plan / --plans <a,..>  fault-plan presets: none core-failure ecc\n\
                                dma-stall dma-timeout thermal icache mixed\n\
                                (default none,core-failure,ecc,dma-stall,thermal)\n\
       --severity <s,..>        severities in [0,1] (--severities also\n\
                                accepted; default 0.5,1)\n\
       --seed <n>               sweep seed, mixed into every point (default 7)\n\
       --chip <i20|i10>         accelerator generation (default i20)\n\
       --jobs <n>               worker threads (default: all cores)\n\
       --format <json|table>    report format on stdout (default json);\n\
                                byte-identical across runs and --jobs\n\
       --cache-dir / --no-disk-cache as for sweep\n\
     \n\
     top options (live serving dashboard: windowed QPS/p50/p99/burn-rate\n\
     per tenant, refreshed per simulated second):\n\
       --models / --qps / --duration / --max-batch / --batch-timeout /\n\
       --deadline / --queue-depth / --bursty / --no-autoscale / --seed /\n\
       --chip / --cache-dir / --no-disk-cache as for serve\n\
       --plan <name>            inject a fault-plan preset (default none)\n\
       --severity <s>           fault severity in [0,1] (default 1)\n\
       --once                   print the final dashboard once and exit\n\
                                (deterministic stdout; for scripts and CI)\n\
       --span <s>               trailing window the rows aggregate over,\n\
                                simulated seconds (default 5)\n\
       --refresh-ms <n>         wall-clock delay between frames (default 150)\n\
     \n\
     top --generative (token-level dashboard over a monitored generative\n\
     run: QPS, active batch, KV occupancy, preempt/s, spill, and one\n\
     TTFT/TPOT objective row with burn rates and FIRE markers):\n\
       all serve --generative options as above, plus --once / --span /\n\
       --refresh-ms as for top\n\
     \n\
     slo options (SLO compliance report over a calibrated serving run):\n\
       <name> / --models <a,..> model name(s) to grade (default resnet50)\n\
       --plan / --plans <a,..>  fault-plan presets to grade (default none)\n\
       --severity <s,..>        severities in [0,1] (--severities also\n\
                                accepted; default 1)\n\
       --seed <n>               sweep seed, mixed into every point (default 7)\n\
       --chip <i20|i10>         accelerator generation (default i20)\n\
       --jobs <n>               worker threads (default: all cores)\n\
       --format <json|table>    report format on stdout (default json);\n\
                                byte-identical across runs, --jobs, and\n\
                                cache temperature\n\
       --flight-out <file.json> write the first grid point's flight-recorder\n\
                                dump as a Perfetto/Chrome trace\n\
       --cache-dir / --no-disk-cache as for sweep\n\
     \n\
     fleet options (cluster-scale serving over N chips x M cards):\n\
       <name> / --models <a,..> model name(s) to serve (default resnet50)\n\
       --chips <n>              chips in the fleet (default 4)\n\
       --cards <n>              cards they sit on; chips must divide\n\
                                evenly (default 1)\n\
       --qps <q>                fleet-wide offered load (default\n\
                                7500 x chips, split across models)\n\
       --duration <ms>          arrival horizon (default 10000)\n\
       --epoch <ms>             routing-epoch length (default 1000)\n\
       --replicas <n>           replicas per tenant, 0 = every chip\n\
                                (default 0)\n\
       --deadline <ms>          per-request SLA deadline (default 50)\n\
       --queue-depth <n>        per-replica admission cap (default 256)\n\
       --cells <n>              routing cells per replica per epoch\n\
                                (default 2)\n\
       --no-roll                skip the default rolling deploy\n\
       --roll-start <ms>        when the roll begins (default 20% of\n\
                                the horizon)\n\
       --roll-chips <n>         chips drained per epoch (default\n\
                                chips/4, at least 1)\n\
       --kill-chip <n>          kill chip n mid-run (whole-chip fault)\n\
       --kill-at <ms>           when the kill fires (default 50% of\n\
                                the horizon)\n\
       --seed <n>               fleet seed (default 7)\n\
       --jobs <n>               worker threads (default: all cores)\n\
       --format <fmt>           report on stdout: json (default), table,\n\
                                or prom (Prometheus exposition with\n\
                                chip=/tenant= labels); json is\n\
                                byte-identical across runs, --jobs, and\n\
                                cache temperature (table adds the\n\
                                schedule-dependent cache tally)\n\
       --monitor                attach the fleet monitor (alerts and\n\
                                burn attribution on stderr); the stdout\n\
                                report stays byte-identical\n\
       --slo                    print the fleet SLO compliance report\n\
                                (per-tenant budget, burn alerts, top\n\
                                offending chip/tenant pairs) instead\n\
                                of the fleet report\n\
       --flight-out <file.json> write the first fleet flight dump (an\n\
                                alert or chip kill freezes the chip's\n\
                                span ring + routing decisions) as a\n\
                                Perfetto/Chrome trace\n\
       --timing <backend>       interpreted (default) or analytic: price\n\
                                every per-chip epoch with the calibrated\n\
                                analytic timing model (one calibration\n\
                                serves the homogeneous fleet)\n\
       --chip / --cache-dir / --no-disk-cache as for sweep\n\
     \n\
     fleet top (fleet dashboard: per-tenant and per-chip QPS/shed/p99/\n\
     burn-rate/FIRE rows, one frame per routing epoch):\n\
       all fleet options as above, plus:\n\
       --once                   print the final frame once and exit\n\
                                (deterministic stdout; for scripts/CI)\n\
       --refresh-ms <n>         wall-clock delay between frames\n\
                                (default 150)"
}

fn chip_by_name(name: &str) -> Result<ChipConfig, String> {
    match name {
        "i20" => Ok(ChipConfig::dtu20()),
        "i10" => Ok(ChipConfig::dtu10()),
        other => Err(format!("unknown chip '{other}' (use i20 or i10)")),
    }
}

fn load_graph(model: Option<&str>, import: Option<&str>, batch: usize) -> Result<Graph, String> {
    if let Some(name) = model {
        return match model_by_name(name) {
            Some(m) => Ok(m.build(batch)),
            None => Err(format!("unknown model '{name}'\n\n{}", usage())),
        };
    }
    let path = import.expect("validated");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_model(&text).map_err(|e| format!("{path}: {e}"))
}

fn workload_size(groups: Option<usize>) -> Result<WorkloadSize, String> {
    match groups {
        Some(1) => Ok(WorkloadSize::Small),
        Some(2) => Ok(WorkloadSize::Medium),
        Some(3) => Ok(WorkloadSize::Large),
        None => Ok(WorkloadSize::FullChip),
        Some(n) => Err(format!("--groups must be 1..3, got {n}")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: None,
        import: None,
        batch: 1,
        chip: "i20".into(),
        groups: None,
        profile: false,
        trace: None,
        no_power_management: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--import" => args.import = Some(value("--import")?),
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch needs an integer".to_string())?
            }
            "--chip" => args.chip = value("--chip")?,
            "--groups" => {
                args.groups = Some(
                    value("--groups")?
                        .parse()
                        .map_err(|_| "--groups needs an integer".to_string())?,
                )
            }
            "--profile" => args.profile = true,
            "--trace-out" | "--trace" => args.trace = Some(value("--trace-out")?),
            "--no-power-management" => args.no_power_management = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.model.is_none() == args.import.is_none() {
        return Err("exactly one of --model / --import is required".into());
    }
    Ok(args)
}

fn model_by_name(name: &str) -> Option<Model> {
    match name.to_lowercase().as_str() {
        "yolov3" | "yolo" => Some(Model::YoloV3),
        "centernet" => Some(Model::CenterNet),
        "retinaface" => Some(Model::RetinaFace),
        "vgg16" | "vgg" => Some(Model::Vgg16),
        "resnet50" | "resnet" => Some(Model::Resnet50),
        "inceptionv4" | "inception" => Some(Model::InceptionV4),
        "unet" => Some(Model::Unet),
        "srresnet" => Some(Model::SrResnet),
        "bert" | "bertlarge" => Some(Model::BertLarge),
        "conformer" => Some(Model::Conformer),
        _ => None,
    }
}

struct ServeArgs {
    models: Vec<String>,
    qps: f64,
    duration_ms: f64,
    max_batch: usize,
    batch_timeout_ms: f64,
    deadline_ms: f64,
    queue_depth: usize,
    bursty: bool,
    autoscale: bool,
    seed: u64,
    chip: String,
    trace: Option<String>,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
}

/// Builds the artifact cache the `sweep` and `serve` subcommands share
/// (on disk) from the common `--cache-dir` / `--no-disk-cache` flags.
fn artifact_cache(cache_dir: Option<&PathBuf>, disk_cache: bool) -> SessionCache {
    if !disk_cache {
        return SessionCache::memory_only();
    }
    let dir = cache_dir
        .cloned()
        .unwrap_or_else(SessionCache::default_disk_dir);
    SessionCache::with_disk(dir)
}

/// Builds the analytic calibration/price cache for `--timing analytic`
/// runs. It shares the `--cache-dir` directory with the session cache
/// (calibration and price artifacts carry their own file extensions,
/// so the two tiers never collide) and honours `--no-disk-cache`.
fn calibration_cache(cache_dir: Option<&PathBuf>, disk_cache: bool) -> CalibrationCache {
    if !disk_cache {
        return CalibrationCache::memory_only();
    }
    let dir = cache_dir
        .cloned()
        .unwrap_or_else(SessionCache::default_disk_dir);
    CalibrationCache::with_disk(dir)
}

fn parse_serve_args() -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        models: vec!["resnet50".into(), "bert".into()],
        qps: 400.0,
        duration_ms: 1000.0,
        max_batch: 8,
        batch_timeout_ms: 2.0,
        deadline_ms: 50.0,
        queue_depth: 64,
        bursty: false,
        autoscale: true,
        seed: 0x5EED,
        chip: "i20".into(),
        trace: None,
        cache_dir: None,
        disk_cache: true,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("{flag} needs a number"))
        }
        match a.as_str() {
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--qps" => args.qps = num("--qps", value("--qps")?)?,
            "--duration" => args.duration_ms = num("--duration", value("--duration")?)?,
            "--max-batch" => args.max_batch = num("--max-batch", value("--max-batch")?)?,
            "--batch-timeout" => {
                args.batch_timeout_ms = num("--batch-timeout", value("--batch-timeout")?)?
            }
            "--deadline" => args.deadline_ms = num("--deadline", value("--deadline")?)?,
            "--queue-depth" => args.queue_depth = num("--queue-depth", value("--queue-depth")?)?,
            "--bursty" => args.bursty = true,
            "--no-autoscale" => args.autoscale = false,
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--chip" => args.chip = value("--chip")?,
            "--trace-out" | "--trace" => args.trace = Some(value("--trace-out")?),
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    if args.models.is_empty() {
        return Err("--models needs at least one model name".into());
    }
    Ok(args)
}

fn run_serve() -> ExitCode {
    let args = match parse_serve_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The artifact cache outlives the per-tenant models so every
    // tenant compiles through it — and, with the disk tier on, reuses
    // sessions a previous `serve` or `sweep` run already lowered.
    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
    let mut models = Vec::new();
    for name in &args.models {
        let Some(m) = model_by_name(name) else {
            eprintln!("error: unknown model '{name}'\n\n{}", usage());
            return ExitCode::FAILURE;
        };
        models.push(
            CompiledModel::new(accel.chip(), name.clone(), move |b| m.build(b)).with_source(&cache),
        );
    }

    let gpc = accel.config().groups_per_cluster;
    let cfg = ServeConfig {
        duration_ms: args.duration_ms,
        seed: args.seed,
        record_requests: false,
        faults: Default::default(),
        retry: Default::default(),
        tenants: (0..models.len())
            .map(|i| TenantSpec {
                name: format!("tenant{i}"),
                model: i,
                arrival: if args.bursty {
                    ArrivalProcess::Bursty {
                        base_qps: 0.5 * args.qps,
                        burst_qps: 2.5 * args.qps,
                        mean_dwell_ms: args.duration_ms / 8.0,
                    }
                } else {
                    ArrivalProcess::Poisson { qps: args.qps }
                },
                batch: if args.max_batch > 1 {
                    BatchPolicy::dynamic(args.max_batch, args.batch_timeout_ms)
                } else {
                    BatchPolicy::none()
                },
                sla: SlaPolicy::new(args.deadline_ms, args.queue_depth),
                scale: if args.autoscale {
                    ScalePolicy::elastic(args.deadline_ms / 4.0, args.deadline_ms / 20.0, gpc)
                } else {
                    ScalePolicy::none()
                },
                cluster: None,
                initial_groups: 1,
            })
            .collect(),
    };

    println!("=== topsexec serve ===");
    println!("accelerator : {accel}");
    println!(
        "tenants     : {} ({}), {:.0} qps each{}, {:.0} ms horizon",
        cfg.tenants.len(),
        args.models.join(", "),
        args.qps,
        if args.bursty { " (bursty)" } else { "" },
        args.duration_ms
    );
    println!(
        "policies    : max batch {}, timeout {:.1} ms, deadline {:.0} ms, queue cap {}, autoscale {}",
        args.max_batch,
        args.batch_timeout_ms,
        args.deadline_ms,
        args.queue_depth,
        if args.autoscale { "on" } else { "off" }
    );

    let mut refs: Vec<&mut dyn ServiceModel> = models
        .iter_mut()
        .map(|m| m as &mut dyn ServiceModel)
        .collect();
    // A .json trace goes through the telemetry exporter (request/batch
    // spans on the shared clock); anything else stays JSONL.
    let chrome_trace = args.trace.as_deref().is_some_and(|p| p.ends_with(".json"));
    let mut buf = TraceBuffer::new();
    let out = if chrome_trace {
        run_serving_recorded(&cfg, accel.config(), &mut refs, &mut buf)
    } else {
        run_serving(&cfg, accel.config(), &mut refs)
    };
    let out = match out {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("\n--- report ---");
    print!("{}", out.report);
    println!("\n--- session cache ---");
    for m in &models {
        let s = m.cache_stats();
        println!(
            "  {}: {} sessions compiled, {} hits / {} misses",
            m.name(),
            m.cached_sessions(),
            s.hits,
            s.misses
        );
    }
    let s = cache.stats();
    println!(
        "  shared artifacts: {} memory + {} disk hits, {} misses",
        s.memory_hits, s.disk_hits, s.misses
    );

    if let Some(path) = &args.trace {
        let payload = if chrome_trace {
            buf.to_chrome_trace(true)
        } else {
            out.trace.to_jsonl()
        };
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\ntrace written to {path} ({} events)", out.trace.len());
    }
    ExitCode::SUCCESS
}

struct GenServeArgs {
    gen_model: String,
    qps: f64,
    duration_ms: f64,
    prompt: usize,
    min_new: usize,
    max_new: usize,
    max_concurrency: usize,
    queue_depth: usize,
    ttft_deadline_ms: f64,
    tpot_deadline_ms: f64,
    kv_budget: f64,
    bursty: bool,
    seed: u64,
    chip: String,
    jobs: usize,
    timing: String,
    trace: Option<String>,
    monitor: bool,
    slo: bool,
    flight_out: Option<String>,
    format: String,
    once: bool,
    span_s: f64,
    refresh_ms: u64,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
}

fn gen_model_by_name(name: &str) -> Option<GenerativeConfig> {
    match name.to_lowercase().as_str() {
        "gpt1b" | "gpt-1b" | "1b" => Some(GenerativeConfig::gpt_1b()),
        "tiny" => Some(GenerativeConfig::tiny()),
        _ => None,
    }
}

fn parse_genserve_args() -> Result<GenServeArgs, String> {
    let mut args = GenServeArgs {
        gen_model: "gpt1b".into(),
        qps: 200.0,
        duration_ms: 200.0,
        prompt: 64,
        min_new: 4,
        max_new: 32,
        max_concurrency: 8,
        queue_depth: 64,
        ttft_deadline_ms: 100.0,
        tpot_deadline_ms: 20.0,
        kv_budget: 1.0,
        bursty: false,
        seed: 7,
        chip: "i20".into(),
        jobs: available_jobs(),
        timing: "interpreted".into(),
        trace: None,
        monitor: false,
        slo: false,
        flight_out: None,
        format: "json".into(),
        once: false,
        span_s: 5.0,
        refresh_ms: 150,
        cache_dir: None,
        disk_cache: true,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("{flag} needs a number"))
        }
        match a.as_str() {
            // The mode selectors themselves (main() already routed on
            // them).
            "--generative" | "--llm" => {}
            "--gen-model" => args.gen_model = value("--gen-model")?,
            "--qps" => args.qps = num("--qps", value("--qps")?)?,
            "--duration" => args.duration_ms = num("--duration", value("--duration")?)?,
            "--prompt" => args.prompt = num("--prompt", value("--prompt")?)?,
            "--min-new" => args.min_new = num("--min-new", value("--min-new")?)?,
            "--max-new" => args.max_new = num("--max-new", value("--max-new")?)?,
            "--max-concurrency" => {
                args.max_concurrency = num("--max-concurrency", value("--max-concurrency")?)?
            }
            "--queue-depth" => args.queue_depth = num("--queue-depth", value("--queue-depth")?)?,
            "--ttft-deadline" => {
                args.ttft_deadline_ms = num("--ttft-deadline", value("--ttft-deadline")?)?
            }
            "--tpot-deadline" => {
                args.tpot_deadline_ms = num("--tpot-deadline", value("--tpot-deadline")?)?
            }
            "--kv-budget" => args.kv_budget = num("--kv-budget", value("--kv-budget")?)?,
            "--bursty" => args.bursty = true,
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--chip" => args.chip = value("--chip")?,
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?
            }
            "--timing" => args.timing = value("--timing")?,
            "--trace-out" | "--trace" => args.trace = Some(value("--trace-out")?),
            "--monitor" => args.monitor = true,
            "--slo" => args.slo = true,
            "--flight-out" => args.flight_out = Some(value("--flight-out")?),
            "--format" => args.format = value("--format")?,
            "--once" => args.once = true,
            "--span" => args.span_s = num("--span", value("--span")?)?,
            "--refresh-ms" => args.refresh_ms = num("--refresh-ms", value("--refresh-ms")?)?,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown generative serve flag '{other}'")),
        }
    }
    if args.min_new == 0 || args.max_new < args.min_new {
        return Err("--min-new must be at least 1 and --max-new at least --min-new".into());
    }
    if !(args.kv_budget > 0.0 && args.kv_budget <= 1.0) {
        return Err("--kv-budget must be in (0, 1]".into());
    }
    if !matches!(args.timing.as_str(), "interpreted" | "analytic") {
        return Err(format!(
            "--timing must be interpreted or analytic, got '{}'",
            args.timing
        ));
    }
    if !matches!(args.format.as_str(), "json" | "prom") {
        return Err(format!(
            "--format must be json or prom, got '{}'",
            args.format
        ));
    }
    if args.span_s <= 0.0 {
        return Err("--span must be positive".into());
    }
    Ok(args)
}

/// The deadline-derived burn-rate objectives of a generative run: a
/// p99 objective per finite deadline (an infinite deadline means "no
/// SLO", matching the engine's violation accounting).
fn gen_live_config(args: &GenServeArgs) -> GenLiveConfig {
    let spec = |metric: &str, deadline_ms: f64| {
        deadline_ms.is_finite().then(|| {
            SloSpec::new(
                format!("{metric}_p99<{deadline_ms:.0}ms"),
                0.99,
                deadline_ms,
            )
        })
    };
    GenLiveConfig {
        ttft_slo: spec("ttft", args.ttft_deadline_ms),
        tpot_slo: spec("tpot", args.tpot_deadline_ms),
        tenant: args.gen_model.clone(),
        ..GenLiveConfig::default()
    }
}

fn gen_scenario(
    args: &GenServeArgs,
    accel: &Accelerator,
    gen_cfg: &GenerativeConfig,
) -> GenerativeScenario {
    let kv = KvCacheConfig::for_chip_with_budget(
        accel.config(),
        gen_cfg.kv_bytes_per_token(),
        args.kv_budget,
    );
    GenerativeScenario {
        duration_ms: args.duration_ms,
        seed: args.seed,
        arrival: if args.bursty {
            ArrivalProcess::Bursty {
                base_qps: 0.5 * args.qps,
                burst_qps: 2.5 * args.qps,
                mean_dwell_ms: args.duration_ms / 8.0,
            }
        } else {
            ArrivalProcess::Poisson { qps: args.qps }
        },
        prompt_tokens: args.prompt,
        min_new_tokens: args.min_new,
        max_new_tokens: args.max_new,
        max_concurrency: args.max_concurrency,
        queue_depth: args.queue_depth,
        ttft_deadline_ms: args.ttft_deadline_ms,
        tpot_deadline_ms: args.tpot_deadline_ms,
        kv,
    }
}

fn run_genserve() -> ExitCode {
    let args = match parse_genserve_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let Some(gen_cfg) = gen_model_by_name(&args.gen_model) else {
        eprintln!(
            "error: unknown generative model '{}' (use gpt1b or tiny)\n\n{}",
            args.gen_model,
            usage()
        );
        return ExitCode::FAILURE;
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scenario = gen_scenario(&args, &accel, &gen_cfg);

    eprintln!(
        "[serve --generative] {} ({} prompt tokens, {}..{} new), {:.0} qps{} over {:.0} ms, \
         concurrency {}, KV pool {} pages ({} L2-resident) on {} warm-up workers",
        args.gen_model,
        args.prompt,
        args.min_new,
        args.max_new,
        args.qps,
        if args.bursty { " (bursty)" } else { "" },
        args.duration_ms,
        args.max_concurrency,
        scenario.kv.total_pages,
        scenario.kv.l2_pages,
        args.jobs
    );

    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
    let chrome_trace = args.trace.as_deref().is_some_and(|p| p.ends_with(".json"));
    let monitored = args.monitor || args.slo || args.flight_out.is_some();
    let mut buf = TraceBuffer::new();
    let mut mon = monitored.then(|| GenMonitor::new(gen_live_config(&args)));
    let started = std::time::Instant::now();
    let result = if let Some(mon) = mon.as_mut() {
        // Monitored: the live path, on either timing backend. The
        // monitor is observational, so stdout stays byte-identical to
        // the plain run.
        let cal = (args.timing == "analytic")
            .then(|| calibration_cache(args.cache_dir.as_ref(), args.disk_cache));
        dtu_harness::run_generative_serve_live(
            &accel,
            &gen_cfg,
            &scenario,
            &cache,
            cal.as_ref(),
            args.jobs,
            mon,
        )
    } else {
        let rec: Option<&mut dyn Recorder> = if chrome_trace { Some(&mut buf) } else { None };
        if args.timing == "analytic" {
            let cal = calibration_cache(args.cache_dir.as_ref(), args.disk_cache);
            dtu_harness::run_generative_serve_analytic(
                &accel, &gen_cfg, &scenario, &cache, &cal, args.jobs, rec,
            )
        } else {
            dtu_harness::run_generative_serve(&accel, &gen_cfg, &scenario, &cache, args.jobs, rec)
        }
    };
    let out = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("generative serve error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    if chrome_trace && monitored {
        // The live path has no recorder attached; rebuild the exact
        // spans (and final counter snapshot) the recorded path emits,
        // from the schedule-independent event trace.
        for s in out.trace.to_spans() {
            buf.record(s);
        }
        buf.snapshot(dtu::telemetry::CounterSnapshot {
            at_ns: out.report.drained_ms * 1e6,
            label: "generative".into(),
            set: out.report.counters(),
        });
    }

    // The stdout payload is schedule-independent so two runs (any
    // --jobs, warm or cold cache, monitored or not) compare
    // byte-for-byte; wall-clock chatter stays on stderr.
    if args.slo {
        println!(
            "{}",
            mon.as_ref()
                .expect("slo implies monitored")
                .compliance_json()
        );
    } else if args.format == "prom" {
        print!("{}", out.report.to_prometheus(&args.gen_model));
    } else {
        println!("{}", out.report.to_json());
    }
    let s = cache.stats();
    eprintln!(
        "[serve --generative] {} prefill + {} decode steps in {:.0} ms; \
         cache: {} memory + {} disk hits, {} misses",
        out.report.prefill_steps,
        out.report.decode_steps,
        elapsed_ms,
        s.memory_hits,
        s.disk_hits,
        s.misses
    );
    if let Some(mon) = &mon {
        for a in &mon.alerts {
            eprintln!(
                "[serve --generative] t={:.2}s {} alert `{}` (burn fast {:.1} / slow {:.1})",
                a.t_ns / 1e9,
                a.kind.name(),
                a.slo,
                a.burn_fast,
                a.burn_slow
            );
        }
        eprintln!(
            "[serve --generative] monitor: {} preemptions, {} kv exhaustions; \
             flight recorder: {} spans in ring, {} dumps ({} triggers)",
            mon.preempts.total() as u64,
            mon.exhausts.total() as u64,
            mon.flight.len(),
            mon.flight.dumps().len(),
            mon.flight.triggers()
        );
    }

    if let (Some(path), Some(mon)) = (&args.flight_out, mon.as_mut()) {
        if mon.flight.dumps().is_empty() {
            // Nothing went wrong: snapshot the ring at end of run so
            // the flag always produces a trace.
            let end_ns = mon.now_ns();
            mon.flight.trigger("end-of-run snapshot", end_ns);
        }
        // Prefer the KV-pressure dump (it names the preempted
        // request), then the first burn-rate page, then whatever came
        // first.
        let dumps = mon.flight.dumps();
        let dump = dumps
            .iter()
            .find(|d| d.reason.starts_with("kv-exhaustion"))
            .or_else(|| dumps.iter().find(|d| d.reason.starts_with("alert")))
            .or_else(|| dumps.first())
            .expect("just ensured");
        if let Err(e) = std::fs::write(path, dump.to_chrome_trace(true)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[serve --generative] flight dump `{}` ({} spans at t={:.2}s) written to {path}",
            dump.reason,
            dump.spans.len(),
            dump.at_ns / 1e9
        );
    }

    if let Some(path) = &args.trace {
        let payload = if chrome_trace {
            buf.to_chrome_trace(true)
        } else {
            out.trace.to_jsonl()
        };
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[serve --generative] trace written to {path} ({} events)",
            out.trace.len()
        );
    }
    ExitCode::SUCCESS
}

struct SweepArgs {
    models: Vec<String>,
    batches: Vec<usize>,
    chip: String,
    jobs: usize,
    format: String,
    timing: String,
    rtol_bound: f64,
    wall_out: Option<String>,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
    check_golden: Option<String>,
    write_golden: Option<String>,
}

fn parse_sweep_args() -> Result<SweepArgs, String> {
    let mut args = SweepArgs {
        models: vec!["resnet50".into(), "vgg16".into(), "bert".into()],
        batches: vec![1, 2, 4, 8],
        chip: "i20".into(),
        jobs: available_jobs(),
        format: "table".into(),
        timing: "interpreted".into(),
        rtol_bound: 0.05,
        wall_out: None,
        cache_dir: None,
        disk_cache: true,
        check_golden: None,
        write_golden: None,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--check-golden" => args.check_golden = Some(value("--check-golden")?),
            "--write-golden" => args.write_golden = Some(value("--write-golden")?),
            "--batches" => {
                args.batches = value("--batches")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("bad batch size '{}'", s.trim()))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--chip" => args.chip = value("--chip")?,
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?
            }
            "--format" => args.format = value("--format")?,
            "--timing" => args.timing = value("--timing")?,
            "--rtol-bound" => {
                args.rtol_bound = value("--rtol-bound")?
                    .parse()
                    .map_err(|_| "--rtol-bound needs a number".to_string())?
            }
            "--wall-out" => args.wall_out = Some(value("--wall-out")?),
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown sweep flag '{other}'")),
        }
    }
    if args.models.is_empty() || args.batches.is_empty() {
        return Err("sweep needs at least one model and one batch".into());
    }
    if !matches!(args.format.as_str(), "table" | "json") {
        return Err(format!(
            "--format must be table or json, got '{}'",
            args.format
        ));
    }
    if !matches!(args.timing.as_str(), "interpreted" | "analytic" | "both") {
        return Err(format!(
            "--timing must be interpreted, analytic, or both, got '{}'",
            args.timing
        ));
    }
    if !(args.rtol_bound > 0.0 && args.rtol_bound.is_finite()) {
        return Err("--rtol-bound must be a positive number".into());
    }
    if args.check_golden.is_some() && args.write_golden.is_some() {
        return Err("--check-golden and --write-golden are mutually exclusive".into());
    }
    if args.timing != "interpreted" && (args.check_golden.is_some() || args.write_golden.is_some())
    {
        return Err("--timing only applies to the grid, not the golden modes".into());
    }
    Ok(args)
}

/// The `sweep --write-golden` / `--check-golden` modes: regenerate the
/// fig. 12–15 figure data through the shared cache and either commit it
/// as the golden or gate against it at [`dtu_harness::GOLDEN_RTOL`].
fn run_golden(args: &SweepArgs, cache: &SessionCache) -> ExitCode {
    let regenerated = dtu_bench::figures_json(cache, args.jobs);
    if let Some(path) = &args.write_golden {
        if let Err(e) = std::fs::write(path, format!("{regenerated}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("golden figures written to {path}");
        return ExitCode::SUCCESS;
    }
    let path = args.check_golden.as_deref().expect("validated");
    let golden = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read golden {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match dtu_harness::compare_golden(golden.trim_end(), &regenerated, dtu_harness::GOLDEN_RTOL) {
        Ok(()) => {
            println!("golden figures OK: {path} matches within 1e-9 relative tolerance");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!(
                "golden figure regression against {path}: {e}\n\
                 if the change is intentional, regenerate with\n\
                 \x20 topsexec sweep --write-golden {path}\n\
                 and commit the diff (see docs/CLI.md)"
            );
            ExitCode::FAILURE
        }
    }
}

fn run_sweep_cmd() -> ExitCode {
    let args = match parse_sweep_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.check_golden.is_some() || args.write_golden.is_some() {
        let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
        return run_golden(&args, &cache);
    }
    let mut grid = Vec::new();
    for name in &args.models {
        let Some(m) = model_by_name(name) else {
            eprintln!("error: unknown model '{name}'\n\n{}", usage());
            return ExitCode::FAILURE;
        };
        grid.push(SweepModel::new(name.clone(), move |b| m.build(b)));
    }
    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);

    // `--timing both` runs the interpreter first, then the analytic
    // fast path, and gates the per-point latency divergence at
    // `--rtol-bound` (the CI fastpath job's contract).
    let mut interpreted: Option<(SweepReport, f64)> = None;
    if matches!(args.timing.as_str(), "interpreted" | "both") {
        let started = std::time::Instant::now();
        match run_sweep(&accel, &grid, &args.batches, &cache, args.jobs) {
            Ok(r) => interpreted = Some((r, started.elapsed().as_secs_f64() * 1e3)),
            Err(e) => {
                eprintln!("sweep error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut analytic: Option<(SweepReport, f64)> = None;
    if matches!(args.timing.as_str(), "analytic" | "both") {
        let cal = calibration_cache(args.cache_dir.as_ref(), args.disk_cache);
        let started = std::time::Instant::now();
        match run_sweep_analytic(&accel, &grid, &args.batches, &cache, &cal, args.jobs) {
            Ok(r) => analytic = Some((r, started.elapsed().as_secs_f64() * 1e3)),
            Err(e) => {
                eprintln!("sweep error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The report itself is schedule-independent and goes to stdout;
    // anything wall-clock-dependent stays on stderr so json output can
    // be compared byte-for-byte between runs (--wall-out is the file
    // side channel for the wall-clock numbers).
    let max_rtol = match (&interpreted, &analytic) {
        (Some((interp, _)), Some((fast, _))) => {
            match args.format.as_str() {
                "json" => println!("{}", timing_comparison_json(interp, fast, args.rtol_bound)),
                _ => print!("{}", timing_comparison_table(interp, fast)),
            }
            interp
                .points
                .iter()
                .zip(&fast.points)
                .map(|(a, b)| ((a.latency_ms - b.latency_ms) / a.latency_ms).abs())
                .fold(0.0f64, f64::max)
        }
        _ => {
            let (report, _) = interpreted.as_ref().or(analytic.as_ref()).expect("one ran");
            match args.format.as_str() {
                "json" => println!("{}", report.to_json()),
                _ => print!("{}", report.to_table()),
            }
            0.0
        }
    };
    for (backend, run) in [("interpreted", &interpreted), ("analytic", &analytic)] {
        if let Some((report, wall_ms)) = run {
            eprintln!(
                "[sweep] {backend}: {} points ({} models x {} batches) on {} workers \
                 in {wall_ms:.0} ms; cache: {} memory + {} disk hits, {} misses",
                report.points.len(),
                report.models.len(),
                report.batches.len(),
                args.jobs,
                report.cache.memory_hits,
                report.cache.disk_hits,
                report.cache.misses
            );
        }
    }
    if let Some(path) = &args.wall_out {
        let payload = wall_json(&args, &interpreted, &analytic, max_rtol);
        if let Err(e) = std::fs::write(path, format!("{payload}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.timing == "both" && max_rtol > args.rtol_bound {
        eprintln!(
            "[sweep] analytic timing diverged from the interpreter: \
             max rtol {max_rtol:.6} exceeds the --rtol-bound {:.6}",
            args.rtol_bound
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `--timing both` machine-readable comparison: both backends'
/// latencies per grid point plus the per-point and maximum relative
/// divergence. Schedule-independent, so byte-stable across `--jobs`.
fn timing_comparison_json(interp: &SweepReport, fast: &SweepReport, bound: f64) -> String {
    use dtu::telemetry::json::{array, number, JsonObject};
    let mut max_rtol = 0.0f64;
    let points: Vec<String> = interp
        .points
        .iter()
        .zip(&fast.points)
        .map(|(a, b)| {
            let rtol = ((a.latency_ms - b.latency_ms) / a.latency_ms).abs();
            max_rtol = max_rtol.max(rtol);
            JsonObject::new()
                .string("model", &a.model)
                .int("batch", a.batch as i64)
                .raw("interpreted_ms", &number(a.latency_ms))
                .raw("analytic_ms", &number(b.latency_ms))
                .raw("rtol", &number(rtol))
                .build()
        })
        .collect();
    JsonObject::new()
        .raw("points", &array(&points))
        .raw("max_rtol", &number(max_rtol))
        .raw("rtol_bound", &number(bound))
        .raw(
            "within_bound",
            if max_rtol <= bound { "true" } else { "false" },
        )
        .build()
}

/// The `--timing both` human-readable comparison table.
fn timing_comparison_table(interp: &SweepReport, fast: &SweepReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>16} {:>14} {:>10}",
        "model", "batch", "interpreted(ms)", "analytic(ms)", "rtol"
    );
    let mut max_rtol = 0.0f64;
    for (a, b) in interp.points.iter().zip(&fast.points) {
        let rtol = ((a.latency_ms - b.latency_ms) / a.latency_ms).abs();
        max_rtol = max_rtol.max(rtol);
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>16.3} {:>14.3} {:>10.6}",
            a.model, a.batch, a.latency_ms, b.latency_ms, rtol
        );
    }
    let _ = writeln!(out, "max rtol: {max_rtol:.6}");
    out
}

/// The `--wall-out` payload: per-backend wall-clock (the one quantity
/// deliberately kept off stdout) plus the speedup when both ran. This
/// is what `scripts/bench_smoke.sh` reads to gate the analytic
/// fast-path speedup.
fn wall_json(
    args: &SweepArgs,
    interpreted: &Option<(SweepReport, f64)>,
    analytic: &Option<(SweepReport, f64)>,
    max_rtol: f64,
) -> String {
    use dtu::telemetry::json::{number, JsonObject};
    let mut obj = JsonObject::new().string("timing", &args.timing);
    let points = interpreted
        .as_ref()
        .or(analytic.as_ref())
        .map_or(0, |(r, _)| r.points.len());
    obj = obj.int("points", points as i64);
    if let Some((_, wall_ms)) = interpreted {
        obj = obj.raw("interpreted_wall_ms", &number(*wall_ms));
    }
    if let Some((_, wall_ms)) = analytic {
        obj = obj.raw("analytic_wall_ms", &number(*wall_ms));
    }
    if let (Some((_, iw)), Some((_, aw))) = (interpreted, analytic) {
        obj = obj
            .raw("speedup", &number(iw / aw))
            .raw("max_rtol", &number(max_rtol));
    }
    obj.build()
}

struct FaultsArgs {
    models: Vec<String>,
    plans: Vec<String>,
    severities: Vec<f64>,
    seed: u64,
    chip: String,
    jobs: usize,
    format: String,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
}

fn parse_faults_args() -> Result<FaultsArgs, String> {
    let mut args = FaultsArgs {
        models: Vec::new(),
        plans: vec![
            "none".into(),
            "core-failure".into(),
            "ecc".into(),
            "dma-stall".into(),
            "thermal".into(),
        ],
        severities: vec![0.5, 1.0],
        seed: 7,
        chip: "i20".into(),
        jobs: available_jobs(),
        format: "json".into(),
        cache_dir: None,
        disk_cache: true,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--models" | "--model" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--plans" | "--plan" => {
                args.plans = value("--plans")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--severities" | "--severity" => {
                args.severities = value("--severities")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("bad severity '{}'", s.trim()))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--chip" => args.chip = value("--chip")?,
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?
            }
            "--format" => args.format = value("--format")?,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--help" | "-h" => return Err(String::new()),
            name if !name.starts_with('-') => args.models.push(name.to_string()),
            other => return Err(format!("unknown faults flag '{other}'")),
        }
    }
    if args.models.is_empty() {
        args.models.push("resnet50".into());
    }
    if args.plans.is_empty() || args.severities.is_empty() {
        return Err("faults needs at least one plan and one severity".into());
    }
    if !matches!(args.format.as_str(), "table" | "json") {
        return Err(format!(
            "--format must be table or json, got '{}'",
            args.format
        ));
    }
    Ok(args)
}

fn run_faults() -> ExitCode {
    let args = match parse_faults_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut grid = Vec::new();
    for name in &args.models {
        let Some(m) = model_by_name(name) else {
            eprintln!("error: unknown model '{name}'\n\n{}", usage());
            return ExitCode::FAILURE;
        };
        grid.push(SweepModel::new(name.clone(), move |b| m.build(b)));
    }
    let plans: Vec<&str> = args.plans.iter().map(String::as_str).collect();
    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);

    let started = std::time::Instant::now();
    let report = match run_fault_sweep(
        &accel,
        &grid,
        &plans,
        &args.severities,
        args.seed,
        &cache,
        args.jobs,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("faults error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    // Like `sweep`: the report is schedule-independent and goes to
    // stdout, so two runs of the same grid and seed are byte-identical;
    // wall-clock chatter stays on stderr.
    match args.format.as_str() {
        "table" => print!("{}", report.to_table()),
        _ => println!("{}", report.to_json()),
    }
    eprintln!(
        "[faults] {} points ({} models x {} plans x {} severities) on {} workers in {:.0} ms; \
         availability {:.1}%; cache: {} memory + {} disk hits, {} misses",
        report.points.len(),
        report.models.len(),
        report.plans.len(),
        report.severities.len(),
        args.jobs,
        elapsed_ms,
        report.availability() * 100.0,
        report.cache.memory_hits,
        report.cache.disk_hits,
        report.cache.misses
    );
    ExitCode::SUCCESS
}

struct TopArgs {
    models: Vec<String>,
    qps: f64,
    duration_ms: f64,
    max_batch: usize,
    batch_timeout_ms: f64,
    deadline_ms: f64,
    queue_depth: usize,
    bursty: bool,
    autoscale: bool,
    seed: u64,
    chip: String,
    plan: String,
    severity: f64,
    once: bool,
    span_s: f64,
    refresh_ms: u64,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
}

fn parse_top_args() -> Result<TopArgs, String> {
    let mut args = TopArgs {
        models: vec!["resnet50".into(), "bert".into()],
        qps: 400.0,
        duration_ms: 10_000.0,
        max_batch: 8,
        batch_timeout_ms: 2.0,
        deadline_ms: 50.0,
        queue_depth: 64,
        bursty: false,
        autoscale: true,
        seed: 0x5EED,
        chip: "i20".into(),
        plan: "none".into(),
        severity: 1.0,
        once: false,
        span_s: 5.0,
        refresh_ms: 150,
        cache_dir: None,
        disk_cache: true,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("{flag} needs a number"))
        }
        match a.as_str() {
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--qps" => args.qps = num("--qps", value("--qps")?)?,
            "--duration" => args.duration_ms = num("--duration", value("--duration")?)?,
            "--max-batch" => args.max_batch = num("--max-batch", value("--max-batch")?)?,
            "--batch-timeout" => {
                args.batch_timeout_ms = num("--batch-timeout", value("--batch-timeout")?)?
            }
            "--deadline" => args.deadline_ms = num("--deadline", value("--deadline")?)?,
            "--queue-depth" => args.queue_depth = num("--queue-depth", value("--queue-depth")?)?,
            "--bursty" => args.bursty = true,
            "--no-autoscale" => args.autoscale = false,
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--chip" => args.chip = value("--chip")?,
            "--plan" => args.plan = value("--plan")?,
            "--severity" => args.severity = num("--severity", value("--severity")?)?,
            "--once" => args.once = true,
            "--span" => args.span_s = num("--span", value("--span")?)?,
            "--refresh-ms" => args.refresh_ms = num("--refresh-ms", value("--refresh-ms")?)?,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown top flag '{other}'")),
        }
    }
    if args.models.is_empty() {
        return Err("--models needs at least one model name".into());
    }
    if args.span_s <= 0.0 {
        return Err("--span must be positive".into());
    }
    Ok(args)
}

/// Whether tenant `idx`'s burn-rate alert is firing at simulated time
/// `t_ns`, reconstructed from the alert log (the tracker only holds
/// end-of-run state, and `top` replays history).
fn firing_at(mon: &LiveMonitor, idx: usize, t_ns: f64) -> bool {
    let mut firing = false;
    for (tenant, a) in &mon.alerts {
        if *tenant != idx || a.t_ns > t_ns {
            continue;
        }
        match a.kind {
            dtu::telemetry::AlertKind::BurnRate => firing = true,
            dtu::telemetry::AlertKind::Resolved => firing = false,
            dtu::telemetry::AlertKind::Fault => {}
        }
    }
    firing
}

/// One dashboard frame at simulated time `t_ns`, rows aggregated over
/// the trailing `span_ns`.
fn render_top(mon: &LiveMonitor, t_ns: f64, span_ns: f64) -> String {
    use std::fmt::Write;
    let alerts = mon.alerts.iter().filter(|(_, a)| a.t_ns <= t_ns).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "t={:.0}s  window={:.0}s  alerts={alerts}",
        t_ns / 1e9,
        span_ns / 1e9
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8} {:>9} {:>9} {:>6} {:>8} {:>8} {:>6}",
        "tenant",
        "qps",
        "shed/s",
        "drop/s",
        "p50(ms)",
        "p99(ms)",
        "batch",
        "burn5s",
        "burn60s",
        "alert"
    );
    for (idx, ten) in mon.tenants().iter().enumerate() {
        let r = ten.row(t_ns, span_ns);
        let _ = writeln!(
            out,
            "{:<12} {:>8.0} {:>8.1} {:>8.1} {:>9.3} {:>9.3} {:>6.2} {:>8.2} {:>8.2} {:>6}",
            r.name,
            r.qps,
            r.shed_rate,
            r.drop_rate,
            r.p50_ms,
            r.p99_ms,
            r.mean_batch,
            r.burn_fast,
            r.burn_slow,
            if firing_at(mon, idx, t_ns) {
                "FIRE"
            } else {
                "-"
            }
        );
    }
    out
}

fn run_top() -> ExitCode {
    let args = match parse_top_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
    let mut models = Vec::new();
    for name in &args.models {
        let Some(m) = model_by_name(name) else {
            eprintln!("error: unknown model '{name}'\n\n{}", usage());
            return ExitCode::FAILURE;
        };
        models.push(
            CompiledModel::new(accel.chip(), name.clone(), move |b| m.build(b)).with_source(&cache),
        );
    }

    let chip = accel.config();
    let faults = match FaultPlan::preset(
        &args.plan,
        args.seed,
        args.severity,
        chip.clusters,
        chip.groups_per_cluster,
        args.duration_ms * 1e6,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gpc = chip.groups_per_cluster;
    let cfg = ServeConfig {
        duration_ms: args.duration_ms,
        seed: args.seed,
        record_requests: false,
        faults,
        retry: Default::default(),
        tenants: (0..models.len())
            .map(|i| TenantSpec {
                name: args.models[i].clone(),
                model: i,
                arrival: if args.bursty {
                    ArrivalProcess::Bursty {
                        base_qps: 0.5 * args.qps,
                        burst_qps: 2.5 * args.qps,
                        mean_dwell_ms: args.duration_ms / 8.0,
                    }
                } else {
                    ArrivalProcess::Poisson { qps: args.qps }
                },
                batch: if args.max_batch > 1 {
                    BatchPolicy::dynamic(args.max_batch, args.batch_timeout_ms)
                } else {
                    BatchPolicy::none()
                },
                sla: SlaPolicy::new(args.deadline_ms, args.queue_depth),
                scale: if args.autoscale {
                    ScalePolicy::elastic(args.deadline_ms / 4.0, args.deadline_ms / 20.0, gpc)
                } else {
                    ScalePolicy::none()
                },
                cluster: None,
                initial_groups: 1,
            })
            .collect(),
    };

    eprintln!(
        "[top] {} tenants ({}), {:.0} qps each, {:.0} ms horizon, plan {} s{:.2}, \
         SLO p99 < {:.0} ms",
        cfg.tenants.len(),
        args.models.join(", "),
        args.qps,
        args.duration_ms,
        args.plan,
        args.severity,
        args.deadline_ms
    );

    let mut mon = LiveMonitor::new(LiveConfig {
        slo: Some(SloSpec::new(
            format!("p99<{:.0}ms", args.deadline_ms),
            0.99,
            args.deadline_ms,
        )),
        ..LiveConfig::default()
    });
    let mut refs: Vec<&mut dyn ServiceModel> = models
        .iter_mut()
        .map(|m| m as &mut dyn ServiceModel)
        .collect();
    let aborted = match run_serving_live(&cfg, accel.config(), &mut refs, &mut mon) {
        Ok(_) => None,
        // A fault killed a tenant's last group: the dashboard still
        // shows everything the monitor saw up to the outage.
        Err(ServeError::Sim(dtu_sim::SimError::Fault(e))) => Some(e.to_string()),
        Err(e) => {
            eprintln!("top error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let span_ns = args.span_s * 1e9;
    let end_ns = mon.now_ns();
    if args.once {
        print!("{}", render_top(&mon, end_ns, span_ns));
    } else {
        // The run is already simulated; replay it one evaluation
        // window per frame against the retained rings.
        let frames = (end_ns / 1e9).ceil().max(1.0) as u64;
        for f in 1..=frames {
            let t_ns = (f as f64 * 1e9).min(end_ns);
            print!("\x1b[2J\x1b[H{}", render_top(&mon, t_ns, span_ns));
            use std::io::Write;
            let _ = std::io::stdout().flush();
            std::thread::sleep(std::time::Duration::from_millis(args.refresh_ms));
        }
    }
    for (idx, a) in &mon.alerts {
        eprintln!(
            "[top] t={:.2}s {} alert `{}` (tenant {}, burn fast {:.1} / slow {:.1})",
            a.t_ns / 1e9,
            a.kind.name(),
            a.slo,
            mon.tenants()[*idx].name,
            a.burn_fast,
            a.burn_slow
        );
    }
    if let Some(e) = aborted {
        eprintln!("[top] run aborted early: {e}");
    }
    eprintln!(
        "[top] flight recorder: {} spans in ring, {} dumps ({} triggers)",
        mon.flight.len(),
        mon.flight.dumps().len(),
        mon.flight.triggers()
    );
    ExitCode::SUCCESS
}

/// Whether a generative burn-rate alert for objective `slo` is firing
/// at simulated time `t_ns`, replayed from the alert log (like
/// [`firing_at`], but objectives are named, not indexed).
fn gen_firing_at(mon: &GenMonitor, slo: &str, t_ns: f64) -> bool {
    let mut firing = false;
    for a in &mon.alerts {
        if a.slo != slo || a.t_ns > t_ns {
            continue;
        }
        match a.kind {
            dtu::telemetry::AlertKind::BurnRate => firing = true,
            dtu::telemetry::AlertKind::Resolved => firing = false,
            dtu::telemetry::AlertKind::Fault => {}
        }
    }
    firing
}

/// One generative dashboard frame at simulated time `t_ns`: the
/// engine-level gauges (QPS, active batch, KV occupancy, spill,
/// preemptions) plus one row per TTFT/TPOT objective.
fn render_gen_top(mon: &GenMonitor, t_ns: f64, span_ns: f64) -> String {
    use std::fmt::Write;
    let r = mon.row(t_ns, span_ns);
    let alerts = mon.alerts.iter().filter(|a| a.t_ns <= t_ns).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "t={:.0}s  window={:.0}s  tenant={}  alerts={alerts}",
        t_ns / 1e9,
        span_ns / 1e9,
        mon.config().tenant
    );
    let _ = writeln!(
        out,
        "qps {:.0}  shed/s {:.1}  preempt/s {:.1}  batch {:.2}  kv {:.1}% of {} pages  \
         spill {:.1} ms/s",
        r.qps,
        r.shed_rate,
        r.preempt_rate,
        r.active_batch,
        100.0 * r.kv_occupancy,
        mon.total_pages(),
        r.spill_ms_per_s
    );
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>9} {:>8} {:>8} {:>6}",
        "objective", "p50(ms)", "p99(ms)", "burn5s", "burn60s", "alert"
    );
    let rows = [
        (
            "ttft",
            &mon.ttft_slo,
            r.ttft_p50_ms,
            r.ttft_p99_ms,
            r.ttft_burn_fast,
            r.ttft_burn_slow,
        ),
        (
            "tpot",
            &mon.tpot_slo,
            r.tpot_p50_ms,
            r.tpot_p99_ms,
            r.tpot_burn_fast,
            r.tpot_burn_slow,
        ),
    ];
    for (metric, tracker, p50, p99, burn_fast, burn_slow) in rows {
        let (name, fire) = match tracker {
            Some(t) => (
                t.spec.name.clone(),
                if gen_firing_at(mon, &t.spec.name, t_ns) {
                    "FIRE"
                } else {
                    "-"
                },
            ),
            None => (metric.to_string(), "off"),
        };
        let _ = writeln!(
            out,
            "{:<20} {:>9.3} {:>9.3} {:>8.2} {:>8.2} {:>6}",
            name, p50, p99, burn_fast, burn_slow, fire
        );
    }
    out
}

fn run_gen_top() -> ExitCode {
    let args = match parse_genserve_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let Some(gen_cfg) = gen_model_by_name(&args.gen_model) else {
        eprintln!(
            "error: unknown generative model '{}' (use gpt1b or tiny)\n\n{}",
            args.gen_model,
            usage()
        );
        return ExitCode::FAILURE;
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = gen_scenario(&args, &accel, &gen_cfg);

    eprintln!(
        "[top --generative] {} at {:.0} qps over {:.0} ms, concurrency {}, \
         KV pool {} pages; SLOs ttft p99 < {:.0} ms, tpot p99 < {:.0} ms",
        args.gen_model,
        args.qps,
        args.duration_ms,
        args.max_concurrency,
        scenario.kv.total_pages,
        args.ttft_deadline_ms,
        args.tpot_deadline_ms
    );

    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
    let mut mon = GenMonitor::new(gen_live_config(&args));
    let cal = (args.timing == "analytic")
        .then(|| calibration_cache(args.cache_dir.as_ref(), args.disk_cache));
    if let Err(e) = dtu_harness::run_generative_serve_live(
        &accel,
        &gen_cfg,
        &scenario,
        &cache,
        cal.as_ref(),
        args.jobs,
        &mut mon,
    ) {
        eprintln!("top error: {e}");
        return ExitCode::FAILURE;
    }

    let span_ns = args.span_s * 1e9;
    let end_ns = mon.now_ns();
    if args.once {
        print!("{}", render_gen_top(&mon, end_ns, span_ns));
    } else {
        // The run is already simulated; replay it one evaluation
        // window per frame against the retained rings.
        let frames = (end_ns / 1e9).ceil().max(1.0) as u64;
        for f in 1..=frames {
            let t_ns = (f as f64 * 1e9).min(end_ns);
            print!("\x1b[2J\x1b[H{}", render_gen_top(&mon, t_ns, span_ns));
            use std::io::Write;
            let _ = std::io::stdout().flush();
            std::thread::sleep(std::time::Duration::from_millis(args.refresh_ms));
        }
    }
    for a in &mon.alerts {
        eprintln!(
            "[top --generative] t={:.2}s {} alert `{}` (burn fast {:.1} / slow {:.1})",
            a.t_ns / 1e9,
            a.kind.name(),
            a.slo,
            a.burn_fast,
            a.burn_slow
        );
    }
    eprintln!(
        "[top --generative] flight recorder: {} spans in ring, {} dumps ({} triggers)",
        mon.flight.len(),
        mon.flight.dumps().len(),
        mon.flight.triggers()
    );
    ExitCode::SUCCESS
}

struct SloArgs {
    models: Vec<String>,
    plans: Vec<String>,
    severities: Vec<f64>,
    seed: u64,
    chip: String,
    jobs: usize,
    format: String,
    flight_out: Option<String>,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
}

fn parse_slo_args() -> Result<SloArgs, String> {
    let mut args = SloArgs {
        models: Vec::new(),
        plans: vec!["none".into()],
        severities: vec![1.0],
        seed: 7,
        chip: "i20".into(),
        jobs: available_jobs(),
        format: "json".into(),
        flight_out: None,
        cache_dir: None,
        disk_cache: true,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--models" | "--model" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--plans" | "--plan" => {
                args.plans = value("--plans")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--severities" | "--severity" => {
                args.severities = value("--severities")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("bad severity '{}'", s.trim()))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--chip" => args.chip = value("--chip")?,
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?
            }
            "--format" => args.format = value("--format")?,
            "--flight-out" => args.flight_out = Some(value("--flight-out")?),
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--help" | "-h" => return Err(String::new()),
            name if !name.starts_with('-') => args.models.push(name.to_string()),
            other => return Err(format!("unknown slo flag '{other}'")),
        }
    }
    if args.models.is_empty() {
        args.models.push("resnet50".into());
    }
    if args.plans.is_empty() || args.severities.is_empty() {
        return Err("slo needs at least one plan and one severity".into());
    }
    if !matches!(args.format.as_str(), "table" | "json") {
        return Err(format!(
            "--format must be table or json, got '{}'",
            args.format
        ));
    }
    Ok(args)
}

fn run_slo() -> ExitCode {
    let args = match parse_slo_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut grid = Vec::new();
    for name in &args.models {
        let Some(m) = model_by_name(name) else {
            eprintln!("error: unknown model '{name}'\n\n{}", usage());
            return ExitCode::FAILURE;
        };
        grid.push(SweepModel::new(name.clone(), move |b| m.build(b)));
    }
    let plans: Vec<&str> = args.plans.iter().map(String::as_str).collect();
    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
    let scenario = SloScenario::default();

    let started = std::time::Instant::now();
    let report = match run_slo_sweep(
        &accel,
        &grid,
        &plans,
        &args.severities,
        args.seed,
        &scenario,
        &cache,
        args.jobs,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("slo error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    // The report is schedule-independent and goes to stdout, so two
    // runs of the same grid and seed are byte-identical; wall-clock
    // chatter stays on stderr.
    match args.format.as_str() {
        "table" => print!("{}", report.to_table()),
        _ => println!("{}", report.to_json()),
    }
    eprintln!(
        "[slo] {} points ({} models x {} plans x {} severities) on {} workers in {:.0} ms; \
         compliance {:.1}%; cache: {} memory + {} disk hits, {} misses",
        report.points.len(),
        report.models.len(),
        report.plans.len(),
        report.severities.len(),
        args.jobs,
        elapsed_ms,
        report.compliance() * 100.0,
        report.cache.memory_hits,
        report.cache.disk_hits,
        report.cache.misses
    );

    if let Some(path) = &args.flight_out {
        // Re-run the first grid point with its content-derived seed
        // (warm cache, so this is cheap) to recover the monitor and
        // its flight recorder.
        let seed = slo_point_seed(grid[0].name(), plans[0], args.severities[0], args.seed);
        let (_, mut mon) = match run_slo_scenario(
            &accel,
            &grid[0],
            plans[0],
            args.severities[0],
            seed,
            &scenario,
            &cache,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("slo error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if mon.flight.dumps().is_empty() {
            // Nothing went wrong: snapshot the ring at end of run so
            // the flag always produces a trace.
            let end_ns = mon.now_ns();
            mon.flight.trigger("end-of-run snapshot", end_ns);
        }
        let dump = mon.flight.dumps().first().expect("just ensured");
        if let Err(e) = std::fs::write(path, dump.to_chrome_trace(true)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[slo] flight dump `{}` ({} spans at t={:.2}s) written to {path}",
            dump.reason,
            dump.spans.len(),
            dump.at_ns / 1e9
        );
    }
    ExitCode::SUCCESS
}

struct ProfileArgs {
    model: Option<String>,
    import: Option<String>,
    batch: usize,
    chip: String,
    groups: Option<usize>,
    trace_out: String,
    format: String,
    no_power_management: bool,
}

fn parse_profile_args() -> Result<ProfileArgs, String> {
    let mut args = ProfileArgs {
        model: None,
        import: None,
        batch: 1,
        chip: "i20".into(),
        groups: None,
        trace_out: "topsexec.trace.json".into(),
        format: "table".into(),
        no_power_management: false,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--import" => args.import = Some(value("--import")?),
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch needs an integer".to_string())?
            }
            "--chip" => args.chip = value("--chip")?,
            "--groups" => {
                args.groups = Some(
                    value("--groups")?
                        .parse()
                        .map_err(|_| "--groups needs an integer".to_string())?,
                )
            }
            "--trace-out" | "--trace" => args.trace_out = value("--trace-out")?,
            "--format" => args.format = value("--format")?,
            "--no-power-management" => args.no_power_management = true,
            "--help" | "-h" => return Err(String::new()),
            name if !name.starts_with('-') && args.model.is_none() => {
                args.model = Some(name.to_string())
            }
            other => return Err(format!("unknown profile flag '{other}'")),
        }
    }
    if args.model.is_none() == args.import.is_none() {
        return Err("profile needs a model name or --import <file>".into());
    }
    if !matches!(args.format.as_str(), "table" | "prometheus" | "json") {
        return Err(format!(
            "--format must be table, prometheus, or json, got '{}'",
            args.format
        ));
    }
    Ok(args)
}

fn run_profile() -> ExitCode {
    let args = match parse_profile_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let graph = match load_graph(args.model.as_deref(), args.import.as_deref(), args.batch) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.no_power_management {
        chip_cfg.features.power_management = false;
    }
    let accel = match Accelerator::with_config(chip_cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let size = match workload_size(args.groups) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = SessionOptions {
        size,
        batch: args.batch,
        ..Default::default()
    };

    // Compiler phases, the session envelope, and the simulator's
    // kernel/DMA/sync spans all land in one buffer on one clock.
    let mut buf = TraceBuffer::new();
    let session = match Session::compile_recorded(&accel, &graph, options, &mut buf) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match session.run_recorded(&mut buf) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let groups = args.groups.unwrap_or_else(|| accel.config().total_groups());
    // The compiler lowers to fp16 by default; fold the Table I
    // throughput ratio into the roofline peak.
    let machine = accel
        .config()
        .machine_spec(groups, DataType::Fp16.ops_multiplier());
    let attr = AttributionReport::from_spans(buf.spans(), report.raw().latency_ns, machine);
    for s in attr.operator_spans() {
        buf.record(s);
    }

    if let Err(e) = std::fs::write(&args.trace_out, buf.to_chrome_trace(true)) {
        eprintln!("error: cannot write {}: {e}", args.trace_out);
        return ExitCode::FAILURE;
    }

    println!("=== topsexec profile ===");
    println!("accelerator : {accel}");
    println!("model       : {graph}");
    println!(
        "run         : {:.3} ms, {} operator segments, {} spans",
        report.latency_ms(),
        attr.ops.len(),
        buf.len()
    );
    println!(
        "trace       : {} (open in Perfetto / chrome://tracing)",
        args.trace_out
    );
    println!();
    match args.format.as_str() {
        "prometheus" => print!("{}", attr.to_prometheus()),
        "json" => println!("{}", attr.to_json()),
        _ => print!("{}", attr.to_table()),
    }
    ExitCode::SUCCESS
}

struct FleetArgs {
    models: Vec<String>,
    chips: usize,
    cards: usize,
    qps: Option<f64>,
    duration_ms: f64,
    epoch_ms: f64,
    replicas: usize,
    deadline_ms: f64,
    queue_depth: usize,
    cells: usize,
    roll: bool,
    roll_start: Option<f64>,
    roll_chips: Option<usize>,
    kill_chip: Option<usize>,
    kill_at: Option<f64>,
    seed: u64,
    chip: String,
    jobs: usize,
    format: String,
    timing: String,
    cache_dir: Option<PathBuf>,
    disk_cache: bool,
    top: bool,
    once: bool,
    refresh_ms: u64,
    slo: bool,
    monitor: bool,
    flight_out: Option<String>,
}

fn parse_fleet_args() -> Result<FleetArgs, String> {
    let mut args = FleetArgs {
        models: Vec::new(),
        chips: 4,
        cards: 1,
        qps: None,
        duration_ms: 10_000.0,
        epoch_ms: 1_000.0,
        replicas: 0,
        deadline_ms: 50.0,
        queue_depth: 256,
        cells: 2,
        roll: true,
        roll_start: None,
        roll_chips: None,
        kill_chip: None,
        kill_at: None,
        seed: 7,
        chip: "i20".into(),
        jobs: available_jobs(),
        format: "json".into(),
        timing: "interpreted".into(),
        cache_dir: None,
        disk_cache: true,
        top: false,
        once: false,
        refresh_ms: 150,
        slo: false,
        monitor: false,
        flight_out: None,
    };
    let mut it = std::env::args().skip(2).peekable();
    // `topsexec fleet top ...` is the dashboard form of the command.
    if it.peek().map(String::as_str) == Some("top") {
        it.next();
        args.top = true;
    }
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        let parse_num = |flag: &str, v: String| -> Result<f64, String> {
            v.parse().map_err(|_| format!("{flag} needs a number"))
        };
        let parse_int = |flag: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|_| format!("{flag} needs an integer"))
        };
        match a.as_str() {
            "--models" | "--model" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--chips" => args.chips = parse_int("--chips", value("--chips")?)?,
            "--cards" => args.cards = parse_int("--cards", value("--cards")?)?,
            "--qps" => args.qps = Some(parse_num("--qps", value("--qps")?)?),
            "--duration" => args.duration_ms = parse_num("--duration", value("--duration")?)?,
            "--epoch" => args.epoch_ms = parse_num("--epoch", value("--epoch")?)?,
            "--replicas" => args.replicas = parse_int("--replicas", value("--replicas")?)?,
            "--deadline" => args.deadline_ms = parse_num("--deadline", value("--deadline")?)?,
            "--queue-depth" => {
                args.queue_depth = parse_int("--queue-depth", value("--queue-depth")?)?
            }
            "--cells" => args.cells = parse_int("--cells", value("--cells")?)?,
            "--no-roll" => args.roll = false,
            "--roll-start" => {
                args.roll_start = Some(parse_num("--roll-start", value("--roll-start")?)?)
            }
            "--roll-chips" => {
                args.roll_chips = Some(parse_int("--roll-chips", value("--roll-chips")?)?)
            }
            "--kill-chip" => {
                args.kill_chip = Some(parse_int("--kill-chip", value("--kill-chip")?)?)
            }
            "--kill-at" => args.kill_at = Some(parse_num("--kill-at", value("--kill-at")?)?),
            "--seed" => args.seed = parse_int("--seed", value("--seed")?)? as u64,
            "--chip" => args.chip = value("--chip")?,
            "--jobs" | "-j" => args.jobs = parse_int("--jobs", value("--jobs")?)?,
            "--format" => args.format = value("--format")?,
            "--timing" => args.timing = value("--timing")?,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.disk_cache = false,
            "--once" => args.once = true,
            "--refresh-ms" => {
                args.refresh_ms = parse_int("--refresh-ms", value("--refresh-ms")?)? as u64
            }
            "--slo" => args.slo = true,
            "--monitor" => args.monitor = true,
            "--flight-out" => args.flight_out = Some(value("--flight-out")?),
            "--help" | "-h" => return Err(String::new()),
            name if !name.starts_with('-') => args.models.push(name.to_string()),
            other => return Err(format!("unknown fleet flag '{other}'")),
        }
    }
    if args.models.is_empty() {
        args.models.push("resnet50".into());
    }
    if args.cards == 0 || args.chips == 0 || !args.chips.is_multiple_of(args.cards) {
        return Err(format!(
            "--chips {} must divide evenly over --cards {}",
            args.chips, args.cards
        ));
    }
    if !matches!(args.format.as_str(), "table" | "json" | "prom") {
        return Err(format!(
            "--format must be table, json, or prom, got '{}'",
            args.format
        ));
    }
    if args.once && !args.top {
        return Err("--once only applies to `fleet top`".into());
    }
    if !matches!(args.timing.as_str(), "interpreted" | "analytic") {
        return Err(format!(
            "--timing must be interpreted or analytic, got '{}'",
            args.timing
        ));
    }
    Ok(args)
}

/// One fleet dashboard frame: per-tenant then per-chip rows aggregated
/// over the trailing fast burn window.
fn render_fleet_top(frame: &FleetFrame) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet t={:.0}s  epoch={}  alerts={}",
        frame.t_ms / 1e3,
        frame.epoch,
        frame.alerts
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8} {:>6}",
        "tenant", "qps", "shed/s", "drop/s", "p99(ms)", "burn5s", "burn60s", "alert"
    );
    for t in &frame.tenants {
        let _ = writeln!(
            out,
            "{:<14} {:>8.0} {:>8.1} {:>8.1} {:>9.3} {:>8.2} {:>8.2} {:>6}",
            t.name,
            t.qps,
            t.shed_rate,
            t.drop_rate,
            t.p99_ms,
            t.burn_fast,
            t.burn_slow,
            if t.firing { "FIRE" } else { "-" }
        );
    }
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>8} {:>9} {:>8} {:>6}",
        "chip", "qps", "shed/s", "p99(ms)", "burn", "state"
    );
    for c in &frame.chips {
        let state = if c.dead {
            "DEAD"
        } else if c.fire {
            "FIRE"
        } else {
            "-"
        };
        let _ = writeln!(
            out,
            "{:<6} {:>8.0} {:>8.1} {:>9.3} {:>8.2} {:>6}",
            c.chip, c.qps, c.shed_rate, c.p99_ms, c.burn, state
        );
    }
    out
}

/// Stderr chatter for a monitored fleet run: alerts, offenders, dumps.
fn report_fleet_monitor(mon: &FleetMonitor) {
    for a in mon.alerts() {
        let scope = match (a.chip, a.tenant) {
            (Some(c), Some(t)) => format!("chip {c}, tenant {t}"),
            (Some(c), None) => format!("chip {c}"),
            (None, Some(t)) => format!("tenant {t}"),
            (None, None) => "fleet".to_string(),
        };
        eprintln!(
            "[fleet] e{} t={:.2}s {} alert `{}` ({scope})",
            a.epoch,
            a.event.t_ns / 1e9,
            a.event.kind.name(),
            a.event.slo
        );
    }
    for o in mon.top_offenders(3) {
        eprintln!(
            "[fleet] offender chip {} / {}: {:.0} bad ({:.0}% of burn)",
            o.chip,
            o.tenant,
            o.bad,
            o.share * 100.0
        );
    }
    eprintln!(
        "[fleet] flight recorder: {} dumps retained ({} triggers)",
        mon.dumps().len(),
        mon.triggers()
    );
}

fn run_fleet_cmd() -> ExitCode {
    let args = match parse_fleet_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let chip_cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topology = match FleetTopology::homogeneous(args.cards, args.chips / args.cards, &chip_cfg)
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let qps_total = args.qps.unwrap_or(7_500.0 * topology.len() as f64);
    let qps_per_model = qps_total / args.models.len() as f64;
    let mut tenants = Vec::new();
    for name in &args.models {
        let Some(m) = model_by_name(name) else {
            eprintln!("error: unknown model '{name}'\n\n{}", usage());
            return ExitCode::FAILURE;
        };
        let mut tenant = FleetTenant::new(
            SweepModel::new(name.clone(), move |b| m.build(b)),
            qps_per_model,
        );
        tenant.replicas = args.replicas;
        tenant.deadline_ms = args.deadline_ms;
        tenant.queue_depth = args.queue_depth;
        tenants.push(tenant);
    }
    let cache = artifact_cache(args.cache_dir.as_ref(), args.disk_cache);
    let cfg = FleetConfig {
        duration_ms: args.duration_ms,
        epoch_ms: args.epoch_ms,
        seed: args.seed,
        cells_per_replica: args.cells,
        roll: args.roll.then(|| {
            RollPlan::new(
                args.roll_start.unwrap_or(args.duration_ms * 0.2),
                args.roll_chips
                    .unwrap_or_else(|| (topology.len() / 4).max(1)),
            )
        }),
        kill: args.kill_chip.map(|chip| ChipKill {
            chip,
            at_ms: args.kill_at.unwrap_or(args.duration_ms * 0.5),
        }),
    };

    // `--timing analytic` calibrates the chip config once (recalled
    // from the shared artifact directory when warm) and prices every
    // per-chip epoch through the analytic backend; the CLI topology is
    // homogeneous, so one calibration serves every chip.
    let timings = if args.timing == "analytic" {
        let cal = calibration_cache(args.cache_dir.as_ref(), args.disk_cache);
        match cal.timing_for(&chip_cfg) {
            Ok((timing, _)) => Some(vec![timing; topology.len()]),
            Err(e) => {
                eprintln!("fleet calibration error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // The dashboard, compliance report, and flight dump all need the
    // fleet monitor; a plain run skips it entirely. Either way the
    // stdout report is byte-identical — the monitor is observational.
    let monitored = args.top || args.slo || args.monitor || args.flight_out.is_some();
    let started = std::time::Instant::now();
    let (report, monitor) = match (monitored, &timings) {
        (true, Some(ts)) => {
            match run_fleet_monitored_with_timing(&topology, &tenants, &cfg, &cache, args.jobs, ts)
            {
                Ok((r, m)) => (r, Some(m)),
                Err(e) => {
                    eprintln!("fleet error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (true, None) => match run_fleet_monitored(&topology, &tenants, &cfg, &cache, args.jobs) {
            Ok((r, m)) => (r, Some(m)),
            Err(e) => {
                eprintln!("fleet error: {e}");
                return ExitCode::FAILURE;
            }
        },
        (false, Some(ts)) => {
            match run_fleet_with_timing(&topology, &tenants, &cfg, &cache, args.jobs, ts) {
                Ok(r) => (r, None),
                Err(e) => {
                    eprintln!("fleet error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (false, None) => match run_fleet(&topology, &tenants, &cfg, &cache, args.jobs) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("fleet error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    // Everything on stdout is schedule-independent; the wall-clock
    // chatter and cache tally stay on stderr.
    if args.top {
        let mon = monitor.as_ref().expect("top runs monitored");
        if args.once {
            if let Some(f) = mon.frames().last() {
                print!("{}", render_fleet_top(f));
            }
        } else {
            // The run is already simulated; replay it one routing
            // epoch per frame against the retained rollups.
            for f in mon.frames() {
                print!("\x1b[2J\x1b[H{}", render_fleet_top(f));
                use std::io::Write;
                let _ = std::io::stdout().flush();
                std::thread::sleep(std::time::Duration::from_millis(args.refresh_ms));
            }
        }
    } else if args.slo {
        let mon = monitor.as_ref().expect("--slo runs monitored");
        println!("{}", mon.compliance_json());
    } else {
        match args.format.as_str() {
            "table" => print!("{}", report.to_table()),
            "prom" => print!("{}", report.to_prometheus()),
            _ => println!("{}", report.to_json()),
        }
    }
    let availability = if report.offered == 0 {
        1.0
    } else {
        report.completed as f64 / report.offered as f64
    };
    eprintln!(
        "[fleet] {} chips x {} epochs on {} workers in {:.0} ms; {} offered, \
         availability {:.3}, {} lost / {} rolled; cache: {} memory + {} disk hits, {} misses",
        report.chips,
        report.epochs,
        args.jobs,
        elapsed_ms,
        report.offered,
        availability,
        report.chips_lost,
        report.chips_rolled,
        report.cache.memory_hits,
        report.cache.disk_hits,
        report.cache.misses
    );
    if let Some(mut mon) = monitor {
        report_fleet_monitor(&mon);
        if let Some(path) = &args.flight_out {
            if mon.dumps().is_empty() {
                // Nothing went wrong: freeze the worst-burning (or
                // first) chip's ring so the flag always yields a trace.
                let chip = mon.top_offenders(1).first().map_or(0, |o| o.chip);
                mon.snapshot_chip(chip, "end-of-run snapshot");
            }
            // A whole-chip loss is the incident the operator came for:
            // prefer its black box over an earlier burn-rate page.
            let dump = mon
                .dumps()
                .iter()
                .find(|d| d.reason.contains("killed"))
                .or_else(|| mon.dumps().first())
                .expect("just ensured");
            if let Err(e) = std::fs::write(path, dump.to_chrome_trace(true)) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[fleet] flight dump `{}` ({} spans at t={:.2}s) written to {path}",
                dump.reason,
                dump.spans.len(),
                dump.at_ns / 1e9
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => {
            // `serve --generative` (or `--llm`) is the continuous-
            // batching token-level engine; plain `serve` stays the
            // multi-tenant request-level scenario.
            if std::env::args().any(|a| a == "--generative" || a == "--llm") {
                return run_genserve();
            }
            return run_serve();
        }
        Some("profile") => return run_profile(),
        Some("sweep") => return run_sweep_cmd(),
        Some("faults") => return run_faults(),
        Some("top") => {
            // `top --generative` (or `--llm`) replays the token-level
            // monitor; plain `top` stays the request-level dashboard.
            if std::env::args().any(|a| a == "--generative" || a == "--llm") {
                return run_gen_top();
            }
            return run_top();
        }
        Some("slo") => return run_slo(),
        Some("fleet") => return run_fleet_cmd(),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let graph = match load_graph(args.model.as_deref(), args.import.as_deref(), args.batch) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = match chip_by_name(&args.chip) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.no_power_management {
        cfg.features.power_management = false;
    }
    let accel = match Accelerator::with_config(cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let size = match workload_size(args.groups) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = SessionOptions {
        size,
        batch: args.batch,
        ..Default::default()
    };

    println!("=== topsexec ===");
    println!("accelerator : {accel}");
    println!("model       : {graph}");
    println!("batch       : {}", args.batch);

    let session = match Session::compile(&accel, &graph, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "compiled    : {} commands over {} streams",
        session.program().total_commands(),
        session.program().streams.len()
    );

    let (report, timeline) = match session.run_traced() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("\n--- measurements ---");
    println!("latency      : {:.3} ms", report.latency_ms());
    println!("throughput   : {:.1} samples/s", report.throughput());
    println!("avg power    : {:.1} W", report.average_watts());
    println!("energy/sample: {:.4} J", 1.0 / report.samples_per_joule());
    println!("mean clock   : {:.0} MHz", report.mean_freq_mhz());
    let c = report.raw().counters;
    println!(
        "kernels      : {} launches, icache hit rate {:.0}%",
        c.kernel_launches,
        c.icache_hit_rate() * 100.0
    );
    println!(
        "dma          : {} transfers, {:.1} MiB on the wire",
        c.dma_transfers,
        c.dma_wire_bytes as f64 / (1024.0 * 1024.0)
    );

    if args.profile {
        println!("\n--- profile ---");
        println!("{}", timeline.report(10));
    }
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, timeline.to_chrome_trace()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\ntrace written to {path} (open in chrome://tracing)");
    }
    ExitCode::SUCCESS
}
