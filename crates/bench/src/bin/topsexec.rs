//! `topsexec`: the measurement CLI of the reproduced software stack,
//! playing the role `trtexec` plays in §VI-A of the paper.
//!
//! ```text
//! topsexec --model resnet50            # a Table III model by name
//! topsexec --import my_model.tops      # a textual-format model file
//! topsexec --model vgg16 --batch 16 --chip i10 --groups 3 --profile
//! topsexec --model bert --trace out.json --no-power-management
//! ```

use dtu::{Accelerator, ChipConfig, Session, SessionOptions, WorkloadSize};
use dtu_graph::parse_model;
use dtu_models::Model;
use std::process::ExitCode;

struct Args {
    model: Option<String>,
    import: Option<String>,
    batch: usize,
    chip: String,
    groups: Option<usize>,
    profile: bool,
    trace: Option<String>,
    no_power_management: bool,
}

fn usage() -> &'static str {
    "usage: topsexec (--model <name> | --import <file.tops>) [options]\n\
     \n\
     options:\n\
       --model <name>           one of: yolov3 centernet retinaface vgg16\n\
                                resnet50 inceptionv4 unet srresnet bert conformer\n\
       --import <file>          load a model in the textual .tops format\n\
       --batch <n>              batch size (default 1; >1 uses throughput mode)\n\
       --chip <i20|i10>         accelerator generation (default i20)\n\
       --groups <1|2|3>         restrict to N groups of cluster 0 (default: full chip)\n\
       --profile                print the profiler's hot-kernel report\n\
       --trace <file.json>      write a Chrome-trace timeline\n\
       --no-power-management    pin the clock at f_max"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: None,
        import: None,
        batch: 1,
        chip: "i20".into(),
        groups: None,
        profile: false,
        trace: None,
        no_power_management: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--import" => args.import = Some(value("--import")?),
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch needs an integer".to_string())?
            }
            "--chip" => args.chip = value("--chip")?,
            "--groups" => {
                args.groups = Some(
                    value("--groups")?
                        .parse()
                        .map_err(|_| "--groups needs an integer".to_string())?,
                )
            }
            "--profile" => args.profile = true,
            "--trace" => args.trace = Some(value("--trace")?),
            "--no-power-management" => args.no_power_management = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.model.is_none() == args.import.is_none() {
        return Err("exactly one of --model / --import is required".into());
    }
    Ok(args)
}

fn model_by_name(name: &str) -> Option<Model> {
    match name.to_lowercase().as_str() {
        "yolov3" | "yolo" => Some(Model::YoloV3),
        "centernet" => Some(Model::CenterNet),
        "retinaface" => Some(Model::RetinaFace),
        "vgg16" | "vgg" => Some(Model::Vgg16),
        "resnet50" | "resnet" => Some(Model::Resnet50),
        "inceptionv4" | "inception" => Some(Model::InceptionV4),
        "unet" => Some(Model::Unet),
        "srresnet" => Some(Model::SrResnet),
        "bert" | "bertlarge" => Some(Model::BertLarge),
        "conformer" => Some(Model::Conformer),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let graph = if let Some(name) = &args.model {
        match model_by_name(name) {
            Some(m) => m.build(args.batch),
            None => {
                eprintln!("error: unknown model '{name}'\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    } else {
        let path = args.import.as_deref().expect("validated");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_model(&text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut cfg = match args.chip.as_str() {
        "i20" => ChipConfig::dtu20(),
        "i10" => ChipConfig::dtu10(),
        other => {
            eprintln!("error: unknown chip '{other}' (use i20 or i10)");
            return ExitCode::FAILURE;
        }
    };
    if args.no_power_management {
        cfg.features.power_management = false;
    }
    let accel = match Accelerator::with_config(cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let options = SessionOptions {
        size: match args.groups {
            Some(1) => WorkloadSize::Small,
            Some(2) => WorkloadSize::Medium,
            Some(3) => WorkloadSize::Large,
            None => WorkloadSize::FullChip,
            Some(n) => {
                eprintln!("error: --groups must be 1..3, got {n}");
                return ExitCode::FAILURE;
            }
        },
        batch: args.batch,
        ..Default::default()
    };

    println!("=== topsexec ===");
    println!("accelerator : {accel}");
    println!("model       : {graph}");
    println!("batch       : {}", args.batch);

    let session = match Session::compile(&accel, &graph, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "compiled    : {} commands over {} streams",
        session.program().total_commands(),
        session.program().streams.len()
    );

    let (report, timeline) = match session.run_traced() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("\n--- measurements ---");
    println!("latency      : {:.3} ms", report.latency_ms());
    println!("throughput   : {:.1} samples/s", report.throughput());
    println!("avg power    : {:.1} W", report.average_watts());
    println!("energy/sample: {:.4} J", 1.0 / report.samples_per_joule());
    println!("mean clock   : {:.0} MHz", report.mean_freq_mhz());
    let c = report.raw().counters;
    println!(
        "kernels      : {} launches, icache hit rate {:.0}%",
        c.kernel_launches,
        c.icache_hit_rate() * 100.0
    );
    println!(
        "dma          : {} transfers, {:.1} MiB on the wire",
        c.dma_transfers,
        c.dma_wire_bytes as f64 / (1024.0 * 1024.0)
    );

    if args.profile {
        println!("\n--- profile ---");
        println!("{}", timeline.report(10));
    }
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, timeline.to_chrome_trace()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\ntrace written to {path} (open in chrome://tracing)");
    }
    ExitCode::SUCCESS
}
