//! Reproduces the §VI-D "Power management ON v.s. OFF" experiment:
//! ResNet-50 v1.5 and BERT-Large with (1) the CPME/LPME DVFS stack
//! active (clock 1.0–1.4 GHz) and (2) power management off (clock fixed
//! at 1.4 GHz).
//!
//! Paper: 0.85% and 3.2% performance drop with PM on, but 13% better
//! energy efficiency for both DNNs.

use dtu::{Accelerator, ChipConfig, Session, SessionOptions};
use dtu_models::Model;

fn run(cfg: ChipConfig, model: Model) -> (f64, f64, f64) {
    let accel = Accelerator::with_config(cfg).expect("valid config");
    let graph = model.build(1);
    let session = Session::compile(&accel, &graph, SessionOptions::default()).expect("compile");
    let r = session.run().expect("run");
    (r.latency_ms(), r.samples_per_joule(), r.mean_freq_mhz())
}

fn main() {
    println!("== Power management ON vs OFF (ResNet-50 v1.5, BERT-Large) ==");
    println!(
        "{:<16} {:>10} {:>10} {:>11} {:>12} {:>12}",
        "DNN", "PM", "lat (ms)", "freq (MHz)", "samp/J", "vs PM-off"
    );
    for model in [Model::Resnet50, Model::BertLarge] {
        let on_cfg = ChipConfig::dtu20();
        let mut off_cfg = ChipConfig::dtu20();
        off_cfg.features.power_management = false;

        let (lat_on, eff_on, f_on) = run(on_cfg, model);
        let (lat_off, eff_off, f_off) = run(off_cfg, model);

        println!(
            "{:<16} {:>10} {:>10.3} {:>11.0} {:>12.2} {:>12}",
            model.name(),
            "off",
            lat_off,
            f_off,
            eff_off,
            "1.00x"
        );
        println!(
            "{:<16} {:>10} {:>10.3} {:>11.0} {:>12.2} {:>11.2}x",
            model.name(),
            "on",
            lat_on,
            f_on,
            eff_on,
            eff_on / eff_off
        );
        let perf_drop = (lat_on / lat_off - 1.0) * 100.0;
        let eff_gain = (eff_on / eff_off - 1.0) * 100.0;
        println!("  -> perf drop {perf_drop:.2}% | energy-efficiency gain {eff_gain:.1}%");
    }
    println!();
    println!("Paper: perf drops 0.85% (ResNet50) / 3.2% (BERT); efficiency +13% for both.");
}
