//! Reproduces Fig. 7: resource abstraction and assignment for
//! multi-task/tenancy — deploying the same workload on 1, 2, or 3
//! processing groups of one cluster, and running isolated tenants on
//! separate groups concurrently.

use dtu::serve::{
    run_serving, ArrivalProcess, BatchPolicy, CompiledModel, ScalePolicy, ServeConfig,
    ServeEventKind, SlaPolicy, TenantSpec,
};
use dtu::{Accelerator, Placement, Session, SessionOptions, WorkloadSize};
use dtu_compiler::{compile, CompilerConfig};
use dtu_models::Model;
use dtu_sim::GroupId;

fn main() {
    let accel = Accelerator::cloudblazer_i20();
    let model = Model::Resnet50;
    let graph = model.build(1);

    println!("== Fig. 7: one workload on 1 / 2 / 3 processing groups of a cluster ==");
    println!("{:<10} {:>12} {:>14}", "Groups", "lat (ms)", "speedup vs 1");
    let mut base = 0.0;
    for (size, n) in [
        (WorkloadSize::Small, 1usize),
        (WorkloadSize::Medium, 2),
        (WorkloadSize::Large, 3),
    ] {
        let session = Session::compile(
            &accel,
            &graph,
            SessionOptions {
                size,
                ..Default::default()
            },
        )
        .expect("compile");
        let lat = session.run().expect("run").latency_ms();
        if n == 1 {
            base = lat;
        }
        println!("{:<10} {:>12.3} {:>13.2}x", n, lat, base / lat);
    }

    println!();
    println!("== Isolation: three tenants on separate groups of one cluster ==");
    // Three independent single-group tenants; hardware isolation means
    // each should see (nearly) the latency it gets when running alone —
    // only the shared HBM interface couples them.
    let chip_cfg = accel.config().clone();
    let solo = {
        let p = Placement::explicit(vec![GroupId::new(0, 0)]);
        let prog = compile(&graph, &chip_cfg, &p, &CompilerConfig::for_chip(&chip_cfg))
            .expect("compile solo");
        accel.chip().run(&prog).expect("run solo").latency_ns / 1e6
    };
    // Build one program holding three tenants' streams (same model each).
    let mut combined = dtu_sim::Program::new("three-tenants");
    for g in 0..3 {
        let p = Placement::explicit(vec![GroupId::new(0, g)]);
        let prog = compile(&graph, &chip_cfg, &p, &CompilerConfig::for_chip(&chip_cfg))
            .expect("compile tenant");
        for s in prog.streams {
            combined.add_stream(s);
        }
    }
    let tenants = accel.chip().run(&combined).expect("run tenants");
    let per_tenant_ms = tenants.latency_ns / 1e6;
    println!("single tenant alone (1 group): {solo:.3} ms");
    println!("3 tenants concurrently:        {per_tenant_ms:.3} ms each (worst)");
    println!(
        "interference factor: {:.2}x (1.0 = perfect isolation; >1 reflects the shared HBM interface)",
        per_tenant_ms / solo
    );
    println!(
        "aggregate throughput: {:.0} samples/s vs {:.0} samples/s single-tenant",
        3.0 / (per_tenant_ms / 1e3),
        1.0 / (solo / 1e3)
    );

    println!();
    println!("== Fig. 7 online: elastic 1->2->3 group assignment under bursty load ==");
    // The static sweep above picks a group count offline; the serving
    // layer makes the same decision online, watching queueing delay.
    let mut resnet = CompiledModel::new(accel.chip(), "resnet50", |b| Model::Resnet50.build(b));
    let cfg = ServeConfig {
        duration_ms: 800.0,
        seed: 7,
        record_requests: false,
        faults: Default::default(),
        retry: Default::default(),
        tenants: vec![TenantSpec {
            name: "bursty".into(),
            model: 0,
            arrival: ArrivalProcess::Bursty {
                base_qps: 200.0,
                burst_qps: 1500.0,
                mean_dwell_ms: 120.0,
            },
            batch: BatchPolicy::dynamic(4, 2.0),
            sla: SlaPolicy::new(50.0, 64),
            scale: ScalePolicy::elastic(8.0, 1.5, 3),
            cluster: Some(0),
            initial_groups: 1,
        }],
    };
    let out = run_serving(&cfg, accel.config(), &mut [&mut resnet]).expect("serve");
    print!("{}", out.report);
    for e in &out.trace.events {
        if let ServeEventKind::Scale { from, to } = e.kind {
            println!("  t={:>6.1} ms: scaled {from} -> {to} groups", e.t_ms());
        }
    }
}
