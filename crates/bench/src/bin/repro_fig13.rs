//! Reproduces Fig. 13: DNN latency across platforms, batch 1, FP16,
//! normalised to the T4 (the paper omits i10, which loses to the i20 on
//! every DNN — verified by `repro_ablation`).
//!
//! Paper reference points: GeoMean speedups 2.22x (vs T4) and 1.16x
//! (vs A10); SRResNet is the i20's best case at 4.34x / 2.37x; the A10
//! wins 3 of 10 (image classification); the i20 wins all three object
//! detection models.

fn main() {
    let run = dtu_bench::RunnerArgs::parse_or_exit();
    let cache = run.cache();
    let rows = dtu_bench::evaluate_suite_with(&cache, run.jobs);
    println!("== Fig. 13: DNN latency (batch 1, FP16) ==");
    dtu_bench::print_latency_table(&rows);
    println!();
    println!("== Shape checks against the paper ==");
    let g_t4 = dtu_bench::geomean(
        &rows
            .iter()
            .map(dtu_bench::LatencyRow::speedup_vs_t4)
            .collect::<Vec<_>>(),
    );
    let g_a10 = dtu_bench::geomean(
        &rows
            .iter()
            .map(dtu_bench::LatencyRow::speedup_vs_a10)
            .collect::<Vec<_>>(),
    );
    println!("GeoMean vs T4:  measured {g_t4:.2}x | paper 2.22x");
    println!("GeoMean vs A10: measured {g_a10:.2}x | paper 1.16x");
    let best = rows
        .iter()
        .max_by(|a, b| a.speedup_vs_t4().partial_cmp(&b.speedup_vs_t4()).unwrap())
        .expect("non-empty");
    println!(
        "Best case: {} at {:.2}x / {:.2}x | paper: SRResnet at 4.34x / 2.37x",
        best.model.name(),
        best.speedup_vs_t4(),
        best.speedup_vs_a10()
    );
    let detection_wins = rows
        .iter()
        .filter(|r| r.model.category() == "Object Detection" && r.speedup_vs_a10() > 1.0)
        .count();
    println!("Object-detection wins vs A10: {detection_wins}/3 | paper: 3/3");
    let a10_wins: Vec<&str> = rows
        .iter()
        .filter(|r| r.speedup_vs_a10() < 1.0)
        .map(|r| r.model.name())
        .collect();
    println!("A10 wins: {a10_wins:?} | paper: 3/10, notably VGG16 and Inception v4");
    let s = cache.stats();
    eprintln!(
        "[harness] {} workers; session cache: {} memory + {} disk hits, {} misses",
        run.jobs, s.memory_hits, s.disk_hits, s.misses
    );
}
