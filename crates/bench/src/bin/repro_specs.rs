//! Reproduces Table I (Cloudblazer i20 specifications), Table IV (the
//! accelerators adopted for evaluation), and the Fig. 1 / Fig. 2 SoC
//! topologies.

use dtu_sim::ChipConfig;
use gpu_baseline::{a10_spec, i10_spec, i20_spec, t4_spec};

fn main() {
    println!("== Table I: technical specifications of the Cloudblazer i20 ==");
    let i20 = i20_spec();
    println!(
        "  FP32  {:>6.0} teraFLOPS     Memory        {:.0} GB",
        i20.fp32_tflops, i20.memory_gb
    );
    println!(
        "  TF32  {:>6.0} teraFLOPS     Bandwidth     {:.0} GB/s",
        i20.fp16_tflops, i20.bandwidth_gb_s
    );
    println!(
        "  FP16  {:>6.0} teraFLOPS     Board TDP     {:.0} W",
        i20.fp16_tflops, i20.tdp_w
    );
    println!(
        "  BF16  {:>6.0} teraFLOPS     Interconnect  {}",
        i20.fp16_tflops, i20.interconnect
    );
    println!("  INT8  {:>6.0} TOPS", i20.int8_tops);
    println!();

    println!("== Table IV: AI inference accelerators adopted for evaluation ==");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>10} {:>6} {:>6} {:>8}",
        "Platform", "FP32", "FP16", "INT8", "Mem(GB)", "BW(GB/s)", "TDP", "nm", "Link"
    );
    for s in [i10_spec(), t4_spec(), a10_spec(), i20_spec()] {
        println!(
            "{:<22} {:>8.1} {:>8.0} {:>8.0} {:>8.0} {:>10.0} {:>6.0} {:>6} {:>8}",
            s.name,
            s.fp32_tflops,
            s.fp16_tflops,
            s.int8_tops,
            s.memory_gb,
            s.bandwidth_gb_s,
            s.tdp_w,
            s.tech_nm,
            s.interconnect
        );
    }
    println!();

    println!("== Fig. 1 / Fig. 2: SoC topologies ==");
    for cfg in [ChipConfig::dtu10(), ChipConfig::dtu20()] {
        println!("{}", cfg);
        println!(
            "  {} clusters x {} cores; {} processing groups ({} cores each); L1 {} KiB/core; L2 {} MiB/cluster ({} ports); L3 {} GiB @ {:.0} GB/s",
            cfg.clusters,
            cfg.cores_per_cluster,
            cfg.total_groups(),
            cfg.cores_per_group(),
            cfg.l1_kib_per_core,
            cfg.l2_mib_per_cluster,
            cfg.l2_ports,
            cfg.l3_gib,
            cfg.l3_gb_per_s
        );
    }
}
