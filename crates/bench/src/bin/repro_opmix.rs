//! Reproduces the §VI-D profiling statistic: "the average percentage of
//! operators with high computational density (i.e., matrix convolution
//! and multiplication) in object detection DNNs is less than image
//! classification DNNs (around 81%). However, their input sizes are more
//! than 2x larger."

use dtu_bench::RunnerArgs;
use dtu_compiler::Fnv1a;
use dtu_graph::{characterize, fuse, FusionConfig, OpCost};
use dtu_harness::{ExperimentPlan, HarnessError};
use dtu_models::Model;

/// Share of operator instances that are high-density (conv / matmul /
/// dense) — §VI-D counts operators, not FLOPs (by FLOPs, dense linear
/// algebra saturates every DNN) — plus total GFLOPs. Epilogues that fuse
/// into their anchor (BN, activations, residual adds) are attributed to
/// it, as a deployment-level operator census would see them.
fn matrix_share_and_flops(model: Model) -> Result<(f64, f64), HarnessError> {
    let err = |message: String| HarnessError::Job {
        label: model.name().to_string(),
        message,
    };
    let g = model.build(1);
    let shapes = g
        .infer_shapes()
        .map_err(|e| err(format!("shape inference failed: {e}")))?;
    let plan =
        fuse(&g, &FusionConfig::default()).map_err(|e| err(format!("fusion failed: {e}")))?;
    let mut matrix = 0usize;
    let mut operators = 0usize;
    let mut total_flops = 0u64;
    for group in &plan.groups {
        let mut has_anchor = false;
        for &nid in &group.nodes {
            let node = g
                .node(nid)
                .map_err(|e| err(format!("invalid node id: {e}")))?;
            let inputs: Vec<_> = node.inputs.iter().map(|i| &shapes[i]).collect();
            let c: OpCost = characterize(&node.op, &inputs, &shapes[&nid])
                .map_err(|e| err(format!("characterize failed: {e}")))?;
            total_flops += c.flops();
            has_anchor |= node.op.is_compute_anchor();
        }
        // One deployed operator per fused group plus one per standalone
        // layout/data-movement op the DMA engine must still perform.
        operators += 1;
        if has_anchor {
            matrix += 1;
        }
    }
    Ok((
        matrix as f64 / operators.max(1) as f64,
        total_flops as f64 / 1e9,
    ))
}

fn main() {
    let run = RunnerArgs::parse_or_exit();
    // Pure graph analysis — no sessions to cache, but the per-model
    // census points still fan out over the experiment plan's workers.
    let mut plan: ExperimentPlan<'_, (f64, f64)> = ExperimentPlan::new();
    let ids: Vec<_> = Model::ALL
        .iter()
        .map(|&m| {
            let mut key = Fnv1a::new();
            key.write_str("opmix/");
            key.write_str(m.name());
            plan.add_point(key.finish(), m.name().to_string(), &[], move |_| {
                matrix_share_and_flops(m)
            })
        })
        .collect();
    let results = plan.run(run.jobs);

    println!("== §VI-D operator-mix profile: matrix-dense share of operators ==");
    println!(
        "{:<16} {:<22} {:>14} {:>10}",
        "DNN", "Category", "matrix share", "GFLOPs"
    );
    let mut det = Vec::new();
    let mut cls = Vec::new();
    for (model, id) in Model::ALL.into_iter().zip(&ids) {
        let (share, gflops) = match &results[id.index()] {
            Ok(r) => *r,
            Err(e) => panic!("operator census failed: {e}"),
        };
        println!(
            "{:<16} {:<22} {:>13.1}% {:>10.1}",
            model.name(),
            model.category(),
            share * 100.0,
            gflops
        );
        match model.category() {
            "Object Detection" => det.push(share),
            "Image Classification" => cls.push(share),
            _ => {}
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "image classification mean: {:.1}% | object detection mean: {:.1}%",
        mean(&cls) * 100.0,
        mean(&det) * 100.0
    );
    println!("paper: classification around 81%, detection lower");
    println!("note: the classification share matches the paper's 81% anchor; our");
    println!("detection graphs stop at the network heads (no framework decode/NMS");
    println!("operator inventories), which inflates their matrix share relative to");
    println!("the deployments the paper profiled.");
    let det_pixels = 608.0 * 608.0; // largest detection input
    let cls_pixels = 299.0 * 299.0; // largest classification input
    println!(
        "input-size ratio (Yolo v3 vs Inception v4): {:.1}x (paper: more than 2x)",
        det_pixels / cls_pixels
    );
}
