//! Reproduces Fig. 14: comparisons of power (TDP) and energy efficiency
//! (peak performance / TDP) across platforms — (a) normalised with i10,
//! (b) normalised with T4.
//!
//! Paper reference points (§VI-C): T4's FP16 (INT8) peak efficiency is
//! 1.11x (1.11x) over A10, 1.74x (3.48x) over i10, and 1.09x (1.09x)
//! over i20; for FP32 the i20 leads with 1.6x / 1.84x / 1.03x over
//! i10 / T4 / A10.

use dtu_bench::{platform_specs, RunnerArgs};
use dtu_isa::DataType;
use gpu_baseline::PlatformSpec;

fn table(title: &str, specs: &[&PlatformSpec], base: &PlatformSpec) {
    println!("{title}");
    print!("{:<16}", "");
    for s in specs {
        print!(" {:>16}", s.name.split(' ').next_back().unwrap_or(&s.name));
    }
    println!();
    print!("{:<16}", "TDP");
    for s in specs {
        print!(" {:>15.2}x", s.tdp_w / base.tdp_w);
    }
    println!();
    for dtype in [DataType::Fp32, DataType::Fp16, DataType::Int8] {
        print!("{:<16}", format!("{dtype} perf/TDP"));
        for s in specs {
            print!(
                " {:>15.2}x",
                s.peak_per_tdp(dtype) / base.peak_per_tdp(dtype)
            );
        }
        println!();
    }
    println!();
}

fn main() {
    let run = RunnerArgs::parse_or_exit();
    let (i10, i20, t4, a10) = platform_specs(run.jobs);
    table(
        "== Fig. 14(a): i20 vs i10 (normalised with i10) ==",
        &[&i10, &i20],
        &i10,
    );
    table(
        "== Fig. 14(b): i20 vs Nvidia T4/A10 (normalised with T4) ==",
        &[&t4, &a10, &i20],
        &t4,
    );

    println!("== Paper reference checks ==");
    let f16 = |s: &PlatformSpec| s.peak_per_tdp(DataType::Fp16);
    let f32p = |s: &PlatformSpec| s.peak_per_tdp(DataType::Fp32);
    println!(
        "T4 FP16 eff over A10 / i10 / i20: {:.2}x / {:.2}x / {:.2}x (paper 1.11 / 1.74 / 1.09)",
        f16(&t4) / f16(&a10),
        f16(&t4) / f16(&i10),
        f16(&t4) / f16(&i20)
    );
    println!(
        "i20 FP32 eff over i10 / T4 / A10: {:.2}x / {:.2}x / {:.2}x (paper 1.60 / 1.84 / 1.03)",
        f32p(&i20) / f32p(&i10),
        f32p(&i20) / f32p(&t4),
        f32p(&i20) / f32p(&a10)
    );
}
