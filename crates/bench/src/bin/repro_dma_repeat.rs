//! Reproduces Fig. 6: the DMA engine's normal mode vs repeat mode when
//! slicing a large tensor into 9 regularly-strided pieces.
//!
//! With repeat mode one configuration drives all N transactions,
//! eliminating (N-1)/N of the configuration overhead.

use dtu_sim::{ChipConfig, DmaDescriptor, DmaEngine, DmaPath, MemLevel};

fn main() {
    let cfg = ChipConfig::dtu20();
    let mut engine = DmaEngine::new(&cfg);

    println!("== Fig. 6: DMA normal mode vs repeat mode (9 slices) ==");
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>14}",
        "Mode", "Configs", "config (us)", "total (us)", "saved"
    );
    for slices in [9usize, 32, 128] {
        let mut d = DmaDescriptor::copy(
            DmaPath::new(MemLevel::L3, MemLevel::L2),
            256 * 1024, // one slice
        );
        d.repeat = slices;
        let with = engine.execute(&d, 1).expect("repeat mode");
        let without = engine.execute_without_repeat(&d, 1).expect("normal mode");
        println!(
            "{:<12} {:>8} {:>14.2} {:>14.2} {:>14}",
            format!("normal x{slices}"),
            slices,
            without.config_ns / 1e3,
            without.duration_ns / 1e3,
            "-"
        );
        println!(
            "{:<12} {:>8} {:>14.2} {:>14.2} {:>13.1}%",
            format!("repeat x{slices}"),
            1,
            with.config_ns / 1e3,
            with.duration_ns / 1e3,
            (1.0 - with.duration_ns / without.duration_ns) * 100.0
        );
        let expected = (slices - 1) as f64 / slices as f64 * 100.0;
        println!(
            "  config overhead eliminated: {:.1}% (paper: (N-1)/N = {expected:.1}%)",
            (1.0 - with.config_ns / without.config_ns) * 100.0
        );
    }
}
