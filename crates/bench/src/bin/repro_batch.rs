//! Reproduces the §VI-D "Latency v.s. Throughput" experiment: VGG16 at
//! batch sizes 8 and 16, Cloudblazer i20 vs Nvidia A10.
//!
//! Paper: "Cloudblazer i20 is able to perform better than Nvidia's A10
//! with improvements of 1.11x and 1.17x, respectively" — the gain
//! *grows* with batch because the i20's isolated processing groups run
//! batch shards concurrently and broadcast the shared weights once per
//! cluster.
//!
//! The offline points run through the harness sweep runner (the same
//! engine behind `topsexec sweep`), and the serving section routes its
//! compilations through the same session cache, so the two halves of
//! the experiment share one artifact store.

use dtu::serve::{
    run_serving, ArrivalProcess, BatchPolicy, CompiledModel, ScalePolicy, ServeConfig, SlaPolicy,
    TenantSpec,
};
use dtu::Accelerator;
use dtu_bench::RunnerArgs;
use dtu_harness::{run_sweep, SweepModel};
use dtu_models::Model;
use gpu_baseline::RooflineModel;

fn main() {
    let run = RunnerArgs::parse_or_exit();
    let cache = run.cache();
    println!("== VGG16 batched throughput: i20 vs A10 ==");
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "Batch", "i20 (samp/s)", "A10 (samp/s)", "i20/A10"
    );
    let accel = Accelerator::cloudblazer_i20();
    let vgg = [SweepModel::new("vgg16", |b| Model::Vgg16.build(b))];
    let sweep = run_sweep(&accel, &vgg, &[8, 16], &cache, run.jobs).expect("VGG16 sweep");
    let mut ratios = Vec::new();
    for p in &sweep.points {
        let graph = Model::Vgg16.build(p.batch);
        let a10 = RooflineModel::a10().estimate(&graph).expect("A10 estimate");
        let a10_tp = a10.throughput(p.batch);
        let ratio = p.throughput_sps / a10_tp;
        ratios.push(ratio);
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>11.2}x",
            p.batch, p.throughput_sps, a10_tp, ratio
        );
    }
    println!();
    println!(
        "Paper: 1.11x at batch 8 and 1.17x at batch 16 (improvement grows with batch: {})",
        if ratios[1] > ratios[0] {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );

    println!();
    println!("== Dynamic batching under load (serving view) ==");
    // The offline sweep fixes the batch; the serving layer forms batches
    // online from a live queue. Same chip, same model, arrival-driven —
    // and the same artifact cache underneath both.
    let serve = |max_batch: usize| {
        let mut resnet = CompiledModel::new(accel.chip(), "resnet50", |b| Model::Resnet50.build(b))
            .with_source(&cache);
        let cfg = ServeConfig {
            duration_ms: 600.0,
            seed: 21,
            record_requests: false,
            faults: Default::default(),
            retry: Default::default(),
            tenants: vec![TenantSpec {
                name: format!("b{max_batch}"),
                model: 0,
                arrival: ArrivalProcess::Poisson { qps: 3600.0 },
                batch: if max_batch > 1 {
                    BatchPolicy::dynamic(max_batch, 2.0)
                } else {
                    BatchPolicy::none()
                },
                sla: SlaPolicy::new(50.0, 64),
                scale: ScalePolicy::none(),
                cluster: Some(0),
                initial_groups: 3,
            }],
        };
        run_serving(&cfg, accel.config(), &mut [&mut resnet]).expect("serve")
    };
    let unbatched = serve(1);
    let batched = serve(16);
    println!("ResNet-50, three groups, 3600 QPS offered:");
    println!(
        "  batch 1 fixed  : {:>5.0} QPS sustained, p99 {:>7.2} ms, {} shed",
        unbatched.report.throughput_qps, unbatched.report.latency.p99_ms, unbatched.report.shed
    );
    println!(
        "  dynamic (<=16) : {:>5.0} QPS sustained, p99 {:>7.2} ms, {} shed (mean batch {:.1})",
        batched.report.throughput_qps,
        batched.report.latency.p99_ms,
        batched.report.shed,
        batched.report.mean_batch()
    );
    println!(
        "  dynamic batching sustains {:.2}x the throughput at equal load",
        batched.report.throughput_qps / unbatched.report.throughput_qps
    );
    let s = cache.stats();
    println!();
    println!(
        "shared session cache (sweep + serving): {} memory + {} disk hits, {} misses",
        s.memory_hits, s.disk_hits, s.misses
    );
}
