//! The evaluation harness: everything the `repro_*` binaries share.
//!
//! One function per experiment family: latency sweeps over the Table III
//! suite (Fig. 13), peak-spec ratio tables (Fig. 12/14), energy
//! efficiency (Fig. 15), the batch-throughput and power-management
//! discussion experiments (§VI-D), and the Table II feature ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parallel;

pub use parallel::{
    chip_latencies, evaluate_suite_with, platform_specs, ChipPoint, RunnerArgs, RUNNER_USAGE,
};

use dtu::{Accelerator, ChipConfig, Session, SessionOptions};
use dtu_harness::SessionCache;
use dtu_models::Model;
use gpu_baseline::RooflineModel;

/// One row of the Fig. 13 / Fig. 15 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Which model.
    pub model: Model,
    /// Cloudblazer i20 simulated latency, ms.
    pub i20_ms: f64,
    /// Nvidia T4 roofline latency, ms.
    pub t4_ms: f64,
    /// Nvidia A10 roofline latency, ms.
    pub a10_ms: f64,
}

impl LatencyRow {
    /// Speedup of the i20 over the T4 (>1 means i20 wins).
    pub fn speedup_vs_t4(&self) -> f64 {
        self.t4_ms / self.i20_ms
    }

    /// Speedup of the i20 over the A10.
    pub fn speedup_vs_a10(&self) -> f64 {
        self.a10_ms / self.i20_ms
    }

    /// Fig. 15 energy-efficiency ratio vs T4: Perf/TDP normalised.
    pub fn efficiency_vs_t4(&self) -> f64 {
        self.speedup_vs_t4() * (70.0 / 150.0)
    }

    /// Fig. 15 energy-efficiency ratio vs A10 (equal TDPs).
    pub fn efficiency_vs_a10(&self) -> f64 {
        self.speedup_vs_a10()
    }
}

/// Runs one model through the full i20 stack (compile + simulate).
///
/// # Panics
///
/// Panics on compile/run failures — the harness treats those as
/// experiment-setup bugs, not recoverable conditions.
pub fn i20_latency_ms(model: Model, batch: usize) -> f64 {
    let accel = Accelerator::cloudblazer_i20();
    let graph = model.build(batch);
    let session = Session::compile(&accel, &graph, SessionOptions::default())
        .unwrap_or_else(|e| panic!("{model}: compile failed: {e}"));
    session
        .run()
        .unwrap_or_else(|e| panic!("{model}: run failed: {e}"))
        .latency_ms()
}

/// Runs one model on a custom chip configuration.
///
/// # Panics
///
/// As for [`i20_latency_ms`].
pub fn chip_latency_ms(cfg: ChipConfig, model: Model, batch: usize) -> f64 {
    let accel = Accelerator::with_config(cfg).expect("valid config");
    let graph = model.build(batch);
    let session = Session::compile(&accel, &graph, SessionOptions::default())
        .unwrap_or_else(|e| panic!("{model}: compile failed: {e}"));
    session
        .run()
        .unwrap_or_else(|e| panic!("{model}: run failed: {e}"))
        .latency_ms()
}

/// Evaluates one model on all three platforms (batch 1, FP16 — the
/// Fig. 13 configuration).
///
/// # Panics
///
/// As for [`i20_latency_ms`].
pub fn evaluate_model(model: Model) -> LatencyRow {
    let graph = model.build(1);
    let t4 = RooflineModel::t4()
        .estimate(&graph)
        .unwrap_or_else(|e| panic!("{model}: T4 estimate failed: {e}"));
    let a10 = RooflineModel::a10()
        .estimate(&graph)
        .unwrap_or_else(|e| panic!("{model}: A10 estimate failed: {e}"));
    LatencyRow {
        model,
        i20_ms: i20_latency_ms(model, 1),
        t4_ms: t4.latency_ms,
        a10_ms: a10.latency_ms,
    }
}

/// Evaluates the full Table III suite, serially and without a shared
/// artifact cache. [`evaluate_suite_with`] is the parallel, cached
/// form the repro binaries use.
///
/// # Panics
///
/// As for [`i20_latency_ms`].
pub fn evaluate_suite() -> Vec<LatencyRow> {
    evaluate_suite_with(&SessionCache::memory_only(), 1)
}

/// Regenerates the fig. 12–15 figure data as one deterministic JSON
/// document — the golden-figure payload behind
/// `topsexec sweep --check-golden` / `--write-golden` and the CI
/// regression gate.
///
/// Fig. 12 and 14 are pure spec-sheet ratio tables; fig. 13 and 15 run
/// the full Table III suite (batch 1, FP16) through `cache` on `jobs`
/// workers. Every quantity is a model output, never a wall-clock
/// measurement, so two runs of the same source tree produce identical
/// documents whatever the job count or cache temperature.
///
/// # Panics
///
/// As for [`i20_latency_ms`] — the suite must compile and run.
pub fn figures_json(cache: &SessionCache, jobs: usize) -> String {
    use dtu_isa::DataType;
    use dtu_telemetry::json::{array, number, JsonObject};
    use gpu_baseline::PlatformSpec;

    let (i10, i20, t4, a10) = platform_specs(jobs);
    let rows = evaluate_suite_with(cache, jobs);

    let spec_ratios = |num: &PlatformSpec, base: &PlatformSpec| {
        JsonObject::new()
            .raw("fp32_peak", &number(num.fp32_tflops / base.fp32_tflops))
            .raw("fp16_peak", &number(num.fp16_tflops / base.fp16_tflops))
            .raw("int8_peak", &number(num.int8_tops / base.int8_tops))
            .raw("memory", &number(num.memory_gb / base.memory_gb))
            .raw(
                "bandwidth",
                &number(num.bandwidth_gb_s / base.bandwidth_gb_s),
            )
            .build()
    };
    let fig12 = JsonObject::new()
        .raw("i20_over_i10", &spec_ratios(&i20, &i10))
        .raw("i20_over_t4", &spec_ratios(&i20, &t4))
        .raw("i20_over_a10", &spec_ratios(&i20, &a10))
        .build();

    let fig13_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .string("model", r.model.name())
                .raw("i20_ms", &number(r.i20_ms))
                .raw("t4_ms", &number(r.t4_ms))
                .raw("a10_ms", &number(r.a10_ms))
                .raw("speedup_vs_t4", &number(r.speedup_vs_t4()))
                .raw("speedup_vs_a10", &number(r.speedup_vs_a10()))
                .build()
        })
        .collect();
    let fig13 = JsonObject::new()
        .raw("rows", &array(&fig13_rows))
        .raw(
            "geomean_vs_t4",
            &number(geomean(
                &rows
                    .iter()
                    .map(LatencyRow::speedup_vs_t4)
                    .collect::<Vec<_>>(),
            )),
        )
        .raw(
            "geomean_vs_a10",
            &number(geomean(
                &rows
                    .iter()
                    .map(LatencyRow::speedup_vs_a10)
                    .collect::<Vec<_>>(),
            )),
        )
        .build();

    let eff_ratios = |dtype: dtu_isa::DataType| {
        let base = t4.peak_per_tdp(dtype);
        JsonObject::new()
            .raw("i10", &number(i10.peak_per_tdp(dtype) / base))
            .raw("i20", &number(i20.peak_per_tdp(dtype) / base))
            .raw("a10", &number(a10.peak_per_tdp(dtype) / base))
            .build()
    };
    let fig14 = JsonObject::new()
        .raw("fp32_per_tdp_over_t4", &eff_ratios(DataType::Fp32))
        .raw("fp16_per_tdp_over_t4", &eff_ratios(DataType::Fp16))
        .raw("int8_per_tdp_over_t4", &eff_ratios(DataType::Int8))
        .build();

    let fig15_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .string("model", r.model.name())
                .raw("efficiency_vs_t4", &number(r.efficiency_vs_t4()))
                .raw("efficiency_vs_a10", &number(r.efficiency_vs_a10()))
                .build()
        })
        .collect();
    let fig15 = JsonObject::new()
        .raw("rows", &array(&fig15_rows))
        .raw(
            "geomean_vs_t4",
            &number(geomean(
                &rows
                    .iter()
                    .map(LatencyRow::efficiency_vs_t4)
                    .collect::<Vec<_>>(),
            )),
        )
        .raw(
            "geomean_vs_a10",
            &number(geomean(
                &rows
                    .iter()
                    .map(LatencyRow::efficiency_vs_a10)
                    .collect::<Vec<_>>(),
            )),
        )
        .build();

    JsonObject::new()
        .raw("fig12", &fig12)
        .raw("fig13", &fig13)
        .raw("fig14", &fig14)
        .raw("fig15", &fig15)
        .build()
}

/// Geometric mean of a slice (panics on empty).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a comparison table like the Fig. 13 chart's data.
pub fn print_latency_table(rows: &[LatencyRow]) {
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "DNN", "i20 (ms)", "T4 (ms)", "A10 (ms)", "vs T4", "vs A10"
    );
    for r in rows {
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x {:>8.2}x",
            r.model.name(),
            r.i20_ms,
            r.t4_ms,
            r.a10_ms,
            r.speedup_vs_t4(),
            r.speedup_vs_a10()
        );
    }
    let g_t4 = geomean(
        &rows
            .iter()
            .map(LatencyRow::speedup_vs_t4)
            .collect::<Vec<_>>(),
    );
    let g_a10 = geomean(
        &rows
            .iter()
            .map(LatencyRow::speedup_vs_a10)
            .collect::<Vec<_>>(),
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>8.2}x {:>8.2}x",
        "GeoMean", "", "", "", g_t4, g_a10
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_row_derived_ratios() {
        let r = LatencyRow {
            model: Model::Vgg16,
            i20_ms: 1.0,
            t4_ms: 2.22,
            a10_ms: 1.16,
        };
        assert!((r.speedup_vs_t4() - 2.22).abs() < 1e-12);
        assert!((r.efficiency_vs_t4() - 2.22 * 70.0 / 150.0).abs() < 1e-9);
        assert!((r.efficiency_vs_a10() - 1.16).abs() < 1e-12);
    }

    #[test]
    fn single_model_end_to_end() {
        // The cheapest model keeps the test fast.
        let row = evaluate_model(Model::Resnet50);
        assert!(row.i20_ms > 0.0);
        assert!(row.t4_ms > 0.0);
        assert!(row.a10_ms > 0.0);
    }
}
