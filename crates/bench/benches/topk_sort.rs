//! Criterion bench for the VMM-assisted sorting facility (Fig. 4) and
//! Top-K selection (Table II's "efficient Top-K recommendation" row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtu_sim::MatrixEngine;
use dtu_tensor::Tensor;
use std::hint::black_box;

fn pseudo_random(n: usize) -> Tensor {
    let mut x: u64 = 0x2545F4914F6CDD1D;
    Tensor::from_vec(
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 10_000) as f32 / 100.0
            })
            .collect(),
    )
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("vmm_sort");
    for n in [8usize, 16, 32] {
        let input = pseudo_random(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut eng = MatrixEngine::default();
            b.iter(|| black_box(eng.sort(black_box(&input)).expect("fits engine")))
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    let input = pseudo_random(32);
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut eng = MatrixEngine::default();
            b.iter(|| black_box(eng.top_k(black_box(&input), k).expect("fits engine")))
        });
    }
    // Reference: std sort for the same job.
    group.bench_function("std_sort_baseline_32", |b| {
        let data = pseudo_random(32).into_data();
        b.iter(|| {
            let mut v = data.clone();
            v.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
            v.truncate(5);
            black_box(());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sort, bench_topk);
criterion_main!(benches);
