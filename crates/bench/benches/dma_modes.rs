//! Criterion bench for DMA engine modes: normal vs repeat configuration
//! (Fig. 6), dense vs sparse wire format, and on-the-fly transforms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtu_sim::{ChipConfig, DmaDescriptor, DmaEngine, DmaPath, MemLevel};
use dtu_tensor::{Permutation, SparseFormat, Tensor, TransformOp};
use std::hint::black_box;

fn bench_repeat_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("dma_repeat");
    let cfg = ChipConfig::dtu20();
    for slices in [9usize, 64] {
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64 * 1024);
        d.repeat = slices;
        group.bench_with_input(BenchmarkId::new("repeat", slices), &slices, |b, _| {
            let mut eng = DmaEngine::new(&cfg);
            b.iter(|| black_box(eng.execute(black_box(&d), 1).expect("legal")))
        });
        group.bench_with_input(BenchmarkId::new("normal", slices), &slices, |b, _| {
            let mut eng = DmaEngine::new(&cfg);
            b.iter(|| black_box(eng.execute_without_repeat(black_box(&d), 1).expect("legal")))
        });
    }
    group.finish();
}

fn bench_sparse_move(c: &mut Criterion) {
    let mut group = c.benchmark_group("dma_sparse");
    let cfg = ChipConfig::dtu20();
    // Post-ReLU-like tensor: about half zeros.
    let data = Tensor::from_fn(dtu_tensor::Shape::new(vec![4096]), |i| {
        if i[0] % 2 == 0 {
            0.0
        } else {
            i[0] as f32
        }
    });
    for (name, sparse) in [
        ("dense", SparseFormat::Dense),
        ("bitmap", SparseFormat::BitmapBlock),
    ] {
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 16 * 1024);
        d.sparse = sparse;
        group.bench_function(name, |b| {
            let mut eng = DmaEngine::new(&cfg);
            b.iter(|| {
                black_box(
                    eng.move_tensor(black_box(&d), black_box(&data))
                        .expect("legal"),
                )
            })
        });
    }
    group.finish();
}

fn bench_transform_on_the_fly(c: &mut Criterion) {
    let mut group = c.benchmark_group("dma_transform");
    let cfg = ChipConfig::dtu20();
    let t = Tensor::from_fn(dtu_tensor::Shape::new(vec![32, 64, 8]), |i| {
        (i[0] + i[1] + i[2]) as f32
    });
    let d = DmaDescriptor {
        transform: TransformOp::Transpose {
            perm: Permutation::new(vec![2, 0, 1]).expect("valid"),
        },
        ..DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64 * 1024)
    };
    group.bench_function("transpose_16k_elems", |b| {
        let mut eng = DmaEngine::new(&cfg);
        b.iter(|| {
            black_box(
                eng.move_tensor(black_box(&d), black_box(&t))
                    .expect("legal"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_repeat_mode,
    bench_sparse_move,
    bench_transform_on_the_fly
);
criterion_main!(benches);
