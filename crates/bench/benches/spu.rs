//! Criterion bench for the SPU's LUT-plus-Taylor transcendentals
//! (§IV-A2, the Table II "enhanced SFU" row) against libm references.

use criterion::{criterion_group, criterion_main, Criterion};
use dtu_isa::SfuFunc;
use dtu_sim::Spu;
use dtu_tensor::{Shape, Tensor};
use std::hint::black_box;

fn bench_transcendentals(c: &mut Criterion) {
    let mut group = c.benchmark_group("spu");
    let input = Tensor::from_fn(Shape::new(vec![4096]), |i| (i[0] as f32 - 2048.0) / 256.0);
    for func in [SfuFunc::Tanh, SfuFunc::Gelu, SfuFunc::Sigmoid, SfuFunc::Exp] {
        group.bench_function(format!("{func:?}").to_lowercase(), |b| {
            let mut spu = Spu::default();
            b.iter(|| black_box(spu.eval_tensor(func, black_box(&input)).expect("supported")))
        });
    }
    // libm reference for the same element count.
    group.bench_function("libm_tanh_baseline", |b| {
        b.iter(|| black_box(input.data().iter().map(|&x| x.tanh()).collect::<Vec<f32>>()))
    });
    group.finish();
}

criterion_group!(benches, bench_transcendentals);
criterion_main!(benches);
