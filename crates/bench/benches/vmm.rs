//! Criterion bench for the matrix engine's VMM paths (Fig. 3): every
//! FP32 catalog shape, the narrow-type variants, and a software GEMM
//! tiled over VMM macro-ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtu_isa::DataType;
use dtu_sim::MatrixEngine;
use dtu_tensor::{Shape, Tensor};
use std::hint::black_box;

fn bench_vmm_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("vmm");
    for rows in [4usize, 8, 16] {
        let v = Tensor::from_fn(Shape::new(vec![rows]), |i| i[0] as f32 * 0.5);
        let m = Tensor::from_fn(Shape::new(vec![rows, 16]), |i| {
            (i[0] * 16 + i[1]) as f32 * 0.01
        });
        let acc = Tensor::zeros(Shape::new(vec![16]));
        group.bench_with_input(
            BenchmarkId::new("fp32", format!("{rows}x16")),
            &rows,
            |b, _| {
                let mut eng = MatrixEngine::default();
                b.iter(|| {
                    black_box(
                        eng.vmm(
                            black_box(&v),
                            black_box(&m),
                            black_box(&acc),
                            DataType::Fp32,
                        )
                        .expect("catalog shape"),
                    )
                })
            },
        );
    }
    // Narrow-type wide tile.
    let v = Tensor::from_fn(Shape::new(vec![64]), |i| i[0] as f32 * 0.25);
    let m = Tensor::from_fn(Shape::new(vec![64, 16]), |i| (i[0] + i[1]) as f32 * 0.01);
    let acc = Tensor::zeros(Shape::new(vec![16]));
    group.bench_function("fp16_64x16", |b| {
        let mut eng = MatrixEngine::default();
        b.iter(|| {
            black_box(
                eng.vmm(
                    black_box(&v),
                    black_box(&m),
                    black_box(&acc),
                    DataType::Fp16,
                )
                .expect("catalog shape"),
            )
        })
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_via_vmm");
    for (m, k, n) in [(8usize, 64usize, 32usize), (16, 128, 64)] {
        let a = Tensor::from_fn(Shape::new(vec![m, k]), |i| (i[0] + i[1]) as f32 * 0.01);
        let b_t = Tensor::from_fn(Shape::new(vec![k, n]), |i| (i[0] * 2 + i[1]) as f32 * 0.01);
        group.bench_function(format!("{m}x{k}x{n}"), |bch| {
            let mut eng = MatrixEngine::default();
            bch.iter(|| {
                black_box(
                    eng.gemm(black_box(&a), black_box(&b_t), DataType::Fp32)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vmm_shapes, bench_gemm);
criterion_main!(benches);
