//! Criterion bench over the full stack: graph build, fusion, compile,
//! and simulated execution for representative Table III models, plus the
//! GPU roofline estimates used in Fig. 13 / Fig. 15.

use criterion::{criterion_group, criterion_main, Criterion};
use dtu::{Accelerator, Session, SessionOptions};
use dtu_graph::{fuse, FusionConfig};
use dtu_models::Model;
use gpu_baseline::RooflineModel;
use std::hint::black_box;

fn bench_compile_and_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for model in [Model::Resnet50, Model::Vgg16] {
        let accel = Accelerator::cloudblazer_i20();
        let graph = model.build(1);
        group.bench_function(format!("compile_{}", model.name().replace(' ', "_")), |b| {
            b.iter(|| {
                black_box(
                    Session::compile(&accel, black_box(&graph), SessionOptions::default())
                        .expect("compiles"),
                )
            })
        });
        let session =
            Session::compile(&accel, &graph, SessionOptions::default()).expect("compiles");
        group.bench_function(
            format!("simulate_{}", model.name().replace(' ', "_")),
            |b| b.iter(|| black_box(session.run().expect("runs"))),
        );
    }
    group.finish();
}

fn bench_fusion_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion");
    group.sample_size(10);
    for model in [Model::Resnet50, Model::BertLarge] {
        let graph = model.build(1);
        group.bench_function(model.name().replace(' ', "_"), |b| {
            b.iter(|| black_box(fuse(black_box(&graph), &FusionConfig::default()).expect("fuses")))
        });
    }
    group.finish();
}

fn bench_roofline(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline_estimate");
    group.sample_size(10);
    let graph = Model::Resnet50.build(1);
    group.bench_function("a10_resnet50", |b| {
        let m = RooflineModel::a10();
        b.iter(|| black_box(m.estimate(black_box(&graph)).expect("estimates")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_and_run,
    bench_fusion_pass,
    bench_roofline
);
criterion_main!(benches);
