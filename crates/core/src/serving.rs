//! Cloud-serving simulation: request queues, tail latency, and QoS.
//!
//! The paper's framing is a *cloud inference service*: "the ability to
//! efficiently serve multiple user requests is crucial to improve
//! throughput and hardware utilization" (§IV-E), with isolated
//! processing groups keeping tenants from hurting each other's latency.
//! This module adds the serving layer on top of the simulator: Poisson
//! request arrivals per tenant, one isolated processing group per
//! tenant, FIFO queueing, and the latency-distribution statistics an SLA
//! is written against.

use crate::{Accelerator, DtuError, Placement, Session, SessionOptions};
use dtu_graph::Graph;
use dtu_sim::GroupId;
use std::fmt;

/// Serving-scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Number of tenants, each on its own processing group (max 6 on the
    /// i20).
    pub tenants: usize,
    /// Mean request arrival rate per tenant, queries/second (Poisson).
    pub arrival_qps: f64,
    /// Simulated wall-clock horizon, milliseconds.
    pub duration_ms: f64,
    /// PRNG seed for the arrival process.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            tenants: 3,
            arrival_qps: 300.0,
            duration_ms: 100.0,
            seed: 0x5EED,
        }
    }
}

/// Latency and throughput statistics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Aggregate throughput, queries/second.
    pub throughput_qps: f64,
    /// Mean end-to-end latency (queueing + service), ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Pure service time (one inference on one group), ms.
    pub service_ms: f64,
    /// Offered utilisation per tenant (arrival rate × service time).
    pub utilization: f64,
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reqs, {:.0} QPS, p50/p95/p99 = {:.2}/{:.2}/{:.2} ms (service {:.2} ms, util {:.0}%)",
            self.completed,
            self.throughput_qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.service_ms,
            self.utilization * 100.0
        )
    }
}

/// Deterministic xorshift PRNG for the arrival process.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Uniform in (0, 1].
        ((self.0 >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival with rate `lambda` per ms.
    fn next_exp_ms(&mut self, lambda_per_ms: f64) -> f64 {
        -self.next_f64().ln() / lambda_per_ms
    }
}

/// Simulates serving `graph` under Poisson load with per-tenant isolated
/// processing groups (M/D/1 per tenant: the accelerator's latency is
/// deterministic).
///
/// # Errors
///
/// Compilation/simulation failures surface as [`DtuError`]; the tenant
/// count is clamped to the chip's group count.
pub fn simulate_serving(
    accel: &Accelerator,
    graph: &Graph,
    cfg: &ServingConfig,
) -> Result<ServingReport, DtuError> {
    let max_tenants = accel.config().total_groups();
    let tenants = cfg.tenants.clamp(1, max_tenants);
    let groups_per_cluster = accel.config().groups_per_cluster;

    // Service time: one inference on a single isolated group. All groups
    // are identical, so compile once.
    let placement = Placement::explicit(vec![GroupId::new(0, 0)]);
    let session = Session::compile(
        accel,
        graph,
        SessionOptions {
            placement: Some(placement),
            ..Default::default()
        },
    )?;
    let service_ms = session.run()?.latency_ms();

    // Per-tenant M/D/1 FIFO queues, independent Poisson arrivals.
    let mut rng = Rng(cfg.seed | 1);
    let mut latencies: Vec<f64> = Vec::new();
    for tenant in 0..tenants {
        let _group = GroupId::new(tenant / groups_per_cluster, tenant % groups_per_cluster);
        let lambda_per_ms = cfg.arrival_qps / 1e3;
        let mut t = 0.0f64;
        let mut free_at = 0.0f64;
        loop {
            t += rng.next_exp_ms(lambda_per_ms);
            if t > cfg.duration_ms {
                break;
            }
            let start = t.max(free_at);
            let done = start + service_ms;
            free_at = done;
            latencies.push(done - t);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies.len() as u64;
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            0.0
        } else {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx]
        }
    };
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(ServingReport {
        completed,
        throughput_qps: completed as f64 / (cfg.duration_ms / 1e3),
        mean_ms: mean,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        service_ms,
        utilization: cfg.arrival_qps * service_ms / 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn toy() -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[1, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(r);
        g
    }

    #[test]
    fn light_load_latency_near_service_time() {
        let accel = Accelerator::cloudblazer_i20();
        let cfg = ServingConfig {
            tenants: 3,
            arrival_qps: 50.0, // far below capacity
            duration_ms: 200.0,
            seed: 7,
        };
        let r = simulate_serving(&accel, &toy(), &cfg).unwrap();
        assert!(r.completed > 0);
        assert!(r.utilization < 0.2);
        // With almost no queueing, p99 is close to the service time.
        assert!(r.p99_ms < r.service_ms * 2.0, "{r}");
    }

    #[test]
    fn heavy_load_grows_the_tail() {
        let accel = Accelerator::cloudblazer_i20();
        let g = toy();
        let light = simulate_serving(
            &accel,
            &g,
            &ServingConfig {
                arrival_qps: 50.0,
                ..Default::default()
            },
        )
        .unwrap();
        // Near saturation (util ~0.9).
        let hot_qps = 0.9 / light.service_ms * 1e3;
        let heavy = simulate_serving(
            &accel,
            &g,
            &ServingConfig {
                arrival_qps: hot_qps,
                duration_ms: 500.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(heavy.p99_ms > light.p99_ms * 2.0, "{light} vs {heavy}");
        assert!(heavy.p99_ms > heavy.p50_ms);
    }

    #[test]
    fn tenants_scale_throughput() {
        let accel = Accelerator::cloudblazer_i20();
        let g = toy();
        let run = |tenants| {
            simulate_serving(
                &accel,
                &g,
                &ServingConfig {
                    tenants,
                    arrival_qps: 200.0,
                    duration_ms: 300.0,
                    seed: 11,
                },
            )
            .unwrap()
            .throughput_qps
        };
        let one = run(1);
        let six = run(6);
        assert!(
            six > one * 4.0,
            "6 tenants ({six:.0} QPS) should serve far more than 1 ({one:.0} QPS)"
        );
    }

    #[test]
    fn tenant_count_clamped_to_chip() {
        let accel = Accelerator::cloudblazer_i20();
        let r = simulate_serving(
            &accel,
            &toy(),
            &ServingConfig {
                tenants: 99,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.completed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let accel = Accelerator::cloudblazer_i20();
        let g = toy();
        let cfg = ServingConfig::default();
        let a = simulate_serving(&accel, &g, &cfg).unwrap();
        let b = simulate_serving(&accel, &g, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
