//! Cloud-serving simulation: request queues, tail latency, and QoS.
//!
//! The paper's framing is a *cloud inference service*: "the ability to
//! efficiently serve multiple user requests is crucial to improve
//! throughput and hardware utilization" (§IV-E), with isolated
//! processing groups keeping tenants from hurting each other's latency.
//!
//! This module is the facade over the full event-driven serving stack in
//! [`dtu_serve`]: [`simulate_serving`] keeps its original closed-form
//! contract — Poisson arrivals, one isolated processing group per
//! tenant, FIFO queueing, no batching or shedding — but delegates to
//! [`dtu_serve::run_serving`], which compiles and simulates each
//! tenant's session *on its own group* through the session cache. The
//! per-tenant M/D/1 model it reduces to is kept below as a closed-form
//! cross-check (see the tests). Batching, SLA admission, and elastic
//! scaling live in [`dtu_serve`] directly (re-exported as
//! [`crate::serve`]).

use crate::{Accelerator, DtuError};
use dtu_graph::Graph;
use dtu_serve::{run_serving, CompiledModel, ServeConfig, TenantSpec};
use std::fmt;

/// Serving-scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Number of tenants, each on its own processing group (max 6 on the
    /// i20).
    pub tenants: usize,
    /// Mean request arrival rate per tenant, queries/second (Poisson).
    pub arrival_qps: f64,
    /// Simulated wall-clock horizon, milliseconds.
    pub duration_ms: f64,
    /// PRNG seed for the arrival process.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            tenants: 3,
            arrival_qps: 300.0,
            duration_ms: 100.0,
            seed: 0x5EED,
        }
    }
}

/// Latency and throughput statistics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Aggregate throughput, queries/second.
    pub throughput_qps: f64,
    /// Mean end-to-end latency (queueing + service), ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Pure service time (one inference on one group), ms.
    pub service_ms: f64,
    /// Offered utilisation per tenant (arrival rate × service time).
    pub utilization: f64,
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reqs, {:.0} QPS, p50/p95/p99 = {:.2}/{:.2}/{:.2} ms (service {:.2} ms, util {:.0}%)",
            self.completed,
            self.throughput_qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.service_ms,
            self.utilization * 100.0
        )
    }
}

/// Simulates serving `graph` under Poisson load with per-tenant isolated
/// processing groups (M/D/1 per tenant: the accelerator's latency is
/// deterministic).
///
/// Each tenant's session is compiled and simulated on the group it
/// actually occupies — tenant `i` lands on cluster `i / groups_per_cluster`,
/// group `i % groups_per_cluster` — through [`dtu_serve`]'s session
/// cache. For richer scenarios (dynamic batching, SLA admission,
/// bursty arrivals, elastic scaling) use [`dtu_serve::run_serving`]
/// directly.
///
/// # Errors
///
/// Compilation/simulation failures surface as [`DtuError`]; the tenant
/// count is clamped to the chip's group count.
pub fn simulate_serving(
    accel: &Accelerator,
    graph: &Graph,
    cfg: &ServingConfig,
) -> Result<ServingReport, DtuError> {
    let max_tenants = accel.config().total_groups();
    let tenants = cfg.tenants.clamp(1, max_tenants);
    let groups_per_cluster = accel.config().groups_per_cluster;

    let mut model = CompiledModel::from_graph(accel.chip(), "serving-model", graph.clone());

    let serve_cfg = ServeConfig {
        duration_ms: cfg.duration_ms,
        seed: cfg.seed,
        record_requests: false,
        faults: Default::default(),
        retry: Default::default(),
        tenants: (0..tenants)
            .map(|i| {
                let mut spec = TenantSpec::poisson(format!("tenant{i}"), 0, cfg.arrival_qps);
                // One isolated group per tenant, packed cluster-major:
                // the engine hands tenant i group (i / gpc, i % gpc).
                spec.cluster = Some(i / groups_per_cluster);
                spec
            })
            .collect(),
    };
    let out = run_serving(&serve_cfg, accel.config(), &mut [&mut model])?;

    // Pure single-request service time on one group — answered from the
    // engine's session cache (every tenant dispatched batch-1 sessions).
    let one_group = crate::Placement::explicit(vec![dtu_sim::GroupId::new(0, 0)]);
    let service_ms = dtu_serve::ServiceModel::service_ms(&mut model, 1, &one_group)?;

    let report = out.report;
    Ok(ServingReport {
        completed: report.completed,
        throughput_qps: report.throughput_qps,
        mean_ms: report.latency.mean_ms,
        p50_ms: report.latency.p50_ms,
        p95_ms: report.latency.p95_ms,
        p99_ms: report.latency.p99_ms,
        service_ms,
        utilization: cfg.arrival_qps * service_ms / 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn toy() -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[1, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(r);
        g
    }

    #[test]
    fn light_load_latency_near_service_time() {
        let accel = Accelerator::cloudblazer_i20();
        let cfg = ServingConfig {
            tenants: 3,
            arrival_qps: 50.0, // far below capacity
            duration_ms: 200.0,
            seed: 7,
        };
        let r = simulate_serving(&accel, &toy(), &cfg).unwrap();
        assert!(r.completed > 0);
        assert!(r.utilization < 0.2);
        // With almost no queueing, p99 is close to the service time.
        assert!(r.p99_ms < r.service_ms * 2.0, "{r}");
    }

    #[test]
    fn heavy_load_grows_the_tail() {
        let accel = Accelerator::cloudblazer_i20();
        let g = toy();
        let light = simulate_serving(
            &accel,
            &g,
            &ServingConfig {
                arrival_qps: 50.0,
                ..Default::default()
            },
        )
        .unwrap();
        // Near saturation (util ~0.9).
        let hot_qps = 0.9 / light.service_ms * 1e3;
        let heavy = simulate_serving(
            &accel,
            &g,
            &ServingConfig {
                arrival_qps: hot_qps,
                duration_ms: 500.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(heavy.p99_ms > light.p99_ms * 2.0, "{light} vs {heavy}");
        assert!(heavy.p99_ms > heavy.p50_ms);
    }

    #[test]
    fn tenants_scale_throughput() {
        let accel = Accelerator::cloudblazer_i20();
        let g = toy();
        let run = |tenants| {
            simulate_serving(
                &accel,
                &g,
                &ServingConfig {
                    tenants,
                    arrival_qps: 200.0,
                    duration_ms: 300.0,
                    seed: 11,
                },
            )
            .unwrap()
            .throughput_qps
        };
        let one = run(1);
        let six = run(6);
        assert!(
            six > one * 4.0,
            "6 tenants ({six:.0} QPS) should serve far more than 1 ({one:.0} QPS)"
        );
    }

    #[test]
    fn tenant_count_clamped_to_chip() {
        let accel = Accelerator::cloudblazer_i20();
        let r = simulate_serving(
            &accel,
            &toy(),
            &ServingConfig {
                tenants: 99,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.completed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let accel = Accelerator::cloudblazer_i20();
        let g = toy();
        let cfg = ServingConfig::default();
        let a = simulate_serving(&accel, &g, &cfg).unwrap();
        let b = simulate_serving(&accel, &g, &cfg).unwrap();
        assert_eq!(a, b);
    }

    /// The closed-form M/D/1 this module used to implement inline is
    /// kept as a cross-check on the event engine: a single tenant's
    /// sample path must match the Lindley recursion over the same
    /// seeded arrival stream exactly (the engine documents that tenant
    /// 0 draws from the raw run seed).
    #[test]
    fn single_tenant_matches_closed_form_m_d_1() {
        let accel = Accelerator::cloudblazer_i20();
        let cfg = ServingConfig {
            tenants: 1,
            arrival_qps: 400.0,
            duration_ms: 400.0,
            seed: 0xCAFE,
        };
        let r = simulate_serving(&accel, &toy(), &cfg).unwrap();

        // Closed form: Poisson arrivals (same stream the engine gives
        // tenant 0), deterministic service, done = max(t, free) + s.
        let mut gen = dtu_serve::ArrivalGen::new(
            dtu_serve::ArrivalProcess::Poisson {
                qps: cfg.arrival_qps,
            },
            cfg.seed,
        );
        let mut latencies = Vec::new();
        let mut t = gen.next_after(0.0);
        let mut free_at = 0.0f64;
        while t <= cfg.duration_ms {
            let done = t.max(free_at) + r.service_ms;
            latencies.push(done - t);
            free_at = done;
            t = gen.next_after(t);
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        assert_eq!(r.completed as usize, latencies.len());
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        assert!((r.mean_ms - mean).abs() < 1e-9, "{} vs {mean}", r.mean_ms);
        let p99 = dtu_serve::percentile(&latencies, 0.99);
        assert!((r.p99_ms - p99).abs() < 1e-9, "{} vs {p99}", r.p99_ms);
    }
}
