//! The facade's unified error type.

use dtu_compiler::CompileError;
use dtu_graph::GraphError;
use dtu_sim::SimError;
use std::error::Error;
use std::fmt;

/// Any failure from building, compiling, or running a model.
#[derive(Debug, Clone, PartialEq)]
pub enum DtuError {
    /// Graph construction or analysis failed.
    Graph(GraphError),
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for DtuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtuError::Graph(e) => write!(f, "graph error: {e}"),
            DtuError::Compile(e) => write!(f, "compile error: {e}"),
            DtuError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for DtuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DtuError::Graph(e) => Some(e),
            DtuError::Compile(e) => Some(e),
            DtuError::Sim(e) => Some(e),
        }
    }
}

impl From<GraphError> for DtuError {
    fn from(e: GraphError) -> Self {
        DtuError::Graph(e)
    }
}

impl From<CompileError> for DtuError {
    fn from(e: CompileError) -> Self {
        DtuError::Compile(e)
    }
}

impl From<SimError> for DtuError {
    fn from(e: SimError) -> Self {
        DtuError::Sim(e)
    }
}

impl From<dtu_serve::ServeError> for DtuError {
    fn from(e: dtu_serve::ServeError) -> Self {
        match e {
            dtu_serve::ServeError::Compile(e) => DtuError::Compile(e),
            dtu_serve::ServeError::Sim(e) => DtuError::Sim(e),
            dtu_serve::ServeError::Config(msg) => DtuError::Sim(SimError::InvalidConfig(msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DtuError = GraphError::NoOutputs.into();
        assert!(e.to_string().contains("graph error"));
        assert!(e.source().is_some());
        let e: DtuError = SimError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("simulation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DtuError>();
    }
}
