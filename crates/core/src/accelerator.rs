//! The accelerator handle.

use crate::DtuError;
use dtu_sim::{Chip, ChipConfig};
use std::fmt;

/// A simulated accelerator card.
///
/// Owns the chip model plus its configuration; sessions borrow it to run
/// compiled programs. The two product constructors mirror the paper's
/// hardware: [`Accelerator::cloudblazer_i20`] (DTU 2.0) and
/// [`Accelerator::cloudblazer_i10`] (DTU 1.0).
#[derive(Debug)]
pub struct Accelerator {
    chip: Chip,
}

impl Accelerator {
    /// The Cloudblazer i20 (DTU 2.0, Table I).
    pub fn cloudblazer_i20() -> Self {
        Accelerator {
            chip: Chip::new(ChipConfig::dtu20()),
        }
    }

    /// The Cloudblazer i10 (DTU 1.0, §II-A).
    pub fn cloudblazer_i10() -> Self {
        Accelerator {
            chip: Chip::new(ChipConfig::dtu10()),
        }
    }

    /// An accelerator with a custom configuration (ablations, feature
    /// sweeps, power-management on/off).
    ///
    /// # Errors
    ///
    /// [`DtuError::Sim`] when the configuration is inconsistent.
    pub fn with_config(cfg: ChipConfig) -> Result<Self, DtuError> {
        Ok(Accelerator {
            chip: Chip::try_new(cfg)?,
        })
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        self.chip.config()
    }

    /// The underlying chip model (for advanced use: custom programs,
    /// direct engine access).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_constructors() {
        let i20 = Accelerator::cloudblazer_i20();
        assert_eq!(i20.config().total_cores(), 24);
        let i10 = Accelerator::cloudblazer_i10();
        assert_eq!(i10.config().total_cores(), 32);
    }

    #[test]
    fn custom_config_validated() {
        let mut cfg = ChipConfig::dtu20();
        cfg.features.power_management = false;
        assert!(Accelerator::with_config(cfg).is_ok());
        let mut bad = ChipConfig::dtu20();
        bad.clusters = 0;
        assert!(Accelerator::with_config(bad).is_err());
    }

    #[test]
    fn display_names_product() {
        assert!(Accelerator::cloudblazer_i20().to_string().contains("i20"));
    }
}
