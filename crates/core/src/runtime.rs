//! The runtime library (the paper's TopsRuntime, §V-B): device memory
//! management and host↔device transfers.
//!
//! "TopsRuntime is a library for DTU runtime management. It triggers
//! resource allocation and task execution." This module provides the
//! host-side half the facade needs: a first-fit free-list allocator over
//! the 16 GB device memory (with fragmentation accounting), PCIe Gen4
//! timed uploads/downloads, and a submission queue that runs sessions in
//! order and accumulates wall-clock.

use crate::{Accelerator, DtuError, InferenceReport, Session};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// PCIe Gen4 x16 effective bandwidth, GB/s (Table I: 64 GB/s).
const PCIE_GB_PER_S: f64 = 64.0;

/// Errors from the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// No free region is large enough (the error reports the largest).
    OutOfDeviceMemory {
        /// Bytes requested.
        requested: u64,
        /// Total bytes still free.
        free: u64,
        /// Largest contiguous free region.
        largest_region: u64,
    },
    /// The handle was already freed or never allocated.
    InvalidBuffer {
        /// The offending handle id.
        id: u64,
    },
    /// A transfer exceeded the buffer's extent.
    TransferOutOfBounds {
        /// Bytes requested.
        requested: u64,
        /// The buffer's capacity.
        capacity: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfDeviceMemory {
                requested,
                free,
                largest_region,
            } => write!(
                f,
                "out of device memory: requested {requested} B, {free} B free, largest region {largest_region} B"
            ),
            RuntimeError::InvalidBuffer { id } => write!(f, "invalid device buffer handle {id}"),
            RuntimeError::TransferOutOfBounds {
                requested,
                capacity,
            } => write!(
                f,
                "transfer of {requested} B exceeds buffer capacity {capacity} B"
            ),
        }
    }
}

impl Error for RuntimeError {}

/// A handle to an allocation in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceBuffer {
    id: u64,
    offset: u64,
    bytes: u64,
}

impl DeviceBuffer {
    /// Device byte offset of the allocation.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Allocation size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// Whether the allocation is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// Alignment of every device allocation (HBM burst granularity).
const ALIGN: u64 = 256;

/// First-fit free-list allocator over the device memory.
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    capacity: u64,
    /// Free regions as offset -> length, coalesced on free.
    free: BTreeMap<u64, u64>,
    /// Live allocations by handle id.
    live: BTreeMap<u64, (u64, u64)>,
    next_id: u64,
}

impl DeviceAllocator {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        free.insert(0, capacity);
        DeviceAllocator {
            capacity,
            free,
            live: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Total capacity, bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// The largest contiguous free region.
    pub fn largest_region(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// External fragmentation: 1 − largest_region / free (0 when empty or
    /// perfectly coalesced).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            0.0
        } else {
            1.0 - self.largest_region() as f64 / free as f64
        }
    }

    /// Allocates `bytes` (rounded up to the 256-byte alignment).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::OutOfDeviceMemory`] when no region fits.
    pub fn alloc(&mut self, bytes: u64) -> Result<DeviceBuffer, RuntimeError> {
        let want = bytes.max(1).div_ceil(ALIGN) * ALIGN;
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= want)
            .map(|(&off, &len)| (off, len));
        let Some((off, len)) = slot else {
            return Err(RuntimeError::OutOfDeviceMemory {
                requested: want,
                free: self.free_bytes(),
                largest_region: self.largest_region(),
            });
        };
        self.free.remove(&off);
        if len > want {
            self.free.insert(off + want, len - want);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (off, want));
        Ok(DeviceBuffer {
            id,
            offset: off,
            bytes: want,
        })
    }

    /// Frees an allocation, coalescing adjacent free regions.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidBuffer`] for double frees or foreign
    /// handles.
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), RuntimeError> {
        let Some((off, len)) = self.live.remove(&buf.id) else {
            return Err(RuntimeError::InvalidBuffer { id: buf.id });
        };
        // Coalesce with the predecessor.
        let mut off = off;
        let mut len = len;
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            if poff + plen == off {
                self.free.remove(&poff);
                off = poff;
                len += plen;
            }
        }
        // Coalesce with the successor.
        if let Some(&slen) = self.free.get(&(off + len)) {
            self.free.remove(&(off + len));
            len += slen;
        }
        self.free.insert(off, len);
        Ok(())
    }

    /// Live allocation count.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }
}

/// The host-side runtime: device allocator + PCIe transfer clock + task
/// queue statistics.
#[derive(Debug)]
pub struct Runtime<'a> {
    accel: &'a Accelerator,
    allocator: DeviceAllocator,
    /// Wall-clock accumulated by transfers and executions, ns.
    elapsed_ns: f64,
    /// Completed task count.
    completed: u64,
}

impl<'a> Runtime<'a> {
    /// Creates a runtime bound to an accelerator.
    pub fn new(accel: &'a Accelerator) -> Self {
        Runtime {
            accel,
            allocator: DeviceAllocator::new(accel.config().l3_bytes()),
            elapsed_ns: 0.0,
            completed: 0,
        }
    }

    /// The accelerator this runtime drives.
    pub fn accelerator(&self) -> &Accelerator {
        self.accel
    }

    /// The device allocator.
    pub fn allocator(&self) -> &DeviceAllocator {
        &self.allocator
    }

    /// Allocates device memory.
    ///
    /// # Errors
    ///
    /// As for [`DeviceAllocator::alloc`].
    pub fn malloc(&mut self, bytes: u64) -> Result<DeviceBuffer, RuntimeError> {
        self.allocator.alloc(bytes)
    }

    /// Frees device memory.
    ///
    /// # Errors
    ///
    /// As for [`DeviceAllocator::free`].
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), RuntimeError> {
        self.allocator.free(buf)
    }

    /// Uploads `bytes` into a buffer over PCIe; returns the transfer time
    /// in nanoseconds (also added to the runtime clock).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TransferOutOfBounds`] past the buffer's extent.
    pub fn upload(&mut self, buf: &DeviceBuffer, bytes: u64) -> Result<f64, RuntimeError> {
        if bytes > buf.bytes {
            return Err(RuntimeError::TransferOutOfBounds {
                requested: bytes,
                capacity: buf.bytes,
            });
        }
        let ns = bytes as f64 / PCIE_GB_PER_S;
        self.elapsed_ns += ns;
        Ok(ns)
    }

    /// Downloads `bytes` from a buffer over PCIe; returns the transfer
    /// time in nanoseconds.
    ///
    /// # Errors
    ///
    /// As for [`Runtime::upload`].
    pub fn download(&mut self, buf: &DeviceBuffer, bytes: u64) -> Result<f64, RuntimeError> {
        self.upload(buf, bytes)
    }

    /// Executes a compiled session as the next queued task, adding its
    /// latency to the runtime clock.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn submit(&mut self, session: &Session<'_>) -> Result<InferenceReport, DtuError> {
        let report = session.run()?;
        self.elapsed_ns += report.raw().latency_ns;
        self.completed += 1;
        Ok(report)
    }

    /// Wall-clock accumulated so far, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_ns
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionOptions;
    use dtu_graph::{Graph, Op, TensorType};

    #[test]
    fn alloc_free_roundtrip_and_alignment() {
        let mut a = DeviceAllocator::new(1 << 20);
        let b1 = a.alloc(100).unwrap();
        assert_eq!(b1.len(), 256); // aligned up
        assert_eq!(b1.offset() % ALIGN, 0);
        let b2 = a.alloc(1000).unwrap();
        assert_eq!(b2.offset(), 256);
        a.free(b1).unwrap();
        a.free(b2).unwrap();
        assert_eq!(a.free_bytes(), 1 << 20);
        assert_eq!(a.largest_region(), 1 << 20);
        assert_eq!(a.live_allocations(), 0);
    }

    #[test]
    fn coalescing_heals_fragmentation() {
        let mut a = DeviceAllocator::new(4096);
        let bufs: Vec<_> = (0..4).map(|_| a.alloc(1024).unwrap()).collect();
        assert_eq!(a.free_bytes(), 0);
        // Free alternating buffers: fragmented.
        a.free(bufs[0]).unwrap();
        a.free(bufs[2]).unwrap();
        assert!(a.fragmentation() > 0.0);
        assert_eq!(a.largest_region(), 1024);
        // Larger allocation cannot fit despite 2048 free.
        let err = a.alloc(2048).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::OutOfDeviceMemory {
                largest_region: 1024,
                ..
            }
        ));
        // Free the rest: fully coalesced.
        a.free(bufs[1]).unwrap();
        a.free(bufs[3]).unwrap();
        assert_eq!(a.fragmentation(), 0.0);
        a.alloc(4096).unwrap();
    }

    #[test]
    fn double_free_rejected() {
        let mut a = DeviceAllocator::new(4096);
        let b = a.alloc(128).unwrap();
        a.free(b).unwrap();
        assert!(matches!(a.free(b), Err(RuntimeError::InvalidBuffer { .. })));
    }

    #[test]
    fn oom_reports_largest_region() {
        let mut a = DeviceAllocator::new(1024);
        let _keep = a.alloc(1024).unwrap();
        match a.alloc(1) {
            Err(RuntimeError::OutOfDeviceMemory { free: 0, .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn pcie_transfer_times() {
        let accel = Accelerator::cloudblazer_i20();
        let mut rt = Runtime::new(&accel);
        let buf = rt.malloc(64 * 1024 * 1024).unwrap();
        // 64 MiB at 64 GB/s ≈ 1.05 ms.
        let ns = rt.upload(&buf, 64 * 1024 * 1024).unwrap();
        assert!((ns / 1e6 - 1.05).abs() < 0.05, "{ns}");
        assert!(rt.download(&buf, 1024).unwrap() > 0.0);
        assert!(matches!(
            rt.upload(&buf, u64::MAX),
            Err(RuntimeError::TransferOutOfBounds { .. })
        ));
    }

    #[test]
    fn submit_runs_sessions_and_tracks_wall_clock() {
        let accel = Accelerator::cloudblazer_i20();
        let mut g = Graph::new("t");
        let x = g.input("x", TensorType::fixed(&[1, 8, 16, 16]));
        let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        g.mark_output(c);
        let session = Session::compile(&accel, &g, SessionOptions::default()).unwrap();
        let mut rt = Runtime::new(&accel);
        let weights = rt.malloc(1024).unwrap();
        rt.upload(&weights, 1024).unwrap();
        let r1 = rt.submit(&session).unwrap();
        let r2 = rt.submit(&session).unwrap();
        assert_eq!(rt.completed(), 2);
        assert!(rt.elapsed_ns() >= r1.raw().latency_ns + r2.raw().latency_ns);
    }

    #[test]
    fn allocator_capacity_matches_device() {
        let accel = Accelerator::cloudblazer_i20();
        let rt = Runtime::new(&accel);
        assert_eq!(rt.allocator().capacity(), 16 * 1024 * 1024 * 1024);
    }
}
