//! Graceful degradation: retry transient faults, remap around dead
//! groups.
//!
//! The paper's resource-group virtualization (Fig. 7) is what makes
//! recovery *cheap*: a workload is just a placement over processing
//! groups, so when a group dies the runtime recompiles the same graph
//! onto the survivors and keeps serving at reduced capacity instead of
//! failing the card. This module implements that loop on top of the
//! `dtu-faults` session semantics:
//!
//! * **transient** faults (uncorrectable ECC, DMA timeout) are one-shot
//!   — the session consumes them, so a bounded retry proceeds;
//! * **permanent** faults (core failure) keep holding — the only way
//!   forward is a shrunken placement, which [`run_resilient`] builds by
//!   dropping the dead group and recompiling.
//!
//! [`run_resilient_with`] takes the compile step as a closure so the
//! `dtu-harness` compiled-session cache can serve the recompile (the
//! shrunken placement hashes to its own cache key, so a second failure
//! of the same group is a cache hit).

use crate::session::{InferenceReport, Session, SessionOptions};
use crate::{Accelerator, DtuError};
use dtu_compiler::Placement;
use dtu_faults::FaultSession;
use dtu_graph::Graph;
use dtu_sim::{GroupId, SimError};

/// Bounds on how hard recovery tries before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Transient-fault retries allowed per execution (the run is
    /// attempted at most `max_retries + 1` times between remaps).
    pub max_retries: u32,
    /// Group remaps allowed before the failure is surfaced.
    pub max_remaps: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            max_remaps: 16,
        }
    }
}

/// One resource-group remap performed during recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemapEvent {
    /// Cluster of the failed group.
    pub cluster: usize,
    /// Failed group within the cluster.
    pub group: usize,
    /// Simulated time of the failure, ns.
    pub at_ns: f64,
    /// Placement size before the remap.
    pub groups_before: usize,
    /// Placement size after the remap.
    pub groups_after: usize,
}

/// The outcome of a resilient execution: the successful report plus
/// everything recovery had to do to get it.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The report of the run that finally succeeded.
    pub report: InferenceReport,
    /// Transient-fault retries performed.
    pub retries: u32,
    /// Group remaps performed, in order.
    pub remaps: Vec<RemapEvent>,
    /// Fault events injected across every attempt (from the session).
    pub faults_injected: u64,
    /// Stall time injected across every attempt, ns.
    pub fault_stall_ns: f64,
}

impl ResilienceReport {
    /// Whether the run completed on a shrunken placement.
    pub fn degraded(&self) -> bool {
        !self.remaps.is_empty()
    }

    /// Groups the workload ended on (`None` when it never remapped).
    pub fn final_groups(&self) -> Option<usize> {
        self.remaps.last().map(|r| r.groups_after)
    }
}

/// Runs `graph` under fault injection with retry and remap-on-failure,
/// compiling through [`Session::compile`].
///
/// See [`run_resilient_with`] for the recovery loop; this convenience
/// wrapper recompiles from scratch on every remap.
///
/// # Errors
///
/// Compilation and non-fault simulation errors propagate unchanged. A
/// fault error surfaces once the policy's retry/remap budgets are
/// exhausted or no groups survive.
pub fn run_resilient(
    accel: &Accelerator,
    graph: &Graph,
    options: &SessionOptions,
    faults: &mut FaultSession,
    policy: &RecoveryPolicy,
) -> Result<ResilienceReport, DtuError> {
    run_resilient_with(accel, options, faults, policy, |opts| {
        Session::compile(accel, graph, opts.clone())
    })
}

/// The recovery loop with a caller-supplied compile step.
///
/// `compile` is invoked once for the initial placement and once per
/// remap, each time with `options.placement` set to the placement to
/// compile for — pass a closure over the `dtu-harness` session cache to
/// make recompiles content-hash cache hits.
///
/// The loop:
///
/// 1. run the compiled session under `faults`;
/// 2. on a **transient** fault, retry (the session consumed the event)
///    up to [`RecoveryPolicy::max_retries`] times between remaps;
/// 3. on a **permanent** fault, drop the dead group from the placement,
///    recompile on the survivors, reset the retry budget, and go to 1 —
///    at most [`RecoveryPolicy::max_remaps`] times;
/// 4. anything else propagates immediately.
///
/// # Errors
///
/// As for [`run_resilient`].
pub fn run_resilient_with<'a, F>(
    accel: &'a Accelerator,
    options: &SessionOptions,
    faults: &mut FaultSession,
    policy: &RecoveryPolicy,
    mut compile: F,
) -> Result<ResilienceReport, DtuError>
where
    F: FnMut(&SessionOptions) -> Result<Session<'a>, DtuError>,
{
    let (mut placement, _, _) = options.resolve(accel);
    let mut opts = options.clone();
    opts.placement = Some(placement.clone());
    let mut session = compile(&opts)?;

    let mut total_retries = 0u32;
    let mut retries_since_remap = 0u32;
    let mut remaps: Vec<RemapEvent> = Vec::new();
    loop {
        match session.run_faulted(faults) {
            Ok(report) => {
                return Ok(ResilienceReport {
                    report,
                    retries: total_retries,
                    remaps,
                    faults_injected: faults.injected(),
                    fault_stall_ns: faults.stall_ns(),
                });
            }
            Err(DtuError::Sim(SimError::Fault(e))) if e.is_permanent() => {
                if remaps.len() as u32 >= policy.max_remaps {
                    return Err(DtuError::Sim(SimError::Fault(e)));
                }
                let (fc, fg) = e.location();
                let survivors: Vec<GroupId> = placement
                    .groups()
                    .iter()
                    .copied()
                    .filter(|g| !(g.cluster == fc && g.group == fg))
                    .collect();
                if survivors.is_empty() {
                    return Err(DtuError::Sim(SimError::Fault(e)));
                }
                remaps.push(RemapEvent {
                    cluster: fc,
                    group: fg,
                    at_ns: e.at_ns(),
                    groups_before: placement.len(),
                    groups_after: survivors.len(),
                });
                placement = Placement::explicit(survivors);
                opts.placement = Some(placement.clone());
                session = compile(&opts)?;
                retries_since_remap = 0;
            }
            Err(DtuError::Sim(SimError::Fault(e))) => {
                retries_since_remap += 1;
                total_retries += 1;
                if retries_since_remap > policy.max_retries {
                    return Err(DtuError::Sim(SimError::Fault(e)));
                }
            }
            Err(other) => return Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
    use dtu_graph::{Op, TensorType};

    fn toy() -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[1, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(r);
        g
    }

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan {
            seed: 0,
            name: String::new(),
            events,
        }
    }

    #[test]
    fn no_faults_is_a_plain_run() {
        let accel = Accelerator::cloudblazer_i20();
        let mut fs = FaultSession::new(&FaultPlan::empty(), 2, 3);
        let r = run_resilient(
            &accel,
            &toy(),
            &SessionOptions::default(),
            &mut fs,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.retries, 0);
        assert!(!r.degraded());
        let plain = Session::compile(&accel, &toy(), SessionOptions::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.report, plain, "recovery wrapper must be invisible");
    }

    #[test]
    fn core_failure_remaps_to_survivors() {
        let accel = Accelerator::cloudblazer_i20();
        let mut fs = FaultSession::new(
            &plan(vec![FaultEvent {
                at_ns: 0.0,
                cluster: 0,
                group: 1,
                kind: FaultKind::CoreFailure,
            }]),
            2,
            3,
        );
        let r = run_resilient(
            &accel,
            &toy(),
            &SessionOptions::default(),
            &mut fs,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(r.degraded());
        assert_eq!(r.remaps.len(), 1);
        assert_eq!((r.remaps[0].cluster, r.remaps[0].group), (0, 1));
        assert_eq!(r.final_groups(), Some(5), "6 groups shrink to 5");
        assert!(r.report.latency_ms() > 0.0);
    }

    #[test]
    fn transient_fault_is_retried() {
        let accel = Accelerator::cloudblazer_i20();
        let mut fs = FaultSession::new(
            &plan(vec![FaultEvent {
                at_ns: 1.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::EccError { correctable: false },
            }]),
            2,
            3,
        );
        let r = run_resilient(
            &accel,
            &toy(),
            &SessionOptions::default(),
            &mut fs,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.retries, 1);
        assert!(!r.degraded());
        assert_eq!(r.faults_injected, 1);
    }

    #[test]
    fn retry_budget_is_enforced() {
        let accel = Accelerator::cloudblazer_i20();
        // Two transient faults but a budget of zero retries.
        let mut fs = FaultSession::new(
            &plan(vec![FaultEvent {
                at_ns: 1.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::EccError { correctable: false },
            }]),
            2,
            3,
        );
        let err = run_resilient(
            &accel,
            &toy(),
            &SessionOptions::default(),
            &mut fs,
            &RecoveryPolicy {
                max_retries: 0,
                max_remaps: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, DtuError::Sim(SimError::Fault(_))));
    }

    #[test]
    fn all_groups_dead_surfaces_the_failure() {
        let accel = Accelerator::cloudblazer_i20();
        let cfg = accel.config();
        let events: Vec<FaultEvent> = (0..cfg.clusters)
            .flat_map(|c| {
                (0..cfg.groups_per_cluster).map(move |g| FaultEvent {
                    at_ns: 0.0,
                    cluster: c,
                    group: g,
                    kind: FaultKind::CoreFailure,
                })
            })
            .collect();
        let mut fs = FaultSession::new(&plan(events), cfg.clusters, cfg.groups_per_cluster);
        let err = run_resilient(
            &accel,
            &toy(),
            &SessionOptions::default(),
            &mut fs,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        match err {
            DtuError::Sim(SimError::Fault(e)) => assert!(e.is_permanent()),
            other => panic!("expected fault, got {other:?}"),
        }
    }
}
