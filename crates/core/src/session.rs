//! Sessions: compiled models bound to an accelerator.

use crate::{Accelerator, DtuError};
use dtu_compiler::{compile, compile_recorded, CompilerConfig, Mode, Placement};
use dtu_graph::Graph;
use dtu_sim::{Program, RunReport};
use dtu_telemetry::{Layer, Recorder, Span, SpanKind};
use std::fmt;

/// How much of the chip a session claims (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadSize {
    /// One processing group.
    Small,
    /// Two processing groups of one cluster.
    Medium,
    /// One full cluster (three groups).
    Large,
    /// Every group on the chip — the lowest-latency deployment.
    #[default]
    FullChip,
}

impl WorkloadSize {
    fn placement(self, accel: &Accelerator, cluster: usize) -> Placement {
        let cfg = accel.config();
        match self {
            WorkloadSize::Small => Placement::cluster_groups(cluster, 1, cfg),
            WorkloadSize::Medium => Placement::cluster_groups(cluster, 2, cfg),
            WorkloadSize::Large => Placement::cluster_groups(cluster, cfg.groups_per_cluster, cfg),
            WorkloadSize::FullChip => Placement::full_chip(cfg),
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Resource claim.
    pub size: WorkloadSize,
    /// Cluster for sub-chip placements.
    pub cluster: usize,
    /// Batch the session serves (informational; build the graph at this
    /// batch). Batches > 1 compile in throughput mode: groups run
    /// replicas and weights broadcast.
    pub batch: usize,
    /// Explicit placement override (wins over `size`).
    pub placement: Option<Placement>,
    /// Compiler-config override (defaults derive from the chip).
    pub compiler: Option<CompilerConfig>,
}

impl SessionOptions {
    /// Options for a throughput-oriented batched deployment.
    pub fn batched(batch: usize) -> Self {
        SessionOptions {
            batch,
            ..Default::default()
        }
    }

    /// Resolves the options against an accelerator into the concrete
    /// `(placement, compiler config, batch)` triple that
    /// [`Session::compile`] would compile with.
    ///
    /// This is the single source of truth for option resolution: the
    /// session builder calls it, and so does the `dtu-harness` cache,
    /// which needs the resolved triple *before* compiling to form a
    /// content-hash cache key that matches what compilation would
    /// actually use.
    pub fn resolve(&self, accel: &Accelerator) -> (Placement, CompilerConfig, usize) {
        let chip_cfg = accel.config();
        let placement = self
            .placement
            .clone()
            .unwrap_or_else(|| self.size.placement(accel, self.cluster));
        let mut compiler = self
            .compiler
            .clone()
            .unwrap_or_else(|| CompilerConfig::for_chip(chip_cfg));
        let batch = self.batch.max(1);
        if batch > 1 {
            compiler.mode = Mode::ThroughputBatched;
        }
        (placement, compiler, batch)
    }
}

/// The outcome of one inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    report: RunReport,
    batch: usize,
}

impl InferenceReport {
    /// End-to-end latency, milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.report.latency_ms()
    }

    /// Energy consumed, joules.
    pub fn energy_joules(&self) -> f64 {
        self.report.energy_joules()
    }

    /// Average board power, watts.
    pub fn average_watts(&self) -> f64 {
        self.report.average_watts()
    }

    /// Throughput in samples per second.
    pub fn throughput(&self) -> f64 {
        self.batch as f64 / (self.latency_ms() / 1e3)
    }

    /// Samples per joule (the measured energy-efficiency metric used by
    /// the power-management experiment).
    pub fn samples_per_joule(&self) -> f64 {
        self.batch as f64 / self.energy_joules()
    }

    /// Mean core frequency over the run, MHz.
    pub fn mean_freq_mhz(&self) -> f64 {
        self.report.mean_freq_mhz
    }

    /// The full simulator report (counters, energy breakdown).
    pub fn raw(&self) -> &RunReport {
        &self.report
    }
}

impl fmt::Display for InferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms, {:.1} W, {:.1} samples/s",
            self.latency_ms(),
            self.average_watts(),
            self.throughput()
        )
    }
}

/// A compiled model bound to an accelerator.
#[derive(Debug)]
pub struct Session<'a> {
    accel: &'a Accelerator,
    program: Program,
    batch: usize,
}

impl<'a> Session<'a> {
    /// Compiles a graph for the accelerator.
    ///
    /// # Errors
    ///
    /// Compilation failures (bad placement, model too large, dynamic
    /// shapes left unbound) surface as [`DtuError::Compile`].
    pub fn compile(
        accel: &'a Accelerator,
        graph: &Graph,
        options: SessionOptions,
    ) -> Result<Self, DtuError> {
        Self::build(accel, graph, options, None)
    }

    /// Compiles a graph while recording per-phase compiler spans into a
    /// telemetry [`Recorder`].
    ///
    /// # Errors
    ///
    /// As for [`Session::compile`].
    pub fn compile_recorded(
        accel: &'a Accelerator,
        graph: &Graph,
        options: SessionOptions,
        rec: &mut dyn Recorder,
    ) -> Result<Self, DtuError> {
        Self::build(accel, graph, options, Some(rec))
    }

    fn build(
        accel: &'a Accelerator,
        graph: &Graph,
        options: SessionOptions,
        rec: Option<&mut dyn Recorder>,
    ) -> Result<Self, DtuError> {
        let chip_cfg = accel.config();
        let (placement, compiler, batch) = options.resolve(accel);
        let program = match rec {
            Some(rec) => compile_recorded(graph, chip_cfg, &placement, &compiler, rec)?,
            None => compile(graph, chip_cfg, &placement, &compiler)?,
        };
        Ok(Session {
            accel,
            program,
            batch,
        })
    }

    /// Wraps an already-compiled program in a runnable session without
    /// invoking the compiler — the cache-hit path of the `dtu-harness`
    /// compiled-session cache. The caller is responsible for the
    /// program having been compiled for this accelerator's
    /// configuration (the cache guarantees it via its content-hash
    /// key).
    pub fn from_program(accel: &'a Accelerator, program: Program, batch: usize) -> Self {
        Session {
            accel,
            program,
            batch: batch.max(1),
        }
    }

    /// Runs the compiled program once.
    ///
    /// # Errors
    ///
    /// Scheduler failures (deadlock, illegal DMA) surface as
    /// [`DtuError::Sim`].
    pub fn run(&self) -> Result<InferenceReport, DtuError> {
        let report = self.accel.chip().run(&self.program)?;
        Ok(InferenceReport {
            report,
            batch: self.batch,
        })
    }

    /// Runs the compiled program through an explicit timing backend —
    /// [`dtu_sim::InterpretedBackend`] matches [`Session::run`]
    /// byte-for-byte; [`dtu_sim::AnalyticBackend`] prices the program
    /// from calibrated coefficients instead of interpreting it.
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_with(
        &self,
        backend: &dyn dtu_sim::TimingBackend,
    ) -> Result<InferenceReport, DtuError> {
        let report = backend.run(self.accel.chip(), &self.program)?;
        Ok(InferenceReport {
            report,
            batch: self.batch,
        })
    }

    /// Runs the compiled program with the profiler attached, returning
    /// the report plus the per-command timeline (the Fig. 11 profiler).
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_traced(&self) -> Result<(InferenceReport, dtu_sim::Timeline), DtuError> {
        let (report, timeline) = self.accel.chip().run_traced(&self.program)?;
        Ok((
            InferenceReport {
                report,
                batch: self.batch,
            },
            timeline,
        ))
    }

    /// Runs the compiled program with a telemetry [`Recorder`]
    /// attached: the simulator's kernel/DMA/sync spans stream into
    /// `rec`, and the session wraps them in one `Layer::Session` span
    /// covering the whole execution.
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_recorded(&self, rec: &mut dyn Recorder) -> Result<InferenceReport, DtuError> {
        let report = self.accel.chip().run_recorded(&self.program, rec)?;
        if rec.enabled() {
            rec.record(Span::new(
                SpanKind::Session,
                Layer::Session,
                0,
                self.program.name.clone(),
                0.0,
                report.latency_ns,
            ));
        }
        Ok(InferenceReport {
            report,
            batch: self.batch,
        })
    }

    /// Runs the compiled program under a fault-injection session (see
    /// `dtu-faults`). The session carries fired-event state across
    /// runs, so [`crate::run_resilient`] can retry or remap past
    /// transient faults while permanent failures keep holding. A
    /// session over an empty plan is byte-identical to [`Session::run`].
    ///
    /// # Errors
    ///
    /// As for [`Session::run`], plus `DtuError::Sim(SimError::Fault)`
    /// when an injected fault aborts the run.
    pub fn run_faulted(
        &self,
        faults: &mut dtu_faults::FaultSession,
    ) -> Result<InferenceReport, DtuError> {
        let report = self.accel.chip().run_faulted(&self.program, faults)?;
        Ok(InferenceReport {
            report,
            batch: self.batch,
        })
    }

    /// [`Session::run_faulted`] with a telemetry [`Recorder`] attached;
    /// injected faults appear as `SpanKind::Fault` spans in the trace.
    ///
    /// # Errors
    ///
    /// As for [`Session::run_faulted`].
    pub fn run_faulted_recorded(
        &self,
        faults: &mut dtu_faults::FaultSession,
        rec: &mut dyn Recorder,
    ) -> Result<InferenceReport, DtuError> {
        let report = self
            .accel
            .chip()
            .run_faulted_recorded(&self.program, faults, rec)?;
        if rec.enabled() {
            rec.record(Span::new(
                SpanKind::Session,
                Layer::Session,
                0,
                self.program.name.clone(),
                0.0,
                report.latency_ns,
            ));
        }
        Ok(InferenceReport {
            report,
            batch: self.batch,
        })
    }

    /// The accelerator the session is bound to.
    pub fn accelerator(&self) -> &'a Accelerator {
        self.accel
    }

    /// The batch the session serves.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The compiled program (inspection / custom scheduling).
    pub fn program(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn toy(batch: usize) -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[batch, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(r);
        g
    }

    #[test]
    fn compile_and_run_full_chip() {
        let accel = Accelerator::cloudblazer_i20();
        let s = Session::compile(&accel, &toy(1), SessionOptions::default()).unwrap();
        let r = s.run().unwrap();
        assert!(r.latency_ms() > 0.0);
        assert!(r.energy_joules() > 0.0);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn workload_sizes_scale_latency() {
        let accel = Accelerator::cloudblazer_i20();
        let mut latencies = Vec::new();
        for size in [
            WorkloadSize::Small,
            WorkloadSize::Medium,
            WorkloadSize::Large,
        ] {
            let s = Session::compile(
                &accel,
                &toy(1),
                SessionOptions {
                    size,
                    ..Default::default()
                },
            )
            .unwrap();
            latencies.push(s.run().unwrap().latency_ms());
        }
        // More groups, less latency (monotone non-increasing).
        assert!(latencies[0] >= latencies[1]);
        assert!(latencies[1] >= latencies[2]);
    }

    #[test]
    fn batched_session_reports_throughput() {
        let accel = Accelerator::cloudblazer_i20();
        let s = Session::compile(&accel, &toy(8), SessionOptions::batched(8)).unwrap();
        let r = s.run().unwrap();
        assert!(r.throughput() > 0.0);
        assert!(r.samples_per_joule() > 0.0);
        // Program used throughput mode with overlapped weight staging.
        assert!(s.program().total_commands() > 0);
    }

    #[test]
    fn explicit_placement_override() {
        let accel = Accelerator::cloudblazer_i20();
        let p = Placement::cluster_groups(1, 1, accel.config());
        let s = Session::compile(
            &accel,
            &toy(1),
            SessionOptions {
                placement: Some(p),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s.program().streams.len(), 1);
        assert_eq!(s.program().streams[0].group.cluster, 1);
    }

    #[test]
    fn i10_runs_same_model() {
        let accel = Accelerator::cloudblazer_i10();
        let s = Session::compile(&accel, &toy(1), SessionOptions::default()).unwrap();
        let r = s.run().unwrap();
        assert!(r.latency_ms() > 0.0);
    }

    #[test]
    fn recorded_run_spans_three_layers_on_one_clock() {
        use dtu_telemetry::TraceBuffer;
        let accel = Accelerator::cloudblazer_i20();
        let mut buf = TraceBuffer::new();
        let s = Session::compile_recorded(&accel, &toy(1), SessionOptions::default(), &mut buf)
            .unwrap();
        let r = s.run_recorded(&mut buf).unwrap();
        let layers: std::collections::BTreeSet<Layer> =
            buf.spans().iter().map(|sp| sp.layer).collect();
        assert!(layers.contains(&Layer::Compiler));
        assert!(layers.contains(&Layer::Session));
        assert!(layers.contains(&Layer::Sim));
        // The session span covers every sim span.
        let session = buf
            .spans()
            .iter()
            .find(|sp| sp.layer == Layer::Session)
            .unwrap();
        assert_eq!(session.start_ns, 0.0);
        assert_eq!(session.end_ns, r.raw().latency_ns);
        for sp in buf.spans().iter().filter(|sp| sp.layer == Layer::Sim) {
            assert!(sp.end_ns <= session.end_ns + 1.0);
        }
        // Recording must not perturb the simulation.
        let plain = s.run().unwrap();
        assert_eq!(plain.latency_ms(), r.latency_ms());
    }

    #[test]
    fn report_display() {
        let accel = Accelerator::cloudblazer_i20();
        let s = Session::compile(&accel, &toy(1), SessionOptions::default()).unwrap();
        let r = s.run().unwrap();
        assert!(r.to_string().contains("ms"));
    }
}
