//! Public facade of the Cloudblazer i20 / DTU 2.0 reproduction.
//!
//! This crate ties the substrates together into the workflow a user of
//! the real product would follow (§V-B): build or import a DNN graph,
//! compile it with TopsInference/TopsEngine (fusion, tiling, placement),
//! and run it on the accelerator, getting latency/energy/counter reports
//! back.
//!
//! # Quickstart
//!
//! ```
//! use dtu::{Accelerator, Session, SessionOptions};
//! use dtu_graph::{Graph, Op, TensorType};
//!
//! // A tiny model: conv -> relu.
//! let mut g = Graph::new("demo");
//! let x = g.input("x", TensorType::fixed(&[1, 3, 32, 32]));
//! let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x])?;
//! let r = g.add_node(Op::Relu, vec![c])?;
//! g.mark_output(r);
//!
//! let accel = Accelerator::cloudblazer_i20();
//! let session = Session::compile(&accel, &g, SessionOptions::default())?;
//! let report = session.run()?;
//! assert!(report.latency_ms() > 0.0);
//! # Ok::<(), dtu::DtuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod error;
mod recovery;
mod runtime;
mod serving;
mod session;

pub use accelerator::Accelerator;
pub use error::DtuError;
pub use recovery::{
    run_resilient, run_resilient_with, RecoveryPolicy, RemapEvent, ResilienceReport,
};
pub use runtime::{DeviceAllocator, DeviceBuffer, Runtime, RuntimeError};
pub use serving::{simulate_serving, ServingConfig, ServingReport};
pub use session::{InferenceReport, Session, SessionOptions, WorkloadSize};

// Re-export the pieces users need to build models and interpret reports.
pub use dtu_compiler::{CompilerConfig, Placement};
/// Deterministic fault injection: plans, sessions, and typed fault
/// errors (the schedule side of [`run_resilient`]).
pub use dtu_faults as faults;
pub use dtu_graph::{Graph, GraphError, Op, TensorType};
pub use dtu_isa::DataType;
/// The event-driven serving layer (dynamic batching, SLA admission,
/// elastic scaling); [`simulate_serving`] is its closed-form facade.
pub use dtu_serve as serve;
pub use dtu_sim::{
    AnalyticBackend, AnalyticTiming, ChipConfig, FeatureSet, InterpretedBackend, RunReport,
    Timeline, TimingBackend, TraceKind, CALIBRATION_VERSION,
};
/// The unified observability layer: spans, the counter registry, trace
/// export, and per-operator bottleneck attribution.
pub use dtu_telemetry as telemetry;
