//! The harness error type.

use std::error::Error;
use std::fmt;

/// Errors from planning or executing experiments.
///
/// `Clone` because one failure fans out to every transitively
/// dependent point's result slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// An experiment job returned an error.
    Job {
        /// Label of the failing point.
        label: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// A point was skipped because a dependency failed.
    DependencyFailed {
        /// Label of the failed dependency.
        dep: String,
    },
    /// The plan or a request to it was malformed.
    Config(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Job { label, message } => write!(f, "point `{label}` failed: {message}"),
            HarnessError::DependencyFailed { dep } => {
                write!(f, "skipped: dependency `{dep}` failed")
            }
            HarnessError::Config(why) => write!(f, "plan configuration error: {why}"),
        }
    }
}

impl Error for HarnessError {}
