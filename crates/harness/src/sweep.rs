//! The model × batch sweep runner behind `topsexec sweep`.
//!
//! A sweep evaluates every (model, batch) point of a grid through the
//! [`ExperimentPlan`] pool and the [`SessionCache`], then reports
//! per-point latency/throughput plus the sweep's own cache delta. The
//! report renders two ways:
//!
//! * [`SweepReport::to_json`] — the full machine-readable report.
//!   Deliberately free of wall-clock times, worker counts, and any
//!   other schedule-dependent quantity, so two runs of the same grid
//!   at the same cache temperature are **byte-identical** whatever
//!   `--jobs` was.
//! * [`SweepReport::points_json`] — just the numerical results (no
//!   cache provenance), identical even *across* cache temperatures;
//!   this is what the determinism tests compare between cold and warm
//!   runs.

use crate::calibrate::{price_key, CalibrationCache, PricePoint};
use crate::{CacheStats, ExperimentPlan, HarnessError, SessionCache};
use dtu::{Accelerator, AnalyticBackend, SessionOptions};
use dtu_compiler::{session_fingerprint, Fnv1a};
use dtu_graph::Graph;
use dtu_telemetry::json::{array, number, JsonObject};

/// One model of the sweep grid: a name plus a batch → graph builder.
pub struct SweepModel<'m> {
    name: String,
    build: Box<dyn Fn(usize) -> Graph + Send + Sync + 'm>,
}

impl std::fmt::Debug for SweepModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepModel")
            .field("name", &self.name)
            .finish()
    }
}

impl<'m> SweepModel<'m> {
    /// A grid model whose graph is rebuilt per batch size.
    pub fn new(name: impl Into<String>, build: impl Fn(usize) -> Graph + Send + Sync + 'm) -> Self {
        SweepModel {
            name: name.into(),
            build: Box::new(build),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the model's graph at `batch`.
    pub fn build(&self, batch: usize) -> Graph {
        (self.build)(batch)
    }
}

/// The measured result of one (model, batch) grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// End-to-end latency of one batch, ms.
    pub latency_ms: f64,
    /// Samples per second at this batch.
    pub throughput_sps: f64,
    /// Energy per batch, joules.
    pub energy_j: f64,
    /// Where the compiled session came from (`memory`/`disk`/`miss`).
    pub cache: &'static str,
}

/// The outcome of a sweep: points in grid order plus the cache delta.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Model names, in grid order.
    pub models: Vec<String>,
    /// Batch sizes, in grid order.
    pub batches: Vec<usize>,
    /// One point per (model, batch), models-major.
    pub points: Vec<SweepPoint>,
    /// Cache hits/misses attributable to this sweep alone.
    pub cache: CacheStats,
}

impl SweepReport {
    /// The full deterministic JSON report (schedule-independent: no
    /// wall-clock, no worker count).
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(|p| point_json(p, true)).collect();
        JsonObject::new()
            .raw(
                "grid",
                &JsonObject::new()
                    .raw(
                        "models",
                        &array(
                            &self
                                .models
                                .iter()
                                .map(|m| format!("\"{}\"", dtu_telemetry::json::escape(m)))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .raw(
                        "batches",
                        &array(
                            &self
                                .batches
                                .iter()
                                .map(|b| b.to_string())
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .build(),
            )
            .raw("points", &array(&points))
            .raw(
                "cache",
                &JsonObject::new()
                    .int("memory_hits", self.cache.memory_hits as i64)
                    .int("disk_hits", self.cache.disk_hits as i64)
                    .int("misses", self.cache.misses as i64)
                    .num("hit_rate", self.cache.hit_rate())
                    .build(),
            )
            .build()
    }

    /// Only the numerical results (no cache provenance): identical
    /// across cache temperatures as well as job counts.
    pub fn points_json(&self) -> String {
        array(
            &self
                .points
                .iter()
                .map(|p| point_json(p, false))
                .collect::<Vec<_>>(),
        )
    }

    /// A human-readable fixed-width table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>12} {:>14} {:>10} {:>7}",
            "model", "batch", "latency(ms)", "thruput(s/s)", "energy(J)", "cache"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<14} {:>5} {:>12.3} {:>14.1} {:>10.4} {:>7}",
                p.model, p.batch, p.latency_ms, p.throughput_sps, p.energy_j, p.cache
            );
        }
        let _ = writeln!(
            out,
            "cache: {} memory + {} disk hits, {} misses ({:.0}% hit rate)",
            self.cache.memory_hits,
            self.cache.disk_hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        );
        out
    }
}

fn point_json(p: &SweepPoint, with_cache: bool) -> String {
    let obj = JsonObject::new()
        .string("model", &p.model)
        .int("batch", p.batch as i64)
        .raw("latency_ms", &number(p.latency_ms))
        .raw("throughput_sps", &number(p.throughput_sps))
        .raw("energy_j", &number(p.energy_j));
    if with_cache {
        obj.string("cache", p.cache).build()
    } else {
        obj.build()
    }
}

/// Runs a model × batch grid (models-major order) on `jobs` workers,
/// compiling every session through `cache`.
///
/// # Errors
///
/// The first failing point's [`HarnessError`] (grid order), so a bad
/// model name or an uncompilable batch fails the sweep loudly rather
/// than dropping rows silently.
pub fn run_sweep(
    accel: &Accelerator,
    models: &[SweepModel<'_>],
    batches: &[usize],
    cache: &SessionCache,
    jobs: usize,
) -> Result<SweepReport, HarnessError> {
    if models.is_empty() || batches.is_empty() {
        return Err(HarnessError::Config(
            "sweep needs at least one model and one batch".into(),
        ));
    }
    let stats_before = cache.stats();
    let mut plan: ExperimentPlan<'_, SweepPoint> = ExperimentPlan::new();
    for model in models {
        for &batch in batches {
            let mut key = Fnv1a::new();
            key.write_str("sweep/");
            key.write_str(model.name());
            key.write_u64(batch as u64);
            let label = format!("{} b{batch}", model.name());
            plan.add_point(key.finish(), label, &[], move |_| {
                let graph = (model.build)(batch.max(1));
                let options = SessionOptions::batched(batch.max(1));
                let (session, outcome) = cache.compile_session(accel, &graph, &options)?;
                let report = session.run()?;
                Ok(SweepPoint {
                    model: model.name().to_string(),
                    batch: batch.max(1),
                    latency_ms: report.latency_ms(),
                    throughput_sps: report.throughput(),
                    energy_j: report.energy_joules(),
                    cache: outcome.label(),
                })
            });
        }
    }
    let mut points = Vec::with_capacity(plan.len());
    for result in plan.run(jobs) {
        points.push(result?);
    }
    Ok(SweepReport {
        models: models.iter().map(|m| m.name().to_string()).collect(),
        batches: batches.to_vec(),
        points,
        cache: cache.stats().delta_since(stats_before),
    })
}

/// Runs the same model × batch grid as [`run_sweep`] but prices every
/// point through the calibrated analytic timing backend instead of the
/// interpreter.
///
/// The calibration comes from `cal` (probed at most once per distinct
/// chip config, then recalled from memory or disk), and each point's
/// (latency, energy) pair is memoized in `cal`'s price tier keyed by
/// (session fingerprint ⊕ calibration key) — so a warm analytic sweep
/// skips compilation *and* the timing walk entirely. Reports keep the
/// determinism contract of [`run_sweep`]: [`SweepReport::points_json`]
/// is byte-identical across `--jobs` and cache temperature (prices
/// round-trip f64-exactly through their JSON artifacts).
///
/// The report's `cache` field accounts the *price* tier, and each
/// point's `cache` label says where its price came from.
///
/// # Errors
///
/// Exactly as [`run_sweep`], plus calibration failures as
/// [`HarnessError::Job`].
pub fn run_sweep_analytic(
    accel: &Accelerator,
    models: &[SweepModel<'_>],
    batches: &[usize],
    cache: &SessionCache,
    cal: &CalibrationCache,
    jobs: usize,
) -> Result<SweepReport, HarnessError> {
    if models.is_empty() || batches.is_empty() {
        return Err(HarnessError::Config(
            "sweep needs at least one model and one batch".into(),
        ));
    }
    let (timing, _) = cal.timing_for(accel.config())?;
    let cal_key = cal.calibration_key(accel.config());
    let backend = AnalyticBackend::new(timing);
    let backend = &backend;
    let price_stats_before = cal.price_stats();
    let mut plan: ExperimentPlan<'_, SweepPoint> = ExperimentPlan::new();
    for model in models {
        for &batch in batches {
            let mut key = Fnv1a::new();
            key.write_str("sweep-analytic/");
            key.write_str(model.name());
            key.write_u64(batch as u64);
            let label = format!("{} b{batch}", model.name());
            plan.add_point(key.finish(), label, &[], move |_| {
                let batch = batch.max(1);
                let graph = (model.build)(batch);
                let options = SessionOptions::batched(batch);
                let (placement, compiler, batch) = options.resolve(accel);
                let session_key =
                    session_fingerprint(&graph, accel.config(), &placement, &compiler, batch);
                let pkey = price_key(session_key, cal_key);
                let (price, outcome) = match cal.price_lookup(pkey) {
                    Some((price, outcome)) => (price, outcome),
                    None => {
                        let (session, _) = cache.compile_session(accel, &graph, &options)?;
                        let report = session.run_with(backend)?;
                        let price = PricePoint {
                            latency_ms: report.latency_ms(),
                            energy_j: report.energy_joules(),
                        };
                        cal.price_store(pkey, price);
                        (price, crate::CacheOutcome::Miss)
                    }
                };
                Ok(SweepPoint {
                    model: model.name().to_string(),
                    batch,
                    latency_ms: price.latency_ms,
                    // Exactly InferenceReport::throughput's formula, so
                    // cached and freshly walked points agree bitwise.
                    throughput_sps: batch as f64 / (price.latency_ms / 1e3),
                    energy_j: price.energy_j,
                    cache: outcome.label(),
                })
            });
        }
    }
    let mut points = Vec::with_capacity(plan.len());
    for result in plan.run(jobs) {
        points.push(result?);
    }
    Ok(SweepReport {
        models: models.iter().map(|m| m.name().to_string()).collect(),
        batches: batches.to_vec(),
        points,
        cache: cal.price_stats().delta_since(price_stats_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn toy_model(name: &str) -> SweepModel<'static> {
        let scale = name.len();
        SweepModel::new(name.to_string(), move |batch| {
            let mut g = Graph::new("toy");
            let x = g.input("x", TensorType::fixed(&[batch, 8 * scale.max(1), 16, 16]));
            let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
            g.mark_output(c);
            g
        })
    }

    #[test]
    fn sweep_reports_every_grid_point_in_order() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model("aa"), toy_model("bbb")];
        let report = run_sweep(&accel, &models, &[1, 2], &cache, 2).unwrap();
        let labels: Vec<(String, usize)> = report
            .points
            .iter()
            .map(|p| (p.model.clone(), p.batch))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("aa".into(), 1),
                ("aa".into(), 2),
                ("bbb".into(), 1),
                ("bbb".into(), 2)
            ]
        );
        assert_eq!(report.cache.misses, 4);
        assert!(report.points.iter().all(|p| p.latency_ms > 0.0));
    }

    #[test]
    fn report_json_is_schedule_independent() {
        let accel = Accelerator::cloudblazer_i20();
        let models = [toy_model("aa"), toy_model("bbb")];
        let cache1 = SessionCache::memory_only();
        let r1 = run_sweep(&accel, &models, &[1, 2, 4], &cache1, 1).unwrap();
        let cache8 = SessionCache::memory_only();
        let r8 = run_sweep(&accel, &models, &[1, 2, 4], &cache8, 8).unwrap();
        assert_eq!(r1.to_json(), r8.to_json());
        assert_eq!(r1.points_json(), r8.points_json());
        assert!(r1.to_json().contains("\"cache\""));
        assert!(!r1.points_json().contains("miss"));
    }

    #[test]
    fn warm_sweep_hits_everything() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model("aa")];
        let cold = run_sweep(&accel, &models, &[1, 2], &cache, 2).unwrap();
        let warm = run_sweep(&accel, &models, &[1, 2], &cache, 2).unwrap();
        assert_eq!(cold.cache.misses, 2);
        assert_eq!(warm.cache.memory_hits, 2);
        assert_eq!(warm.cache.hit_rate(), 1.0);
        // Numerical results identical whatever the cache did.
        assert_eq!(cold.points_json(), warm.points_json());
    }

    #[test]
    fn empty_grid_is_a_config_error() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        assert!(run_sweep(&accel, &[], &[1], &cache, 1).is_err());
        let models = [toy_model("aa")];
        assert!(run_sweep(&accel, &models, &[], &cache, 1).is_err());
        let cal = CalibrationCache::memory_only();
        assert!(run_sweep_analytic(&accel, &[], &[1], &cache, &cal, 1).is_err());
    }

    #[test]
    fn analytic_sweep_tracks_the_interpreter_within_rtol() {
        let accel = Accelerator::cloudblazer_i20();
        let models = [toy_model("aa"), toy_model("bbb")];
        let cache = SessionCache::memory_only();
        let cal = CalibrationCache::memory_only();
        let interp = run_sweep(&accel, &models, &[1, 4], &cache, 2).unwrap();
        let fast = run_sweep_analytic(&accel, &models, &[1, 4], &cache, &cal, 2).unwrap();
        for (a, b) in interp.points.iter().zip(&fast.points) {
            assert_eq!((a.model.as_str(), a.batch), (b.model.as_str(), b.batch));
            let rtol = ((a.latency_ms - b.latency_ms) / a.latency_ms).abs();
            assert!(
                rtol <= 0.05,
                "{} b{}: interpreted {} ms vs analytic {} ms (rtol {rtol})",
                a.model,
                a.batch,
                a.latency_ms,
                b.latency_ms
            );
        }
    }

    #[test]
    fn warm_analytic_sweep_skips_compile_and_walk() {
        let accel = Accelerator::cloudblazer_i20();
        let models = [toy_model("aa")];
        let cache = SessionCache::memory_only();
        let cal = CalibrationCache::memory_only();
        let cold = run_sweep_analytic(&accel, &models, &[1, 2], &cache, &cal, 2).unwrap();
        let sessions_after_cold = cache.stats();
        let warm = run_sweep_analytic(&accel, &models, &[1, 2], &cache, &cal, 2).unwrap();
        assert_eq!(cold.cache.misses, 2);
        assert_eq!(warm.cache.memory_hits, 2);
        assert_eq!(warm.cache.hit_rate(), 1.0);
        // The warm run never even consulted the session cache.
        assert_eq!(cache.stats(), sessions_after_cold);
        // Prices replay bitwise: the numbers are identical.
        assert_eq!(cold.points_json(), warm.points_json());
    }

    #[test]
    fn analytic_sweep_is_byte_identical_across_jobs_and_temperature() {
        let dir =
            std::env::temp_dir().join(format!("dtu-sweep-analytic-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let accel = Accelerator::cloudblazer_i20();
        let models = [toy_model("aa"), toy_model("bbb")];
        let cal = CalibrationCache::with_disk(&dir);
        let cache1 = SessionCache::memory_only();
        let r1 = run_sweep_analytic(&accel, &models, &[1, 2], &cache1, &cal, 1).unwrap();
        // Fresh memory, warm disk: prices come back from artifacts.
        cal.clear_memory();
        let cache8 = SessionCache::memory_only();
        let r8 = run_sweep_analytic(&accel, &models, &[1, 2], &cache8, &cal, 8).unwrap();
        assert_eq!(r1.points_json(), r8.points_json());
        assert_eq!(r8.cache.disk_hits, 4, "disk tier served every price");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
