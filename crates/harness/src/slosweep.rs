//! The model × fault-plan × severity SLO-grading sweep behind
//! `topsexec slo`.
//!
//! Where [`crate::run_fault_sweep`] grades fault presets by *latency
//! degradation* of a single session, this sweep grades them by the
//! damage they do to a *serving objective*: each grid point runs a
//! calibrated single-tenant serving scenario under a preset
//! [`FaultPlan`] with a [`LiveMonitor`] riding along, and reports how
//! much of the SLO's error budget the preset burned, and whether the
//! multi-window burn-rate alert paged.
//!
//! The scenario is self-calibrating so one set of knobs works across
//! models of very different speeds: the tenant's arrival rate is a
//! fixed utilisation of its measured two-group batched capacity, and
//! the SLO deadline is a fixed margin over the p99 of a fault-free
//! calibration run with the *same* seed. Per-point seeds derive from
//! the point's content key (like every other sweep), so reports are
//! byte-identical across `--jobs` and cache temperature.

use crate::{CacheStats, ExperimentPlan, HarnessError, SessionCache, SweepModel};
use dtu::Accelerator;
use dtu_compiler::{Fnv1a, Placement};
use dtu_serve::faults::FaultPlan;
use dtu_serve::{
    run_serving, run_serving_live, ArrivalProcess, BatchPolicy, CompiledModel, LiveConfig,
    LiveMonitor, RetryPolicy, ScalePolicy, ServeConfig, ServeError, ServiceModel, SlaPolicy,
    TenantSpec,
};
use dtu_sim::SimError;
use dtu_telemetry::json::{array, escape, number, JsonObject};
use dtu_telemetry::{AlertKind, SloSpec};

/// Knobs of the calibrated serving scenario every grid point runs.
///
/// All quantities are relative to the model under test, so the
/// defaults hold for anything from a toy graph to BERT: arrivals at
/// [`SloScenario::utilization`] of measured capacity, deadline at
/// [`SloScenario::deadline_margin`] × calibrated fault-free p99.
#[derive(Debug, Clone, PartialEq)]
pub struct SloScenario {
    /// Simulated arrival horizon, ms. The default (10 simulated
    /// seconds) spans enough 1 s burn-rate evaluations for the
    /// multi-window rule to fire and settle.
    pub duration_ms: f64,
    /// Offered load as a fraction of the tenant's measured two-group
    /// full-batch capacity.
    pub utilization: f64,
    /// SLO deadline as a multiple of the calibrated fault-free p99.
    pub deadline_margin: f64,
    /// Target percentile of the SLO (error budget = 1 − percentile).
    pub percentile: f64,
    /// Dynamic-batching cap.
    pub max_batch: usize,
    /// Dynamic-batching timeout, ms.
    pub batch_timeout_ms: f64,
    /// Admission queue cap; arrivals beyond it shed.
    pub queue_depth: usize,
    /// Hard cap on the calibrated arrival rate, queries per simulated
    /// second. Bounds the event count for very fast models; a capped
    /// model runs below the target utilisation, so its grades reflect
    /// a lighter load.
    pub max_qps: f64,
}

impl Default for SloScenario {
    fn default() -> Self {
        SloScenario {
            duration_ms: 10_000.0,
            utilization: 0.75,
            deadline_margin: 1.6,
            percentile: 0.99,
            max_batch: 4,
            batch_timeout_ms: 1.0,
            queue_depth: 256,
            max_qps: 20_000.0,
        }
    }
}

/// The measured outcome of one (model, fault plan, severity) point.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPoint {
    /// Model name.
    pub model: String,
    /// Fault-plan preset name (see `dtu::faults::PRESETS`).
    pub plan: String,
    /// Severity in `[0, 1]` the plan was built at.
    pub severity: f64,
    /// Per-point seed (derived from the point's content key).
    pub seed: u64,
    /// Calibrated offered load, queries per simulated second.
    pub qps: f64,
    /// Calibrated SLO deadline, ms.
    pub deadline_ms: f64,
    /// False when the faults killed the tenant's last group and the
    /// run aborted (graded as an outage, not a sweep failure).
    pub ok: bool,
    /// Requests completed.
    pub completed: u64,
    /// Completions that missed the SLO deadline.
    pub violated: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Multiples of the error budget consumed over the run
    /// (`(violated/completed) / (1 − percentile)`; 1.0 = budget gone).
    pub budget_consumed: f64,
    /// Burn-rate alerts that fired.
    pub burn_alerts: usize,
    /// Injected-fault alerts observed (fault markers, group losses).
    pub fault_alerts: usize,
    /// Burn-rate alerts that resolved before the end of the run.
    pub resolved: usize,
    /// Simulated time of the first burn-rate alert, ms.
    pub first_alert_ms: Option<f64>,
    /// p50 latency over the run, ms.
    pub p50_ms: f64,
    /// p99 latency over the run, ms.
    pub p99_ms: f64,
}

impl SloPoint {
    /// A coarse grade: `outage` (run died), `paging` (burn-rate alert
    /// fired), `degraded` (budget gone but no page), `within-budget`.
    pub fn grade(&self) -> &'static str {
        if !self.ok {
            "outage"
        } else if self.burn_alerts > 0 {
            "paging"
        } else if self.budget_consumed >= 1.0 {
            "degraded"
        } else {
            "within-budget"
        }
    }
}

/// The outcome of an SLO sweep: points in grid order plus the cache
/// delta attributable to the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSweepReport {
    /// Model names, in grid order.
    pub models: Vec<String>,
    /// Fault-plan preset names, in grid order.
    pub plans: Vec<String>,
    /// Severities, in grid order.
    pub severities: Vec<f64>,
    /// The sweep seed every point key mixes in.
    pub seed: u64,
    /// One point per (model, plan, severity), models-major.
    pub points: Vec<SloPoint>,
    /// Cache hits/misses attributable to this sweep alone.
    pub cache: CacheStats,
}

impl SloSweepReport {
    /// Fraction of grid points that stayed within their error budget
    /// without paging.
    pub fn compliance(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        self.points
            .iter()
            .filter(|p| p.grade() == "within-budget")
            .count() as f64
            / self.points.len() as f64
    }

    /// The full deterministic JSON report: no wall-clock, no worker
    /// count, no cache provenance — two runs of the same grid and seed
    /// are byte-identical whatever `--jobs` was and however warm the
    /// artifact cache is.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(point_json).collect();
        JsonObject::new()
            .raw(
                "grid",
                &JsonObject::new()
                    .raw(
                        "models",
                        &array(
                            &self
                                .models
                                .iter()
                                .map(|m| format!("\"{}\"", escape(m)))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .raw(
                        "plans",
                        &array(
                            &self
                                .plans
                                .iter()
                                .map(|p| format!("\"{}\"", escape(p)))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .raw(
                        "severities",
                        &array(
                            &self
                                .severities
                                .iter()
                                .map(|s| number(*s))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .build(),
            )
            .int("seed", self.seed as i64)
            .raw("compliance", &number(self.compliance()))
            .raw("points", &array(&points))
            .build()
    }

    /// A human-readable fixed-width table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<14} {:>4} {:>8} {:>10} {:>9} {:>6} {:>6} {:>9} {:<13}",
            "model",
            "plan",
            "sev",
            "qps",
            "p99(ms)",
            "budget",
            "pages",
            "faults",
            "first(ms)",
            "grade"
        );
        for p in &self.points {
            let first = p
                .first_alert_ms
                .map_or_else(|| "-".to_string(), |t| format!("{t:.0}"));
            let _ = writeln!(
                out,
                "{:<14} {:<14} {:>4.2} {:>8.0} {:>10.3} {:>9.2} {:>6} {:>6} {:>9} {:<13}",
                p.model,
                p.plan,
                p.severity,
                p.qps,
                p.p99_ms,
                p.budget_consumed,
                p.burn_alerts,
                p.fault_alerts,
                first,
                p.grade()
            );
        }
        let _ = writeln!(
            out,
            "compliance: {:.1}% of {} points within budget; cache: {} memory + {} disk hits, {} misses",
            self.compliance() * 100.0,
            self.points.len(),
            self.cache.memory_hits,
            self.cache.disk_hits,
            self.cache.misses
        );
        out
    }
}

fn point_json(p: &SloPoint) -> String {
    let mut obj = JsonObject::new()
        .string("model", &p.model)
        .string("plan", &p.plan)
        .raw("severity", &number(p.severity))
        .int("seed", p.seed as i64)
        .raw("qps", &number(p.qps))
        .raw("deadline_ms", &number(p.deadline_ms))
        .raw("ok", if p.ok { "true" } else { "false" })
        .int("completed", p.completed as i64)
        .int("violated", p.violated as i64)
        .int("shed", p.shed as i64)
        .raw("budget_consumed", &number(p.budget_consumed))
        .int("burn_alerts", p.burn_alerts as i64)
        .int("fault_alerts", p.fault_alerts as i64)
        .int("resolved", p.resolved as i64);
    obj = match p.first_alert_ms {
        Some(t) => obj.raw("first_alert_ms", &number(t)),
        None => obj.raw("first_alert_ms", "null"),
    };
    obj.raw("p50_ms", &number(p.p50_ms))
        .raw("p99_ms", &number(p.p99_ms))
        .string("grade", p.grade())
        .build()
}

/// The serving configuration every point runs: one tenant pinned to
/// two groups of cluster 0 (matching the fault plan's target space),
/// autoscaling off so capacity loss is not silently repaired.
fn scenario_cfg(
    name: &str,
    scenario: &SloScenario,
    qps: f64,
    deadline_ms: f64,
    seed: u64,
    faults: FaultPlan,
) -> ServeConfig {
    ServeConfig {
        duration_ms: scenario.duration_ms,
        seed,
        record_requests: false,
        faults,
        retry: RetryPolicy::default(),
        tenants: vec![TenantSpec {
            name: name.to_string(),
            model: 0,
            arrival: ArrivalProcess::Poisson { qps },
            batch: if scenario.max_batch > 1 {
                BatchPolicy::dynamic(scenario.max_batch, scenario.batch_timeout_ms)
            } else {
                BatchPolicy::none()
            },
            sla: SlaPolicy::new(deadline_ms, scenario.queue_depth),
            scale: ScalePolicy::none(),
            cluster: Some(0),
            initial_groups: 2,
        }],
    }
}

/// The per-point seed [`run_slo_sweep`] derives for a grid point: a
/// content hash of (model, plan, severity, sweep seed), so a point's
/// arrivals and fault schedule do not depend on its execution slot.
/// Exposed so single-point callers (`topsexec slo --flight-out`) can
/// reproduce exactly the run a sweep graded.
pub fn slo_point_seed(model: &str, plan: &str, severity: f64, seed: u64) -> u64 {
    let mut key = Fnv1a::new();
    key.write_str("slo/");
    key.write_str(model);
    key.write_str("/");
    key.write_str(plan);
    key.write_u64(severity.to_bits());
    key.write_u64(seed);
    seed ^ key.finish()
}

/// Runs one calibrated SLO scenario and returns the graded point plus
/// the [`LiveMonitor`] that watched it (alerts, windowed series, and
/// the flight recorder with any dumps the faults triggered).
///
/// # Errors
///
/// Compile failures and non-fault simulation errors. A fault that
/// kills the tenant's last group is *not* an error — it grades as an
/// `outage` point.
pub fn run_slo_scenario(
    accel: &Accelerator,
    model: &SweepModel<'_>,
    plan_name: &str,
    severity: f64,
    point_seed: u64,
    scenario: &SloScenario,
    cache: &SessionCache,
) -> Result<(SloPoint, LiveMonitor), HarnessError> {
    let chip = accel.config();
    let mut compiled =
        CompiledModel::new(accel.chip(), model.name(), |b| model.build(b)).with_source(cache);

    // Capacity probe: the service time of a full batch on the
    // tenant's two-group placement sets the offered load.
    let two_groups = Placement::cluster_groups(0, 2, chip);
    let full_batch_ms = compiled
        .service_ms(scenario.max_batch, &two_groups)
        .map_err(serve_err(model.name(), plan_name))?;
    let qps = (scenario.utilization * scenario.max_batch as f64 / full_batch_ms * 1e3)
        .min(scenario.max_qps);

    // Calibration: the same arrival stream, fault-free, with an
    // unreachable deadline. Its p99 anchors the SLO.
    let calib_cfg = scenario_cfg(
        model.name(),
        scenario,
        qps,
        f64::INFINITY,
        point_seed,
        FaultPlan::empty(),
    );
    let calib = run_serving(&calib_cfg, chip, &mut [&mut compiled])
        .map_err(serve_err(model.name(), plan_name))?;
    let deadline_ms = scenario.deadline_margin * calib.report.latency.p99_ms.max(full_batch_ms);

    // The graded run: same seed (same arrivals), preset faults aimed
    // at the tenant's two groups, live monitor riding along.
    let horizon_ns = scenario.duration_ms * 1e6;
    let fault_plan = FaultPlan::preset(plan_name, point_seed, severity, 1, 2, horizon_ns)
        .map_err(HarnessError::Config)?;
    let spec = SloSpec::new(
        format!("p{:.0}<{deadline_ms:.2}ms", scenario.percentile * 100.0),
        scenario.percentile,
        deadline_ms,
    );
    let mut mon = LiveMonitor::new(LiveConfig {
        slo: Some(spec),
        ..LiveConfig::default()
    });
    let cfg = scenario_cfg(
        model.name(),
        scenario,
        qps,
        deadline_ms,
        point_seed,
        fault_plan,
    );
    let outcome = run_serving_live(&cfg, chip, &mut [&mut compiled], &mut mon);
    let ok = match outcome {
        Ok(_) => true,
        // The last group died: an outage finding, not a sweep failure.
        Err(ServeError::Sim(SimError::Fault(_))) => false,
        Err(other) => return Err(serve_err(model.name(), plan_name)(other)),
    };

    // Everything graded comes from the monitor, so the point reads the
    // same whether or not the run survived to produce a report.
    let ten = &mon.tenants()[0];
    let tracker = ten.slo.as_ref().expect("scenario always sets an SLO");
    let hist = ten.latency_hist();
    let alerts_of = |kind: AlertKind| mon.alerts.iter().filter(|(_, a)| a.kind == kind).count();
    let point = SloPoint {
        model: model.name().to_string(),
        plan: plan_name.to_string(),
        severity,
        seed: point_seed,
        qps,
        deadline_ms,
        ok,
        completed: tracker.completed(),
        violated: tracker.violated(),
        shed: ten.sheds.total() as u64,
        budget_consumed: tracker.budget_consumed(),
        burn_alerts: alerts_of(AlertKind::BurnRate),
        fault_alerts: alerts_of(AlertKind::Fault),
        resolved: alerts_of(AlertKind::Resolved),
        first_alert_ms: mon.burn_alerts().next().map(|(_, a)| a.t_ns / 1e6),
        p50_ms: hist.quantile(0.50),
        p99_ms: hist.quantile(0.99),
    };
    Ok((point, mon))
}

fn serve_err(model: &str, plan: &str) -> impl Fn(ServeError) -> HarnessError {
    let label = format!("{model} {plan}");
    move |e| HarnessError::Job {
        label: label.clone(),
        message: e.to_string(),
    }
}

/// Runs a model × fault-plan × severity grid (models-major order) on
/// `jobs` workers, compiling every serving session through `cache`.
///
/// Each point derives its seed from a content hash of (model, plan,
/// severity, `seed`), so the arrivals and fault schedule a point sees
/// are a function of *what* it is, not *when* it ran: reports are
/// byte-identical for any `jobs`.
///
/// # Errors
///
/// The first failing point's [`HarnessError`] in grid order. A fault
/// that takes the tenant's last group is *not* an error — it grades
/// as an `outage` point — but unknown plan names, compile failures,
/// and non-fault simulation errors fail the sweep loudly.
// One past clippy's argument budget: this mirrors `run_fault_sweep`'s
// signature plus the scenario handle, and callers pass it verbatim.
#[allow(clippy::too_many_arguments)]
pub fn run_slo_sweep(
    accel: &Accelerator,
    models: &[SweepModel<'_>],
    plans: &[&str],
    severities: &[f64],
    seed: u64,
    scenario: &SloScenario,
    cache: &SessionCache,
    jobs: usize,
) -> Result<SloSweepReport, HarnessError> {
    if models.is_empty() || plans.is_empty() || severities.is_empty() {
        return Err(HarnessError::Config(
            "slo sweep needs at least one model, one plan, and one severity".into(),
        ));
    }
    let stats_before = cache.stats();
    let mut plan_points: ExperimentPlan<'_, SloPoint> = ExperimentPlan::new();
    for model in models {
        for &plan_name in plans {
            for &severity in severities {
                let mut key = Fnv1a::new();
                key.write_str("slo/");
                key.write_str(model.name());
                key.write_str("/");
                key.write_str(plan_name);
                key.write_u64(severity.to_bits());
                key.write_u64(seed);
                let point_key = key.finish();
                let point_seed = slo_point_seed(model.name(), plan_name, severity, seed);
                let label = format!("{} {plan_name} s{severity:.2}", model.name());
                plan_points.add_point(point_key, label, &[], move |_| {
                    run_slo_scenario(
                        accel, model, plan_name, severity, point_seed, scenario, cache,
                    )
                    .map(|(point, _)| point)
                });
            }
        }
    }
    let mut points = Vec::with_capacity(plan_points.len());
    for result in plan_points.run(jobs) {
        points.push(result?);
    }
    Ok(SloSweepReport {
        models: models.iter().map(|m| m.name().to_string()).collect(),
        plans: plans.iter().map(|p| p.to_string()).collect(),
        severities: severities.to_vec(),
        seed,
        points,
        cache: cache.stats().delta_since(stats_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Graph, Op, TensorType};

    /// Heavy enough that batch sharding across two groups genuinely
    /// ~halves the service time (losing a group ~doubles it), and slow
    /// enough (~5 ms/batch) that the calibrated arrival rate stays in
    /// the hundreds of requests per simulated second.
    fn toy_model() -> SweepModel<'static> {
        SweepModel::new("convstack", |batch| {
            let mut g = Graph::new("convstack");
            let mut x = g.input("x", TensorType::fixed(&[batch, 128, 56, 56]));
            for _ in 0..6 {
                x = g.add_node(Op::conv2d(256, 3, 1, 1), vec![x]).unwrap();
            }
            g.mark_output(x);
            g
        })
    }

    /// A scenario short enough for unit tests but still spanning
    /// several burn-rate evaluation windows.
    fn test_scenario() -> SloScenario {
        SloScenario {
            duration_ms: 8_000.0,
            utilization: 0.85,
            deadline_margin: 1.2,
            ..SloScenario::default()
        }
    }

    #[test]
    fn clean_plan_stays_within_budget_and_quiet() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model()];
        let r = run_slo_sweep(
            &accel,
            &models,
            &["none"],
            &[0.5],
            7,
            &test_scenario(),
            &cache,
            1,
        )
        .unwrap();
        let p = &r.points[0];
        assert!(p.ok);
        assert!(p.completed > 100, "calibrated load produces traffic");
        assert_eq!(p.burn_alerts, 0, "fault-free run must not page");
        assert_eq!(p.fault_alerts, 0);
        assert!(
            p.budget_consumed < 1.0,
            "deadline margin holds: {} of budget",
            p.budget_consumed
        );
        assert_eq!(p.grade(), "within-budget");
        assert_eq!(r.compliance(), 1.0);
    }

    #[test]
    fn core_failure_burns_the_budget_and_pages() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model()];
        let (p, mon) = run_slo_scenario(
            &accel,
            &models[0],
            "core-failure",
            1.0,
            7,
            &test_scenario(),
            &cache,
        )
        .unwrap();
        assert!(p.ok, "one dead group out of two degrades, not kills");
        assert!(p.fault_alerts >= 1, "the group loss is announced");
        assert!(
            p.burn_alerts >= 1,
            "losing half the capacity must page: budget={} violated={}/{}",
            p.budget_consumed,
            p.violated,
            p.completed
        );
        assert!(p.budget_consumed >= 1.0);
        assert_eq!(p.grade(), "paging");
        assert!(p.first_alert_ms.is_some());
        // The page dumped the flight recorder, and the alert's
        // exemplar span is resolvable inside the dump.
        assert!(!mon.flight.dumps().is_empty());
        let exemplar = mon
            .burn_alerts()
            .find_map(|(_, a)| a.exemplar)
            .expect("burn alert carries an exemplar");
        assert!(mon
            .flight
            .dumps()
            .iter()
            .any(|d| d.resolves_label(&format!("req {exemplar}"))));
    }

    #[test]
    fn report_is_byte_identical_across_jobs() {
        let accel = Accelerator::cloudblazer_i20();
        let models = [toy_model()];
        let plans = ["none", "core-failure"];
        let scenario = test_scenario();
        let cache1 = SessionCache::memory_only();
        let r1 = run_slo_sweep(&accel, &models, &plans, &[1.0], 42, &scenario, &cache1, 1).unwrap();
        let cache8 = SessionCache::memory_only();
        let r8 = run_slo_sweep(&accel, &models, &plans, &[1.0], 42, &scenario, &cache8, 8).unwrap();
        assert_eq!(r1.to_json(), r8.to_json());
        assert!(r1.to_json().contains("\"compliance\""));
    }

    #[test]
    fn unknown_plan_or_empty_grid_fails_loudly() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model()];
        let s = test_scenario();
        assert!(run_slo_sweep(&accel, &models, &[], &[0.5], 1, &s, &cache, 1).is_err());
        assert!(run_slo_sweep(&accel, &[], &["none"], &[0.5], 1, &s, &cache, 1).is_err());
        let err =
            run_slo_sweep(&accel, &models, &["meteor"], &[0.5], 1, &s, &cache, 1).unwrap_err();
        assert!(err.to_string().contains("meteor"));
    }
}
