//! The generative-serving scenario runner behind
//! `topsexec serve --generative`.
//!
//! A continuous-batching run touches a small, *predictable* set of
//! compiled sessions: prefill at each power-of-two batch bucket, and
//! decode at each (batch bucket, context bucket) the token range can
//! reach. [`gen_session_grid`] enumerates that closure and
//! [`run_generative_serve`] pre-compiles it through the shared
//! [`SessionCache`] on `jobs` workers *before* the (single-threaded,
//! deterministic) engine runs. Because compiled latencies are a pure
//! function of (graph, chip, placement, compiler config), warming the
//! cache in any order — or not at all — yields byte-identical reports:
//! `--jobs` and cache temperature only change wall-clock, exactly like
//! every other sweep in this crate.

use crate::calibrate::CalibrationCache;
use crate::{ExperimentPlan, HarnessError, SessionCache};
use dtu::{Accelerator, AnalyticBackend};
use dtu_compiler::Fnv1a;
use dtu_models::{GenerativeConfig, GenerativeModel};
use dtu_serve::{
    run_generative, run_generative_live, run_generative_recorded, CompiledTokenModel, GenMonitor,
    GenOutcome, GenerativeScenario, TokenModel,
};
use dtu_telemetry::Recorder;

/// How a generative run reports what happened: silently, through a
/// span [`Recorder`], or through a live [`GenMonitor`]. All three
/// produce byte-identical outcomes — observation never steers.
enum GenRunMode<'a> {
    Plain,
    Recorded(&'a mut dyn Recorder),
    Live(&'a mut GenMonitor),
}

/// The compiled-session closure of a generative scenario: every
/// `(phase, batch_bucket, context_bucket)` the engine can request.
/// Phase is `"prefill"` (context bucket = 0) or `"decode"`.
///
/// Batch buckets are the powers of two up to the concurrency cap;
/// decode context buckets are the powers of two from the first decode
/// context (prompt + 1) to the largest reachable (prompt + max new
/// tokens).
pub fn gen_session_grid(sc: &GenerativeScenario) -> Vec<(&'static str, usize, usize)> {
    let mut grid = Vec::new();
    let max_batch = sc.max_concurrency.max(1).next_power_of_two();
    let mut batch = 1usize;
    while batch <= max_batch {
        grid.push(("prefill", batch, 0));
        let first_ctx = (sc.prompt_tokens + 1).next_power_of_two();
        let last_ctx = (sc.prompt_tokens + sc.max_new_tokens.max(1)).next_power_of_two();
        let mut ctx = first_ctx;
        while ctx <= last_ctx {
            grid.push(("decode", batch, ctx));
            ctx *= 2;
        }
        batch *= 2;
    }
    grid
}

/// Runs one generative serving scenario end-to-end: warms the session
/// grid through `cache` on `jobs` workers, then runs the continuous
/// batcher against the compiled token model (recording spans and
/// counters into `rec` when one is supplied).
///
/// The returned outcome is byte-identical for any `jobs` value and any
/// prior cache contents.
///
/// # Errors
///
/// Compile or simulation failures from any session, wrapped as
/// [`HarnessError::Job`] with the offending (phase, batch, context)
/// label.
pub fn run_generative_serve(
    accel: &Accelerator,
    config: &GenerativeConfig,
    scenario: &GenerativeScenario,
    cache: &SessionCache,
    jobs: usize,
    rec: Option<&mut dyn Recorder>,
) -> Result<GenOutcome, HarnessError> {
    let mode = match rec {
        Some(rec) => GenRunMode::Recorded(rec),
        None => GenRunMode::Plain,
    };
    run_generative_serve_inner(accel, config, scenario, cache, jobs, mode, None)
}

/// [`run_generative_serve`] with every prefill/decode step priced by
/// the calibrated analytic timing backend instead of the interpreter.
/// The calibration is recalled from (or probed into) `cal`; all
/// determinism guarantees are unchanged.
///
/// # Errors
///
/// Exactly as [`run_generative_serve`], plus calibration failures as
/// [`HarnessError::Job`].
pub fn run_generative_serve_analytic(
    accel: &Accelerator,
    config: &GenerativeConfig,
    scenario: &GenerativeScenario,
    cache: &SessionCache,
    cal: &CalibrationCache,
    jobs: usize,
    rec: Option<&mut dyn Recorder>,
) -> Result<GenOutcome, HarnessError> {
    let (timing, _) = cal.timing_for(accel.config())?;
    let backend = AnalyticBackend::new(timing);
    let mode = match rec {
        Some(rec) => GenRunMode::Recorded(rec),
        None => GenRunMode::Plain,
    };
    run_generative_serve_inner(accel, config, scenario, cache, jobs, mode, Some(&backend))
}

/// [`run_generative_serve`] streamed through a live [`GenMonitor`]:
/// every token-boundary event feeds the monitor's time series, TTFT /
/// TPOT windowed histograms, SLO burn-rate trackers, and flight
/// recorder while the engine runs. Pass `cal` to price steps with the
/// calibrated analytic backend; `None` uses the interpreter.
///
/// Monitoring is strictly observational: the outcome is byte-identical
/// to the unmonitored run for any `jobs` value, cache temperature, or
/// timing backend choice.
///
/// # Errors
///
/// Exactly as [`run_generative_serve`] /
/// [`run_generative_serve_analytic`].
pub fn run_generative_serve_live(
    accel: &Accelerator,
    config: &GenerativeConfig,
    scenario: &GenerativeScenario,
    cache: &SessionCache,
    cal: Option<&CalibrationCache>,
    jobs: usize,
    mon: &mut GenMonitor,
) -> Result<GenOutcome, HarnessError> {
    let backend = match cal {
        Some(cal) => {
            let (timing, _) = cal.timing_for(accel.config())?;
            Some(AnalyticBackend::new(timing))
        }
        None => None,
    };
    run_generative_serve_inner(
        accel,
        config,
        scenario,
        cache,
        jobs,
        GenRunMode::Live(mon),
        backend.as_ref(),
    )
}

fn run_generative_serve_inner(
    accel: &Accelerator,
    config: &GenerativeConfig,
    scenario: &GenerativeScenario,
    cache: &SessionCache,
    jobs: usize,
    mode: GenRunMode<'_>,
    backend: Option<&AnalyticBackend>,
) -> Result<GenOutcome, HarnessError> {
    let workload = GenerativeModel::new(*config, scenario.prompt_tokens);

    // Warm-up: compile the whole session grid in parallel into the
    // shared cache. Each point uses a throwaway token model; only the
    // cached programs survive, and the engine below recompiles nothing.
    if jobs > 1 {
        let mut plan: ExperimentPlan<'_, ()> = ExperimentPlan::new();
        for (phase, batch, ctx) in gen_session_grid(scenario) {
            let mut key = Fnv1a::new();
            key.write_str("genserve/");
            key.write_str(phase);
            key.write_u64(batch as u64);
            key.write_u64(ctx as u64);
            let label = format!("{phase} b{batch} c{ctx}");
            let prompt = scenario.prompt_tokens;
            plan.add_point(key.finish(), label.clone(), &[], move |_| {
                let mut m =
                    CompiledTokenModel::new(accel.chip(), workload, prompt).with_source(cache);
                if let Some(b) = backend {
                    m = m.with_timing(b);
                }
                let r = match phase {
                    "prefill" => m.prefill_ms(batch, prompt),
                    _ => m.decode_ms(batch, ctx),
                };
                r.map(|_| ()).map_err(|e| HarnessError::Job {
                    label: label.clone(),
                    message: e.to_string(),
                })
            });
        }
        for result in plan.run(jobs) {
            result?;
        }
    }

    // The run itself is single-threaded and deterministic; every
    // session it asks for is already in the cache.
    let mut model =
        CompiledTokenModel::new(accel.chip(), workload, scenario.prompt_tokens).with_source(cache);
    if let Some(b) = backend {
        model = model.with_timing(b);
    }
    let out = match mode {
        GenRunMode::Plain => run_generative(scenario, &mut model),
        GenRunMode::Recorded(rec) => run_generative_recorded(scenario, &mut model, rec),
        GenRunMode::Live(mon) => run_generative_live(scenario, &mut model, mon),
    };
    out.map_err(|e| HarnessError::Job {
        label: "generative".into(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_serve::{ArrivalProcess, KvCacheConfig};

    fn scenario() -> GenerativeScenario {
        let cfg = GenerativeConfig::tiny();
        GenerativeScenario {
            duration_ms: 40.0,
            seed: 7,
            arrival: ArrivalProcess::Poisson { qps: 400.0 },
            prompt_tokens: 32,
            min_new_tokens: 2,
            max_new_tokens: 12,
            max_concurrency: 4,
            queue_depth: 64,
            ttft_deadline_ms: f64::INFINITY,
            tpot_deadline_ms: f64::INFINITY,
            kv: KvCacheConfig::for_chip(&dtu_sim::ChipConfig::dtu20(), cfg.kv_bytes_per_token()),
        }
    }

    #[test]
    fn session_grid_covers_the_reachable_buckets() {
        let grid = gen_session_grid(&scenario());
        // Batch buckets 1, 2, 4; prefill + decode contexts 64 (33..=44
        // rounds to 64) per batch.
        assert!(grid.contains(&("prefill", 1, 0)));
        assert!(grid.contains(&("prefill", 4, 0)));
        assert!(grid.contains(&("decode", 4, 64)));
        assert!(!grid.iter().any(|&(_, b, _)| b > 4));
    }

    #[test]
    fn analytic_generative_serve_is_deterministic_and_balanced() {
        use crate::calibrate::CalibrationCache;
        let accel = Accelerator::cloudblazer_i20();
        let sc = scenario();
        let cfg = GenerativeConfig::tiny();
        let cal = CalibrationCache::memory_only();
        let c1 = SessionCache::memory_only();
        let a = run_generative_serve_analytic(&accel, &cfg, &sc, &c1, &cal, 1, None).unwrap();
        let c4 = SessionCache::memory_only();
        let b = run_generative_serve_analytic(&accel, &cfg, &sc, &c4, &cal, 4, None).unwrap();
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert!(a.report.completed > 0);
        assert!(a.report.balanced());
        assert_eq!(cal.stats().misses, 1, "one calibration serves both runs");
    }

    #[test]
    fn live_monitoring_is_observational_across_backends() {
        use dtu_serve::GenLiveConfig;
        let accel = Accelerator::cloudblazer_i20();
        let sc = scenario();
        let cfg = GenerativeConfig::tiny();
        let cal = CalibrationCache::memory_only();

        let plain_cache = SessionCache::memory_only();
        let plain = run_generative_serve(&accel, &cfg, &sc, &plain_cache, 1, None).unwrap();
        let live_cache = SessionCache::memory_only();
        let mut mon = GenMonitor::with_defaults();
        let live =
            run_generative_serve_live(&accel, &cfg, &sc, &live_cache, None, 4, &mut mon).unwrap();
        assert_eq!(plain.report.to_json(), live.report.to_json());
        assert_eq!(plain.trace, live.trace);
        assert!(mon.completions.total() > 0.0, "monitor saw the run");

        let pa = SessionCache::memory_only();
        let plain_a = run_generative_serve_analytic(&accel, &cfg, &sc, &pa, &cal, 1, None).unwrap();
        let la = SessionCache::memory_only();
        let mut mon_a = GenMonitor::new(GenLiveConfig::default());
        let live_a =
            run_generative_serve_live(&accel, &cfg, &sc, &la, Some(&cal), 2, &mut mon_a).unwrap();
        assert_eq!(plain_a.report.to_json(), live_a.report.to_json());
        assert_eq!(plain_a.trace, live_a.trace);
    }

    #[test]
    fn outcome_is_byte_identical_across_jobs_and_cache_temperature() {
        let accel = Accelerator::cloudblazer_i20();
        let sc = scenario();
        let cfg = GenerativeConfig::tiny();
        let cold = SessionCache::memory_only();
        let a = run_generative_serve(&accel, &cfg, &sc, &cold, 1, None).unwrap();
        let warm = SessionCache::memory_only();
        let _ = run_generative_serve(&accel, &cfg, &sc, &warm, 4, None).unwrap();
        let b = run_generative_serve(&accel, &cfg, &sc, &warm, 4, None).unwrap();
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.trace, b.trace);
        assert!(a.report.completed > 0);
        assert!(a.report.balanced());
    }
}
