//! Parallel experiment engine for the Cloudblazer reproduction.
//!
//! Every repro binary evaluates the same shape of work: a grid of
//! (model, batch, placement, chip-config) points, each point compiling
//! a graph and simulating the resulting program. Done naively that is
//! a long single-core walk with heavy recompilation of identical
//! sessions. This crate factors the shape out once:
//!
//! * [`ExperimentPlan`] — a deduplicated DAG of experiment points with
//!   declared dependencies, executed either inline (`jobs = 1`) or by
//!   a work-stealing pool of `std::thread` workers. Results come back
//!   in *insertion order*, independent of the thread schedule, so
//!   parallel runs are byte-for-byte reproducible.
//! * [`SessionCache`] — a compiled-session artifact cache keyed by a
//!   content hash of (graph, chip config, placement, compiler config,
//!   batch, compiler version). An in-memory tier serves repeats within
//!   a process; an optional disk tier under `target/dtu-cache/`
//!   (JSON-serialized lowered programs) serves repeats across
//!   processes. Hit/miss counts flow into the `dtu-telemetry` counter
//!   registry.
//! * [`run_sweep`] — the model × batch grid runner behind
//!   `topsexec sweep`, with deterministic JSON/table reports.
//! * [`run_fault_sweep`] — the model × fault-plan × severity grid
//!   behind `topsexec faults`: every point runs under seeded fault
//!   injection through the `dtu` recovery loop, with per-point seeds
//!   derived from content keys so reports are byte-identical across
//!   `--jobs`.
//! * [`run_generative_serve`] — the continuous-batching generative
//!   scenario behind `topsexec serve --generative`: pre-warms the
//!   prefill/decode session grid on `--jobs` workers through the
//!   shared cache, then runs `dtu-serve`'s deterministic token-level
//!   engine, so TTFT/TPOT reports are byte-identical across `--jobs`
//!   and cache temperature.
//! * [`compare_golden`] — the golden-figure comparator behind
//!   `topsexec sweep --check-golden` and the CI regression gate:
//!   structural JSON equality with relative tolerance on the numbers.
//!
//! # Example
//!
//! ```
//! use dtu_harness::{ExperimentPlan, HarnessError};
//!
//! let mut plan = ExperimentPlan::new();
//! let a = plan.add_point(1, "a", &[], |_| Ok(10u64));
//! let b = plan.add_point(2, "b", &[a], move |ctx| Ok(ctx.require(a)? + 1));
//! // Key 1 is already planned: the duplicate is coalesced.
//! assert_eq!(plan.add_point(1, "a2", &[], |_| Ok(99)), a);
//! let results = plan.run(4);
//! assert_eq!(results[b.index()], Ok(11));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod calibrate;
mod error;
mod faultsweep;
mod genserve;
mod golden;
mod plan;
mod slosweep;
mod sweep;

pub use cache::{CacheOutcome, CacheStats, SessionCache, CACHE_FORMAT_VERSION};
pub use calibrate::{price_key, CalibrationCache, PricePoint};
pub use error::HarnessError;
pub use faultsweep::{run_fault_sweep, FaultPoint, FaultSweepReport};
pub use genserve::{
    gen_session_grid, run_generative_serve, run_generative_serve_analytic,
    run_generative_serve_live,
};
pub use golden::{compare_golden, GOLDEN_RTOL};
pub use plan::{available_jobs, ExperimentPlan, PlanCtx, PointId};
pub use slosweep::{
    run_slo_scenario, run_slo_sweep, slo_point_seed, SloPoint, SloScenario, SloSweepReport,
};
pub use sweep::{run_sweep, run_sweep_analytic, SweepModel, SweepPoint, SweepReport};
