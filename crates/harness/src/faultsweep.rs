//! The model × fault-plan × severity sweep behind `topsexec faults`.
//!
//! Each grid point runs one model under a preset [`FaultPlan`] through
//! the `dtu` recovery loop ([`dtu::run_resilient_with`]), compiling
//! every placement — including the shrunken ones recovery remaps onto —
//! through the shared [`SessionCache`]. The point's fault seed is
//! derived from its *content key*, not its execution slot, so reports
//! are byte-identical across `--jobs` settings; like
//! [`crate::SweepReport`], the JSON carries no wall-clock or
//! worker-count quantities.

use crate::{CacheStats, ExperimentPlan, HarnessError, SessionCache, SweepModel};
use dtu::faults::{FaultPlan, FaultSession};
use dtu::{run_resilient_with, Accelerator, DtuError, RecoveryPolicy, SessionOptions};
use dtu_compiler::Fnv1a;
use dtu_sim::SimError;
use dtu_telemetry::json::{array, escape, number, JsonObject};

/// The measured outcome of one (model, fault plan, severity) point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Model name.
    pub model: String,
    /// Fault-plan preset name (see `dtu::faults::PRESETS`).
    pub plan: String,
    /// Severity in `[0, 1]` the plan was built at.
    pub severity: f64,
    /// Per-point fault seed (derived from the point's content key).
    pub seed: u64,
    /// Whether recovery delivered a report (false = the fault budget
    /// or the chip ran out and the failure surfaced).
    pub ok: bool,
    /// Fault-free latency of the same session, ms.
    pub baseline_ms: f64,
    /// Latency of the run that finally succeeded, ms (0 when `!ok`).
    pub latency_ms: f64,
    /// `latency_ms / baseline_ms` (0 when `!ok`).
    pub slowdown: f64,
    /// Transient-fault retries recovery performed.
    pub retries: u32,
    /// Group remaps recovery performed.
    pub remaps: u32,
    /// Groups the workload ended on (0 when `!ok`).
    pub final_groups: usize,
    /// Fault events that actually fired.
    pub faults_injected: u64,
    /// Stall time injected by degradation windows, ns.
    pub fault_stall_ns: f64,
}

/// The outcome of a fault sweep: points in grid order plus the cache
/// delta attributable to the sweep (recompiles after remap included).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepReport {
    /// Model names, in grid order.
    pub models: Vec<String>,
    /// Fault-plan preset names, in grid order.
    pub plans: Vec<String>,
    /// Severities, in grid order.
    pub severities: Vec<f64>,
    /// The sweep seed every point key mixes in.
    pub seed: u64,
    /// One point per (model, plan, severity), models-major.
    pub points: Vec<FaultPoint>,
    /// Cache hits/misses attributable to this sweep alone.
    pub cache: CacheStats,
}

impl FaultSweepReport {
    /// Fraction of grid points that completed (possibly degraded).
    pub fn availability(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        self.points.iter().filter(|p| p.ok).count() as f64 / self.points.len() as f64
    }

    /// The full deterministic JSON report: no wall-clock, no worker
    /// count, and — unlike [`crate::SweepReport::to_json`] — no cache
    /// provenance either, so two runs of the same grid and seed are
    /// byte-identical whatever `--jobs` was and however warm the
    /// artifact cache is. (Cache stats stay available on
    /// [`FaultSweepReport::cache`] and in [`FaultSweepReport::to_table`].)
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(point_json).collect();
        JsonObject::new()
            .raw(
                "grid",
                &JsonObject::new()
                    .raw(
                        "models",
                        &array(
                            &self
                                .models
                                .iter()
                                .map(|m| format!("\"{}\"", escape(m)))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .raw(
                        "plans",
                        &array(
                            &self
                                .plans
                                .iter()
                                .map(|p| format!("\"{}\"", escape(p)))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .raw(
                        "severities",
                        &array(
                            &self
                                .severities
                                .iter()
                                .map(|s| number(*s))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .build(),
            )
            .int("seed", self.seed as i64)
            .raw("availability", &number(self.availability()))
            .raw("points", &array(&points))
            .build()
    }

    /// A human-readable fixed-width table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<14} {:>4} {:>3} {:>12} {:>9} {:>7} {:>6} {:>6} {:>6}",
            "model",
            "plan",
            "sev",
            "ok",
            "latency(ms)",
            "slowdown",
            "faults",
            "retry",
            "remap",
            "groups"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<14} {:<14} {:>4.2} {:>3} {:>12.3} {:>9.3} {:>7} {:>6} {:>6} {:>6}",
                p.model,
                p.plan,
                p.severity,
                if p.ok { "yes" } else { "no" },
                p.latency_ms,
                p.slowdown,
                p.faults_injected,
                p.retries,
                p.remaps,
                p.final_groups
            );
        }
        let _ = writeln!(
            out,
            "availability: {:.1}% of {} points; cache: {} memory + {} disk hits, {} misses",
            self.availability() * 100.0,
            self.points.len(),
            self.cache.memory_hits,
            self.cache.disk_hits,
            self.cache.misses
        );
        out
    }
}

fn point_json(p: &FaultPoint) -> String {
    JsonObject::new()
        .string("model", &p.model)
        .string("plan", &p.plan)
        .raw("severity", &number(p.severity))
        .int("seed", p.seed as i64)
        .raw("ok", if p.ok { "true" } else { "false" })
        .raw("baseline_ms", &number(p.baseline_ms))
        .raw("latency_ms", &number(p.latency_ms))
        .raw("slowdown", &number(p.slowdown))
        .int("retries", i64::from(p.retries))
        .int("remaps", i64::from(p.remaps))
        .int("final_groups", p.final_groups as i64)
        .int("faults_injected", p.faults_injected as i64)
        .raw("fault_stall_ns", &number(p.fault_stall_ns))
        .build()
}

/// Runs a model × fault-plan × severity grid (models-major order) on
/// `jobs` workers, compiling every session — including post-remap
/// recompiles — through `cache`.
///
/// Each point derives its fault seed from a content hash of
/// (model, plan, severity, `seed`), so the schedule a point sees is a
/// function of *what* it is, not *when* it ran: reports are
/// byte-identical for any `jobs`.
///
/// # Errors
///
/// The first failing point's [`HarnessError`] in grid order. A fault
/// that exhausts recovery is *not* an error — it lands in the report
/// with `ok = false` — but unknown plan names, compile failures, and
/// non-fault simulation errors fail the sweep loudly.
pub fn run_fault_sweep(
    accel: &Accelerator,
    models: &[SweepModel<'_>],
    plans: &[&str],
    severities: &[f64],
    seed: u64,
    cache: &SessionCache,
    jobs: usize,
) -> Result<FaultSweepReport, HarnessError> {
    if models.is_empty() || plans.is_empty() || severities.is_empty() {
        return Err(HarnessError::Config(
            "fault sweep needs at least one model, one plan, and one severity".into(),
        ));
    }
    let stats_before = cache.stats();
    let mut plan_points: ExperimentPlan<'_, FaultPoint> = ExperimentPlan::new();
    for model in models {
        for &plan_name in plans {
            for &severity in severities {
                let mut key = Fnv1a::new();
                key.write_str("faults/");
                key.write_str(model.name());
                key.write_str("/");
                key.write_str(plan_name);
                key.write_u64(severity.to_bits());
                key.write_u64(seed);
                let point_key = key.finish();
                // Execution-order independent: the point's fault seed
                // is a function of its identity, not its plan slot.
                let point_seed = seed ^ point_key;
                let label = format!("{} {plan_name} s{severity:.2}", model.name());
                plan_points.add_point(point_key, label, &[], move |_| {
                    run_fault_point(accel, model, plan_name, severity, point_seed, cache)
                });
            }
        }
    }
    let mut points = Vec::with_capacity(plan_points.len());
    for result in plan_points.run(jobs) {
        points.push(result?);
    }
    let stats_after = cache.stats();
    Ok(FaultSweepReport {
        models: models.iter().map(|m| m.name().to_string()).collect(),
        plans: plans.iter().map(|p| p.to_string()).collect(),
        severities: severities.to_vec(),
        seed,
        points,
        cache: CacheStats {
            memory_hits: stats_after.memory_hits - stats_before.memory_hits,
            disk_hits: stats_after.disk_hits - stats_before.disk_hits,
            misses: stats_after.misses - stats_before.misses,
        },
    })
}

fn run_fault_point(
    accel: &Accelerator,
    model: &SweepModel<'_>,
    plan_name: &str,
    severity: f64,
    point_seed: u64,
    cache: &SessionCache,
) -> Result<FaultPoint, HarnessError> {
    let graph = model.build(1);
    let options = SessionOptions::default();
    // The fault-free reference run; its latency also sizes the fault
    // plan's horizon so events land inside the run.
    let (baseline_session, _) = cache.compile_session(accel, &graph, &options)?;
    let baseline = baseline_session.run().map_err(HarnessError::from)?;
    let baseline_ms = baseline.latency_ms();

    let chip = accel.config();
    let fault_plan = FaultPlan::preset(
        plan_name,
        point_seed,
        severity,
        chip.clusters,
        chip.groups_per_cluster,
        baseline_ms * 1e6,
    )
    .map_err(HarnessError::Config)?;
    let mut session = FaultSession::new(&fault_plan, chip.clusters, chip.groups_per_cluster);

    let point = |ok, latency_ms: f64, retries, remaps, final_groups, injected, stall| FaultPoint {
        model: model.name().to_string(),
        plan: plan_name.to_string(),
        severity,
        seed: point_seed,
        ok,
        baseline_ms,
        latency_ms,
        slowdown: if ok && baseline_ms > 0.0 {
            latency_ms / baseline_ms
        } else {
            0.0
        },
        retries,
        remaps,
        final_groups,
        faults_injected: injected,
        fault_stall_ns: stall,
    };

    let result = run_resilient_with(
        accel,
        &options,
        &mut session,
        &RecoveryPolicy::default(),
        |opts| cache.compile_session(accel, &graph, opts).map(|(s, _)| s),
    );
    match result {
        Ok(r) => {
            let final_groups = r
                .final_groups()
                .unwrap_or_else(|| options.resolve(accel).0.len());
            Ok(point(
                true,
                r.report.latency_ms(),
                r.retries,
                r.remaps.len() as u32,
                final_groups,
                r.faults_injected,
                r.fault_stall_ns,
            ))
        }
        // Recovery ran out of groups or budget: that is a *finding*,
        // not a harness failure.
        Err(DtuError::Sim(SimError::Fault(_))) => Ok(point(
            false,
            0.0,
            0,
            0,
            0,
            session.injected(),
            session.stall_ns(),
        )),
        Err(other) => Err(other.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Graph, Op, TensorType};

    fn toy_model() -> SweepModel<'static> {
        SweepModel::new("toy", |batch| {
            let mut g = Graph::new("toy");
            let x = g.input("x", TensorType::fixed(&[batch, 8, 16, 16]));
            let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
            g.mark_output(c);
            g
        })
    }

    #[test]
    fn none_plan_matches_the_baseline_exactly() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model()];
        let r = run_fault_sweep(&accel, &models, &["none"], &[0.5], 7, &cache, 1).unwrap();
        let p = &r.points[0];
        assert!(p.ok);
        assert_eq!(p.latency_ms, p.baseline_ms, "empty plan is invisible");
        assert_eq!(p.slowdown, 1.0);
        assert_eq!((p.retries, p.remaps, p.faults_injected), (0, 0, 0));
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn core_failure_remaps_and_degrades() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model()];
        let r = run_fault_sweep(&accel, &models, &["core-failure"], &[1.0], 7, &cache, 1).unwrap();
        let p = &r.points[0];
        assert!(p.ok, "one dead group out of six must not kill the run");
        assert_eq!(p.remaps, 1);
        assert_eq!(p.final_groups, 5);
        assert!(p.faults_injected >= 1);
        assert!(p.latency_ms > 0.0);
    }

    #[test]
    fn report_is_byte_identical_across_jobs() {
        let accel = Accelerator::cloudblazer_i20();
        let models = [toy_model()];
        let plans = ["none", "ecc", "dma-stall", "thermal"];
        let cache1 = SessionCache::memory_only();
        let r1 = run_fault_sweep(&accel, &models, &plans, &[0.0, 1.0], 42, &cache1, 1).unwrap();
        let cache8 = SessionCache::memory_only();
        let r8 = run_fault_sweep(&accel, &models, &plans, &[0.0, 1.0], 42, &cache8, 8).unwrap();
        assert_eq!(r1.to_json(), r8.to_json());
        assert!(r1.to_json().contains("\"availability\""));
    }

    #[test]
    fn unknown_plan_or_empty_grid_fails_loudly() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let models = [toy_model()];
        assert!(run_fault_sweep(&accel, &models, &[], &[0.5], 1, &cache, 1).is_err());
        assert!(run_fault_sweep(&accel, &[], &["none"], &[0.5], 1, &cache, 1).is_err());
        let err = run_fault_sweep(&accel, &models, &["meteor"], &[0.5], 1, &cache, 1).unwrap_err();
        assert!(err.to_string().contains("meteor"));
    }
}
