//! The compiled-session artifact cache.
//!
//! Compiling a model graph into a [`Program`] dominates the cost of an
//! experiment point, and sweeps re-derive the *same* program many
//! times (batch curves revisit configs, ablations share baselines,
//! serving warms up the sessions a sweep just built). The cache keys
//! each compiled program by `dtu_compiler::session_fingerprint` — a
//! content hash of (graph, chip config, placement, compiler config,
//! batch, compiler version) — so a lookup can never return a program
//! compiled for different inputs.
//!
//! Two tiers:
//!
//! * **memory** — an always-on `HashMap` behind a mutex, shared by all
//!   worker threads of a process;
//! * **disk** — optional, one JSON file per program (see
//!   `dtu_sim::program_to_json`) under a directory such as
//!   `target/dtu-cache/`, serving repeats across processes. Artifacts
//!   are self-invalidating: the key is the file name, so any input
//!   change produces a different name, and a corrupt or truncated file
//!   fails to parse and is treated as a miss (then overwritten by the
//!   recompiled artifact). Disk writes are best-effort; an unwritable
//!   cache directory degrades to memory-only behaviour.
//!
//! Hits and misses are exported both as plain [`CacheStats`] and as
//! `dtu-telemetry` counters ([`Counter::SessionCacheHits`] /
//! [`Counter::SessionCacheMisses`]).
//!
//! [`Program`]: dtu_sim::Program
//! [`Counter::SessionCacheHits`]: dtu_telemetry::Counter::SessionCacheHits
//! [`Counter::SessionCacheMisses`]: dtu_telemetry::Counter::SessionCacheMisses

use dtu::{Accelerator, DtuError, Session, SessionOptions};
use dtu_compiler::{compile, session_fingerprint, CompileError, CompilerConfig, Placement};
use dtu_graph::Graph;
use dtu_serve::{ProgramSource, ServeError};
use dtu_sim::{program_from_json, program_to_json, ChipConfig, Program};
use dtu_telemetry::{Counter, CounterSet};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version of the on-disk artifact schema, embedded in file names.
///
/// Bumping it orphans (rather than misreads) artifacts written by
/// older builds; stale files are simply never looked up again.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Where a compiled session came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-process memory tier.
    MemoryHit,
    /// Served from an on-disk artifact (and promoted to memory).
    DiskHit,
    /// Compiled fresh (and stored in both tiers).
    Miss,
}

impl CacheOutcome {
    /// Whether the lookup avoided compilation.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheOutcome::Miss)
    }

    /// Short lowercase label (`memory` / `disk` / `miss`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::MemoryHit => "memory",
            CacheOutcome::DiskHit => "disk",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Aggregate hit/miss accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the memory tier.
    pub memory_hits: u64,
    /// Lookups served from the disk tier.
    pub disk_hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses
    }

    /// Hits across both tiers.
    pub fn hits(self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Fraction of lookups served without compiling (0 when idle).
    pub fn hit_rate(self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }

    /// The accounting accumulated since `before` was sampled — the
    /// slice of cache traffic attributable to one sweep or fleet run
    /// against a longer-lived cache.
    pub fn delta_since(self, before: CacheStats) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits - before.memory_hits,
            disk_hits: self.disk_hits - before.disk_hits,
            misses: self.misses - before.misses,
        }
    }
}

/// The two-tier compiled-session cache. Shareable across threads
/// (`&SessionCache` is all the worker pool needs).
#[derive(Debug)]
pub struct SessionCache {
    memory: Mutex<HashMap<u64, Arc<Program>>>,
    disk_dir: Option<PathBuf>,
    stats: Mutex<CacheStats>,
}

impl SessionCache {
    /// A cache with only the in-process memory tier.
    pub fn memory_only() -> Self {
        SessionCache {
            memory: Mutex::new(HashMap::new()),
            disk_dir: None,
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// A cache whose disk tier lives under `dir` (created on first
    /// write; unreadable/unwritable directories degrade gracefully).
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        SessionCache {
            memory: Mutex::new(HashMap::new()),
            disk_dir: Some(dir.into()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// The conventional disk-tier location, `target/dtu-cache/`.
    pub fn default_disk_dir() -> PathBuf {
        PathBuf::from("target").join("dtu-cache")
    }

    /// The disk-tier directory, if the cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    fn artifact_path(&self, key: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.v{CACHE_FORMAT_VERSION}.json")))
    }

    /// Compiles (or recalls) the session for `(graph, options)` on
    /// `accel`, reporting where it came from.
    ///
    /// Resolution happens exactly as in [`Session::compile`]
    /// (via [`SessionOptions::resolve`]), so the returned session is
    /// indistinguishable from an uncached compile.
    ///
    /// Concurrent lookups of the same key may both compile (last
    /// write wins); the result is identical either way, so the race is
    /// only a little wasted work, never wrong data.
    ///
    /// # Errors
    ///
    /// Compilation failures surface as [`DtuError`], exactly as from
    /// [`Session::compile`]. Disk-tier problems never error: a
    /// missing, corrupt, or unparsable artifact is a miss, and a
    /// failed write leaves the memory tier authoritative.
    pub fn compile_session<'a>(
        &self,
        accel: &'a Accelerator,
        graph: &Graph,
        options: &SessionOptions,
    ) -> Result<(Session<'a>, CacheOutcome), DtuError> {
        let (placement, compiler, batch) = options.resolve(accel);
        let (program, outcome) =
            self.lookup_or_compile(graph, accel.config(), &placement, &compiler, batch)?;
        Ok((
            Session::from_program(accel, (*program).clone(), batch),
            outcome,
        ))
    }

    /// The tier walk itself, on raw compilation inputs: memory, then
    /// disk, then [`compile`]. This is the layer shared with the
    /// serving engine (via the [`ProgramSource`] impl), which resolves
    /// its own placements and cannot go through [`SessionOptions`].
    ///
    /// # Errors
    ///
    /// Compilation failures as [`CompileError`]; cache tiers never
    /// error (see [`SessionCache::compile_session`]).
    pub fn lookup_or_compile(
        &self,
        graph: &Graph,
        chip: &ChipConfig,
        placement: &Placement,
        compiler: &CompilerConfig,
        batch: usize,
    ) -> Result<(Arc<Program>, CacheOutcome), CompileError> {
        let key = session_fingerprint(graph, chip, placement, compiler, batch);

        if let Some(program) = self.memory.lock().expect("cache lock").get(&key).cloned() {
            self.bump(CacheOutcome::MemoryHit);
            return Ok((program, CacheOutcome::MemoryHit));
        }

        if let Some(program) = self.load_artifact(key) {
            let program = Arc::new(program);
            self.memory
                .lock()
                .expect("cache lock")
                .insert(key, Arc::clone(&program));
            self.bump(CacheOutcome::DiskHit);
            return Ok((program, CacheOutcome::DiskHit));
        }

        let program = Arc::new(compile(graph, chip, placement, compiler)?);
        self.store_artifact(key, &program);
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&program));
        self.bump(CacheOutcome::Miss);
        Ok((program, CacheOutcome::Miss))
    }

    fn load_artifact(&self, key: u64) -> Option<Program> {
        let path = self.artifact_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        program_from_json(&text).ok()
    }

    fn store_artifact(&self, key: u64, program: &Program) {
        let Some(path) = self.artifact_path(key) else {
            return;
        };
        let Ok(json) = program_to_json(program) else {
            // Unserializable programs just stay memory-only.
            return;
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        // Write-then-rename so a concurrent reader never sees a
        // half-written artifact (it sees either nothing or the whole
        // file; a torn leftover tmp file is ignored by lookups).
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn bump(&self, outcome: CacheOutcome) {
        let mut stats = self.stats.lock().expect("stats lock");
        match outcome {
            CacheOutcome::MemoryHit => stats.memory_hits += 1,
            CacheOutcome::DiskHit => stats.disk_hits += 1,
            CacheOutcome::Miss => stats.misses += 1,
        }
    }

    /// Aggregate hit/miss accounting so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("stats lock")
    }

    /// The accounting as `dtu-telemetry` counters
    /// (`dtu_session_cache_hits_total` / `dtu_session_cache_misses_total`).
    pub fn counters(&self) -> CounterSet {
        let stats = self.stats();
        let mut set = CounterSet::new();
        set.add(Counter::SessionCacheHits, stats.hits() as f64);
        set.add(Counter::SessionCacheMisses, stats.misses as f64);
        set
    }

    /// Drops every memory-tier entry (disk artifacts stay).
    pub fn clear_memory(&self) {
        self.memory.lock().expect("cache lock").clear();
    }

    /// Number of programs currently held in the memory tier.
    pub fn memory_entries(&self) -> usize {
        self.memory.lock().expect("cache lock").len()
    }
}

/// Lets the serving engine's `CompiledModel::with_source` compile
/// through this cache, so serving warm-up reuses what sweeps already
/// built (and vice versa, across processes when a disk tier is set).
impl ProgramSource for SessionCache {
    fn compiled_program(
        &self,
        graph: &Graph,
        chip: &ChipConfig,
        placement: &Placement,
        compiler: &CompilerConfig,
        batch: usize,
    ) -> Result<(Program, bool), ServeError> {
        let (program, outcome) = self
            .lookup_or_compile(graph, chip, placement, compiler, batch)
            .map_err(ServeError::Compile)?;
        Ok(((*program).clone(), outcome.is_hit()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn toy(batch: usize) -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[batch, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        g.mark_output(c);
        g
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dtu-cache-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn memory_tier_hits_and_matches_uncached_compile() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        let (s1, o1) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        let (s2, o2) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(s1.program(), s2.program());
        let direct = Session::compile(&accel, &toy(1), SessionOptions::default()).unwrap();
        assert_eq!(s2.program(), direct.program());
        assert_eq!(
            s2.run().unwrap().latency_ms(),
            direct.run().unwrap().latency_ms()
        );
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn different_options_are_different_entries() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        cache
            .compile_session(&accel, &toy(4), &SessionOptions::batched(4))
            .unwrap();
        let (_, o) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(cache.memory_entries(), 2);
        assert_eq!(o, CacheOutcome::MemoryHit);
    }

    #[test]
    fn disk_tier_survives_memory_clear() {
        let dir = temp_dir("disk");
        let _ = std::fs::remove_dir_all(&dir);
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::with_disk(&dir);
        let (_, o1) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        // Simulate a fresh process: memory gone, disk intact.
        cache.clear_memory();
        let (s, o2) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(o2, CacheOutcome::DiskHit);
        assert!(s.run().unwrap().latency_ms() > 0.0);
        // And promoted back to memory.
        let (_, o3) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(o3, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_recompile_without_panicking() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::with_disk(&dir);
        cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        // Truncate every artifact in the directory.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        }
        cache.clear_memory();
        let (s, outcome) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "corrupt artifact is a miss");
        assert!(s.run().unwrap().latency_ms() > 0.0);
        // The recompile rewrote a healthy artifact.
        cache.clear_memory();
        let (_, healed) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(healed, CacheOutcome::DiskHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_disk_dir_degrades_to_memory_only() {
        // A path that cannot be created (parent is a file).
        let file = temp_dir("plainfile");
        std::fs::write(&file, "not a directory").unwrap();
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::with_disk(file.join("sub"));
        let (_, o1) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        let (_, o2) = cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn serving_engine_compiles_through_the_shared_cache() {
        use dtu_serve::{CompiledModel, ServiceModel};
        use dtu_sim::{Chip, GroupId};
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        // A sweep-style compile seeds the cache...
        let full = Placement::explicit(vec![GroupId::new(0, 0)]);
        let chip_cfg = accel.config().clone();
        let compiler = CompilerConfig::for_chip(&chip_cfg);
        cache
            .lookup_or_compile(&toy(1), &chip_cfg, &full, &compiler, 1)
            .unwrap();
        assert_eq!(cache.stats().misses, 1);
        // ...and the serving engine's session compile hits it.
        let chip = Chip::new(chip_cfg);
        let mut model = CompiledModel::new(&chip, "toy", toy).with_source(&cache);
        let ms = model
            .service_ms(1, &Placement::explicit(vec![GroupId::new(0, 0)]))
            .unwrap();
        assert!(ms > 0.0);
        assert_eq!(cache.stats().hits(), 1, "serve reused the sweep's program");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn counters_flow_into_the_registry() {
        let accel = Accelerator::cloudblazer_i20();
        let cache = SessionCache::memory_only();
        cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        cache
            .compile_session(&accel, &toy(1), &SessionOptions::default())
            .unwrap();
        let counters = cache.counters();
        assert_eq!(counters.get(Counter::SessionCacheHits), 1.0);
        assert_eq!(counters.get(Counter::SessionCacheMisses), 1.0);
    }
}
