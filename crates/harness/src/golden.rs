//! Golden-figure comparison for CI regression gating.
//!
//! A golden file is a committed JSON report (figures, sweep points);
//! the gate regenerates the report and compares it against the golden
//! with [`compare_golden`]. Comparison is *structural with numeric
//! tolerance*: both documents are tokenized into an alternating
//! sequence of literal text chunks and numbers, the chunks must match
//! byte-for-byte (so schema changes always fail), and the numbers must
//! agree within a relative tolerance (so float-formatting noise does
//! not, but real drift does). [`GOLDEN_RTOL`] (1e-9) is the tolerance
//! every CI gate in this repository uses.

/// The relative tolerance of the committed golden-figure gates.
pub const GOLDEN_RTOL: f64 = 1e-9;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// A literal chunk: everything between numbers (keys, braces,
    /// quotes, commas). Must match exactly.
    Text(String),
    /// A numeric literal, kept with its source spelling for messages.
    Number(f64, String),
}

/// Splits a JSON document into literal chunks and numeric literals.
///
/// A number starts at a digit, or at `-` immediately followed by a
/// digit, and extends over the JSON number grammar
/// (`-?\d+(\.\d+)?([eE][+-]?\d+)?`). Digits inside quoted words (like
/// a `"fig12"` key) tokenize as numbers too — harmlessly, since both
/// sides split identically and equal integers compare equal.
fn tokenize(doc: &str) -> Vec<Token> {
    let bytes = doc.as_bytes();
    let mut tokens = Vec::new();
    let mut text = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let starts_number = bytes[i].is_ascii_digit()
            || (bytes[i] == b'-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit());
        if !starts_number {
            text.push(bytes[i] as char);
            i += 1;
            continue;
        }
        let start = i;
        if bytes[i] == b'-' {
            i += 1;
        }
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
            let mut j = i + 1;
            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                j += 1;
            }
            if j < bytes.len() && bytes[j].is_ascii_digit() {
                i = j;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
        }
        let raw = &doc[start..i];
        match raw.parse::<f64>() {
            Ok(v) => {
                if !text.is_empty() {
                    tokens.push(Token::Text(std::mem::take(&mut text)));
                }
                tokens.push(Token::Number(v, raw.to_string()));
            }
            Err(_) => text.push_str(raw),
        }
    }
    if !text.is_empty() {
        tokens.push(Token::Text(text));
    }
    tokens
}

fn numbers_agree(a: f64, b: f64, rtol: f64) -> bool {
    a == b || (a - b).abs() <= rtol * a.abs().max(b.abs())
}

/// Trims a literal chunk to something readable in an error message.
fn excerpt(s: &str) -> String {
    let compact: String = s.chars().take(60).collect();
    if compact.len() < s.len() {
        format!("{compact}…")
    } else {
        compact
    }
}

/// Compares a regenerated JSON document against a golden one.
///
/// # Errors
///
/// A human-readable description of the first divergence: a structural
/// (literal-chunk) mismatch, a number drifting beyond `rtol` relative
/// tolerance, or one document ending before the other. `Ok(())` means
/// the documents are figure-equivalent.
pub fn compare_golden(golden: &str, actual: &str, rtol: f64) -> Result<(), String> {
    let want = tokenize(golden);
    let got = tokenize(actual);
    let mut numbers_checked = 0usize;
    for (idx, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        match (w, g) {
            (Token::Text(wt), Token::Text(gt)) => {
                if wt != gt {
                    return Err(format!(
                        "structural mismatch at token {idx}: golden has '{}', regenerated has '{}'",
                        excerpt(wt),
                        excerpt(gt)
                    ));
                }
            }
            (Token::Number(wv, wr), Token::Number(gv, gr)) => {
                numbers_checked += 1;
                if !numbers_agree(*wv, *gv, rtol) {
                    let rel = (wv - gv).abs() / wv.abs().max(gv.abs()).max(f64::MIN_POSITIVE);
                    return Err(format!(
                        "figure #{numbers_checked} drifted: golden {wr}, regenerated {gr} \
                         (relative error {rel:.3e} > tolerance {rtol:.0e})"
                    ));
                }
            }
            (w, g) => {
                let kind = |t: &Token| match t {
                    Token::Text(_) => "text",
                    Token::Number(..) => "number",
                };
                return Err(format!(
                    "structural mismatch at token {idx}: golden has {}, regenerated has {}",
                    kind(w),
                    kind(g)
                ));
            }
        }
    }
    if want.len() != got.len() {
        return Err(format!(
            "document length mismatch: golden has {} tokens, regenerated has {}",
            want.len(),
            got.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_pass() {
        let doc = r#"{"fig12":{"bw":1.6},"rows":[{"ms":0.125,"x":-3e-2}]}"#;
        assert_eq!(compare_golden(doc, doc, GOLDEN_RTOL), Ok(()));
    }

    #[test]
    fn formatting_noise_within_tolerance_passes() {
        let golden = r#"{"v":0.3333333333333333}"#;
        let actual = r#"{"v":0.33333333333333337}"#;
        assert_eq!(compare_golden(golden, actual, GOLDEN_RTOL), Ok(()));
    }

    #[test]
    fn numeric_drift_beyond_tolerance_fails_with_both_values() {
        let golden = r#"{"latency_ms":1.000000000,"n":2}"#;
        let actual = r#"{"latency_ms":1.000001000,"n":2}"#;
        let err = compare_golden(golden, actual, GOLDEN_RTOL).unwrap_err();
        assert!(err.contains("1.000000000"), "{err}");
        assert!(err.contains("1.000001000"), "{err}");
        assert!(err.contains("drifted"), "{err}");
    }

    #[test]
    fn schema_changes_fail_structurally() {
        let golden = r#"{"latency_ms":1.0}"#;
        let actual = r#"{"latency_us":1.0}"#;
        let err = compare_golden(golden, actual, GOLDEN_RTOL).unwrap_err();
        assert!(err.contains("structural"), "{err}");
        // An extra trailing field fails on length.
        let longer = r#"{"latency_ms":1.0,"extra":2}"#;
        let err = compare_golden(golden, longer, GOLDEN_RTOL).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn signs_exponents_and_digit_bearing_keys_tokenize_stably() {
        let doc = r#"{"fig15":[-1.5e-3,2E+4,-0,7]}"#;
        assert_eq!(compare_golden(doc, doc, GOLDEN_RTOL), Ok(()));
        // A sign flip is caught even though |values| match.
        let flipped = r#"{"fig15":[1.5e-3,2E+4,-0,7]}"#;
        assert!(compare_golden(doc, flipped, GOLDEN_RTOL).is_err());
    }

    #[test]
    fn zero_against_zero_passes() {
        assert_eq!(compare_golden("[0,0.0]", "[0,0.0]", GOLDEN_RTOL), Ok(()));
    }
}
