//! The experiment plan: a deduplicated DAG of points run by a
//! work-stealing worker pool.
//!
//! A *point* is one unit of experiment work (typically: compile a
//! session — usually through the [`SessionCache`] — run it, reduce the
//! report to a row). Points carry a caller-chosen 64-bit content key;
//! adding a key that is already planned returns the existing
//! [`PointId`] instead of queuing duplicate work, which is how a
//! batch-curve binary and an ablation binary sharing a (model, batch,
//! config) point evaluate it once.
//!
//! Execution is deterministic *in its results*: [`ExperimentPlan::run`]
//! returns one result slot per point in insertion order, whatever the
//! thread schedule did. With `jobs = 1` the plan runs inline on the
//! calling thread with no pool at all.
//!
//! [`SessionCache`]: crate::SessionCache

use crate::HarnessError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Handle to one planned point, also its index into the result vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(usize);

impl PointId {
    /// The point's index in plan/result order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Dependency results handed to a running job.
///
/// Holds clones of the declared dependencies' successful results,
/// taken just before the job starts so the job runs without holding
/// any scheduler lock.
#[derive(Debug)]
pub struct PlanCtx<R> {
    deps: Vec<(PointId, R)>,
}

impl<R> PlanCtx<R> {
    /// The result of a declared dependency, if it was declared.
    pub fn dep(&self, id: PointId) -> Option<&R> {
        self.deps.iter().find(|(d, _)| *d == id).map(|(_, r)| r)
    }

    /// The result of a declared dependency, as an error when the point
    /// never declared `id` as a dependency.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Config`] for undeclared dependencies — the
    /// scheduler only guarantees completion ordering for declared
    /// edges, so reading anything else would race.
    pub fn require(&self, id: PointId) -> Result<&R, HarnessError> {
        self.dep(id).ok_or_else(|| {
            HarnessError::Config(format!("point read undeclared dependency #{}", id.0))
        })
    }
}

type Job<'env, R> = Box<dyn FnOnce(&PlanCtx<R>) -> Result<R, HarnessError> + Send + 'env>;

struct Point<'env, R> {
    key: u64,
    label: String,
    deps: Vec<PointId>,
    job: Option<Job<'env, R>>,
}

/// A deduplicated DAG of experiment points.
///
/// `R` is the per-point result type; it must be `Clone` so dependency
/// results can be handed to dependent jobs without keeping the
/// scheduler locked, and `Send` so results can cross worker threads.
pub struct ExperimentPlan<'env, R> {
    points: Vec<Point<'env, R>>,
}

impl<R> std::fmt::Debug for ExperimentPlan<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("points", &self.points.len())
            .finish()
    }
}

impl<R> Default for ExperimentPlan<'_, R> {
    fn default() -> Self {
        ExperimentPlan { points: Vec::new() }
    }
}

/// The worker count suggested by the machine (the `--jobs` default).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl<'env, R: Clone + Send> ExperimentPlan<'env, R> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (deduplicated) points planned.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The label a point was planned with.
    pub fn label(&self, id: PointId) -> &str {
        &self.points[id.0].label
    }

    /// Plans one point.
    ///
    /// `key` is a caller-chosen content hash of everything that
    /// determines the point's result (e.g. a session fingerprint from
    /// `dtu_compiler::session_fingerprint`, possibly folded with a
    /// workload discriminant). If `key` is already planned, the
    /// existing point's id is returned and `job` is dropped — the DAG
    /// stays deduplicated. `deps` must already be planned (ids from
    /// earlier `add_point` calls), which keeps the graph acyclic by
    /// construction; a job may read only its declared deps via
    /// [`PlanCtx`]. A failed dependency fails this point with
    /// [`HarnessError::DependencyFailed`] without running its job.
    pub fn add_point(
        &mut self,
        key: u64,
        label: impl Into<String>,
        deps: &[PointId],
        job: impl FnOnce(&PlanCtx<R>) -> Result<R, HarnessError> + Send + 'env,
    ) -> PointId {
        if let Some(existing) = self.points.iter().position(|p| p.key == key) {
            return PointId(existing);
        }
        let id = PointId(self.points.len());
        self.points.push(Point {
            key,
            label: label.into(),
            deps: deps.to_vec(),
            job: Some(Box::new(job)),
        });
        id
    }

    /// Runs every point and returns one result per point, in insertion
    /// order regardless of schedule. `jobs` is clamped to at least 1
    /// and at most the number of points; `jobs = 1` runs inline on the
    /// calling thread.
    pub fn run(self, jobs: usize) -> Vec<Result<R, HarnessError>> {
        let jobs = jobs.max(1).min(self.points.len().max(1));
        if jobs <= 1 {
            return self.run_inline();
        }
        self.run_pool(jobs)
    }

    /// Serial execution. Dependencies always precede dependents in
    /// index order (enforced by `add_point`), so one forward pass is a
    /// topological order.
    fn run_inline(self) -> Vec<Result<R, HarnessError>> {
        let mut results: Vec<Result<R, HarnessError>> = Vec::with_capacity(self.points.len());
        let mut labels: Vec<String> = Vec::with_capacity(self.points.len());
        for point in self.points {
            labels.push(point.label.clone());
            let outcome = match failed_dep(&point.deps, &results, &labels) {
                Some(err) => Err(err),
                None => {
                    let ctx = PlanCtx {
                        deps: point
                            .deps
                            .iter()
                            .map(|d| (*d, results[d.0].clone().expect("dep checked ok")))
                            .collect(),
                    };
                    run_job(
                        point.job.expect("job present before run"),
                        &ctx,
                        &point.label,
                    )
                }
            };
            results.push(outcome);
        }
        results
    }

    /// Parallel execution on a work-stealing pool: each worker owns a
    /// ready deque, pushes points it unblocks onto its own deque
    /// (locality), and steals from the longest other deque when idle.
    /// One mutex guards the scheduler state; jobs run unlocked.
    fn run_pool(mut self, jobs: usize) -> Vec<Result<R, HarnessError>> {
        let n = self.points.len();
        let waiting: Vec<usize> = self.points.iter().map(|p| p.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in self.points.iter().enumerate() {
            for d in &p.deps {
                dependents[d.0].push(i);
            }
        }
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); jobs];
        for (seed, i) in (0..n).filter(|&i| waiting[i] == 0).enumerate() {
            queues[seed % jobs].push_back(i);
        }
        let jobs_vec: Vec<Option<Job<'env, R>>> =
            self.points.iter_mut().map(|p| p.job.take()).collect();
        let labels: Vec<String> = self.points.iter().map(|p| p.label.clone()).collect();
        let deps: Vec<Vec<PointId>> = self.points.iter().map(|p| p.deps.clone()).collect();

        struct Sched<'env, R> {
            queues: Vec<VecDeque<usize>>,
            jobs: Vec<Option<Job<'env, R>>>,
            results: Vec<Option<Result<R, HarnessError>>>,
            waiting: Vec<usize>,
            completed: usize,
        }
        let sched = Mutex::new(Sched {
            queues,
            jobs: jobs_vec,
            results: (0..n).map(|_| None).collect(),
            waiting,
            completed: 0,
        });
        let ready = Condvar::new();

        std::thread::scope(|scope| {
            for worker in 0..jobs {
                let sched = &sched;
                let ready = &ready;
                let labels = &labels;
                let deps = &deps;
                let dependents = &dependents;
                scope.spawn(move || loop {
                    // Claim a point: own deque first, then steal.
                    let mut guard = sched.lock().expect("scheduler lock");
                    let idx = loop {
                        if let Some(idx) = guard.queues[worker].pop_front() {
                            break idx;
                        }
                        let victim = (0..guard.queues.len())
                            .filter(|&w| w != worker)
                            .max_by_key(|&w| guard.queues[w].len())
                            .filter(|&w| !guard.queues[w].is_empty());
                        if let Some(v) = victim {
                            let idx = guard.queues[v].pop_back().expect("victim non-empty");
                            break idx;
                        }
                        if guard.completed == guard.results.len() {
                            return;
                        }
                        guard = ready.wait(guard).expect("scheduler wait");
                    };
                    // Build the context (dep results are complete) and
                    // take the job out of the shared state.
                    let dep_err = deps[idx].iter().find_map(|d| {
                        match guard.results[d.0].as_ref().expect("dep completed") {
                            Ok(_) => None,
                            Err(_) => Some(HarnessError::DependencyFailed {
                                dep: labels[d.0].clone(),
                            }),
                        }
                    });
                    let outcome = match dep_err {
                        Some(err) => Err(err),
                        None => {
                            let ctx = PlanCtx {
                                deps: deps[idx]
                                    .iter()
                                    .map(|d| {
                                        let r = guard.results[d.0]
                                            .as_ref()
                                            .expect("dep completed")
                                            .clone()
                                            .expect("dep checked ok");
                                        (*d, r)
                                    })
                                    .collect(),
                            };
                            let job = guard.jobs[idx].take().expect("job present before run");
                            drop(guard);
                            let outcome = run_job(job, &ctx, &labels[idx]);
                            guard = sched.lock().expect("scheduler lock");
                            outcome
                        }
                    };
                    // Publish and unblock dependents onto our deque.
                    guard.results[idx] = Some(outcome);
                    guard.completed += 1;
                    for &dep in &dependents[idx] {
                        guard.waiting[dep] -= 1;
                        if guard.waiting[dep] == 0 {
                            guard.queues[worker].push_back(dep);
                        }
                    }
                    drop(guard);
                    ready.notify_all();
                });
            }
        });

        sched
            .into_inner()
            .expect("scheduler lock")
            .results
            .into_iter()
            .map(|r| r.expect("all points completed"))
            .collect()
    }
}

fn failed_dep<R>(
    deps: &[PointId],
    results: &[Result<R, HarnessError>],
    labels: &[String],
) -> Option<HarnessError> {
    deps.iter().find_map(|d| match &results[d.0] {
        Ok(_) => None,
        Err(_) => Some(HarnessError::DependencyFailed {
            dep: labels[d.0].clone(),
        }),
    })
}

fn run_job<'env, R>(job: Job<'env, R>, ctx: &PlanCtx<R>, label: &str) -> Result<R, HarnessError> {
    job(ctx).map_err(|e| match e {
        // Keep structured errors; wrap anything else with the label.
        HarnessError::DependencyFailed { .. } | HarnessError::Config(_) => e,
        HarnessError::Job { label: l, message } if !l.is_empty() => {
            HarnessError::Job { label: l, message }
        }
        HarnessError::Job { message, .. } => HarnessError::Job {
            label: label.to_string(),
            message,
        },
    })
}

/// Wraps any error into a job failure with the label filled in later
/// by the scheduler.
impl From<dtu::DtuError> for HarnessError {
    fn from(e: dtu::DtuError) -> Self {
        HarnessError::Job {
            label: String::new(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_insertion_order() {
        for jobs in [1, 2, 8] {
            let mut plan = ExperimentPlan::new();
            for i in 0..40u64 {
                plan.add_point(i, format!("p{i}"), &[], move |_| Ok(i * 10));
            }
            let results = plan.run(jobs);
            let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, (0..40).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn duplicate_keys_coalesce_and_run_once() {
        let runs = AtomicUsize::new(0);
        let mut plan = ExperimentPlan::new();
        let a = plan.add_point(7, "a", &[], |_| {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok(1)
        });
        let b = plan.add_point(7, "b", &[], |_| {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok(2)
        });
        assert_eq!(a, b);
        assert_eq!(plan.len(), 1);
        let results = plan.run(4);
        assert_eq!(results, vec![Ok(1)]);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dependencies_see_dependency_results() {
        for jobs in [1, 4] {
            let mut plan = ExperimentPlan::new();
            let a = plan.add_point(1, "a", &[], |_| Ok(5u64));
            let b = plan.add_point(2, "b", &[], |_| Ok(6u64));
            let c = plan.add_point(3, "sum", &[a, b], move |ctx| {
                Ok(ctx.require(a)? + ctx.require(b)?)
            });
            let results = plan.run(jobs);
            assert_eq!(results[c.index()], Ok(11));
        }
    }

    #[test]
    fn failed_dependency_skips_dependents() {
        for jobs in [1, 4] {
            let mut plan = ExperimentPlan::new();
            let bad = plan.add_point(1, "bad", &[], |_| {
                Err::<u64, _>(HarnessError::Job {
                    label: "bad".into(),
                    message: "boom".into(),
                })
            });
            let child = plan.add_point(2, "child", &[bad], |_| Ok(1));
            let grandchild = plan.add_point(3, "grandchild", &[child], |_| Ok(2));
            let ok = plan.add_point(4, "ok", &[], |_| Ok(3));
            let results = plan.run(jobs);
            assert!(matches!(
                results[bad.index()],
                Err(HarnessError::Job { .. })
            ));
            assert_eq!(
                results[child.index()],
                Err(HarnessError::DependencyFailed { dep: "bad".into() })
            );
            assert_eq!(
                results[grandchild.index()],
                Err(HarnessError::DependencyFailed {
                    dep: "child".into()
                })
            );
            assert_eq!(results[ok.index()], Ok(3));
        }
    }

    #[test]
    fn undeclared_dependency_read_is_a_config_error() {
        let mut plan = ExperimentPlan::new();
        let a = plan.add_point(1, "a", &[], |_| Ok(1u64));
        let b = plan.add_point(2, "b", &[], move |ctx| Ok(*ctx.require(a)?));
        let results = plan.run(1);
        assert!(matches!(results[b.index()], Err(HarnessError::Config(_))));
    }

    #[test]
    fn deep_chains_complete_under_many_workers() {
        let mut plan = ExperimentPlan::new();
        let mut prev: Option<PointId> = None;
        for i in 0..64u64 {
            let deps: Vec<PointId> = prev.into_iter().collect();
            let p = prev;
            prev = Some(plan.add_point(i, format!("c{i}"), &deps, move |ctx| {
                Ok(match p {
                    Some(p) => ctx.require(p)? + 1,
                    None => 0u64,
                })
            }));
        }
        let results = plan.run(8);
        assert_eq!(*results.last().unwrap().as_ref().unwrap(), 63);
    }

    #[test]
    fn jobs_beyond_point_count_are_clamped() {
        let mut plan = ExperimentPlan::new();
        plan.add_point(1, "only", &[], |_| Ok(42u64));
        assert_eq!(plan.run(64), vec![Ok(42)]);
    }

    #[test]
    fn empty_plan_runs() {
        let plan: ExperimentPlan<u64> = ExperimentPlan::new();
        assert!(plan.run(4).is_empty());
        assert!(ExperimentPlan::<u64>::new().run(1).is_empty());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
