//! The analytic-timing calibration cache and the fast sweep path.
//!
//! The analytic timing backend (`dtu_sim::AnalyticBackend`) needs a
//! [`AnalyticTiming`] fit before it can price anything, and the fit is
//! a pure function of the chip config (plus the calibration and
//! compiler versions that define the probe grid and the programs it
//! prices). [`CalibrationCache`] memoizes that fit exactly like
//! [`SessionCache`] memoizes compiled programs:
//!
//! * **memory** — an always-on map behind a mutex;
//! * **disk** — optional `{key:016x}.cal.v{N}.json` artifacts whose
//!   *name* is the content key, so any input change produces a
//!   different file and stale artifacts are simply never read again. A
//!   corrupt or truncated artifact fails `AnalyticTiming::from_json`
//!   and heals by re-probing (then overwriting the artifact).
//!
//! On top of the calibration sits the **price cache**: an analytic
//! sweep point is a pure function of (session fingerprint, calibration
//! key), so its (latency, energy) pair can be memoized too — a warm
//! analytic sweep then skips both compilation *and* the timing walk,
//! which is where the ≥10× wall-clock win over the interpreter comes
//! from. Prices serialize through `dtu_telemetry::json::number`
//! (Rust's shortest-roundtrip `{v}` formatting) and parse back with
//! `str::parse::<f64>`, which is exact, so reports stay byte-identical
//! across cache temperature.

use crate::{CacheOutcome, CacheStats, HarnessError};
use dtu_compiler::{Fnv1a, COMPILER_VERSION};
use dtu_sim::{AnalyticTiming, ChipConfig, CALIBRATION_VERSION};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One memoized analytic sweep point: everything `SweepPoint` needs
/// that is not derivable from the grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePoint {
    /// End-to-end latency of one batch, ms.
    pub latency_ms: f64,
    /// Energy per batch, joules.
    pub energy_j: f64,
}

impl PricePoint {
    fn to_json(self) -> String {
        use dtu_telemetry::json::{number, JsonObject};
        JsonObject::new()
            .raw("latency_ms", &number(self.latency_ms))
            .raw("energy_j", &number(self.energy_j))
            .build()
    }

    fn from_json(text: &str) -> Option<PricePoint> {
        let field = |key: &str| -> Option<f64> {
            let tag = format!("\"{key}\":");
            let at = text.find(&tag)? + tag.len();
            let rest = &text[at..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse::<f64>().ok()
        };
        let p = PricePoint {
            latency_ms: field("latency_ms")?,
            energy_j: field("energy_j")?,
        };
        (p.latency_ms.is_finite() && p.energy_j.is_finite()).then_some(p)
    }
}

/// Two-tier cache of [`AnalyticTiming`] fits and analytic price
/// points. Shareable across threads, like [`SessionCache`](crate::SessionCache).
#[derive(Debug)]
pub struct CalibrationCache {
    timings: Mutex<HashMap<u64, AnalyticTiming>>,
    prices: Mutex<HashMap<u64, PricePoint>>,
    disk_dir: Option<PathBuf>,
    stats: Mutex<CacheStats>,
    price_stats: Mutex<CacheStats>,
    calibration_version: u32,
    compiler_version: u32,
}

impl CalibrationCache {
    /// A cache with only the in-process memory tier.
    pub fn memory_only() -> Self {
        Self::build(None)
    }

    /// A cache whose disk tier lives under `dir` (created on first
    /// write; unwritable directories degrade gracefully).
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        Self::build(Some(dir.into()))
    }

    fn build(disk_dir: Option<PathBuf>) -> Self {
        CalibrationCache {
            timings: Mutex::new(HashMap::new()),
            prices: Mutex::new(HashMap::new()),
            disk_dir,
            stats: Mutex::new(CacheStats::default()),
            price_stats: Mutex::new(CacheStats::default()),
            calibration_version: CALIBRATION_VERSION,
            compiler_version: COMPILER_VERSION,
        }
    }

    /// Overrides the version pair mixed into every key (builder-style).
    ///
    /// The production values are always
    /// (`dtu_sim::CALIBRATION_VERSION`, `dtu_compiler::COMPILER_VERSION`);
    /// this hook exists so invalidation tests can prove that bumping
    /// either one orphans old artifacts and forces a re-probe.
    pub fn with_versions(mut self, calibration: u32, compiler: u32) -> Self {
        self.calibration_version = calibration;
        self.compiler_version = compiler;
        self
    }

    /// The disk-tier directory, if the cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// The content key of `cfg`'s calibration: a hash of the chip
    /// config's canonical (Debug) form and both version stamps. Any
    /// config field change, probe-grid revision, or compiler revision
    /// produces a different key — and therefore a different artifact
    /// file name.
    pub fn calibration_key(&self, cfg: &ChipConfig) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("calibration/");
        h.write_u64(u64::from(self.calibration_version));
        h.write_u64(u64::from(self.compiler_version));
        h.write_str(&format!("{cfg:?}"));
        h.finish()
    }

    fn timing_path(&self, key: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.cal.v{CALIBRATION_VERSION}.json")))
    }

    fn price_path(&self, key: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.price.v{CALIBRATION_VERSION}.json")))
    }

    /// Returns the calibrated timing for `cfg`, probing the
    /// interpreter only on a full miss; reports where the fit came
    /// from.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Job`] when calibration itself fails (an
    /// unprobeable chip config). Cache tiers never error: corrupt or
    /// unreadable artifacts are misses, failed writes leave the memory
    /// tier authoritative.
    pub fn timing_for(
        &self,
        cfg: &ChipConfig,
    ) -> Result<(AnalyticTiming, CacheOutcome), HarnessError> {
        let key = self.calibration_key(cfg);

        if let Some(t) = self.timings.lock().expect("cal lock").get(&key).cloned() {
            self.bump(&self.stats, CacheOutcome::MemoryHit);
            return Ok((t, CacheOutcome::MemoryHit));
        }

        if let Some(t) = self.load_timing(key) {
            self.timings
                .lock()
                .expect("cal lock")
                .insert(key, t.clone());
            self.bump(&self.stats, CacheOutcome::DiskHit);
            return Ok((t, CacheOutcome::DiskHit));
        }

        let t = AnalyticTiming::calibrate(cfg).map_err(|e| HarnessError::Job {
            label: format!("calibrate {}", cfg.name),
            message: e.to_string(),
        })?;
        self.store(self.timing_path(key), t.to_json());
        self.timings
            .lock()
            .expect("cal lock")
            .insert(key, t.clone());
        self.bump(&self.stats, CacheOutcome::Miss);
        Ok((t, CacheOutcome::Miss))
    }

    /// Looks up a memoized analytic price (memory, then disk).
    pub fn price_lookup(&self, key: u64) -> Option<(PricePoint, CacheOutcome)> {
        if let Some(p) = self.prices.lock().expect("price lock").get(&key).copied() {
            self.bump(&self.price_stats, CacheOutcome::MemoryHit);
            return Some((p, CacheOutcome::MemoryHit));
        }
        let path = self.price_path(key)?;
        let p = PricePoint::from_json(&std::fs::read_to_string(path).ok()?)?;
        self.prices.lock().expect("price lock").insert(key, p);
        self.bump(&self.price_stats, CacheOutcome::DiskHit);
        Some((p, CacheOutcome::DiskHit))
    }

    /// Stores a freshly walked analytic price in both tiers.
    pub fn price_store(&self, key: u64, price: PricePoint) {
        self.store(self.price_path(key), price.to_json());
        self.prices.lock().expect("price lock").insert(key, price);
        self.bump(&self.price_stats, CacheOutcome::Miss);
    }

    fn load_timing(&self, key: u64) -> Option<AnalyticTiming> {
        let path = self.timing_path(key)?;
        AnalyticTiming::from_json(&std::fs::read_to_string(path).ok()?)
    }

    fn store(&self, path: Option<PathBuf>, json: String) {
        let Some(path) = path else {
            return;
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        // Write-then-rename, as in `SessionCache`: readers see nothing
        // or the whole artifact, never a torn file.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn bump(&self, which: &Mutex<CacheStats>, outcome: CacheOutcome) {
        let mut stats = which.lock().expect("stats lock");
        match outcome {
            CacheOutcome::MemoryHit => stats.memory_hits += 1,
            CacheOutcome::DiskHit => stats.disk_hits += 1,
            CacheOutcome::Miss => stats.misses += 1,
        }
    }

    /// Calibration-fit hit/miss accounting.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Price-point hit/miss accounting.
    pub fn price_stats(&self) -> CacheStats {
        *self.price_stats.lock().expect("stats lock")
    }

    /// Drops every memory-tier entry (disk artifacts stay) — the
    /// "fresh process" simulation for tests.
    pub fn clear_memory(&self) {
        self.timings.lock().expect("cal lock").clear();
        self.prices.lock().expect("price lock").clear();
    }
}

/// The content key of one analytic sweep price: the session
/// fingerprint (graph, chip, placement, compiler config, batch,
/// compiler version) folded with the calibration key, so a price can
/// never be replayed against a different program *or* a different fit.
pub fn price_key(session_fingerprint: u64, calibration_key: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("price/");
    h.write_u64(session_fingerprint);
    h.write_u64(calibration_key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dtu-cal-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn memory_then_disk_then_probe() {
        let dir = temp_dir("tiers");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CalibrationCache::with_disk(&dir);
        let cfg = ChipConfig::dtu20();
        let (t1, o1) = cache.timing_for(&cfg).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (t2, o2) = cache.timing_for(&cfg).unwrap();
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(t1, t2);
        // Fresh process: memory gone, disk artifact serves bitwise the
        // same fit.
        cache.clear_memory();
        let (t3, o3) = cache.timing_for(&cfg).unwrap();
        assert_eq!(o3, CacheOutcome::DiskHit);
        assert_eq!(t1, t3);
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chip_config_change_recalibrates() {
        let cache = CalibrationCache::memory_only();
        let (_, o1) = cache.timing_for(&ChipConfig::dtu20()).unwrap();
        let mut faster = ChipConfig::dtu20();
        faster.clock_mhz *= 2;
        let (_, o2) = cache.timing_for(&faster).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Miss, "config change must re-probe");
        assert_ne!(
            cache.calibration_key(&ChipConfig::dtu20()),
            cache.calibration_key(&faster)
        );
        // And the unchanged config still hits.
        let (_, o3) = cache.timing_for(&ChipConfig::dtu20()).unwrap();
        assert_eq!(o3, CacheOutcome::MemoryHit);
    }

    #[test]
    fn version_bump_orphans_disk_artifacts() {
        let dir = temp_dir("versions");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ChipConfig::dtu20();
        let v1 = CalibrationCache::with_disk(&dir);
        assert_eq!(v1.timing_for(&cfg).unwrap().1, CacheOutcome::Miss);
        // Same dir, bumped calibration version: the old artifact's name
        // no longer matches, so the fit re-probes rather than misreads.
        let v2 = CalibrationCache::with_disk(&dir).with_versions(CALIBRATION_VERSION + 1, 0);
        assert_eq!(v2.timing_for(&cfg).unwrap().1, CacheOutcome::Miss);
        // A compiler bump alone also invalidates.
        let v3 = CalibrationCache::with_disk(&dir)
            .with_versions(CALIBRATION_VERSION, COMPILER_VERSION + 1);
        assert_eq!(v3.timing_for(&cfg).unwrap().1, CacheOutcome::Miss);
        // The unbumped cache still disk-hits its own artifact.
        let fresh = CalibrationCache::with_disk(&dir);
        assert_eq!(fresh.timing_for(&cfg).unwrap().1, CacheOutcome::DiskHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_heals_to_reprobe() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ChipConfig::dtu20();
        let cache = CalibrationCache::with_disk(&dir);
        let (t1, _) = cache.timing_for(&cfg).unwrap();
        // Truncate the artifact on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        }
        cache.clear_memory();
        let (t2, outcome) = cache.timing_for(&cfg).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "corrupt artifact is a miss");
        assert_eq!(t1, t2, "re-probe reproduces the fit exactly");
        // The re-probe rewrote a healthy artifact.
        cache.clear_memory();
        assert_eq!(cache.timing_for(&cfg).unwrap().1, CacheOutcome::DiskHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn price_points_roundtrip_bitwise() {
        let dir = temp_dir("price");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CalibrationCache::with_disk(&dir);
        let p = PricePoint {
            latency_ms: 0.1234567890123456789,
            energy_j: 3.9e-7,
        };
        let key = price_key(42, 7);
        assert!(cache.price_lookup(key).is_none());
        cache.price_store(key, p);
        let (mem, o) = cache.price_lookup(key).unwrap();
        assert_eq!(o, CacheOutcome::MemoryHit);
        assert_eq!(mem.latency_ms.to_bits(), p.latency_ms.to_bits());
        cache.clear_memory();
        let (disk, o) = cache.price_lookup(key).unwrap();
        assert_eq!(o, CacheOutcome::DiskHit);
        assert_eq!(disk.latency_ms.to_bits(), p.latency_ms.to_bits());
        assert_eq!(disk.energy_j.to_bits(), p.energy_j.to_bits());
        assert_eq!(cache.price_stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_disk_dir_degrades_to_memory_only() {
        let file = temp_dir("plainfile");
        std::fs::write(&file, "not a directory").unwrap();
        let cache = CalibrationCache::with_disk(file.join("sub"));
        let cfg = ChipConfig::dtu20();
        assert_eq!(cache.timing_for(&cfg).unwrap().1, CacheOutcome::Miss);
        assert_eq!(cache.timing_for(&cfg).unwrap().1, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_file(&file);
    }
}
