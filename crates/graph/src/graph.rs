//! The computation graph: nodes, edges, validation, and traversal.

use crate::op::{Op, TensorType};
use crate::shape_infer::infer_node_shape;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Identity of a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A graph node: an operator applied to the outputs of other nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Optional human-readable name.
    pub name: String,
    /// The operator.
    pub op: Op,
    /// Producer nodes, in operand order.
    pub inputs: Vec<NodeId>,
}

/// Errors from graph construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An input reference points at a node that does not exist (or a
    /// later node — construction is append-only, so ids must precede).
    DanglingInput {
        /// The node being added.
        node: String,
        /// The missing input.
        input: NodeId,
    },
    /// The operator got the wrong number of inputs.
    ArityMismatch {
        /// The operator's mnemonic.
        op: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// Shape inference failed.
    ShapeInference {
        /// Why.
        reason: String,
    },
    /// The graph has no outputs marked.
    NoOutputs,
    /// An id passed to an accessor does not exist.
    UnknownNode {
        /// The missing id.
        id: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingInput { node, input } => {
                write!(f, "node {node} references missing input {input}")
            }
            GraphError::ArityMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} expects {expected} inputs, got {actual}"),
            GraphError::ShapeInference { reason } => write!(f, "shape inference: {reason}"),
            GraphError::NoOutputs => write!(f, "graph has no outputs"),
            GraphError::UnknownNode { id } => write!(f, "unknown node {id}"),
        }
    }
}

impl Error for GraphError {}

/// A DNN computation graph.
///
/// Construction is append-only (a node may only consume earlier nodes),
/// which keeps the graph acyclic by construction and makes node order a
/// valid topological order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Graph {
    /// Model name.
    pub name: String,
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds an input placeholder and returns its id.
    pub fn input(&mut self, name: impl Into<String>, ty: TensorType) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name: name.into(),
            op: Op::Input { ty },
            inputs: Vec::new(),
        });
        id
    }

    /// Adds a node and returns its id.
    ///
    /// # Errors
    ///
    /// [`GraphError::DanglingInput`] for references to nodes not yet
    /// added; [`GraphError::ArityMismatch`] for wrong operand counts.
    pub fn add_node(&mut self, op: Op, inputs: Vec<NodeId>) -> Result<NodeId, GraphError> {
        let id = NodeId(self.nodes.len());
        let name = format!("{}_{}", op.mnemonic(), id.0);
        for &i in &inputs {
            if i.0 >= self.nodes.len() {
                return Err(GraphError::DanglingInput {
                    node: name,
                    input: i,
                });
            }
        }
        if let Some(expected) = op.arity() {
            if inputs.len() != expected {
                return Err(GraphError::ArityMismatch {
                    op: op.mnemonic(),
                    expected,
                    actual: inputs.len(),
                });
            }
        } else if inputs.is_empty() {
            return Err(GraphError::ArityMismatch {
                op: op.mnemonic(),
                expected: 1,
                actual: 0,
            });
        }
        self.nodes.push(Node {
            id,
            name,
            op,
            inputs,
        });
        Ok(id)
    }

    /// Adds a named node.
    ///
    /// # Errors
    ///
    /// As for [`Graph::add_node`].
    pub fn add_named_node(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: Vec<NodeId>,
    ) -> Result<NodeId, GraphError> {
        let id = self.add_node(op, inputs)?;
        self.nodes[id.0].name = name.into();
        Ok(id)
    }

    /// Marks a node as a graph output.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// The graph's nodes in topological (construction) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownNode`].
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode { id })
    }

    /// The marked outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Consumers of each node (adjacency reversed).
    pub fn consumers(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut out: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for n in &self.nodes {
            for &i in &n.inputs {
                out.entry(i).or_default().push(n.id);
            }
        }
        out
    }

    /// Runs shape inference over the whole graph.
    ///
    /// # Errors
    ///
    /// [`GraphError::NoOutputs`] on output-less graphs and shape-inference
    /// failures from any node.
    pub fn infer_shapes(&self) -> Result<BTreeMap<NodeId, TensorType>, GraphError> {
        if self.outputs.is_empty() {
            return Err(GraphError::NoOutputs);
        }
        let mut types: BTreeMap<NodeId, TensorType> = BTreeMap::new();
        for n in &self.nodes {
            let input_types: Vec<&TensorType> = n
                .inputs
                .iter()
                .map(|i| types.get(i).expect("topological order"))
                .collect();
            let ty = infer_node_shape(&n.op, &input_types).map_err(|e| match e {
                GraphError::ShapeInference { reason } => GraphError::ShapeInference {
                    reason: format!("{} ({}): {reason}", n.name, n.op),
                },
                other => other,
            })?;
            types.insert(n.id, ty);
        }
        Ok(types)
    }

    /// Binds a dynamic dimension across all input placeholders, returning
    /// a new graph (used to instantiate a dynamic-batch model at a
    /// concrete batch size).
    pub fn bind(&self, name: &str, value: usize) -> Graph {
        let mut g = self.clone();
        for n in &mut g.nodes {
            if let Op::Input { ty } = &mut n.op {
                *ty = ty.bind(name, value);
            }
        }
        g
    }

    /// Returns the graph re-typed to run in `dtype` — the deployment-time
    /// precision selection of Table II's "diverse data types" row (e.g.
    /// INT8 quantised inference at 256 TOPS on the i20). Element types
    /// propagate from the inputs through shape inference.
    pub fn with_dtype(&self, dtype: dtu_isa::DataType) -> Graph {
        let mut g = self.clone();
        for n in &mut g.nodes {
            if let Op::Input { ty } = &mut n.op {
                ty.dtype = dtype;
            }
        }
        g
    }

    /// Counts nodes whose op satisfies a predicate.
    pub fn count_ops(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.op)).count()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} nodes)", self.name, self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, Dim};
    use dtu_isa::SfuFunc;

    fn residual_block() -> (Graph, NodeId) {
        let mut g = Graph::new("res");
        let x = g.input("x", TensorType::fixed(&[1, 64, 56, 56]));
        let c1 = g.add_node(Op::conv2d(64, 3, 1, 1), vec![x]).unwrap();
        let r1 = g.add_node(Op::Relu, vec![c1]).unwrap();
        let c2 = g.add_node(Op::conv2d(64, 3, 1, 1), vec![r1]).unwrap();
        let add = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![c2, x],
            )
            .unwrap();
        let out = g.add_node(Op::Relu, vec![add]).unwrap();
        g.mark_output(out);
        (g, out)
    }

    #[test]
    fn build_and_infer_residual_block() {
        let (g, out) = residual_block();
        assert_eq!(g.len(), 6);
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[&out], TensorType::fixed(&[1, 64, 56, 56]));
    }

    #[test]
    fn dangling_input_rejected() {
        let mut g = Graph::new("bad");
        let err = g.add_node(Op::Relu, vec![NodeId(5)]).unwrap_err();
        assert!(matches!(err, GraphError::DanglingInput { .. }));
    }

    #[test]
    fn arity_checked() {
        let mut g = Graph::new("bad");
        let x = g.input("x", TensorType::fixed(&[1, 2]));
        assert!(matches!(
            g.add_node(
                Op::Binary {
                    kind: BinaryKind::Add
                },
                vec![x]
            ),
            Err(GraphError::ArityMismatch { .. })
        ));
        assert!(matches!(
            g.add_node(Op::Concat { axis: 0 }, vec![]),
            Err(GraphError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn no_outputs_detected() {
        let mut g = Graph::new("noout");
        g.input("x", TensorType::fixed(&[1]));
        assert_eq!(g.infer_shapes().unwrap_err(), GraphError::NoOutputs);
    }

    #[test]
    fn shape_error_carries_node_name() {
        let mut g = Graph::new("bad");
        let x = g.input("x", TensorType::fixed(&[1, 3])); // rank 2, conv needs 4
        let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        g.mark_output(c);
        match g.infer_shapes().unwrap_err() {
            GraphError::ShapeInference { reason } => {
                assert!(reason.contains("conv3x3"), "reason: {reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn consumers_map() {
        let (g, _) = residual_block();
        let cons = g.consumers();
        // Input x feeds conv1 and the residual add.
        assert_eq!(cons[&NodeId(0)].len(), 2);
    }

    #[test]
    fn dynamic_bind_instantiates_batch() {
        let mut g = Graph::new("dyn");
        let x = g.input(
            "x",
            TensorType {
                dtype: dtu_isa::DataType::Fp16,
                dims: vec![Dim::Dynamic("batch".into()), Dim::Fixed(128)],
            },
        );
        let d = g.add_node(Op::Dense { units: 10 }, vec![x]).unwrap();
        let s = g
            .add_node(
                Op::Activation {
                    func: SfuFunc::Sigmoid,
                },
                vec![d],
            )
            .unwrap();
        g.mark_output(s);
        // Unbound: output batch dynamic.
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[&s].dims[0], Dim::Dynamic("batch".into()));
        // Bound: fully fixed.
        let g8 = g.bind("batch", 8);
        let shapes = g8.infer_shapes().unwrap();
        assert_eq!(shapes[&s].dims[0], Dim::Fixed(8));
        assert!(shapes[&s].is_fully_fixed());
    }

    #[test]
    fn count_ops_predicate() {
        let (g, _) = residual_block();
        assert_eq!(g.count_ops(|op| op.is_compute_anchor()), 2);
        assert_eq!(g.count_ops(|op| matches!(op, Op::Relu)), 2);
    }

    #[test]
    fn named_nodes_and_display() {
        let mut g = Graph::new("m");
        let x = g.input("x", TensorType::fixed(&[1, 4]));
        let n = g
            .add_named_node("classifier", Op::Dense { units: 2 }, vec![x])
            .unwrap();
        assert_eq!(g.node(n).unwrap().name, "classifier");
        assert!(g.node(NodeId(99)).is_err());
        assert_eq!(g.to_string(), "m (2 nodes)");
        assert!(!g.is_empty());
    }

    #[test]
    fn mark_output_dedupes() {
        let (mut g, out) = residual_block();
        g.mark_output(out);
        g.mark_output(out);
        assert_eq!(g.outputs().len(), 1);
    }
}
