//! Graph-level optimisation passes.
//!
//! Alongside operator fusion, the graph compilers the paper cites
//! (TASO, Rammer, Glow, DNNFusion — §V-B's references) run structural
//! rewrites before lowering. This module implements the classic trio
//! the TopsInference layer needs:
//!
//! * **dead-code elimination** — drop nodes that cannot reach an output;
//! * **identity elimination** — remove no-op layout operators
//!   (identity transposes, reshapes to the same shape, inverse
//!   transpose pairs, single-input concats);
//! * **common-subexpression elimination** — merge structurally
//!   identical nodes with identical inputs.
//!
//! [`optimize`] runs the passes to a fixed point and reports what it
//! removed.

use crate::graph::{Graph, GraphError, NodeId};
use crate::op::Op;
use std::collections::{BTreeMap, BTreeSet};

/// What one [`optimize`] run eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Nodes removed because no output depends on them.
    pub dead_nodes: usize,
    /// No-op layout operators removed.
    pub identity_ops: usize,
    /// Nodes merged into an identical twin.
    pub cse_merged: usize,
    /// Fixed-point iterations taken.
    pub iterations: usize,
}

impl OptimizeStats {
    /// Total nodes eliminated.
    pub fn total(&self) -> usize {
        self.dead_nodes + self.identity_ops + self.cse_merged
    }
}

/// Structural key for CSE: the op's debug form plus its input ids.
fn cse_key(op: &Op, inputs: &[NodeId]) -> String {
    format!("{op:?}|{inputs:?}")
}

/// Whether an op may be CSE-merged: only ops without learned parameters.
/// Two structurally identical convs carry *different weights* in a real
/// network (this IR does not represent weight values), so merging them
/// would change the model.
fn cse_eligible(op: &Op) -> bool {
    !matches!(
        op,
        Op::Conv2d { .. }
            | Op::ConvTranspose2d { .. }
            | Op::Dense { .. }
            | Op::Embedding { .. }
            | Op::BatchNorm
            | Op::LayerNorm
    )
}

/// Whether a node is a no-op given its input/output types, returning the
/// input it forwards.
fn identity_forward(graph: &Graph, id: NodeId) -> Result<Option<NodeId>, GraphError> {
    let node = graph.node(id)?;
    let forwarded = match &node.op {
        Op::Transpose { perm } => {
            if perm.iter().enumerate().all(|(i, &p)| i == p) {
                Some(node.inputs[0])
            } else {
                // Transpose of a transpose with the inverse permutation.
                let prev = graph.node(node.inputs[0])?;
                if let Op::Transpose { perm: prev_perm } = &prev.op {
                    let composes_to_identity = perm.len() == prev_perm.len()
                        && perm.iter().enumerate().all(|(i, &p)| prev_perm[p] == i);
                    if composes_to_identity {
                        Some(prev.inputs[0])
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
        }
        Op::Reshape { dims } => {
            // Reshape to the producer's own (fully fixed) shape.
            let shapes = graph.infer_shapes()?;
            let src = &shapes[&node.inputs[0]];
            if src.is_fully_fixed() && src.dims == *dims {
                Some(node.inputs[0])
            } else {
                None
            }
        }
        Op::Concat { .. } if node.inputs.len() == 1 => Some(node.inputs[0]),
        Op::Upsample { scale: 1 } => Some(node.inputs[0]),
        _ => None,
    };
    Ok(forwarded)
}

/// Rebuilds a graph keeping only `keep`, rewiring inputs through
/// `replace` (old id -> forwarded id, resolved transitively).
fn rebuild(
    graph: &Graph,
    keep: &BTreeSet<NodeId>,
    replace: &BTreeMap<NodeId, NodeId>,
) -> Result<Graph, GraphError> {
    let resolve = |mut id: NodeId| {
        let mut hops = 0;
        while let Some(&next) = replace.get(&id) {
            id = next;
            hops += 1;
            assert!(hops <= graph.len(), "replacement cycle");
        }
        id
    };
    let mut out = Graph::new(graph.name.clone());
    let mut remap: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for node in graph.nodes() {
        if !keep.contains(&node.id) {
            continue;
        }
        let inputs: Vec<NodeId> = node.inputs.iter().map(|&i| remap[&resolve(i)]).collect();
        let new_id = match &node.op {
            Op::Input { ty } => out.input(node.name.clone(), ty.clone()),
            op => out.add_named_node(node.name.clone(), op.clone(), inputs)?,
        };
        remap.insert(node.id, new_id);
    }
    for &o in graph.outputs() {
        out.mark_output(remap[&resolve(o)]);
    }
    Ok(out)
}

/// Runs DCE + identity elimination + CSE to a fixed point.
///
/// Graph outputs are never eliminated or merged away; inputs survive
/// even when unused (they are the model's signature).
///
/// # Errors
///
/// Propagates [`GraphError::NoOutputs`] and shape-inference failures
/// (identity detection for reshapes needs fixed shapes; dynamic graphs
/// still get DCE and CSE).
pub fn optimize(graph: &Graph) -> Result<(Graph, OptimizeStats), GraphError> {
    if graph.outputs().is_empty() {
        return Err(GraphError::NoOutputs);
    }
    let mut current = graph.clone();
    let mut stats = OptimizeStats::default();
    loop {
        stats.iterations += 1;
        let before = current.len();

        // --- identity elimination ---
        let mut replace: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for node in current.nodes() {
            if current.outputs().contains(&node.id) {
                continue; // outputs keep their identity
            }
            if let Some(fwd) = identity_forward(&current, node.id)? {
                replace.insert(node.id, fwd);
            }
        }
        stats.identity_ops += replace.len();

        // --- CSE ---
        let mut seen: BTreeMap<String, NodeId> = BTreeMap::new();
        for node in current.nodes() {
            if matches!(node.op, Op::Input { .. })
                || replace.contains_key(&node.id)
                || !cse_eligible(&node.op)
            {
                continue;
            }
            // Keys use post-replacement inputs so chains collapse together.
            let inputs: Vec<NodeId> = node
                .inputs
                .iter()
                .map(|&i| *replace.get(&i).unwrap_or(&i))
                .collect();
            let key = cse_key(&node.op, &inputs);
            match seen.get(&key) {
                Some(&twin) if !current.outputs().contains(&node.id) => {
                    replace.insert(node.id, twin);
                    stats.cse_merged += 1;
                }
                Some(_) => {}
                None => {
                    seen.insert(key, node.id);
                }
            }
        }

        // --- DCE: keep what outputs (after replacement) reach ---
        let resolve = |mut id: NodeId| {
            while let Some(&n) = replace.get(&id) {
                id = n;
            }
            id
        };
        let mut keep: BTreeSet<NodeId> = BTreeSet::new();
        let mut stack: Vec<NodeId> = current.outputs().iter().map(|&o| resolve(o)).collect();
        while let Some(id) = stack.pop() {
            if !keep.insert(id) {
                continue;
            }
            for &i in &current.node(id)?.inputs {
                stack.push(resolve(i));
            }
        }
        // Inputs always survive (model signature).
        for node in current.nodes() {
            if matches!(node.op, Op::Input { .. }) {
                keep.insert(node.id);
            }
        }
        let removed_dead = current
            .nodes()
            .iter()
            .filter(|n| !keep.contains(&n.id) && !replace.contains_key(&n.id))
            .count();
        stats.dead_nodes += removed_dead;

        current = rebuild(&current, &keep, &replace)?;
        if current.len() == before {
            break;
        }
    }
    Ok((current, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, TensorType};

    fn base() -> (Graph, NodeId) {
        let mut g = Graph::new("opt");
        let x = g.input("x", TensorType::fixed(&[1, 4, 8, 8]));
        (g, x)
    }

    #[test]
    fn dead_code_removed() {
        let (mut g, x) = base();
        let live = g.add_node(Op::Relu, vec![x]).unwrap();
        let dead = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        let _deader = g.add_node(Op::Relu, vec![dead]).unwrap();
        g.mark_output(live);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(opt.len(), 2); // input + relu
        assert_eq!(stats.dead_nodes, 2);
        opt.infer_shapes().unwrap();
    }

    #[test]
    fn identity_transpose_removed() {
        let (mut g, x) = base();
        let t = g
            .add_node(
                Op::Transpose {
                    perm: vec![0, 1, 2, 3],
                },
                vec![x],
            )
            .unwrap();
        let r = g.add_node(Op::Relu, vec![t]).unwrap();
        g.mark_output(r);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.identity_ops, 1);
        assert_eq!(opt.len(), 2);
        assert_eq!(opt.nodes()[1].inputs, vec![opt.nodes()[0].id]);
    }

    #[test]
    fn inverse_transpose_pair_cancelled() {
        let (mut g, x) = base();
        let t1 = g
            .add_node(
                Op::Transpose {
                    perm: vec![0, 2, 3, 1],
                },
                vec![x],
            )
            .unwrap();
        let t2 = g
            .add_node(
                Op::Transpose {
                    perm: vec![0, 3, 1, 2],
                },
                vec![t1],
            )
            .unwrap();
        let r = g.add_node(Op::Relu, vec![t2]).unwrap();
        g.mark_output(r);
        let (opt, stats) = optimize(&g).unwrap();
        // t2 forwards to x; t1 becomes dead.
        assert!(stats.identity_ops >= 1);
        assert_eq!(opt.count_ops(|op| matches!(op, Op::Transpose { .. })), 0);
        let shapes = opt.infer_shapes().unwrap();
        assert_eq!(shapes[opt.outputs().last().unwrap()].dims.len(), 4);
    }

    #[test]
    fn noop_reshape_removed_but_real_reshape_kept() {
        let (mut g, x) = base();
        use crate::op::Dim;
        let same = g
            .add_node(
                Op::Reshape {
                    dims: vec![Dim::Fixed(1), Dim::Fixed(4), Dim::Fixed(8), Dim::Fixed(8)],
                },
                vec![x],
            )
            .unwrap();
        let real = g
            .add_node(
                Op::Reshape {
                    dims: vec![Dim::Fixed(1), Dim::Fixed(256)],
                },
                vec![same],
            )
            .unwrap();
        g.mark_output(real);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.identity_ops, 1);
        assert_eq!(opt.count_ops(|op| matches!(op, Op::Reshape { .. })), 1);
    }

    #[test]
    fn cse_merges_identical_weightless_ops_only() {
        let (mut g, x) = base();
        // Two identical ReLUs merge; two identical convs must NOT (they
        // carry different weights in a real network).
        let r1 = g.add_node(Op::Relu, vec![x]).unwrap();
        let r2 = g.add_node(Op::Relu, vec![x]).unwrap();
        let c1 = g.add_node(Op::conv2d(4, 3, 1, 1), vec![r1]).unwrap();
        let c2 = g.add_node(Op::conv2d(4, 3, 1, 1), vec![r2]).unwrap();
        let s = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![c1, c2],
            )
            .unwrap();
        g.mark_output(s);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.cse_merged, 1); // only the relu twins
        assert_eq!(opt.count_ops(|op| matches!(op, Op::Conv2d { .. })), 2);
        assert_eq!(opt.count_ops(|op| matches!(op, Op::Relu)), 1);
        // Both convs now read the surviving relu.
        let convs: Vec<_> = opt
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d { .. }))
            .collect();
        assert_eq!(convs[0].inputs, convs[1].inputs);
    }

    #[test]
    fn outputs_never_eliminated() {
        let (mut g, x) = base();
        let t = g
            .add_node(
                Op::Transpose {
                    perm: vec![0, 1, 2, 3],
                },
                vec![x],
            )
            .unwrap();
        g.mark_output(t); // the identity IS the output
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.identity_ops, 0);
        assert_eq!(opt.outputs().len(), 1);
        assert!(matches!(
            opt.node(opt.outputs()[0]).unwrap().op,
            Op::Transpose { .. }
        ));
    }

    #[test]
    fn chains_collapse_to_fixed_point() {
        let (mut g, x) = base();
        // Four stacked identity transposes before a relu.
        let mut cur = x;
        for _ in 0..4 {
            cur = g
                .add_node(
                    Op::Transpose {
                        perm: vec![0, 1, 2, 3],
                    },
                    vec![cur],
                )
                .unwrap();
        }
        let r = g.add_node(Op::Relu, vec![cur]).unwrap();
        g.mark_output(r);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(opt.len(), 2);
        assert!(stats.iterations >= 1);
        assert_eq!(stats.total(), 4);
    }

    #[test]
    fn benchmark_models_survive_optimization() {
        // The suite's graphs are already lean; the passes must at least
        // preserve shapes and never grow the graph.
        use crate::fusion::{fuse, FusionConfig};
        let mut g = Graph::new("mini-res");
        let x = g.input("x", TensorType::fixed(&[1, 8, 16, 16]));
        let c1 = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        let b = g.add_node(Op::BatchNorm, vec![c1]).unwrap();
        let r = g.add_node(Op::Relu, vec![b]).unwrap();
        let a = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![r, x],
            )
            .unwrap();
        g.mark_output(a);
        let (opt, _) = optimize(&g).unwrap();
        assert!(opt.len() <= g.len());
        let s1 = g.infer_shapes().unwrap();
        let s2 = opt.infer_shapes().unwrap();
        assert_eq!(
            s1[g.outputs().last().unwrap()],
            s2[opt.outputs().last().unwrap()]
        );
        // Still fusable afterwards.
        fuse(&opt, &FusionConfig::default()).unwrap();
    }

    #[test]
    fn single_input_concat_and_upsample1_removed() {
        let (mut g, x) = base();
        let c = g.add_node(Op::Concat { axis: 1 }, vec![x]).unwrap();
        let u = g.add_node(Op::Upsample { scale: 1 }, vec![c]).unwrap();
        let r = g.add_node(Op::Relu, vec![u]).unwrap();
        g.mark_output(r);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.identity_ops, 2);
        assert_eq!(opt.len(), 2);
    }
}
