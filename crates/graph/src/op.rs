//! Operators and tensor types of the graph IR.

use dtu_isa::{DataType, SfuFunc};
use std::fmt;

/// One dimension of a tensor type: fixed or dynamic.
///
/// Dynamic dimensions back the paper's "dynamic tensors and shape
/// inference" flexibility item (Table II): shapes propagate symbolically
/// and are bound to concrete values at deployment time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A known extent.
    Fixed(usize),
    /// A symbolic extent (e.g. the batch or sequence length).
    Dynamic(String),
}

impl Dim {
    /// The fixed value, if known.
    pub fn value(&self) -> Option<usize> {
        match self {
            Dim::Fixed(n) => Some(*n),
            Dim::Dynamic(_) => None,
        }
    }

    /// Binds a dynamic dim named `name` to `value`; fixed dims unchanged.
    pub fn bind(&self, name: &str, value: usize) -> Dim {
        match self {
            Dim::Dynamic(n) if n == name => Dim::Fixed(value),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Fixed(n) => write!(f, "{n}"),
            Dim::Dynamic(n) => write!(f, "{n}"),
        }
    }
}

/// The type of a tensor edge: element type plus (possibly dynamic) shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorType {
    /// Element type.
    pub dtype: DataType,
    /// Per-axis extents.
    pub dims: Vec<Dim>,
}

impl TensorType {
    /// A fully fixed FP16 tensor type (the evaluation's data type).
    pub fn fixed(dims: &[usize]) -> Self {
        TensorType {
            dtype: DataType::Fp16,
            dims: dims.iter().map(|&d| Dim::Fixed(d)).collect(),
        }
    }

    /// A fixed tensor type with an explicit element type.
    pub fn with_dtype(dtype: DataType, dims: &[usize]) -> Self {
        TensorType {
            dtype,
            dims: dims.iter().map(|&d| Dim::Fixed(d)).collect(),
        }
    }

    /// Rank of the type.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Element count if fully fixed.
    pub fn len(&self) -> Option<usize> {
        self.dims.iter().map(Dim::value).product::<Option<usize>>()
    }

    /// Whether the element count is zero (any fixed dim of 0).
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|d| d.value() == Some(0))
    }

    /// Whether all dims are fixed.
    pub fn is_fully_fixed(&self) -> bool {
        self.dims.iter().all(|d| d.value().is_some())
    }

    /// Size in bytes if fully fixed.
    pub fn bytes(&self) -> Option<u64> {
        self.len().map(|n| (n * self.dtype.size_bytes()) as u64)
    }

    /// Binds every occurrence of the dynamic dim `name` to `value`.
    pub fn bind(&self, name: &str, value: usize) -> TensorType {
        TensorType {
            dtype: self.dtype,
            dims: self.dims.iter().map(|d| d.bind(name, value)).collect(),
        }
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.dtype)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Binary element-wise operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryKind {
    /// Addition (residual connections).
    Add,
    /// Multiplication (gating).
    Mul,
    /// Subtraction.
    Sub,
    /// Element-wise maximum.
    Max,
}

/// Pooling kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
    /// Global average pooling (spatial dims collapse to 1).
    GlobalAvg,
}

/// A graph operator.
///
/// The set covers what the ten Table III DNNs need: convolutions
/// (standard, grouped, depthwise), dense/matmul, activations backed by
/// the SFU, normalisations, pooling, attention building blocks, layout
/// ops, embedding gathers, and Top-K.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Graph input placeholder.
    Input {
        /// Edge type.
        ty: TensorType,
    },
    /// 2-D convolution over `[N, C, H, W]`.
    Conv2d {
        /// Output channels.
        out_channels: usize,
        /// Kernel height = width.
        kernel: usize,
        /// Stride (both axes).
        stride: usize,
        /// Zero padding (both axes).
        padding: usize,
        /// Channel groups (1 = dense, C = depthwise).
        groups: usize,
    },
    /// Transposed convolution (upsampling in UNet / SRResNet).
    ConvTranspose2d {
        /// Output channels.
        out_channels: usize,
        /// Kernel size.
        kernel: usize,
        /// Upsampling stride.
        stride: usize,
    },
    /// Fully connected layer over the last axis.
    Dense {
        /// Output features.
        units: usize,
    },
    /// Batched matrix multiply of the two inputs
    /// (`[..., m, k] x [..., k, n]`).
    MatMul,
    /// SFU-backed activation.
    Activation {
        /// Which transcendental.
        func: SfuFunc,
    },
    /// ReLU (vector-engine max, not SFU).
    Relu,
    /// Leaky ReLU with slope `alpha` (YOLOv3).
    LeakyRelu {
        /// Negative-side slope.
        alpha: f32,
    },
    /// Element-wise binary op of two same-shape inputs.
    Binary {
        /// The operation.
        kind: BinaryKind,
    },
    /// Batch normalisation (folded scale+shift at inference).
    BatchNorm,
    /// Layer normalisation over the last axis.
    LayerNorm,
    /// Softmax over the last axis.
    Softmax,
    /// Pooling over spatial dims of `[N, C, H, W]`.
    Pool {
        /// Pooling kind.
        kind: PoolKind,
        /// Window size (ignored for global).
        kernel: usize,
        /// Stride (ignored for global).
        stride: usize,
    },
    /// Nearest-neighbour spatial upsampling by an integer factor.
    Upsample {
        /// Scale factor.
        scale: usize,
    },
    /// Concatenation along an axis.
    Concat {
        /// The axis.
        axis: usize,
    },
    /// Axis permutation.
    Transpose {
        /// Output axis `i` reads input axis `perm[i]`.
        perm: Vec<usize>,
    },
    /// Reshape to a new (possibly dynamic) shape.
    Reshape {
        /// Target dims.
        dims: Vec<Dim>,
    },
    /// Embedding gather: indices `[N, L]` into a `[vocab, width]` table.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding width.
        width: usize,
    },
    /// Top-K selection over the last axis (uses the VMM sort facility).
    TopK {
        /// How many.
        k: usize,
    },
}

impl Op {
    /// Convenience constructor for a square dense convolution.
    pub fn conv2d(out_channels: usize, kernel: usize, stride: usize, padding: usize) -> Op {
        Op::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// Convenience constructor for a depthwise convolution.
    pub fn depthwise_conv2d(channels: usize, kernel: usize, stride: usize, padding: usize) -> Op {
        Op::Conv2d {
            out_channels: channels,
            kernel,
            stride,
            padding,
            groups: channels,
        }
    }

    /// Number of data inputs the operator consumes (`None` = variadic).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Input { .. } => Some(0),
            Op::Binary { .. } | Op::MatMul => Some(2),
            Op::Concat { .. } => None,
            _ => Some(1),
        }
    }

    /// Short mnemonic for tracing and fused-kernel names.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Input { .. } => "input".into(),
            Op::Conv2d { groups, kernel, .. } => {
                if *groups > 1 {
                    format!("dwconv{kernel}x{kernel}")
                } else {
                    format!("conv{kernel}x{kernel}")
                }
            }
            Op::ConvTranspose2d { kernel, .. } => format!("deconv{kernel}x{kernel}"),
            Op::Dense { units } => format!("dense{units}"),
            Op::MatMul => "matmul".into(),
            Op::Activation { func } => format!("{func:?}").to_lowercase(),
            Op::Relu => "relu".into(),
            Op::LeakyRelu { .. } => "leakyrelu".into(),
            Op::Binary { kind } => format!("{kind:?}").to_lowercase(),
            Op::BatchNorm => "bn".into(),
            Op::LayerNorm => "ln".into(),
            Op::Softmax => "softmax".into(),
            Op::Pool { kind, .. } => format!("{kind:?}pool").to_lowercase(),
            Op::Upsample { scale } => format!("up{scale}x"),
            Op::Concat { .. } => "concat".into(),
            Op::Transpose { .. } => "transpose".into(),
            Op::Reshape { .. } => "reshape".into(),
            Op::Embedding { .. } => "embedding".into(),
            Op::TopK { k } => format!("top{k}"),
        }
    }

    /// Whether the op is a pure layout manipulation (offloaded to DMA).
    pub fn is_layout_op(&self) -> bool {
        matches!(
            self,
            Op::Transpose { .. } | Op::Reshape { .. } | Op::Concat { .. } | Op::Upsample { .. }
        )
    }

    /// Whether the op is an element-wise epilogue that fuses into a
    /// preceding compute op.
    pub fn is_fusable_epilogue(&self) -> bool {
        matches!(
            self,
            Op::Activation { .. }
                | Op::Relu
                | Op::LeakyRelu { .. }
                | Op::BatchNorm
                | Op::Binary { .. }
        )
    }

    /// Whether the op is a heavy compute anchor (conv / matmul family).
    pub fn is_compute_anchor(&self) -> bool {
        matches!(
            self,
            Op::Conv2d { .. } | Op::ConvTranspose2d { .. } | Op::Dense { .. } | Op::MatMul
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_binding() {
        let d = Dim::Dynamic("batch".into());
        assert_eq!(d.bind("batch", 8), Dim::Fixed(8));
        assert_eq!(d.bind("seq", 8), d);
        assert_eq!(Dim::Fixed(3).bind("batch", 8), Dim::Fixed(3));
        assert_eq!(d.value(), None);
        assert_eq!(Dim::Fixed(5).value(), Some(5));
    }

    #[test]
    fn tensor_type_arithmetic() {
        let t = TensorType::fixed(&[2, 3, 4]);
        assert_eq!(t.rank(), 3);
        assert_eq!(t.len(), Some(24));
        assert_eq!(t.bytes(), Some(48)); // fp16
        assert!(t.is_fully_fixed());
        assert!(!t.is_empty());
    }

    #[test]
    fn dynamic_tensor_type() {
        let t = TensorType {
            dtype: DataType::Fp16,
            dims: vec![Dim::Dynamic("batch".into()), Dim::Fixed(768)],
        };
        assert_eq!(t.len(), None);
        assert!(!t.is_fully_fixed());
        let bound = t.bind("batch", 16);
        assert_eq!(bound.len(), Some(16 * 768));
        assert_eq!(t.to_string(), "FP16[batchx768]");
    }

    #[test]
    fn op_arity() {
        assert_eq!(Op::conv2d(64, 3, 1, 1).arity(), Some(1));
        assert_eq!(Op::MatMul.arity(), Some(2));
        assert_eq!(Op::Concat { axis: 1 }.arity(), None);
        assert_eq!(
            Op::Input {
                ty: TensorType::fixed(&[1])
            }
            .arity(),
            Some(0)
        );
    }

    #[test]
    fn op_classification() {
        assert!(Op::conv2d(64, 3, 1, 1).is_compute_anchor());
        assert!(Op::Relu.is_fusable_epilogue());
        assert!(Op::BatchNorm.is_fusable_epilogue());
        assert!(Op::Transpose { perm: vec![0, 1] }.is_layout_op());
        assert!(!Op::Softmax.is_compute_anchor());
        assert!(!Op::Softmax.is_layout_op());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Op::conv2d(64, 3, 1, 1).mnemonic(), "conv3x3");
        assert_eq!(Op::depthwise_conv2d(64, 3, 1, 1).mnemonic(), "dwconv3x3");
        assert_eq!(Op::Dense { units: 1000 }.mnemonic(), "dense1000");
        assert_eq!(Op::TopK { k: 5 }.mnemonic(), "top5");
        assert_eq!(
            Op::Activation {
                func: SfuFunc::Gelu
            }
            .mnemonic(),
            "gelu"
        );
    }

    #[test]
    fn empty_tensor_detection() {
        let t = TensorType::fixed(&[4, 0, 2]);
        assert!(t.is_empty());
        assert_eq!(t.len(), Some(0));
    }
}
