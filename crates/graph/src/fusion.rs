//! Automatic operator fusion (the TopsInference graph optimiser).
//!
//! §V-B: the generated computation graph "is optimized through automatic
//! operator fusion, to eliminate unnecessary materialization and scan of
//! intermediate values and benefit from the increased register/memory
//! capacity". The strategy here mirrors the paper's expert-knowledge
//! rules: a compute anchor (conv / dense / matmul) absorbs its chain of
//! element-wise epilogues (BN, activations, residual adds), and chains of
//! pure element-wise ops fuse with each other. Fusion is legal only when
//! the intermediate value has a single consumer — otherwise it must be
//! materialised anyway.

use crate::graph::{Graph, GraphError, NodeId};
use crate::op::Op;
use std::collections::BTreeMap;

/// Fusion tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// Master switch (off reproduces the unfused baseline).
    pub enabled: bool,
    /// Maximum operators per fused group (bounded by what one kernel's
    /// register/L1 budget can hold).
    pub max_group_len: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            enabled: true,
            max_group_len: 8,
        }
    }
}

/// One fused group: an ordered run of node ids that compile to a single
/// kernel. The first node is the group's *anchor*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedGroup {
    /// Nodes in execution order.
    pub nodes: Vec<NodeId>,
}

impl FusedGroup {
    /// The anchor (first) node.
    pub fn anchor(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of fused operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group is a single unfused op.
    pub fn is_singleton(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Always false: groups hold at least one node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The fusion result: groups in topological order, covering every
/// non-input node exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    /// The fused groups.
    pub groups: Vec<FusedGroup>,
}

impl FusionPlan {
    /// Number of kernels after fusion.
    pub fn kernel_count(&self) -> usize {
        self.groups.len()
    }

    /// Intermediate tensors eliminated (ops covered minus kernels).
    pub fn eliminated_intermediates(&self) -> usize {
        let ops: usize = self.groups.iter().map(FusedGroup::len).sum();
        ops - self.groups.len()
    }

    /// Looks up the group index containing a node.
    pub fn group_of(&self, id: NodeId) -> Option<usize> {
        self.groups.iter().position(|g| g.nodes.contains(&id))
    }
}

/// Runs the fusion pass over a graph.
///
/// # Errors
///
/// Propagates [`GraphError::NoOutputs`] from validation; a graph that
/// fails shape inference still fuses (fusion is purely structural).
pub fn fuse(graph: &Graph, cfg: &FusionConfig) -> Result<FusionPlan, GraphError> {
    if graph.outputs().is_empty() {
        return Err(GraphError::NoOutputs);
    }
    let consumers = graph.consumers();
    let single_consumer = |id: NodeId| consumers.get(&id).map_or(0, Vec::len) == 1;
    let is_output = |id: NodeId| graph.outputs().contains(&id);

    // Greedy forward pass over topological order: start a group at every
    // unclaimed compute node, then extend along the unique-consumer chain
    // while the next op is a fusable epilogue (or an elementwise op
    // extending an elementwise chain).
    let mut claimed: BTreeMap<NodeId, bool> = BTreeMap::new();
    let mut groups = Vec::new();

    for node in graph.nodes() {
        if matches!(node.op, Op::Input { .. }) || claimed.get(&node.id).copied().unwrap_or(false) {
            continue;
        }
        let mut chain = vec![node.id];
        claimed.insert(node.id, true);

        if cfg.enabled {
            let anchor_is_compute = node.op.is_compute_anchor();
            let anchor_is_elementwise = node.op.is_fusable_epilogue();
            let mut cur = node.id;
            while chain.len() < cfg.max_group_len {
                // The intermediate must have exactly one consumer and must
                // not itself be a graph output (outputs materialise).
                if !single_consumer(cur) || is_output(cur) {
                    break;
                }
                let next = consumers[&cur][0];
                let next_node = graph.node(next)?;
                if claimed.get(&next).copied().unwrap_or(false) {
                    break;
                }
                let extend = next_node.op.is_fusable_epilogue()
                    && (anchor_is_compute || anchor_is_elementwise);
                if !extend {
                    break;
                }
                // A binary op fuses only if its *other* operand is already
                // available outside the group (it is — fusion never
                // reorders), so structurally it is always legal here.
                chain.push(next);
                claimed.insert(next, true);
                cur = next;
            }
        }
        groups.push(FusedGroup { nodes: chain });
    }

    Ok(FusionPlan { groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, TensorType};
    use dtu_isa::SfuFunc;

    /// conv → bn → relu → conv → bn → add(residual) → relu
    fn resnet_block() -> Graph {
        let mut g = Graph::new("block");
        let x = g.input("x", TensorType::fixed(&[1, 64, 56, 56]));
        let c1 = g.add_node(Op::conv2d(64, 3, 1, 1), vec![x]).unwrap();
        let b1 = g.add_node(Op::BatchNorm, vec![c1]).unwrap();
        let r1 = g.add_node(Op::Relu, vec![b1]).unwrap();
        let c2 = g.add_node(Op::conv2d(64, 3, 1, 1), vec![r1]).unwrap();
        let b2 = g.add_node(Op::BatchNorm, vec![c2]).unwrap();
        let add = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![b2, x],
            )
            .unwrap();
        let r2 = g.add_node(Op::Relu, vec![add]).unwrap();
        g.mark_output(r2);
        g
    }

    #[test]
    fn resnet_block_fuses_to_two_kernels() {
        let g = resnet_block();
        let plan = fuse(&g, &FusionConfig::default()).unwrap();
        // conv+bn+relu | conv+bn+add+relu
        assert_eq!(plan.kernel_count(), 2);
        assert_eq!(plan.eliminated_intermediates(), 5);
        assert_eq!(plan.groups[0].len(), 3);
        assert_eq!(plan.groups[1].len(), 4);
    }

    #[test]
    fn fusion_disabled_keeps_every_op() {
        let g = resnet_block();
        let plan = fuse(
            &g,
            &FusionConfig {
                enabled: false,
                max_group_len: 8,
            },
        )
        .unwrap();
        assert_eq!(plan.kernel_count(), 7);
        assert_eq!(plan.eliminated_intermediates(), 0);
        assert!(plan.groups.iter().all(FusedGroup::is_singleton));
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        let mut g = Graph::new("fanout");
        let x = g.input("x", TensorType::fixed(&[1, 8, 8, 8]));
        let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        // c feeds two consumers: cannot fuse into either.
        let r1 = g.add_node(Op::Relu, vec![c]).unwrap();
        let r2 = g
            .add_node(
                Op::Activation {
                    func: SfuFunc::Tanh,
                },
                vec![c],
            )
            .unwrap();
        let add = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![r1, r2],
            )
            .unwrap();
        g.mark_output(add);
        let plan = fuse(&g, &FusionConfig::default()).unwrap();
        // conv alone; relu+? : relu has single consumer (add)... relu->add
        // requires add's other operand r2 available; r2 is singleton; then
        // add joins relu's chain.
        let conv_group = plan.group_of(c).unwrap();
        assert_eq!(plan.groups[conv_group].len(), 1);
    }

    #[test]
    fn output_node_not_fused_past() {
        let mut g = Graph::new("out");
        let x = g.input("x", TensorType::fixed(&[1, 8]));
        let d = g.add_node(Op::Dense { units: 8 }, vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![d]).unwrap();
        g.mark_output(d); // intermediate is an output: must materialise
        g.mark_output(r);
        let plan = fuse(&g, &FusionConfig::default()).unwrap();
        assert_eq!(plan.kernel_count(), 2);
    }

    #[test]
    fn group_length_capped() {
        let mut g = Graph::new("chain");
        let x = g.input("x", TensorType::fixed(&[1, 8]));
        let mut cur = g.add_node(Op::Dense { units: 8 }, vec![x]).unwrap();
        for _ in 0..10 {
            cur = g.add_node(Op::Relu, vec![cur]).unwrap();
        }
        g.mark_output(cur);
        let plan = fuse(
            &g,
            &FusionConfig {
                enabled: true,
                max_group_len: 4,
            },
        )
        .unwrap();
        assert!(plan.groups.iter().all(|grp| grp.len() <= 4));
        // 11 ops in ceil-ish 4-sized groups: 4+4+3 = 3 kernels.
        assert_eq!(plan.kernel_count(), 3);
    }

    #[test]
    fn every_non_input_node_covered_once() {
        let g = resnet_block();
        let plan = fuse(&g, &FusionConfig::default()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for grp in &plan.groups {
            for &n in &grp.nodes {
                assert!(seen.insert(n), "node {n} appears twice");
            }
        }
        assert_eq!(seen.len(), g.len() - 1); // all but the input
    }

    #[test]
    fn elementwise_chains_fuse_without_anchor() {
        let mut g = Graph::new("elt");
        let x = g.input("x", TensorType::fixed(&[1, 128]));
        let r = g.add_node(Op::Relu, vec![x]).unwrap();
        let t = g
            .add_node(
                Op::Activation {
                    func: SfuFunc::Tanh,
                },
                vec![r],
            )
            .unwrap();
        let b = g.add_node(Op::BatchNorm, vec![t]).unwrap();
        g.mark_output(b);
        let plan = fuse(&g, &FusionConfig::default()).unwrap();
        assert_eq!(plan.kernel_count(), 1);
        assert_eq!(plan.groups[0].len(), 3);
    }

    #[test]
    fn no_outputs_rejected() {
        let mut g = Graph::new("noout");
        g.input("x", TensorType::fixed(&[1]));
        assert!(matches!(
            fuse(&g, &FusionConfig::default()),
            Err(GraphError::NoOutputs)
        ));
    }

    #[test]
    fn softmax_breaks_fusion_chain() {
        // Softmax is a reduction, not a fusable epilogue.
        let mut g = Graph::new("attn");
        let x = g.input("x", TensorType::fixed(&[12, 384, 384]));
        let m = g.add_node(Op::MatMul, vec![x, x]).unwrap();
        let s = g.add_node(Op::Softmax, vec![m]).unwrap();
        g.mark_output(s);
        let plan = fuse(&g, &FusionConfig::default()).unwrap();
        assert_eq!(plan.kernel_count(), 2);
    }
}
