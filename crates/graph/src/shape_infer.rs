//! Shape inference for every operator.
//!
//! Supports dynamic dims: arithmetic over a dynamic extent produces a
//! derived dynamic extent when the result cannot be computed, and
//! propagates fixed values when it can.

use crate::graph::GraphError;
use crate::op::{Dim, Op, PoolKind, TensorType};

/// Applies the conv output-size formula to one spatial dim.
fn conv_out(dim: &Dim, kernel: usize, stride: usize, padding: usize) -> Dim {
    match dim {
        Dim::Fixed(n) => Dim::Fixed((n + 2 * padding - kernel) / stride + 1),
        Dim::Dynamic(name) => Dim::Dynamic(format!("conv({name})")),
    }
}

/// Infers the output type of `op` given its input types.
///
/// # Errors
///
/// Returns [`GraphError::ShapeInference`] when the inputs are malformed
/// for the operator (wrong rank, mismatched shapes, bad axis, channel
/// count not divisible by groups, ...).
pub fn infer_node_shape(op: &Op, inputs: &[&TensorType]) -> Result<TensorType, GraphError> {
    let fail = |reason: String| GraphError::ShapeInference { reason };
    let one = |inputs: &[&TensorType]| -> Result<TensorType, GraphError> {
        inputs
            .first()
            .copied()
            .cloned()
            .ok_or_else(|| fail("operator requires an input".into()))
    };
    match op {
        Op::Input { ty } => Ok(ty.clone()),
        Op::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            groups,
        } => {
            let x = one(inputs)?;
            if x.rank() != 4 {
                return Err(fail(format!("conv2d expects rank-4 input, got {x}")));
            }
            if let Some(c) = x.dims[1].value() {
                if c % groups != 0 {
                    return Err(fail(format!(
                        "channels {c} not divisible by groups {groups}"
                    )));
                }
            }
            if out_channels % groups != 0 {
                return Err(fail(format!(
                    "out_channels {out_channels} not divisible by groups {groups}"
                )));
            }
            Ok(TensorType {
                dtype: x.dtype,
                dims: vec![
                    x.dims[0].clone(),
                    Dim::Fixed(*out_channels),
                    conv_out(&x.dims[2], *kernel, *stride, *padding),
                    conv_out(&x.dims[3], *kernel, *stride, *padding),
                ],
            })
        }
        Op::ConvTranspose2d {
            out_channels,
            kernel,
            stride,
        } => {
            let x = one(inputs)?;
            if x.rank() != 4 {
                return Err(fail(format!("deconv expects rank-4 input, got {x}")));
            }
            let up = |d: &Dim| match d {
                // Standard transposed-conv output size with padding chosen
                // for exact stride-multiple upsampling.
                Dim::Fixed(n) => Dim::Fixed(n * stride + kernel.saturating_sub(*stride)),
                Dim::Dynamic(name) => Dim::Dynamic(format!("deconv({name})")),
            };
            Ok(TensorType {
                dtype: x.dtype,
                dims: vec![
                    x.dims[0].clone(),
                    Dim::Fixed(*out_channels),
                    up(&x.dims[2]),
                    up(&x.dims[3]),
                ],
            })
        }
        Op::Dense { units } => {
            let x = one(inputs)?;
            if x.rank() == 0 {
                return Err(fail("dense expects rank >= 1".into()));
            }
            let mut dims = x.dims.clone();
            *dims.last_mut().expect("rank >= 1") = Dim::Fixed(*units);
            Ok(TensorType {
                dtype: x.dtype,
                dims,
            })
        }
        Op::MatMul => {
            if inputs.len() != 2 {
                return Err(fail("matmul needs two inputs".into()));
            }
            let (a, b) = (inputs[0], inputs[1]);
            if a.rank() < 2 || b.rank() < 2 {
                return Err(fail(format!("matmul ranks too small: {a} x {b}")));
            }
            let (ka, kb) = (&a.dims[a.rank() - 1], &b.dims[b.rank() - 2]);
            if let (Some(x), Some(y)) = (ka.value(), kb.value()) {
                if x != y {
                    return Err(fail(format!("matmul inner dims differ: {x} vs {y}")));
                }
            }
            let mut dims = a.dims[..a.rank() - 1].to_vec();
            dims.push(b.dims[b.rank() - 1].clone());
            Ok(TensorType {
                dtype: a.dtype,
                dims,
            })
        }
        // Shape-preserving element-wise ops.
        Op::Activation { .. }
        | Op::Relu
        | Op::LeakyRelu { .. }
        | Op::BatchNorm
        | Op::LayerNorm
        | Op::Softmax => one(inputs),
        Op::Binary { .. } => {
            if inputs.len() != 2 {
                return Err(fail("binary op needs two inputs".into()));
            }
            let (a, b) = (inputs[0], inputs[1]);
            if a.dims != b.dims {
                return Err(fail(format!("binary operand shapes differ: {a} vs {b}")));
            }
            Ok(a.clone())
        }
        Op::Pool {
            kind,
            kernel,
            stride,
        } => {
            let x = one(inputs)?;
            if x.rank() != 4 {
                return Err(fail(format!("pool expects rank-4 input, got {x}")));
            }
            match kind {
                PoolKind::GlobalAvg => Ok(TensorType {
                    dtype: x.dtype,
                    dims: vec![
                        x.dims[0].clone(),
                        x.dims[1].clone(),
                        Dim::Fixed(1),
                        Dim::Fixed(1),
                    ],
                }),
                _ => Ok(TensorType {
                    dtype: x.dtype,
                    dims: vec![
                        x.dims[0].clone(),
                        x.dims[1].clone(),
                        conv_out(&x.dims[2], *kernel, *stride, 0),
                        conv_out(&x.dims[3], *kernel, *stride, 0),
                    ],
                }),
            }
        }
        Op::Upsample { scale } => {
            let x = one(inputs)?;
            if x.rank() != 4 {
                return Err(fail(format!("upsample expects rank-4 input, got {x}")));
            }
            let up = |d: &Dim| match d {
                Dim::Fixed(n) => Dim::Fixed(n * scale),
                Dim::Dynamic(name) => Dim::Dynamic(format!("{scale}x({name})")),
            };
            Ok(TensorType {
                dtype: x.dtype,
                dims: vec![
                    x.dims[0].clone(),
                    x.dims[1].clone(),
                    up(&x.dims[2]),
                    up(&x.dims[3]),
                ],
            })
        }
        Op::Concat { axis } => {
            let first = one(inputs)?;
            if *axis >= first.rank() {
                return Err(fail(format!("concat axis {axis} out of range")));
            }
            let mut total = 0usize;
            let mut all_fixed = true;
            for t in inputs {
                if t.rank() != first.rank() {
                    return Err(fail("concat rank mismatch".into()));
                }
                for (i, (da, db)) in first.dims.iter().zip(&t.dims).enumerate() {
                    if i != *axis {
                        if let (Some(x), Some(y)) = (da.value(), db.value()) {
                            if x != y {
                                return Err(fail(format!("concat dim {i} differs: {x} vs {y}")));
                            }
                        }
                    }
                }
                match t.dims[*axis].value() {
                    Some(v) => total += v,
                    None => all_fixed = false,
                }
            }
            let mut dims = first.dims.clone();
            dims[*axis] = if all_fixed {
                Dim::Fixed(total)
            } else {
                Dim::Dynamic("concat".into())
            };
            Ok(TensorType {
                dtype: first.dtype,
                dims,
            })
        }
        Op::Transpose { perm } => {
            let x = one(inputs)?;
            if perm.len() != x.rank() {
                return Err(fail(format!(
                    "transpose perm rank {} != input rank {}",
                    perm.len(),
                    x.rank()
                )));
            }
            let mut seen = vec![false; perm.len()];
            for &p in perm {
                if p >= perm.len() || seen[p] {
                    return Err(fail(format!("{perm:?} is not a permutation")));
                }
                seen[p] = true;
            }
            Ok(TensorType {
                dtype: x.dtype,
                dims: perm.iter().map(|&p| x.dims[p].clone()).collect(),
            })
        }
        Op::Reshape { dims } => {
            let x = one(inputs)?;
            // When both sides are fully fixed, check element counts.
            let out = TensorType {
                dtype: x.dtype,
                dims: dims.clone(),
            };
            if let (Some(a), Some(b)) = (x.len(), out.len()) {
                if a != b {
                    return Err(fail(format!("reshape {a} elements into {b}")));
                }
            }
            Ok(out)
        }
        Op::Embedding { width, .. } => {
            let idx = one(inputs)?;
            let mut dims = idx.dims.clone();
            dims.push(Dim::Fixed(*width));
            Ok(TensorType {
                dtype: idx.dtype,
                dims,
            })
        }
        Op::TopK { k } => {
            let x = one(inputs)?;
            if x.rank() == 0 {
                return Err(fail("topk expects rank >= 1".into()));
            }
            let mut dims = x.dims.clone();
            *dims.last_mut().expect("rank >= 1") = Dim::Fixed(*k);
            Ok(TensorType {
                dtype: x.dtype,
                dims,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_isa::SfuFunc;

    fn t(dims: &[usize]) -> TensorType {
        TensorType::fixed(dims)
    }

    #[test]
    fn conv_shape_formula() {
        let x = t(&[1, 3, 224, 224]);
        let out = infer_node_shape(&Op::conv2d(64, 7, 2, 3), &[&x]).unwrap();
        assert_eq!(out.dims[1], Dim::Fixed(64));
        assert_eq!(out.dims[2], Dim::Fixed(112));
        // Same padding preserves size.
        let out = infer_node_shape(&Op::conv2d(64, 3, 1, 1), &[&x]).unwrap();
        assert_eq!(out.dims[2], Dim::Fixed(224));
    }

    #[test]
    fn conv_group_validation() {
        let x = t(&[1, 30, 8, 8]);
        assert!(infer_node_shape(
            &Op::Conv2d {
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 7
            },
            &[&x]
        )
        .is_err());
        assert!(infer_node_shape(&Op::conv2d(64, 3, 1, 1), &[&t(&[1, 3])]).is_err());
    }

    #[test]
    fn deconv_upsamples() {
        let x = t(&[1, 64, 56, 56]);
        let out = infer_node_shape(
            &Op::ConvTranspose2d {
                out_channels: 32,
                kernel: 2,
                stride: 2,
            },
            &[&x],
        )
        .unwrap();
        assert_eq!(out.dims[2], Dim::Fixed(112));
        assert_eq!(out.dims[1], Dim::Fixed(32));
    }

    #[test]
    fn dense_and_matmul() {
        let x = t(&[8, 384, 1024]);
        let out = infer_node_shape(&Op::Dense { units: 4096 }, &[&x]).unwrap();
        assert_eq!(out.dims[2], Dim::Fixed(4096));

        let a = t(&[8, 12, 384, 64]);
        let b = t(&[8, 12, 64, 384]);
        let out = infer_node_shape(&Op::MatMul, &[&a, &b]).unwrap();
        assert_eq!(
            out.dims,
            vec![
                Dim::Fixed(8),
                Dim::Fixed(12),
                Dim::Fixed(384),
                Dim::Fixed(384)
            ]
        );
        let bad = t(&[8, 12, 63, 384]);
        assert!(infer_node_shape(&Op::MatMul, &[&a, &bad]).is_err());
    }

    #[test]
    fn pooling() {
        let x = t(&[1, 64, 112, 112]);
        let out = infer_node_shape(
            &Op::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
            },
            &[&x],
        )
        .unwrap();
        assert_eq!(out.dims[2], Dim::Fixed(56));
        let g = infer_node_shape(
            &Op::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
            &[&x],
        )
        .unwrap();
        assert_eq!(g.dims[2], Dim::Fixed(1));
        assert_eq!(g.dims[1], Dim::Fixed(64));
    }

    #[test]
    fn concat_and_upsample() {
        let a = t(&[1, 64, 56, 56]);
        let b = t(&[1, 128, 56, 56]);
        let out = infer_node_shape(&Op::Concat { axis: 1 }, &[&a, &b]).unwrap();
        assert_eq!(out.dims[1], Dim::Fixed(192));
        let bad = t(&[1, 128, 28, 28]);
        assert!(infer_node_shape(&Op::Concat { axis: 1 }, &[&a, &bad]).is_err());

        let up = infer_node_shape(&Op::Upsample { scale: 2 }, &[&a]).unwrap();
        assert_eq!(up.dims[3], Dim::Fixed(112));
    }

    #[test]
    fn transpose_and_reshape() {
        let x = t(&[2, 3, 4]);
        let out = infer_node_shape(
            &Op::Transpose {
                perm: vec![2, 0, 1],
            },
            &[&x],
        )
        .unwrap();
        assert_eq!(out.dims, vec![Dim::Fixed(4), Dim::Fixed(2), Dim::Fixed(3)]);
        assert!(infer_node_shape(
            &Op::Transpose {
                perm: vec![0, 0, 1]
            },
            &[&x]
        )
        .is_err());

        let r = infer_node_shape(
            &Op::Reshape {
                dims: vec![Dim::Fixed(6), Dim::Fixed(4)],
            },
            &[&x],
        )
        .unwrap();
        assert_eq!(r.len(), Some(24));
        assert!(infer_node_shape(
            &Op::Reshape {
                dims: vec![Dim::Fixed(5)]
            },
            &[&x]
        )
        .is_err());
    }

    #[test]
    fn dynamic_batch_propagates() {
        let x = TensorType {
            dtype: dtu_isa::DataType::Fp16,
            dims: vec![
                Dim::Dynamic("batch".into()),
                Dim::Fixed(3),
                Dim::Fixed(224),
                Dim::Fixed(224),
            ],
        };
        let out = infer_node_shape(&Op::conv2d(64, 3, 2, 1), &[&x]).unwrap();
        assert_eq!(out.dims[0], Dim::Dynamic("batch".into()));
        assert_eq!(out.dims[2], Dim::Fixed(112));
        // Binding later fixes it.
        let bound = out.bind("batch", 16);
        assert_eq!(bound.dims[0], Dim::Fixed(16));
    }

    #[test]
    fn embedding_and_topk() {
        let idx = t(&[1, 384]);
        let out = infer_node_shape(
            &Op::Embedding {
                vocab: 30_000,
                width: 1024,
            },
            &[&idx],
        )
        .unwrap();
        assert_eq!(out.dims.last(), Some(&Dim::Fixed(1024)));

        let scores = t(&[1, 1000]);
        let top = infer_node_shape(&Op::TopK { k: 5 }, &[&scores]).unwrap();
        assert_eq!(top.dims, vec![Dim::Fixed(1), Dim::Fixed(5)]);
    }

    #[test]
    fn elementwise_shape_checks() {
        let a = t(&[2, 3]);
        let b = t(&[2, 3]);
        let c = t(&[3, 2]);
        assert!(infer_node_shape(
            &Op::Binary {
                kind: crate::BinaryKind::Add
            },
            &[&a, &b]
        )
        .is_ok());
        assert!(infer_node_shape(
            &Op::Binary {
                kind: crate::BinaryKind::Add
            },
            &[&a, &c]
        )
        .is_err());
        let act = infer_node_shape(
            &Op::Activation {
                func: SfuFunc::Gelu,
            },
            &[&a],
        )
        .unwrap();
        assert_eq!(act.dims, a.dims);
    }
}
