//! Workload characterisation: what each operator costs.
//!
//! Both sides of the evaluation consume this: the DTU compiler turns
//! costs into kernel descriptors for the simulator, and the baseline
//! roofline models turn the *same* costs into GPU latency estimates —
//! so any relative result between platforms is driven by their
//! hardware parameters, not by divergent workload accounting.

use crate::graph::GraphError;
use crate::op::{Dim, Op, PoolKind, TensorType};
use dtu_isa::OpClass;

/// The characterised work of one operator instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Non-MAC vector ALU operations (element count).
    pub vector_ops: u64,
    /// SFU transcendental evaluations.
    pub sfu_ops: u64,
    /// Bytes of activations read.
    pub input_bytes: u64,
    /// Bytes of activations written.
    pub output_bytes: u64,
    /// Bytes of weights/parameters read.
    pub weight_bytes: u64,
    /// Work classification for the power model and DVFS classifier.
    pub class: OpClass,
    /// The narrowest GEMM dimension of a matrix op (0 for non-matrix
    /// work). Tensor-core tiles waste throughput when this is small —
    /// the tall-and-skinny effect §III motivates fine-grained VMM with.
    pub narrow_dim: u64,
    /// Whether a fast-convolution algorithm (Winograd-class) applies:
    /// dense 3x3, stride 1, both channel counts >= 128. GPU libraries
    /// exploit this on "typical CNN operators" (§VI-D); direct-conv
    /// engines do not.
    pub winograd_eligible: bool,
    /// Whether the op chain contains a LeakyReLU/PReLU epilogue, which
    /// the fast-convolution kernel selections do not fuse.
    pub leaky: bool,
}

impl OpCost {
    /// Total floating-point operations (2 per MAC).
    pub fn flops(&self) -> u64 {
        2 * self.macs + self.vector_ops + self.sfu_ops
    }

    /// Total bytes touched (activations in/out plus weights).
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes + self.weight_bytes
    }

    /// Arithmetic intensity in FLOPs per byte (infinite for zero bytes).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.total_bytes() == 0 {
            f64::INFINITY
        } else {
            self.flops() as f64 / self.total_bytes() as f64
        }
    }

    /// Merges another cost into this one (fusion accounting). The
    /// narrow-dim of the heavier matrix op wins; a leaky epilogue
    /// anywhere in the chain poisons fast-convolution eligibility.
    pub fn merge(&mut self, other: &OpCost) {
        if other.macs > self.macs && other.narrow_dim != 0 {
            self.narrow_dim = other.narrow_dim;
            self.winograd_eligible = other.winograd_eligible;
        } else if self.narrow_dim == 0 {
            self.narrow_dim = other.narrow_dim;
            self.winograd_eligible = self.winograd_eligible || other.winograd_eligible;
        }
        self.leaky |= other.leaky;
        if self.leaky {
            self.winograd_eligible = false;
        }
        self.macs += other.macs;
        self.vector_ops += other.vector_ops;
        self.sfu_ops += other.sfu_ops;
        self.input_bytes += other.input_bytes;
        self.output_bytes += other.output_bytes;
        self.weight_bytes += other.weight_bytes;
    }
}

fn fixed_len(t: &TensorType, what: &str) -> Result<u64, GraphError> {
    t.len().map(|n| n as u64).ok_or(GraphError::ShapeInference {
        reason: format!("{what} has dynamic dims; bind them before costing"),
    })
}

fn dim(t: &TensorType, i: usize, what: &str) -> Result<u64, GraphError> {
    t.dims
        .get(i)
        .and_then(Dim::value)
        .map(|n| n as u64)
        .ok_or(GraphError::ShapeInference {
            reason: format!("{what} dim {i} is dynamic or missing"),
        })
}

/// Characterises one operator given its (fully fixed) input and output
/// types.
///
/// # Errors
///
/// [`GraphError::ShapeInference`] when a needed dimension is dynamic —
/// bind dynamic dims (e.g. the batch) before costing.
pub fn characterize(
    op: &Op,
    inputs: &[&TensorType],
    output: &TensorType,
) -> Result<OpCost, GraphError> {
    let in_bytes: u64 = inputs
        .iter()
        .map(|t| fixed_len(t, "input").map(|n| n * t.dtype.size_bytes() as u64))
        .sum::<Result<u64, _>>()?;
    let out_elems = fixed_len(output, "output")?;
    let out_bytes = out_elems * output.dtype.size_bytes() as u64;
    let dt_bytes = output.dtype.size_bytes() as u64;

    let mut cost = OpCost {
        input_bytes: in_bytes,
        output_bytes: out_bytes,
        ..Default::default()
    };

    match op {
        Op::Input { .. } => {
            cost.input_bytes = 0;
            cost.output_bytes = 0;
            cost.class = OpClass::Movement;
        }
        Op::Conv2d {
            out_channels,
            kernel,
            stride,
            groups,
            ..
        } => {
            let x = inputs.first().ok_or(GraphError::ShapeInference {
                reason: "conv2d missing input".into(),
            })?;
            let in_c = dim(x, 1, "conv input")?;
            let k = *kernel as u64;
            let g = *groups as u64;
            let taps = (in_c / g) * k * k;
            cost.macs = out_elems * taps;
            cost.weight_bytes = (*out_channels as u64) * taps * dt_bytes;
            cost.class = OpClass::MatrixDense;
            // As a GEMM, conv's N dimension is out_channels/groups.
            cost.narrow_dim = (*out_channels as u64) / (g.max(1));
            cost.winograd_eligible =
                k == 3 && *stride == 1 && g == 1 && in_c >= 128 && *out_channels >= 128;
        }
        Op::ConvTranspose2d {
            out_channels,
            kernel,
            ..
        } => {
            let x = inputs.first().ok_or(GraphError::ShapeInference {
                reason: "deconv missing input".into(),
            })?;
            let in_c = dim(x, 1, "deconv input")?;
            let k = *kernel as u64;
            let in_elems = fixed_len(x, "deconv input")?;
            // Each input element scatters a k×k stencil into out_c maps:
            // in_elems · k² · out_c MACs.
            cost.macs = in_elems * k * k * (*out_channels as u64);
            cost.weight_bytes = in_c * (*out_channels as u64) * k * k * dt_bytes;
            cost.class = OpClass::MatrixDense;
            cost.narrow_dim = *out_channels as u64;
        }
        Op::Dense { units } => {
            let x = inputs.first().ok_or(GraphError::ShapeInference {
                reason: "dense missing input".into(),
            })?;
            let in_f = dim(x, x.rank() - 1, "dense input")?;
            let rows = fixed_len(x, "dense input")? / in_f.max(1);
            cost.macs = rows * in_f * (*units as u64);
            cost.weight_bytes = in_f * (*units as u64) * dt_bytes;
            cost.class = OpClass::MatrixDense;
            cost.narrow_dim = rows.min(*units as u64);
        }
        Op::MatMul => {
            let a = inputs.first().ok_or(GraphError::ShapeInference {
                reason: "matmul missing input".into(),
            })?;
            let k = dim(a, a.rank() - 1, "matmul lhs")?;
            cost.macs = out_elems * k;
            cost.class = OpClass::MatrixDense;
            let m = dim(a, a.rank() - 2, "matmul lhs")?;
            let nn = dim(output, output.rank() - 1, "matmul output")?;
            cost.narrow_dim = m.min(nn);
        }
        Op::Activation { .. } => {
            cost.sfu_ops = out_elems;
            cost.class = OpClass::Activation;
        }
        Op::Relu => {
            cost.vector_ops = out_elems;
            cost.class = OpClass::Elementwise;
        }
        Op::LeakyRelu { .. } => {
            cost.vector_ops = out_elems;
            cost.class = OpClass::Elementwise;
            cost.leaky = true;
        }
        Op::Binary { .. } => {
            cost.vector_ops = out_elems;
            cost.class = OpClass::Elementwise;
        }
        Op::BatchNorm => {
            // Folded scale+shift: one FMA per element.
            cost.vector_ops = 2 * out_elems;
            cost.class = OpClass::Elementwise;
        }
        Op::LayerNorm => {
            let last = dim(output, output.rank() - 1, "layernorm")?;
            let rows = out_elems / last.max(1);
            // mean, variance, normalise: ~4 passes; rsqrt per row.
            cost.vector_ops = 4 * out_elems;
            cost.sfu_ops = rows;
            cost.class = OpClass::Reduction;
        }
        Op::Softmax => {
            // exp per element plus max/sum/divide passes.
            cost.sfu_ops = out_elems;
            cost.vector_ops = 3 * out_elems;
            cost.class = OpClass::Reduction;
        }
        Op::Pool { kind, kernel, .. } => {
            let taps = match kind {
                PoolKind::GlobalAvg => {
                    let x = inputs.first().ok_or(GraphError::ShapeInference {
                        reason: "pool missing input".into(),
                    })?;
                    fixed_len(x, "pool input")? / out_elems.max(1)
                }
                _ => (*kernel as u64) * (*kernel as u64),
            };
            cost.vector_ops = out_elems * taps;
            cost.class = OpClass::Reduction;
        }
        Op::Upsample { .. } | Op::Concat { .. } | Op::Transpose { .. } | Op::Reshape { .. } => {
            // Pure data movement: no ALU work; DMA does the shuffling.
            cost.class = OpClass::Movement;
        }
        Op::Embedding { width, .. } => {
            // One row gather per index; latency-bound.
            cost.weight_bytes = out_elems / (*width as u64).max(1) * (*width as u64) * dt_bytes;
            cost.class = OpClass::Gather;
        }
        Op::TopK { k } => {
            let x = inputs.first().ok_or(GraphError::ShapeInference {
                reason: "topk missing input".into(),
            })?;
            let n = fixed_len(x, "topk input")?;
            // VMM-assisted sort (Fig. 4): relationship matrix + one VMM per
            // 32-element chunk → ~2·32 MACs per element, then merge.
            cost.macs = n * 64;
            cost.vector_ops = n * (*k as u64).max(1).ilog2() as u64;
            cost.class = OpClass::MatrixDense;
        }
    }
    Ok(cost)
}

/// Characterises every node of a graph (shape inference included) and
/// returns per-node costs in topological order alongside the grand total.
///
/// # Errors
///
/// Propagates shape-inference failures; dynamic dims must be bound first.
pub fn graph_costs(
    graph: &crate::Graph,
) -> Result<(Vec<(crate::NodeId, OpCost)>, OpCost), GraphError> {
    let shapes = graph.infer_shapes()?;
    let mut per_node = Vec::with_capacity(graph.len());
    let mut total = OpCost::default();
    for node in graph.nodes() {
        let input_types: Vec<&TensorType> = node.inputs.iter().map(|i| &shapes[i]).collect();
        let cost = characterize(&node.op, &input_types, &shapes[&node.id])?;
        total.merge(&cost);
        per_node.push((node.id, cost));
    }
    Ok((per_node, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryKind;
    use dtu_isa::{DataType, SfuFunc};

    fn t(dims: &[usize]) -> TensorType {
        TensorType::fixed(dims)
    }

    #[test]
    fn conv_macs_formula() {
        // ResNet conv3x3: in 64ch 56x56, out 64ch 56x56.
        let x = t(&[1, 64, 56, 56]);
        let y = t(&[1, 64, 56, 56]);
        let c = characterize(&Op::conv2d(64, 3, 1, 1), &[&x], &y).unwrap();
        assert_eq!(c.macs, 64 * 56 * 56 * 64 * 9);
        assert_eq!(c.weight_bytes, 64 * 64 * 9 * 2);
        assert_eq!(c.class, OpClass::MatrixDense);
        assert!(c.arithmetic_intensity() > 100.0);
    }

    #[test]
    fn depthwise_conv_is_cheap() {
        let x = t(&[1, 64, 56, 56]);
        let y = t(&[1, 64, 56, 56]);
        let dense = characterize(&Op::conv2d(64, 3, 1, 1), &[&x], &y).unwrap();
        let dw = characterize(&Op::depthwise_conv2d(64, 3, 1, 1), &[&x], &y).unwrap();
        assert_eq!(dense.macs / dw.macs, 64);
    }

    #[test]
    fn dense_and_matmul_macs() {
        let x = t(&[8, 1024]);
        let y = t(&[8, 4096]);
        let c = characterize(&Op::Dense { units: 4096 }, &[&x], &y).unwrap();
        assert_eq!(c.macs, 8 * 1024 * 4096);

        let a = t(&[12, 384, 64]);
        let b = t(&[12, 64, 384]);
        let o = t(&[12, 384, 384]);
        let m = characterize(&Op::MatMul, &[&a, &b], &o).unwrap();
        assert_eq!(m.macs, 12 * 384 * 384 * 64);
    }

    #[test]
    fn activation_uses_sfu() {
        let x = t(&[1, 1000]);
        let c = characterize(
            &Op::Activation {
                func: SfuFunc::Gelu,
            },
            &[&x],
            &x,
        )
        .unwrap();
        assert_eq!(c.sfu_ops, 1000);
        assert_eq!(c.macs, 0);
        assert_eq!(c.class, OpClass::Activation);
    }

    #[test]
    fn relu_uses_vector_engine() {
        let x = t(&[1, 1000]);
        let c = characterize(&Op::Relu, &[&x], &x).unwrap();
        assert_eq!(c.vector_ops, 1000);
        assert_eq!(c.sfu_ops, 0);
        assert_eq!(c.class, OpClass::Elementwise);
    }

    #[test]
    fn layout_ops_move_only() {
        let x = t(&[1, 64, 56, 56]);
        let y = t(&[1, 56, 56, 64]);
        let c = characterize(
            &Op::Transpose {
                perm: vec![0, 2, 3, 1],
            },
            &[&x],
            &y,
        )
        .unwrap();
        assert_eq!(c.flops(), 0);
        assert_eq!(c.class, OpClass::Movement);
        assert!(c.total_bytes() > 0);
    }

    #[test]
    fn softmax_and_layernorm() {
        let x = t(&[8, 384, 384]);
        let s = characterize(&Op::Softmax, &[&x], &x).unwrap();
        assert_eq!(s.sfu_ops, 8 * 384 * 384);
        assert_eq!(s.class, OpClass::Reduction);

        let h = t(&[8, 384, 1024]);
        let l = characterize(&Op::LayerNorm, &[&h], &h).unwrap();
        assert_eq!(l.sfu_ops, 8 * 384);
        assert!(l.vector_ops > 0);
    }

    #[test]
    fn global_pool_taps() {
        let x = t(&[1, 2048, 7, 7]);
        let y = t(&[1, 2048, 1, 1]);
        let c = characterize(
            &Op::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
            &[&x],
            &y,
        )
        .unwrap();
        assert_eq!(c.vector_ops, 2048 * 49);
    }

    #[test]
    fn embedding_is_gather_class() {
        let idx = t(&[1, 384]);
        let out = t(&[1, 384, 1024]);
        let c = characterize(
            &Op::Embedding {
                vocab: 30_000,
                width: 1024,
            },
            &[&idx],
            &out,
        )
        .unwrap();
        assert_eq!(c.class, OpClass::Gather);
        assert!(c.weight_bytes > 0);
        assert_eq!(c.macs, 0);
    }

    #[test]
    fn dynamic_dims_rejected() {
        let x = TensorType {
            dtype: DataType::Fp16,
            dims: vec![Dim::Dynamic("batch".into()), Dim::Fixed(10)],
        };
        let y = x.clone();
        assert!(characterize(&Op::Relu, &[&x], &y).is_err());
    }

    #[test]
    fn cost_merge_and_flops() {
        let mut a = OpCost {
            macs: 100,
            vector_ops: 10,
            ..Default::default()
        };
        let b = OpCost {
            sfu_ops: 5,
            input_bytes: 64,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flops(), 215);
        assert_eq!(a.input_bytes, 64);
    }

    #[test]
    fn binary_residual_cost() {
        let x = t(&[1, 64, 56, 56]);
        let c = characterize(
            &Op::Binary {
                kind: BinaryKind::Add,
            },
            &[&x, &x],
            &x,
        )
        .unwrap();
        assert_eq!(c.vector_ops, 64 * 56 * 56);
        // Two inputs counted.
        assert_eq!(c.input_bytes, 2 * 64 * 56 * 56 * 2);
    }

    #[test]
    fn topk_maps_to_vmm_work() {
        let x = t(&[1, 1000]);
        let y = t(&[1, 5]);
        let c = characterize(&Op::TopK { k: 5 }, &[&x], &y).unwrap();
        assert!(c.macs > 0);
        assert_eq!(c.class, OpClass::MatrixDense);
    }
}
