//! Search-based automatic operator fusion.
//!
//! §V-B: "Currently, the strategy of operator fusion is designed with
//! expert knowledge. We consider enabling search-based automatic
//! operator fusion soon as a supplementary approach to discovering more
//! beneficial solutions." This module implements that future-work item:
//! a greedy merge search over the fusion lattice, driven by an explicit
//! cost model (kernel launch overhead + intermediate materialisation
//! traffic), subject to the same legality rules as the expert pass plus
//! an on-chip working-set budget.

use crate::cost::{characterize, OpCost};
use crate::fusion::{FusedGroup, FusionPlan};
use crate::graph::{Graph, GraphError, NodeId};
use crate::op::Op;
use std::collections::BTreeMap;

/// Cost-model constants for the fusion search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Fixed cost per kernel launch, ns.
    pub launch_ns: f64,
    /// Achievable memory bandwidth for materialised intermediates, GB/s.
    pub bandwidth_gb_s: f64,
    /// Working-set budget per fused kernel, bytes. Fused kernels tile
    /// their activations through L2, so the budget reflects the chip's
    /// total shared-memory capacity (the "increased register/memory
    /// capacity" fusion exploits), not a single tensor.
    pub working_set_budget: u64,
    /// Maximum operators per fused kernel.
    pub max_group_len: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            launch_ns: 1_100.0,
            bandwidth_gb_s: 819.0,
            working_set_budget: 64 * 1024 * 1024,
            max_group_len: 12,
        }
    }
}

/// The outcome of a fusion search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The discovered plan.
    pub plan: FusionPlan,
    /// Estimated execution-overhead cost of the plan, ns.
    pub estimated_cost_ns: f64,
    /// Number of greedy merge steps taken.
    pub merges: usize,
}

/// Estimated overhead of a plan: launches plus the traffic of every
/// materialised inter-group edge (write + read).
///
/// # Errors
///
/// Propagates shape/costing failures (dynamic dims must be bound).
pub fn plan_cost_ns(
    graph: &Graph,
    plan: &FusionPlan,
    cfg: &SearchConfig,
) -> Result<f64, GraphError> {
    let shapes = graph.infer_shapes()?;
    let group_of: BTreeMap<NodeId, usize> = plan
        .groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.nodes.iter().map(move |&n| (n, gi)))
        .collect();
    let mut cost = plan.groups.len() as f64 * cfg.launch_ns;
    for node in graph.nodes() {
        let Some(&gi) = group_of.get(&node.id) else {
            continue; // inputs
        };
        for &input in &node.inputs {
            let producer_group = group_of.get(&input);
            if producer_group != Some(&gi) {
                // Materialised edge: the tensor is written then read.
                let bytes = shapes[&input].bytes().unwrap_or(0) as f64;
                cost += 2.0 * bytes / cfg.bandwidth_gb_s;
            }
        }
    }
    Ok(cost)
}

/// Working-set bytes of a merged candidate: external inputs + outputs +
/// weights (interior edges live in registers, which is the point).
fn group_working_set(
    graph: &Graph,
    nodes: &[NodeId],
    shapes: &BTreeMap<NodeId, crate::op::TensorType>,
) -> Result<u64, GraphError> {
    let mut total = 0u64;
    let inside = |n: &NodeId| nodes.contains(n);
    for &nid in nodes {
        let node = graph.node(nid)?;
        let input_types: Vec<_> = node.inputs.iter().map(|x| &shapes[x]).collect();
        let c: OpCost = characterize(&node.op, &input_types, &shapes[&nid])?;
        total += c.weight_bytes;
        for &i in &node.inputs {
            if !inside(&i) {
                total += shapes[&i].bytes().unwrap_or(0);
            }
        }
    }
    // The group's final output materialises.
    total += shapes[nodes.last().expect("non-empty")]
        .bytes()
        .unwrap_or(0);
    Ok(total)
}

/// Runs the greedy fusion search: start from singleton groups, repeatedly
/// apply the legal producer→consumer merge with the largest cost saving,
/// stop when no merge saves anything.
///
/// # Errors
///
/// Propagates graph and costing errors; requires a fully fixed graph.
pub fn search_fuse(graph: &Graph, cfg: &SearchConfig) -> Result<SearchResult, GraphError> {
    if graph.outputs().is_empty() {
        return Err(GraphError::NoOutputs);
    }
    let shapes = graph.infer_shapes()?;
    let consumers = graph.consumers();

    // State: ordered groups of node ids (singletons initially, skipping
    // inputs).
    let mut groups: Vec<Vec<NodeId>> = graph
        .nodes()
        .iter()
        .filter(|n| !matches!(n.op, Op::Input { .. }))
        .map(|n| vec![n.id])
        .collect();
    let mut merges = 0usize;

    loop {
        // Index: node -> group position.
        let mut pos: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for &n in g {
                pos.insert(n, gi);
            }
        }
        // Candidate merges: group A's tail feeds group B's head, the tail
        // has a single consumer, is not a graph output, and the merged
        // group respects length and working-set budgets.
        let mut best: Option<(usize, usize, f64)> = None;
        for (gi, g) in groups.iter().enumerate() {
            let tail = *g.last().expect("non-empty");
            if graph.outputs().contains(&tail) {
                continue;
            }
            let Some(cons) = consumers.get(&tail) else {
                continue;
            };
            if cons.len() != 1 {
                continue;
            }
            let consumer = cons[0];
            let Some(&gj) = pos.get(&consumer) else {
                continue;
            };
            if gj == gi || groups[gj][0] != consumer {
                continue; // consumer must head its group
            }
            // All of the consumer group's *other* external inputs must be
            // produced before group A ends — true by topological node
            // ordering, since groups hold contiguous topo ranges and we
            // only merge forward edges.
            let merged_len = g.len() + groups[gj].len();
            if merged_len > cfg.max_group_len {
                continue;
            }
            let mut merged = g.clone();
            merged.extend_from_slice(&groups[gj]);
            if group_working_set(graph, &merged, &shapes)? > cfg.working_set_budget {
                continue;
            }
            // Saving: one launch + the materialised edge's round trip.
            let bytes = shapes[&tail].bytes().unwrap_or(0) as f64;
            let saving = cfg.launch_ns + 2.0 * bytes / cfg.bandwidth_gb_s;
            if best.map(|(_, _, s)| saving > s).unwrap_or(true) {
                best = Some((gi, gj, saving));
            }
        }
        let Some((gi, gj, saving)) = best else {
            break;
        };
        if saving <= 0.0 {
            break;
        }
        let consumer_group = groups[gj].clone();
        groups[gi].extend_from_slice(&consumer_group);
        groups.remove(gj);
        merges += 1;
    }

    let plan = FusionPlan {
        groups: groups
            .into_iter()
            .map(|nodes| FusedGroup { nodes })
            .collect(),
    };
    let estimated_cost_ns = plan_cost_ns(graph, &plan, cfg)?;
    Ok(SearchResult {
        plan,
        estimated_cost_ns,
        merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{fuse, FusionConfig};
    use crate::op::{BinaryKind, TensorType};
    use dtu_isa::SfuFunc;

    fn conv_chain() -> Graph {
        let mut g = Graph::new("chain");
        let x = g.input("x", TensorType::fixed(&[1, 16, 32, 32]));
        let c1 = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let b1 = g.add_node(Op::BatchNorm, vec![c1]).unwrap();
        let r1 = g.add_node(Op::Relu, vec![b1]).unwrap();
        let c2 = g.add_node(Op::conv2d(16, 3, 1, 1), vec![r1]).unwrap();
        let a2 = g
            .add_node(
                Op::Activation {
                    func: SfuFunc::Gelu,
                },
                vec![c2],
            )
            .unwrap();
        g.mark_output(a2);
        g
    }

    #[test]
    fn search_matches_or_beats_expert_rules() {
        let g = conv_chain();
        let cfg = SearchConfig::default();
        let expert = fuse(&g, &FusionConfig::default()).unwrap();
        let expert_cost = plan_cost_ns(&g, &expert, &cfg).unwrap();
        let result = search_fuse(&g, &cfg).unwrap();
        assert!(
            result.estimated_cost_ns <= expert_cost + 1e-9,
            "search ({:.1} ns) worse than expert rules ({expert_cost:.1} ns)",
            result.estimated_cost_ns
        );
        assert!(result.merges > 0);
    }

    #[test]
    fn search_can_fuse_across_compute_anchors() {
        // The expert rules never merge two convs; the search may, when the
        // working set fits — discovering "more beneficial solutions".
        let g = conv_chain();
        let result = search_fuse(&g, &SearchConfig::default()).unwrap();
        assert!(
            result.plan.kernel_count()
                <= fuse(&g, &FusionConfig::default()).unwrap().kernel_count(),
        );
    }

    #[test]
    fn working_set_budget_limits_merges() {
        let g = conv_chain();
        let tight = SearchConfig {
            working_set_budget: 1, // nothing fits
            ..SearchConfig::default()
        };
        let result = search_fuse(&g, &tight).unwrap();
        // No merges possible: every op is its own kernel.
        assert_eq!(result.plan.kernel_count(), 5);
        assert_eq!(result.merges, 0);
    }

    #[test]
    fn multi_consumer_edges_never_merge() {
        let mut g = Graph::new("fanout");
        let x = g.input("x", TensorType::fixed(&[1, 8, 16, 16]));
        let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        let r1 = g.add_node(Op::Relu, vec![c]).unwrap();
        let r2 = g
            .add_node(
                Op::Activation {
                    func: SfuFunc::Tanh,
                },
                vec![c],
            )
            .unwrap();
        let s = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![r1, r2],
            )
            .unwrap();
        g.mark_output(s);
        let result = search_fuse(&g, &SearchConfig::default()).unwrap();
        // conv stays alone (two consumers); r1/r2 may fuse into the add.
        let conv_group = result.plan.group_of(c).unwrap();
        assert_eq!(result.plan.groups[conv_group].len(), 1);
        for group in &result.plan.groups {
            let mut seen = std::collections::BTreeSet::new();
            for &n in &group.nodes {
                assert!(seen.insert(n));
            }
        }
    }

    #[test]
    fn outputs_always_materialise() {
        let mut g = Graph::new("two-out");
        let x = g.input("x", TensorType::fixed(&[1, 8, 16, 16]));
        let c = g.add_node(Op::conv2d(8, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(c); // intermediate is also an output
        g.mark_output(r);
        let result = search_fuse(&g, &SearchConfig::default()).unwrap();
        assert_eq!(result.plan.kernel_count(), 2);
    }

    #[test]
    fn cost_model_prefers_fewer_kernels_for_same_traffic() {
        let g = conv_chain();
        let cfg = SearchConfig::default();
        let singleton = FusionPlan {
            groups: g
                .nodes()
                .iter()
                .filter(|n| !matches!(n.op, Op::Input { .. }))
                .map(|n| FusedGroup { nodes: vec![n.id] })
                .collect(),
        };
        let searched = search_fuse(&g, &cfg).unwrap();
        let single_cost = plan_cost_ns(&g, &singleton, &cfg).unwrap();
        assert!(searched.estimated_cost_ns < single_cost);
    }

    #[test]
    fn search_covers_every_non_input_node_once() {
        let g = conv_chain();
        let result = search_fuse(&g, &SearchConfig::default()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for group in &result.plan.groups {
            for &n in &group.nodes {
                assert!(seen.insert(n), "{n} covered twice");
            }
        }
        assert_eq!(seen.len(), g.len() - 1);
    }
}
