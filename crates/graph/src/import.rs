//! Model import: a line-oriented textual graph format.
//!
//! The paper's TopsInference "leverages ONNX to import/convert DNN
//! models developed with various frameworks" (§V-B). Standing in for
//! ONNX, this module defines a small text format that covers the same
//! operator set the IR supports, with a parser ([`parse_model`]) and an
//! exporter ([`export_model`]) that round-trip.
//!
//! ```text
//! # comment
//! model tiny
//! input x fp16 1x3x32x32
//! conv c1 x out=8 k=3 s=1 p=1
//! bn   b1 c1
//! relu r1 b1
//! gpool g1 r1
//! reshape f1 g1 dims=1x8
//! dense d1 f1 units=10
//! softmax sm d1
//! output sm
//! ```
//!
//! Every node line is `<op> <name> <inputs...> [key=value...]`; tensors
//! are referenced by name; `output` marks graph outputs. Dynamic dims
//! are written as identifiers (e.g. `Nx3x224x224`).

use crate::graph::{Graph, GraphError, NodeId};
use crate::op::{BinaryKind, Dim, Op, PoolKind, TensorType};
use dtu_isa::{DataType, SfuFunc};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from parsing the textual model format.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A node referenced an undefined tensor name.
    UnknownTensor {
        /// 1-based line number.
        line: usize,
        /// The missing name.
        name: String,
    },
    /// A tensor name was defined twice.
    DuplicateName {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// Graph construction rejected the parsed structure.
    Graph(GraphError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Syntax { line, reason } => write!(f, "line {line}: {reason}"),
            ImportError::UnknownTensor { line, name } => {
                write!(f, "line {line}: unknown tensor '{name}'")
            }
            ImportError::DuplicateName { line, name } => {
                write!(f, "line {line}: tensor '{name}' already defined")
            }
            ImportError::Graph(e) => write!(f, "graph construction: {e}"),
        }
    }
}

impl Error for ImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImportError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ImportError {
    fn from(e: GraphError) -> Self {
        ImportError::Graph(e)
    }
}

fn parse_dims(s: &str, line: usize) -> Result<Vec<Dim>, ImportError> {
    s.split('x')
        .map(|tok| {
            if tok.is_empty() {
                Err(ImportError::Syntax {
                    line,
                    reason: "empty dimension".into(),
                })
            } else if tok.chars().all(|c| c.is_ascii_digit()) {
                Ok(Dim::Fixed(tok.parse().expect("digits only")))
            } else if tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                Ok(Dim::Dynamic(tok.to_string()))
            } else {
                Err(ImportError::Syntax {
                    line,
                    reason: format!("bad dimension '{tok}'"),
                })
            }
        })
        .collect()
}

fn parse_dtype(s: &str, line: usize) -> Result<DataType, ImportError> {
    match s {
        "fp32" => Ok(DataType::Fp32),
        "tf32" => Ok(DataType::Tf32),
        "fp16" => Ok(DataType::Fp16),
        "bf16" => Ok(DataType::Bf16),
        "int32" => Ok(DataType::Int32),
        "int16" => Ok(DataType::Int16),
        "int8" => Ok(DataType::Int8),
        other => Err(ImportError::Syntax {
            line,
            reason: format!("unknown dtype '{other}'"),
        }),
    }
}

fn parse_sfu(s: &str, line: usize) -> Result<SfuFunc, ImportError> {
    match s {
        "exp" => Ok(SfuFunc::Exp),
        "ln" => Ok(SfuFunc::Ln),
        "rsqrt" => Ok(SfuFunc::Rsqrt),
        "tanh" => Ok(SfuFunc::Tanh),
        "sigmoid" => Ok(SfuFunc::Sigmoid),
        "softplus" => Ok(SfuFunc::Softplus),
        "gelu" => Ok(SfuFunc::Gelu),
        "swish" => Ok(SfuFunc::Swish),
        "erf" => Ok(SfuFunc::Erf),
        "sin" => Ok(SfuFunc::Sin),
        other => Err(ImportError::Syntax {
            line,
            reason: format!("unknown activation '{other}'"),
        }),
    }
}

/// Key=value attribute bag for one node line.
struct Attrs<'a> {
    map: BTreeMap<&'a str, &'a str>,
    line: usize,
}

impl<'a> Attrs<'a> {
    fn parse(tokens: &[&'a str], line: usize) -> Result<(Vec<&'a str>, Attrs<'a>), ImportError> {
        let mut positional = Vec::new();
        let mut map = BTreeMap::new();
        for t in tokens {
            if let Some((k, v)) = t.split_once('=') {
                if map.insert(k, v).is_some() {
                    return Err(ImportError::Syntax {
                        line,
                        reason: format!("duplicate attribute '{k}'"),
                    });
                }
            } else {
                if !map.is_empty() {
                    return Err(ImportError::Syntax {
                        line,
                        reason: format!("positional argument '{t}' after attributes"),
                    });
                }
                positional.push(*t);
            }
        }
        Ok((positional, Attrs { map, line }))
    }

    fn usize(&self, key: &str) -> Result<usize, ImportError> {
        self.map
            .get(key)
            .ok_or(ImportError::Syntax {
                line: self.line,
                reason: format!("missing attribute '{key}'"),
            })?
            .parse()
            .map_err(|_| ImportError::Syntax {
                line: self.line,
                reason: format!("attribute '{key}' is not an integer"),
            })
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, ImportError> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ImportError::Syntax {
                line: self.line,
                reason: format!("attribute '{key}' is not an integer"),
            }),
        }
    }

    fn f32_or(&self, key: &str, default: f32) -> Result<f32, ImportError> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ImportError::Syntax {
                line: self.line,
                reason: format!("attribute '{key}' is not a number"),
            }),
        }
    }

    fn str(&self, key: &str) -> Result<&'a str, ImportError> {
        self.map.get(key).copied().ok_or(ImportError::Syntax {
            line: self.line,
            reason: format!("missing attribute '{key}'"),
        })
    }
}

/// Parses a model in the textual format into a [`Graph`].
///
/// # Errors
///
/// Syntax, reference, and graph-construction errors, each carrying the
/// offending line number where applicable.
pub fn parse_model(text: &str) -> Result<Graph, ImportError> {
    let mut graph = Graph::new("imported");
    let mut names: BTreeMap<String, NodeId> = BTreeMap::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let op_word = tokens[0];

        if op_word == "model" {
            if tokens.len() != 2 {
                return Err(ImportError::Syntax {
                    line: line_no,
                    reason: "model takes exactly one name".into(),
                });
            }
            graph.name = tokens[1].to_string();
            continue;
        }
        if op_word == "output" {
            for &name in &tokens[1..] {
                let id = *names.get(name).ok_or(ImportError::UnknownTensor {
                    line: line_no,
                    name: name.to_string(),
                })?;
                graph.mark_output(id);
            }
            if tokens.len() < 2 {
                return Err(ImportError::Syntax {
                    line: line_no,
                    reason: "output needs at least one tensor".into(),
                });
            }
            continue;
        }

        // Node lines: <op> <name> <inputs...> [attrs...].
        if tokens.len() < 2 {
            return Err(ImportError::Syntax {
                line: line_no,
                reason: format!("'{op_word}' needs a result name"),
            });
        }
        let name = tokens[1];
        if names.contains_key(name) {
            return Err(ImportError::DuplicateName {
                line: line_no,
                name: name.to_string(),
            });
        }

        if op_word == "input" {
            // input <name> <dtype> <dims>
            if tokens.len() != 4 {
                return Err(ImportError::Syntax {
                    line: line_no,
                    reason: "input syntax: input <name> <dtype> <dims>".into(),
                });
            }
            let dtype = parse_dtype(tokens[2], line_no)?;
            let dims = parse_dims(tokens[3], line_no)?;
            let id = graph.input(name, TensorType { dtype, dims });
            names.insert(name.to_string(), id);
            continue;
        }

        let (positional, attrs) = Attrs::parse(&tokens[2..], line_no)?;
        let inputs: Vec<NodeId> = positional
            .iter()
            .map(|&n| {
                names.get(n).copied().ok_or(ImportError::UnknownTensor {
                    line: line_no,
                    name: n.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;

        let op = match op_word {
            "conv" => Op::Conv2d {
                out_channels: attrs.usize("out")?,
                kernel: attrs.usize("k")?,
                stride: attrs.usize_or("s", 1)?,
                padding: attrs.usize_or("p", 0)?,
                groups: attrs.usize_or("g", 1)?,
            },
            "dwconv" => {
                let k = attrs.usize("k")?;
                let ch = attrs.usize("ch")?;
                Op::Conv2d {
                    out_channels: ch,
                    kernel: k,
                    stride: attrs.usize_or("s", 1)?,
                    padding: attrs.usize_or("p", 0)?,
                    groups: ch,
                }
            }
            "deconv" => Op::ConvTranspose2d {
                out_channels: attrs.usize("out")?,
                kernel: attrs.usize("k")?,
                stride: attrs.usize_or("s", 1)?,
            },
            "dense" => Op::Dense {
                units: attrs.usize("units")?,
            },
            "matmul" => Op::MatMul,
            "act" => Op::Activation {
                func: parse_sfu(attrs.str("fn")?, line_no)?,
            },
            "relu" => Op::Relu,
            "leakyrelu" => Op::LeakyRelu {
                alpha: attrs.f32_or("alpha", 0.1)?,
            },
            "add" => Op::Binary {
                kind: BinaryKind::Add,
            },
            "mul" => Op::Binary {
                kind: BinaryKind::Mul,
            },
            "sub" => Op::Binary {
                kind: BinaryKind::Sub,
            },
            "max" => Op::Binary {
                kind: BinaryKind::Max,
            },
            "bn" => Op::BatchNorm,
            "layernorm" => Op::LayerNorm,
            "softmax" => Op::Softmax,
            "pool" => Op::Pool {
                kind: match attrs.str("kind")? {
                    "max" => PoolKind::Max,
                    "avg" => PoolKind::Avg,
                    other => {
                        return Err(ImportError::Syntax {
                            line: line_no,
                            reason: format!("unknown pool kind '{other}'"),
                        })
                    }
                },
                kernel: attrs.usize("k")?,
                stride: attrs.usize_or("s", 1)?,
            },
            "gpool" => Op::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: 0,
                stride: 0,
            },
            "upsample" => Op::Upsample {
                scale: attrs.usize("scale")?,
            },
            "concat" => Op::Concat {
                axis: attrs.usize_or("axis", 1)?,
            },
            "transpose" => Op::Transpose {
                perm: attrs
                    .str("perm")?
                    .split(',')
                    .map(|t| {
                        t.parse().map_err(|_| ImportError::Syntax {
                            line: line_no,
                            reason: format!("bad perm element '{t}'"),
                        })
                    })
                    .collect::<Result<_, _>>()?,
            },
            "reshape" => Op::Reshape {
                dims: parse_dims(attrs.str("dims")?, line_no)?,
            },
            "embedding" => Op::Embedding {
                vocab: attrs.usize("vocab")?,
                width: attrs.usize("width")?,
            },
            "topk" => Op::TopK {
                k: attrs.usize("k")?,
            },
            other => {
                return Err(ImportError::Syntax {
                    line: line_no,
                    reason: format!("unknown operator '{other}'"),
                })
            }
        };
        let id = graph.add_named_node(name, op, inputs)?;
        names.insert(name.to_string(), id);
    }
    Ok(graph)
}

fn dims_to_string(dims: &[Dim]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

fn dtype_to_string(dt: DataType) -> &'static str {
    match dt {
        DataType::Fp32 => "fp32",
        DataType::Tf32 => "tf32",
        DataType::Fp16 => "fp16",
        DataType::Bf16 => "bf16",
        DataType::Int32 => "int32",
        DataType::Int16 => "int16",
        DataType::Int8 => "int8",
    }
}

/// Exports a graph back into the textual format (round-trips with
/// [`parse_model`]).
pub fn export_model(graph: &Graph) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Names are single tokens in the format; sanitise spaces.
    let _ = writeln!(out, "model {}", graph.name.replace(' ', "_"));
    for node in graph.nodes() {
        let ins = node
            .inputs
            .iter()
            .map(|i| graph.node(*i).expect("valid graph").name.clone())
            .collect::<Vec<_>>()
            .join(" ");
        let n = &node.name;
        let line = match &node.op {
            Op::Input { ty } => {
                format!(
                    "input {n} {} {}",
                    dtype_to_string(ty.dtype),
                    dims_to_string(&ty.dims)
                )
            }
            Op::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => {
                if *groups == *out_channels && *groups > 1 {
                    format!("dwconv {n} {ins} ch={out_channels} k={kernel} s={stride} p={padding}")
                } else {
                    format!(
                        "conv {n} {ins} out={out_channels} k={kernel} s={stride} p={padding} g={groups}"
                    )
                }
            }
            Op::ConvTranspose2d {
                out_channels,
                kernel,
                stride,
            } => format!("deconv {n} {ins} out={out_channels} k={kernel} s={stride}"),
            Op::Dense { units } => format!("dense {n} {ins} units={units}"),
            Op::MatMul => format!("matmul {n} {ins}"),
            Op::Activation { func } => {
                format!("act {n} {ins} fn={}", format!("{func:?}").to_lowercase())
            }
            Op::Relu => format!("relu {n} {ins}"),
            Op::LeakyRelu { alpha } => format!("leakyrelu {n} {ins} alpha={alpha}"),
            Op::Binary { kind } => {
                let w = match kind {
                    BinaryKind::Add => "add",
                    BinaryKind::Mul => "mul",
                    BinaryKind::Sub => "sub",
                    BinaryKind::Max => "max",
                };
                format!("{w} {n} {ins}")
            }
            Op::BatchNorm => format!("bn {n} {ins}"),
            Op::LayerNorm => format!("layernorm {n} {ins}"),
            Op::Softmax => format!("softmax {n} {ins}"),
            Op::Pool {
                kind,
                kernel,
                stride,
            } => match kind {
                PoolKind::GlobalAvg => format!("gpool {n} {ins}"),
                PoolKind::Max => format!("pool {n} {ins} kind=max k={kernel} s={stride}"),
                PoolKind::Avg => format!("pool {n} {ins} kind=avg k={kernel} s={stride}"),
            },
            Op::Upsample { scale } => format!("upsample {n} {ins} scale={scale}"),
            Op::Concat { axis } => format!("concat {n} {ins} axis={axis}"),
            Op::Transpose { perm } => format!(
                "transpose {n} {ins} perm={}",
                perm.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            Op::Reshape { dims } => format!("reshape {n} {ins} dims={}", dims_to_string(dims)),
            Op::Embedding { vocab, width } => {
                format!("embedding {n} {ins} vocab={vocab} width={width}")
            }
            Op::TopK { k } => format!("topk {n} {ins} k={k}"),
        };
        let _ = writeln!(out, "{line}");
    }
    let outputs = graph
        .outputs()
        .iter()
        .map(|o| graph.node(*o).expect("valid graph").name.clone())
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(out, "output {outputs}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r"
# a tiny CNN
model tiny
input x fp16 1x3x32x32
conv c1 x out=8 k=3 s=1 p=1
bn   b1 c1
relu r1 b1
gpool g1 r1
reshape f1 g1 dims=1x8
dense d1 f1 units=10
softmax sm d1
output sm
";

    #[test]
    fn parse_tiny_model() {
        let g = parse_model(TINY).unwrap();
        assert_eq!(g.name, "tiny");
        assert_eq!(g.len(), 8);
        assert_eq!(g.outputs().len(), 1);
        let shapes = g.infer_shapes().unwrap();
        let out = &shapes[&g.outputs()[0]];
        assert_eq!(out.len(), Some(10));
    }

    #[test]
    fn roundtrip_export_parse() {
        let g = parse_model(TINY).unwrap();
        let text = export_model(&g);
        let g2 = parse_model(&text).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.name, g2.name);
        // Shapes agree node-for-node.
        let s1 = g.infer_shapes().unwrap();
        let s2 = g2.infer_shapes().unwrap();
        for (a, b) in g.nodes().iter().zip(g2.nodes()) {
            assert_eq!(s1[&a.id], s2[&b.id], "{} vs {}", a.name, b.name);
        }
    }

    #[test]
    fn dynamic_dims_parse() {
        let g = parse_model("model d\ninput x fp16 Nx128\ndense h x units=64\noutput h\n").unwrap();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(
            shapes[&g.outputs()[0]].dims[0],
            Dim::Dynamic("N".to_string())
        );
        let bound = g.bind("N", 4);
        assert!(bound.infer_shapes().unwrap()[&g.outputs()[0]].is_fully_fixed());
    }

    #[test]
    fn binary_and_residual() {
        let g = parse_model(
            "model r\ninput x fp16 1x8x8x8\nconv c x out=8 k=3 s=1 p=1\nadd s c x\noutput s\n",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        g.infer_shapes().unwrap();
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_model("model m\ninput x fp16 1x4\nfrobnicate y x\noutput y\n").unwrap_err();
        assert!(matches!(err, ImportError::Syntax { line: 3, .. }), "{err}");

        let err = parse_model("input x fp99 1x4\n").unwrap_err();
        assert!(err.to_string().contains("fp99"));

        let err = parse_model("model m\ninput x fp16 1x4\ndense d x\noutput d\n").unwrap_err();
        assert!(err.to_string().contains("units"));
    }

    #[test]
    fn unknown_and_duplicate_tensors() {
        let err = parse_model("model m\nrelu r ghost\noutput r\n").unwrap_err();
        assert!(matches!(err, ImportError::UnknownTensor { line: 2, .. }));

        let err =
            parse_model("model m\ninput x fp16 1x4\ninput x fp16 1x4\noutput x\n").unwrap_err();
        assert!(matches!(err, ImportError::DuplicateName { line: 3, .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_model(
            "\n\n# header\nmodel m # trailing\ninput x fp16 1x4 # dims\n  \noutput x\n",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn attr_validation() {
        // Positional after attribute.
        let err =
            parse_model("model m\ninput x fp16 1x4\ninput y fp16 1x4\nadd s x k=1 y\noutput s\n")
                .unwrap_err();
        assert!(matches!(err, ImportError::Syntax { line: 4, .. }));
        // Duplicate attribute.
        let err =
            parse_model("model m\ninput x fp16 1x3x8x8\nconv c x out=4 out=8 k=3\noutput c\n")
                .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn every_operator_parses() {
        let text = r"
model all_ops
input x fp16 1x4x16x16
input idx fp16 1x12
conv c x out=8 k=3 s=1 p=1
dwconv dw c ch=8 k=3 s=1 p=1
deconv dc dw out=4 k=2 s=2
leakyrelu lr dc alpha=0.2
act ge lr fn=gelu
pool mp ge kind=max k=2 s=2
upsample up mp scale=2
bn b up
layernorm ln b
softmax sm ln
transpose tr sm perm=0,2,3,1
reshape rs tr dims=1x4096
dense de rs units=64
reshape sq de dims=8x8
matmul mm sq sq
embedding em idx vocab=100 width=8
topk tk de k=5
sub s2 de de
max m2 de de
mul m3 de de
concat cc m2 m3 axis=1
output cc tk em mm
";
        let g = parse_model(text).unwrap();
        g.infer_shapes().unwrap();
        assert!(g.len() > 20);
    }
}
