//! DNN graph IR, operators, shape inference, and fusion passes.
//!
//! This crate models the front half of the paper's software stack
//! (§V-B): the graph compiler *TopsInference* imports models into a
//! computation-graph IR, runs shape inference (including dynamic
//! dimensions), validates the graph, and applies automatic operator
//! fusion to "eliminate unnecessary materialization and scan of
//! intermediate values". The operator-cost module characterises each
//! node's work (MACs, bytes, op class) — the common currency shared by
//! the DTU compiler and the baseline roofline models.
//!
//! # Example
//!
//! ```
//! use dtu_graph::{Graph, Op, Dim, TensorType};
//! use dtu_isa::SfuFunc;
//!
//! let mut g = Graph::new("tiny");
//! let input = g.input("x", TensorType::fixed(&[1, 3, 224, 224]));
//! let conv = g.add_node(Op::conv2d(64, 7, 2, 3), vec![input])?;
//! let act = g.add_node(Op::Activation { func: SfuFunc::Tanh }, vec![conv])?;
//! g.mark_output(act);
//! let shapes = g.infer_shapes()?;
//! assert_eq!(shapes[&act].dims, vec![Dim::Fixed(1), Dim::Fixed(64), Dim::Fixed(112), Dim::Fixed(112)]);
//! # Ok::<(), dtu_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod fusion;
mod fusion_search;
mod graph;
mod import;
mod op;
mod optimize;
mod shape_infer;

pub use cost::{characterize, graph_costs, OpCost};
pub use fusion::{fuse, FusedGroup, FusionConfig, FusionPlan};
pub use fusion_search::{plan_cost_ns, search_fuse, SearchConfig, SearchResult};
pub use graph::{Graph, GraphError, Node, NodeId};
pub use import::{export_model, parse_model, ImportError};
pub use op::{BinaryKind, Dim, Op, PoolKind, TensorType};
pub use optimize::{optimize, OptimizeStats};
pub use shape_infer::infer_node_shape;
