//! CPME/LPME hybrid power management for DTU 2.0.
//!
//! Section IV-F of the paper describes a two-tier architecture: a central
//! power management engine (CPME) owns the board power limit, hands each
//! function unit a baseline budget at boot, and keeps the remainder in
//! reserve; local power management engines (LPMEs) at every compute core
//! and DMA engine watch per-window activity, throttle their unit when it
//! would exceed its budget, and borrow/return budget from/to the CPME.
//! A customised DVFS governor classifies each window's workload as
//! compute-bound, bandwidth-bound, or balanced and retunes the core clock
//! through a four-stage observe → evaluate → decide → act loop.
//!
//! This crate implements those control loops plus the activity-based
//! energy model the simulator integrates against.
//!
//! # Example
//!
//! ```
//! use dtu_power::{Cpme, PowerConfig, UnitId};
//!
//! let cfg = PowerConfig::default();
//! let units = vec![(UnitId::core(0, 0), 3_000), (UnitId::dma(0, 0), 1_000)];
//! let mut cpme = Cpme::new(cfg.board_tdp_mw, &units)?;
//! // A unit under pressure borrows from the reserve:
//! let granted = cpme.request(UnitId::core(0, 0), 2_000);
//! assert!(granted <= 2_000);
//! # Ok::<(), dtu_power::PowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod dvfs;
mod energy;
mod integrity;

pub use budget::{Cpme, PowerError, UnitId, UnitKind};
pub use dvfs::{DvfsGovernor, FrequencyPlan, WorkloadKind};
pub use energy::{EnergyAccount, EnergyModel};
pub use integrity::{Lpme, LpmeAction, WindowObservation};

/// Tuning constants for the whole power-management stack.
///
/// Defaults reflect the Cloudblazer i20: 150 W board TDP, 1.0–1.4 GHz DVFS
/// range (§VI-D "Power management ON v.s. OFF").
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Board power limit, in milliwatts.
    pub board_tdp_mw: u64,
    /// Lowest core frequency the governor may select, in MHz.
    pub f_min_mhz: u32,
    /// Highest core frequency, in MHz.
    pub f_max_mhz: u32,
    /// Frequency step per governor action, in MHz.
    pub f_step_mhz: u32,
    /// Length of one observation window, in core cycles.
    pub window_cycles: u64,
    /// Stall/bubble ratio above which an LPME considers borrowing budget.
    pub borrow_threshold: f64,
    /// An LPME asks the CPME for more budget when at least `history_m` of
    /// the last `history_n` windows exceeded the borrow threshold.
    pub history_m: usize,
    /// Size of the LPME's window history.
    pub history_n: usize,
    /// Busy-duty-cycle ratio above which a window counts as compute-bound.
    pub compute_bound_busy: f64,
    /// DMA-stall ratio (waiting on L3) above which a window counts as
    /// bandwidth-bound.
    pub bandwidth_bound_stall: f64,
    /// Consecutive same-kind windows the governor requires before acting.
    pub decision_windows: usize,
    /// Fraction of its budget an LPME keeps as headroom before returning
    /// surplus to the CPME.
    pub return_headroom: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            board_tdp_mw: 150_000,
            f_min_mhz: 1_000,
            f_max_mhz: 1_400,
            f_step_mhz: 100,
            window_cycles: 10_000,
            borrow_threshold: 0.15,
            history_m: 3,
            history_n: 5,
            compute_bound_busy: 0.40,
            bandwidth_bound_stall: 0.70,
            decision_windows: 2,
            return_headroom: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_envelope() {
        let cfg = PowerConfig::default();
        assert_eq!(cfg.board_tdp_mw, 150_000);
        assert_eq!(cfg.f_min_mhz, 1_000);
        assert_eq!(cfg.f_max_mhz, 1_400);
        assert!(cfg.history_m <= cfg.history_n);
    }
}
