//! The customised DVFS governor (energy-efficiency management, §IV-F2).
//!
//! Fig. 10 of the paper: each observation window the LPME reports the
//! compute core's busy duty cycle and the ratio of DMA stalls caused by L3
//! access; the CPME classifies the workload (compute-bound /
//! bandwidth-bound / balanced), looks back at the last few windows, and
//! only then raises or lowers the core frequency — a 4-stage
//! observe → evaluate → decide → act closed loop.

use crate::{PowerConfig, WindowObservation};
use std::collections::VecDeque;
use std::fmt;

/// The CPME's classification of one window's workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// High busy duty cycle, few memory stalls — raising frequency helps.
    ComputeBound,
    /// Dominated by waits on L3/HBM — frequency does not help; lower it.
    BandwidthBound,
    /// Neither dominates — hold.
    Balanced,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadKind::ComputeBound => "compute-bound",
            WorkloadKind::BandwidthBound => "bandwidth-bound",
            WorkloadKind::Balanced => "balanced",
        };
        write!(f, "{s}")
    }
}

/// The frequency decision for the next window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequencyPlan {
    /// Core frequency for the next window, in MHz.
    pub freq_mhz: u32,
    /// The classification that produced it.
    pub kind: WorkloadKind,
    /// Whether this plan changed the frequency.
    pub changed: bool,
}

/// Per-core DVFS governor.
///
/// When disabled (power management OFF in the §VI-D experiment) the
/// governor pins the clock at `f_max`.
#[derive(Debug, Clone)]
pub struct DvfsGovernor {
    cfg: PowerConfig,
    freq_mhz: u32,
    history: VecDeque<WorkloadKind>,
    enabled: bool,
}

impl DvfsGovernor {
    /// Creates an enabled governor starting at the top frequency.
    pub fn new(cfg: PowerConfig) -> Self {
        let f = cfg.f_max_mhz;
        DvfsGovernor {
            cfg,
            freq_mhz: f,
            history: VecDeque::new(),
            enabled: true,
        }
    }

    /// Creates a governor with power management switched off: the clock is
    /// fixed at `f_max` "to get the maximal performance" (§VI-D).
    pub fn disabled(cfg: PowerConfig) -> Self {
        let mut g = DvfsGovernor::new(cfg);
        g.enabled = false;
        g
    }

    /// Whether the governor is actively scaling.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current core frequency in MHz.
    pub fn freq_mhz(&self) -> u32 {
        self.freq_mhz
    }

    /// Stage 2 (*Evaluation*): classify a window.
    pub fn classify(&self, obs: &WindowObservation) -> WorkloadKind {
        if obs.l3_stall_ratio() > self.cfg.bandwidth_bound_stall {
            WorkloadKind::BandwidthBound
        } else if obs.busy_ratio() > self.cfg.compute_bound_busy {
            WorkloadKind::ComputeBound
        } else {
            WorkloadKind::Balanced
        }
    }

    /// Slack-budgeted planning: selects the lowest frequency whose
    /// predicted window-latency growth stays within `slack` (e.g. 0.04
    /// = 4%). Only the busy (issue) fraction of a window scales with
    /// frequency; stalls are memory-latency time and do not. This is the
    /// "on-demand adjustment" flavour of the §IV-F2 strategy: windows
    /// dominated by memory stalls sink toward `f_min` for free, while
    /// compute-saturated windows stay at `f_max`.
    pub fn step_with_slack(&mut self, obs: WindowObservation, slack: f64) -> FrequencyPlan {
        let kind = self.classify(&obs);
        if !self.enabled {
            return FrequencyPlan {
                freq_mhz: self.freq_mhz,
                kind,
                changed: false,
            };
        }
        let busy_share = obs.busy_ratio();
        // Growth = busy_share · (f_max/f − 1) ≤ slack.
        let fscale_max = if busy_share > 0.0 {
            1.0 + slack / busy_share
        } else {
            f64::INFINITY
        };
        let target = (self.cfg.f_max_mhz as f64 / fscale_max).ceil() as u32;
        let new_freq = target.clamp(self.cfg.f_min_mhz, self.cfg.f_max_mhz);
        let changed = new_freq != self.freq_mhz;
        self.freq_mhz = new_freq;
        FrequencyPlan {
            freq_mhz: new_freq,
            kind,
            changed,
        }
    }

    /// Runs one full observe → evaluate → decide → act iteration and
    /// returns the plan for the next window.
    pub fn step(&mut self, obs: WindowObservation) -> FrequencyPlan {
        let kind = self.classify(&obs);
        if !self.enabled {
            return FrequencyPlan {
                freq_mhz: self.freq_mhz,
                kind,
                changed: false,
            };
        }
        self.history.push_back(kind);
        while self.history.len() > self.cfg.decision_windows {
            self.history.pop_front();
        }
        // Stage 3 (*Decision*): act only on a persistent classification.
        let persistent = self.history.len() == self.cfg.decision_windows
            && self.history.iter().all(|&k| k == kind);
        let mut new_freq = self.freq_mhz;
        if persistent {
            match kind {
                WorkloadKind::ComputeBound => {
                    new_freq = (self.freq_mhz + self.cfg.f_step_mhz).min(self.cfg.f_max_mhz);
                }
                WorkloadKind::BandwidthBound => {
                    new_freq = self
                        .freq_mhz
                        .saturating_sub(self.cfg.f_step_mhz)
                        .max(self.cfg.f_min_mhz);
                }
                WorkloadKind::Balanced => {}
            }
        }
        // Stage 4 (*Action*).
        let changed = new_freq != self.freq_mhz;
        self.freq_mhz = new_freq;
        FrequencyPlan {
            freq_mhz: new_freq,
            kind,
            changed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PowerConfig {
        PowerConfig::default()
    }

    fn compute_window() -> WindowObservation {
        WindowObservation {
            busy_cycles: 95,
            stall_cycles: 5,
            l3_stall_cycles: 0,
            projected_power_mw: 0,
        }
    }

    fn memory_window() -> WindowObservation {
        WindowObservation {
            busy_cycles: 10,
            stall_cycles: 90,
            l3_stall_cycles: 85,
            projected_power_mw: 0,
        }
    }

    fn balanced_window() -> WindowObservation {
        WindowObservation {
            busy_cycles: 35,
            stall_cycles: 65,
            l3_stall_cycles: 30,
            projected_power_mw: 0,
        }
    }

    #[test]
    fn classification_matches_thresholds() {
        let g = DvfsGovernor::new(cfg());
        assert_eq!(g.classify(&compute_window()), WorkloadKind::ComputeBound);
        assert_eq!(g.classify(&memory_window()), WorkloadKind::BandwidthBound);
        assert_eq!(g.classify(&balanced_window()), WorkloadKind::Balanced);
    }

    #[test]
    fn bandwidth_bound_lowers_frequency_after_persistence() {
        let mut g = DvfsGovernor::new(cfg());
        let p1 = g.step(memory_window());
        assert!(!p1.changed, "one window must not trigger action");
        let p2 = g.step(memory_window());
        assert!(p2.changed);
        assert_eq!(p2.freq_mhz, cfg().f_max_mhz - cfg().f_step_mhz);
    }

    #[test]
    fn frequency_clamped_to_range() {
        let mut g = DvfsGovernor::new(cfg());
        for _ in 0..50 {
            g.step(memory_window());
        }
        assert_eq!(g.freq_mhz(), cfg().f_min_mhz);
        for _ in 0..50 {
            g.step(compute_window());
        }
        assert_eq!(g.freq_mhz(), cfg().f_max_mhz);
    }

    #[test]
    fn mixed_windows_hold_frequency() {
        let mut g = DvfsGovernor::new(cfg());
        for _ in 0..10 {
            g.step(memory_window());
            g.step(compute_window());
        }
        // Alternating classifications never persist, so no change from max.
        assert_eq!(g.freq_mhz(), cfg().f_max_mhz);
    }

    #[test]
    fn balanced_never_changes_frequency() {
        let mut g = DvfsGovernor::new(cfg());
        // Drop once so we're mid-range.
        g.step(memory_window());
        g.step(memory_window());
        let mid = g.freq_mhz();
        for _ in 0..10 {
            let p = g.step(balanced_window());
            assert!(!p.changed);
        }
        assert_eq!(g.freq_mhz(), mid);
    }

    #[test]
    fn disabled_governor_pins_fmax() {
        let mut g = DvfsGovernor::disabled(cfg());
        assert!(!g.is_enabled());
        for _ in 0..20 {
            let p = g.step(memory_window());
            assert!(!p.changed);
            assert_eq!(p.freq_mhz, cfg().f_max_mhz);
        }
    }

    #[test]
    fn workload_kind_display() {
        assert_eq!(WorkloadKind::ComputeBound.to_string(), "compute-bound");
        assert_eq!(WorkloadKind::BandwidthBound.to_string(), "bandwidth-bound");
        assert_eq!(WorkloadKind::Balanced.to_string(), "balanced");
    }
}
