//! Activity-based energy model.
//!
//! The simulator counts activity (MACs, bytes moved per memory level, SFU
//! evaluations) and this model converts activity into joules, scaling the
//! dynamic component with frequency and the square of voltage (voltage is
//! taken linear in frequency across the DVFS range, the standard
//! first-order CMOS model behind the paper's DVFS energy savings).

use crate::PowerConfig;

/// Energy cost coefficients at the nominal (maximum) DVFS point.
///
/// Per-operation energies are in picojoules. The defaults are first-order
/// 12nm-class values chosen so that a fully-busy i20 integrates to roughly
/// its 150 W TDP, which is the only absolute anchor the paper provides.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per FP32-equivalent MAC, in pJ.
    pub pj_per_mac: f64,
    /// Energy per non-MAC vector ALU op, in pJ.
    pub pj_per_vector_op: f64,
    /// Energy per SFU transcendental evaluation, in pJ.
    pub pj_per_sfu_op: f64,
    /// Energy per byte touched in L1, in pJ.
    pub pj_per_l1_byte: f64,
    /// Energy per byte through an L2 port, in pJ.
    pub pj_per_l2_byte: f64,
    /// Energy per byte over the HBM interface, in pJ.
    pub pj_per_l3_byte: f64,
    /// Static (leakage + always-on) board power, in mW.
    pub leakage_mw: f64,
    /// Active-idle power of the clocked function units at the nominal
    /// DVFS point (clock tree, pipeline control), in mW. Unlike leakage
    /// it scales with f·V², which is what frequency scaling harvests
    /// during memory-bound windows.
    pub active_idle_mw: f64,
    /// The DVFS point the coefficients are calibrated at, in MHz.
    pub nominal_mhz: u32,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_mac: 1.1,
            pj_per_vector_op: 0.6,
            pj_per_sfu_op: 2.4,
            pj_per_l1_byte: 0.9,
            pj_per_l2_byte: 2.2,
            pj_per_l3_byte: 18.0,
            leakage_mw: 20_000.0,
            active_idle_mw: 30_000.0,
            nominal_mhz: 1_400,
        }
    }
}

impl EnergyModel {
    /// Dynamic-energy scale factor at `freq_mhz` relative to nominal.
    ///
    /// Per-op *energy* scales with V²; with V linear in f between 0.7·Vnom
    /// at `f_min` and Vnom at nominal, dropping frequency saves energy per
    /// op even though the op count is unchanged.
    pub fn dynamic_energy_scale(&self, cfg: &PowerConfig, freq_mhz: u32) -> f64 {
        let fnom = self.nominal_mhz as f64;
        let fmin = cfg.f_min_mhz as f64;
        let f = (freq_mhz as f64).clamp(fmin, fnom);
        // Voltage fraction: 0.7 at fmin, 1.0 at fnom (linear).
        let span = (fnom - fmin).max(1.0);
        let v = 0.7 + 0.3 * (f - fmin) / span;
        v * v
    }

    /// Dynamic-power scale (for projections): f · V².
    pub fn dynamic_power_scale(&self, cfg: &PowerConfig, freq_mhz: u32) -> f64 {
        let f = freq_mhz as f64 / self.nominal_mhz as f64;
        f * self.dynamic_energy_scale(cfg, freq_mhz)
    }
}

/// A running energy integral for one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyAccount {
    /// Dynamic energy accumulated, in picojoules.
    pub dynamic_pj: f64,
    /// Static energy accumulated, in picojoules.
    pub static_pj: f64,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Charges compute activity executed at `freq_mhz`.
    #[allow(clippy::too_many_arguments)]
    pub fn charge_compute(
        &mut self,
        model: &EnergyModel,
        cfg: &PowerConfig,
        freq_mhz: u32,
        macs: u64,
        vector_ops: u64,
        sfu_ops: u64,
    ) {
        let scale = model.dynamic_energy_scale(cfg, freq_mhz);
        self.dynamic_pj += scale
            * (macs as f64 * model.pj_per_mac
                + vector_ops as f64 * model.pj_per_vector_op
                + sfu_ops as f64 * model.pj_per_sfu_op);
    }

    /// Charges memory traffic (bytes per level). Memory energy does not
    /// scale with the core clock.
    pub fn charge_memory(&mut self, model: &EnergyModel, l1: u64, l2: u64, l3: u64) {
        self.dynamic_pj += l1 as f64 * model.pj_per_l1_byte
            + l2 as f64 * model.pj_per_l2_byte
            + l3 as f64 * model.pj_per_l3_byte;
    }

    /// Charges leakage for a wall-clock duration in nanoseconds.
    pub fn charge_static(&mut self, model: &EnergyModel, duration_ns: f64) {
        // mW * ns = pJ.
        self.static_pj += model.leakage_mw * duration_ns;
    }

    /// Charges the frequency-scaled active-idle (clock tree) power for a
    /// duration spent at `freq_mhz`. This is the component DVFS saves
    /// during memory-bound windows.
    pub fn charge_active_idle(
        &mut self,
        model: &EnergyModel,
        cfg: &PowerConfig,
        freq_mhz: u32,
        duration_ns: f64,
    ) {
        let scale = model.dynamic_power_scale(cfg, freq_mhz);
        self.dynamic_pj += model.active_idle_mw * scale * duration_ns;
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        (self.dynamic_pj + self.static_pj) * 1e-12
    }

    /// Average power in watts over `duration_ns` nanoseconds.
    pub fn average_watts(&self, duration_ns: f64) -> f64 {
        if duration_ns <= 0.0 {
            0.0
        } else {
            self.total_joules() / (duration_ns * 1e-9)
        }
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.dynamic_pj += other.dynamic_pj;
        self.static_pj += other.static_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scale_is_one_at_nominal() {
        let m = EnergyModel::default();
        let cfg = PowerConfig::default();
        let s = m.dynamic_energy_scale(&cfg, m.nominal_mhz);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scale_drops_with_frequency() {
        let m = EnergyModel::default();
        let cfg = PowerConfig::default();
        let low = m.dynamic_energy_scale(&cfg, cfg.f_min_mhz);
        let high = m.dynamic_energy_scale(&cfg, cfg.f_max_mhz);
        assert!(low < high);
        assert!((low - 0.49).abs() < 1e-9); // 0.7^2
    }

    #[test]
    fn power_scale_superlinear_in_frequency() {
        let m = EnergyModel::default();
        let cfg = PowerConfig::default();
        let p_low = m.dynamic_power_scale(&cfg, 1_000);
        let p_high = m.dynamic_power_scale(&cfg, 1_400);
        // Power ratio should exceed the frequency ratio (V² effect).
        assert!(p_high / p_low > 1.4);
    }

    #[test]
    fn compute_charging_scales_with_frequency() {
        let m = EnergyModel::default();
        let cfg = PowerConfig::default();
        let mut hot = EnergyAccount::new();
        let mut cool = EnergyAccount::new();
        hot.charge_compute(&m, &cfg, 1_400, 1_000_000, 0, 0);
        cool.charge_compute(&m, &cfg, 1_000, 1_000_000, 0, 0);
        assert!(cool.dynamic_pj < hot.dynamic_pj);
    }

    #[test]
    fn memory_charging_per_level_ordering() {
        let m = EnergyModel::default();
        let mut a1 = EnergyAccount::new();
        let mut a3 = EnergyAccount::new();
        a1.charge_memory(&m, 1_000, 0, 0);
        a3.charge_memory(&m, 0, 0, 1_000);
        assert!(a3.dynamic_pj > a1.dynamic_pj, "HBM must cost more than L1");
    }

    #[test]
    fn static_energy_and_average_power() {
        let m = EnergyModel::default();
        let mut acc = EnergyAccount::new();
        acc.charge_static(&m, 1e9); // one second of leakage
        let j = acc.total_joules();
        assert!((j - 20.0).abs() < 1e-6); // 20 W × 1 s
        assert!((acc.average_watts(1e9) - 20.0).abs() < 1e-6);
        assert_eq!(acc.average_watts(0.0), 0.0);
    }

    #[test]
    fn busy_i20_lands_near_tdp() {
        // At peak FP16: 128 TFLOPs = 64e12 MACs/s, plus HBM at full tilt
        // (819 GB/s), should integrate to the same order as the 150 W TDP.
        let m = EnergyModel::default();
        let cfg = PowerConfig::default();
        let mut acc = EnergyAccount::new();
        // FP16 MACs cost a quarter of the FP32 coefficient in this model;
        // charge as FP32-equivalents: 64e12 fp16 MACs = 16e12 equivalents.
        acc.charge_compute(&m, &cfg, 1_400, 16_000_000_000_000, 0, 0);
        acc.charge_memory(&m, 0, 0, 819_000_000_000);
        acc.charge_static(&m, 1e9);
        let w = acc.average_watts(1e9);
        assert!(w > 50.0 && w < 250.0, "unrealistic board power {w} W");
    }

    #[test]
    fn merge_adds_components() {
        let mut a = EnergyAccount {
            dynamic_pj: 10.0,
            static_pj: 5.0,
        };
        let b = EnergyAccount {
            dynamic_pj: 1.0,
            static_pj: 2.0,
        };
        a.merge(&b);
        assert_eq!(a.dynamic_pj, 11.0);
        assert_eq!(a.static_pj, 7.0);
    }
}
