//! The local power management engine (LPME) integrity loop.
//!
//! Fig. 9 of the paper: the LPME projects its unit's power for each
//! observation window; if the projection exceeds the assigned budget it
//! inserts stalls/bubbles (a negative feedback loop). It also tracks the
//! stall ratio across recent windows and, when at least M of the last N
//! windows exceeded the borrow threshold, asks the CPME for more budget —
//! and when holding more than it needs, returns the surplus.

use crate::PowerConfig;
use std::collections::VecDeque;

/// What one unit observed during one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowObservation {
    /// Cycles the unit spent doing useful work.
    pub busy_cycles: u64,
    /// Cycles the unit was stalled (all causes, including LPME-inserted).
    pub stall_cycles: u64,
    /// Of the stall cycles, how many were waiting on L3/HBM access
    /// (used by the DVFS classifier, not the integrity loop).
    pub l3_stall_cycles: u64,
    /// Power the unit would draw next window if unthrottled, in mW.
    pub projected_power_mw: u64,
}

impl WindowObservation {
    /// Total cycles covered by the observation.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.stall_cycles
    }

    /// Fraction of cycles stalled (0 when the window is empty).
    pub fn stall_ratio(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / t as f64
        }
    }

    /// Fraction of cycles busy.
    pub fn busy_ratio(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / t as f64
        }
    }

    /// Fraction of cycles stalled on L3.
    pub fn l3_stall_ratio(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.l3_stall_cycles as f64 / t as f64
        }
    }
}

/// What the LPME decided after digesting a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpmeAction {
    /// Nothing to do: projection fits the budget and no borrow is needed.
    None,
    /// Throttle: insert this many stall cycles into the next window so the
    /// unit's average power stays under budget.
    InsertStalls(u64),
    /// Ask the CPME for this much additional budget (mW).
    RequestBudget(u64),
    /// Hand this much surplus budget back to the CPME (mW).
    ReturnBudget(u64),
}

/// A local power management engine guarding one function unit.
#[derive(Debug, Clone)]
pub struct Lpme {
    cfg: PowerConfig,
    budget_mw: u64,
    baseline_mw: u64,
    /// True entries mark windows whose stall ratio exceeded the borrow
    /// threshold *while throttled by power* (the bottleneck test of Fig. 9).
    pressure_history: VecDeque<bool>,
    /// Stalls the integrity loop inserted last window, so the unit model
    /// can distinguish power throttling from memory stalls.
    inserted_stalls: u64,
}

impl Lpme {
    /// Creates an LPME with its boot-time baseline budget.
    pub fn new(cfg: PowerConfig, baseline_mw: u64) -> Self {
        Lpme {
            cfg,
            budget_mw: baseline_mw,
            baseline_mw,
            pressure_history: VecDeque::new(),
            inserted_stalls: 0,
        }
    }

    /// Current budget in mW.
    pub fn budget_mw(&self) -> u64 {
        self.budget_mw
    }

    /// Baseline (boot) budget in mW.
    pub fn baseline_mw(&self) -> u64 {
        self.baseline_mw
    }

    /// Stalls inserted by the most recent [`Lpme::observe`] call.
    pub fn inserted_stalls(&self) -> u64 {
        self.inserted_stalls
    }

    /// Records a granted budget increase.
    pub fn grant(&mut self, amount_mw: u64) {
        self.budget_mw += amount_mw;
    }

    /// Records a budget return accepted by the CPME.
    ///
    /// Saturates at the baseline — the LPME never gives that portion up.
    pub fn relinquish(&mut self, amount_mw: u64) {
        self.budget_mw = self
            .budget_mw
            .saturating_sub(amount_mw)
            .max(self.baseline_mw);
    }

    /// Digests one observation window and produces the control action
    /// (Fig. 9).
    ///
    /// Decision order:
    /// 1. If the projection exceeds the budget, compute the throttle
    ///    (stalls to insert) that brings average power under budget, and
    ///    record pressure.
    /// 2. If pressure persisted in ≥ M of the last N windows, request a
    ///    budget increase sized to clear the projection.
    /// 3. If the unit holds borrowed budget and the projection sits well
    ///    below it (beyond the configured headroom), return the surplus.
    pub fn observe(&mut self, obs: WindowObservation) -> LpmeAction {
        let over_budget = obs.projected_power_mw > self.budget_mw;
        let pressured = over_budget && obs.stall_ratio() > self.cfg.borrow_threshold;
        self.pressure_history.push_back(pressured || over_budget);
        while self.pressure_history.len() > self.cfg.history_n {
            self.pressure_history.pop_front();
        }

        if over_budget {
            let hot = self.pressure_history.iter().filter(|&&p| p).count();
            if hot >= self.cfg.history_m {
                // Bottleneck confirmed across history: escalate to CPME.
                self.inserted_stalls = 0;
                return LpmeAction::RequestBudget(obs.projected_power_mw - self.budget_mw);
            }
            // Negative feedback: stretch the window with bubbles so that
            // busy/total == budget/projected.
            let total = obs.total_cycles().max(1);
            let scale = obs.projected_power_mw as f64 / self.budget_mw.max(1) as f64;
            let stalls = ((scale - 1.0) * total as f64).ceil() as u64;
            self.inserted_stalls = stalls;
            return LpmeAction::InsertStalls(stalls);
        }

        self.inserted_stalls = 0;
        // Surplus return: holding borrowed budget the workload no longer needs.
        let borrowed = self.budget_mw - self.baseline_mw;
        if borrowed > 0 {
            let needed = (obs.projected_power_mw as f64 * (1.0 + self.cfg.return_headroom)) as u64;
            if needed < self.budget_mw {
                let surplus = (self.budget_mw - needed).min(borrowed);
                if surplus > 0 {
                    return LpmeAction::ReturnBudget(surplus);
                }
            }
        }
        LpmeAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PowerConfig {
        PowerConfig {
            history_m: 3,
            history_n: 5,
            borrow_threshold: 0.15,
            return_headroom: 0.25,
            ..PowerConfig::default()
        }
    }

    fn window(busy: u64, stall: u64, power: u64) -> WindowObservation {
        WindowObservation {
            busy_cycles: busy,
            stall_cycles: stall,
            l3_stall_cycles: 0,
            projected_power_mw: power,
        }
    }

    #[test]
    fn ratios() {
        let w = window(80, 20, 0);
        assert!((w.stall_ratio() - 0.2).abs() < 1e-12);
        assert!((w.busy_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(window(0, 0, 0).stall_ratio(), 0.0);
    }

    #[test]
    fn under_budget_is_quiet() {
        let mut l = Lpme::new(cfg(), 2_000);
        assert_eq!(l.observe(window(100, 0, 1_500)), LpmeAction::None);
        assert_eq!(l.inserted_stalls(), 0);
    }

    #[test]
    fn over_budget_inserts_proportional_stalls() {
        let mut l = Lpme::new(cfg(), 2_000);
        // 3000 mW projected on a 2000 mW budget: scale 1.5, so half the
        // window length in extra bubbles.
        let a = l.observe(window(1_000, 0, 3_000));
        assert_eq!(a, LpmeAction::InsertStalls(500));
        assert_eq!(l.inserted_stalls(), 500);
    }

    #[test]
    fn persistent_pressure_escalates_to_borrow() {
        let mut l = Lpme::new(cfg(), 2_000);
        let w = window(800, 200, 3_000); // stall ratio 0.2 > threshold
        let mut actions = Vec::new();
        for _ in 0..4 {
            actions.push(l.observe(w));
        }
        // First two windows throttle; by the third, 3-of-5 pressure
        // history triggers the borrow request.
        assert!(matches!(actions[0], LpmeAction::InsertStalls(_)));
        assert!(matches!(actions[1], LpmeAction::InsertStalls(_)));
        assert_eq!(actions[2], LpmeAction::RequestBudget(1_000));
    }

    #[test]
    fn grant_raises_budget_and_quiets_loop() {
        let mut l = Lpme::new(cfg(), 2_000);
        let w = window(800, 200, 3_000);
        for _ in 0..3 {
            l.observe(w);
        }
        l.grant(1_000);
        assert_eq!(l.budget_mw(), 3_000);
        assert_eq!(l.observe(w), LpmeAction::None);
    }

    #[test]
    fn surplus_is_returned_with_headroom() {
        let mut l = Lpme::new(cfg(), 2_000);
        l.grant(2_000); // holding 4000, baseline 2000
                        // Projection 1000: needs 1250 with headroom, surplus = min(2750, borrowed 2000).
        let a = l.observe(window(100, 0, 1_000));
        assert_eq!(a, LpmeAction::ReturnBudget(2_000));
        l.relinquish(2_000);
        assert_eq!(l.budget_mw(), 2_000);
    }

    #[test]
    fn relinquish_never_drops_below_baseline() {
        let mut l = Lpme::new(cfg(), 2_000);
        l.grant(500);
        l.relinquish(5_000);
        assert_eq!(l.budget_mw(), 2_000);
    }

    #[test]
    fn baseline_budget_never_returned_when_idle() {
        let mut l = Lpme::new(cfg(), 2_000);
        assert_eq!(l.observe(window(0, 0, 0)), LpmeAction::None);
        assert_eq!(l.budget_mw(), 2_000);
    }
}
