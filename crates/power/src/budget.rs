//! The central power management engine (CPME) and budget arithmetic.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// What kind of function unit an LPME guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitKind {
    /// A compute core.
    Core,
    /// A DMA engine.
    Dma,
    /// A synchronisation engine.
    Sync,
    /// The HBM memory subsystem.
    Memory,
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnitKind::Core => "core",
            UnitKind::Dma => "dma",
            UnitKind::Sync => "sync",
            UnitKind::Memory => "mem",
        };
        write!(f, "{s}")
    }
}

/// Identity of a power-managed function unit: kind, cluster, index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId {
    /// Unit kind.
    pub kind: UnitKind,
    /// Owning cluster (0 or 1 on DTU 2.0).
    pub cluster: usize,
    /// Index within the cluster.
    pub index: usize,
}

impl UnitId {
    /// A compute-core unit id.
    pub fn core(cluster: usize, index: usize) -> Self {
        UnitId {
            kind: UnitKind::Core,
            cluster,
            index,
        }
    }

    /// A DMA-engine unit id.
    pub fn dma(cluster: usize, index: usize) -> Self {
        UnitId {
            kind: UnitKind::Dma,
            cluster,
            index,
        }
    }

    /// A sync-engine unit id.
    pub fn sync(cluster: usize, index: usize) -> Self {
        UnitId {
            kind: UnitKind::Sync,
            cluster,
            index,
        }
    }

    /// The memory-subsystem unit id.
    pub fn memory() -> Self {
        UnitId {
            kind: UnitKind::Memory,
            cluster: 0,
            index: 0,
        }
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}.{}]", self.kind, self.cluster, self.index)
    }
}

/// Errors from power-budget management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PowerError {
    /// The baseline budgets already exceed the board limit.
    BaselineExceedsLimit {
        /// Sum of requested baselines (mW).
        baseline_mw: u64,
        /// Board limit (mW).
        limit_mw: u64,
    },
    /// An operation referenced a unit the CPME does not manage.
    UnknownUnit {
        /// The offending unit.
        unit: String,
    },
    /// A unit tried to return more budget than it holds above baseline.
    ReturnExceedsLoan {
        /// The offending unit.
        unit: String,
        /// Amount it tried to return (mW).
        amount_mw: u64,
        /// Amount it actually holds above baseline (mW).
        held_mw: u64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::BaselineExceedsLimit {
                baseline_mw,
                limit_mw,
            } => write!(
                f,
                "baseline budgets ({baseline_mw} mW) exceed board limit ({limit_mw} mW)"
            ),
            PowerError::UnknownUnit { unit } => write!(f, "unknown power unit {unit}"),
            PowerError::ReturnExceedsLoan {
                unit,
                amount_mw,
                held_mw,
            } => write!(
                f,
                "{unit} tried to return {amount_mw} mW but holds only {held_mw} mW above baseline"
            ),
        }
    }
}

impl Error for PowerError {}

/// The central power management engine.
///
/// Invariant: `reserve + Σ allocations == board limit`, and every unit's
/// allocation is at least its baseline. "On system booting, CPME
/// conservatively assigns a baseline power budget to every function unit
/// ... and reserves the remaining budgets for runtime distribution"
/// (§IV-F1).
#[derive(Debug, Clone)]
pub struct Cpme {
    limit_mw: u64,
    reserve_mw: u64,
    baseline: BTreeMap<UnitId, u64>,
    allocation: BTreeMap<UnitId, u64>,
}

impl Cpme {
    /// Boots the CPME with a board limit and per-unit baseline budgets.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::BaselineExceedsLimit`] if the baselines do not
    /// fit under the limit.
    pub fn new(limit_mw: u64, baselines: &[(UnitId, u64)]) -> Result<Self, PowerError> {
        let total: u64 = baselines.iter().map(|&(_, b)| b).sum();
        if total > limit_mw {
            return Err(PowerError::BaselineExceedsLimit {
                baseline_mw: total,
                limit_mw,
            });
        }
        let baseline: BTreeMap<UnitId, u64> = baselines.iter().copied().collect();
        let allocation = baseline.clone();
        Ok(Cpme {
            limit_mw,
            reserve_mw: limit_mw - total,
            baseline,
            allocation,
        })
    }

    /// The board power limit in milliwatts.
    pub fn limit_mw(&self) -> u64 {
        self.limit_mw
    }

    /// The undistributed reserve in milliwatts.
    pub fn reserve_mw(&self) -> u64 {
        self.reserve_mw
    }

    /// Current allocation of a unit in milliwatts (0 for unknown units).
    pub fn allocation_mw(&self, unit: UnitId) -> u64 {
        self.allocation.get(&unit).copied().unwrap_or(0)
    }

    /// A unit requests `amount_mw` additional budget. The CPME grants as
    /// much as the reserve allows ("CPME processes LPME's request based on
    /// its power management model, assuring the overall power integrity is
    /// risk-free"). Returns the granted amount (possibly 0).
    pub fn request(&mut self, unit: UnitId, amount_mw: u64) -> u64 {
        if !self.allocation.contains_key(&unit) {
            return 0;
        }
        let granted = amount_mw.min(self.reserve_mw);
        self.reserve_mw -= granted;
        *self.allocation.get_mut(&unit).expect("checked") += granted;
        granted
    }

    /// A unit returns surplus budget to the reserve.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::UnknownUnit`] for unmanaged units and
    /// [`PowerError::ReturnExceedsLoan`] if the unit would drop below its
    /// baseline.
    pub fn release(&mut self, unit: UnitId, amount_mw: u64) -> Result<(), PowerError> {
        let Some(alloc) = self.allocation.get_mut(&unit) else {
            return Err(PowerError::UnknownUnit {
                unit: unit.to_string(),
            });
        };
        let base = self.baseline[&unit];
        let held = *alloc - base;
        if amount_mw > held {
            return Err(PowerError::ReturnExceedsLoan {
                unit: unit.to_string(),
                amount_mw,
                held_mw: held,
            });
        }
        *alloc -= amount_mw;
        self.reserve_mw += amount_mw;
        Ok(())
    }

    /// Checks the conservation invariant; used by tests and debug asserts.
    pub fn is_consistent(&self) -> bool {
        let allocated: u64 = self.allocation.values().sum();
        allocated + self.reserve_mw == self.limit_mw
            && self.allocation.iter().all(|(u, &a)| a >= self.baseline[u])
    }

    /// The units managed by this CPME.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.allocation.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> Cpme {
        Cpme::new(
            10_000,
            &[(UnitId::core(0, 0), 2_000), (UnitId::dma(0, 0), 1_000)],
        )
        .unwrap()
    }

    #[test]
    fn boot_reserves_remainder() {
        let c = boot();
        assert_eq!(c.reserve_mw(), 7_000);
        assert_eq!(c.allocation_mw(UnitId::core(0, 0)), 2_000);
        assert!(c.is_consistent());
    }

    #[test]
    fn boot_rejects_oversubscribed_baseline() {
        let err = Cpme::new(1_000, &[(UnitId::core(0, 0), 2_000)]).unwrap_err();
        assert!(matches!(err, PowerError::BaselineExceedsLimit { .. }));
    }

    #[test]
    fn request_grants_up_to_reserve() {
        let mut c = boot();
        assert_eq!(c.request(UnitId::core(0, 0), 5_000), 5_000);
        assert_eq!(c.reserve_mw(), 2_000);
        // Second request larger than what's left: partial grant.
        assert_eq!(c.request(UnitId::dma(0, 0), 5_000), 2_000);
        assert_eq!(c.reserve_mw(), 0);
        assert_eq!(c.request(UnitId::core(0, 0), 1), 0);
        assert!(c.is_consistent());
    }

    #[test]
    fn request_from_unknown_unit_grants_nothing() {
        let mut c = boot();
        assert_eq!(c.request(UnitId::sync(1, 9), 100), 0);
        assert!(c.is_consistent());
    }

    #[test]
    fn release_returns_loan() {
        let mut c = boot();
        c.request(UnitId::core(0, 0), 3_000);
        c.release(UnitId::core(0, 0), 3_000).unwrap();
        assert_eq!(c.reserve_mw(), 7_000);
        assert_eq!(c.allocation_mw(UnitId::core(0, 0)), 2_000);
        assert!(c.is_consistent());
    }

    #[test]
    fn release_cannot_drop_below_baseline() {
        let mut c = boot();
        let err = c.release(UnitId::core(0, 0), 1).unwrap_err();
        assert!(matches!(err, PowerError::ReturnExceedsLoan { .. }));
        assert!(c.is_consistent());
    }

    #[test]
    fn release_unknown_unit_errors() {
        let mut c = boot();
        assert!(matches!(
            c.release(UnitId::memory(), 1),
            Err(PowerError::UnknownUnit { .. })
        ));
    }

    #[test]
    fn unit_id_display() {
        assert_eq!(UnitId::core(1, 11).to_string(), "core[1.11]");
        assert_eq!(UnitId::memory().to_string(), "mem[0.0]");
    }

    #[test]
    fn conservation_under_random_traffic() {
        let mut c = boot();
        let units = [UnitId::core(0, 0), UnitId::dma(0, 0)];
        // Deterministic pseudo-random walk.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = units[(x >> 33) as usize % 2];
            let amt = x % 3_000;
            if x.is_multiple_of(2) {
                c.request(unit, amt);
            } else {
                let held = c
                    .allocation_mw(unit)
                    .saturating_sub(if unit.kind == UnitKind::Core {
                        2_000
                    } else {
                        1_000
                    });
                let _ = c.release(unit, amt.min(held));
            }
            assert!(c.is_consistent());
        }
    }
}
