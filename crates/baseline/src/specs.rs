//! Platform specification sheets (Table I and Table IV of the paper).
//!
//! The two Cloudblazer sheets are *derived* from the simulator's
//! [`ChipConfig`] presets rather than re-typed from the paper, so the
//! spec tables (Figs. 12/14) and the cycle-level simulation can never
//! drift apart: there is one source of truth for peak throughput,
//! memory, bandwidth, and TDP. The Nvidia sheets stay published
//! datasheet constants — there is no simulator config to derive them
//! from.

use dtu_isa::DataType;
use dtu_sim::ChipConfig;
use std::fmt;

/// Published specifications of one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Product name.
    pub name: String,
    /// FP32 peak, TFLOPS.
    pub fp32_tflops: f64,
    /// FP16 peak, TFLOPS.
    pub fp16_tflops: f64,
    /// INT8 peak, TOPS.
    pub int8_tops: f64,
    /// Device memory, GB.
    pub memory_gb: f64,
    /// Memory bandwidth, GB/s.
    pub bandwidth_gb_s: f64,
    /// Board TDP, watts.
    pub tdp_w: f64,
    /// Process node, nm.
    pub tech_nm: u32,
    /// Host interconnect.
    pub interconnect: String,
}

impl PlatformSpec {
    /// Peak throughput for a data type, in T-ops/s.
    ///
    /// TF32/BF16 ride the FP16 tensor path on every platform in Table IV;
    /// INT16/INT32 track FP16/FP32 respectively.
    pub fn peak_tops(&self, dtype: DataType) -> f64 {
        match dtype {
            DataType::Fp32 | DataType::Int32 => self.fp32_tflops,
            DataType::Tf32 | DataType::Fp16 | DataType::Bf16 | DataType::Int16 => self.fp16_tflops,
            DataType::Int8 => self.int8_tops,
        }
    }

    /// Peak-performance power efficiency (GOPS per watt) for a type —
    /// the Fig. 14 metric.
    pub fn peak_per_tdp(&self, dtype: DataType) -> f64 {
        self.peak_tops(dtype) * 1e3 / self.tdp_w
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0}/{:.0} TFLOPS (FP32/FP16), {:.0} TOPS INT8, {:.0} GB @ {:.0} GB/s, {:.0} W",
            self.name,
            self.fp32_tflops,
            self.fp16_tflops,
            self.int8_tops,
            self.memory_gb,
            self.bandwidth_gb_s,
            self.tdp_w
        )
    }
}

/// Derives a Cloudblazer spec sheet from a simulator chip config.
///
/// FP16 rides the chip's Table I throughput ratio
/// ([`DataType::ops_multiplier`], 4x on both generations); the INT8
/// ratio is per-generation silicon (8x on DTU 2.0, but only 4x on the
/// DTU 1.0 GEMM datapath — Table IV lists the i10 at 80 TOPS, not
/// 160), so it is an explicit argument rather than the ISA constant.
pub fn spec_from_chip(
    name: &str,
    chip: &ChipConfig,
    int8_multiplier: f64,
    tech_nm: u32,
    interconnect: &str,
) -> PlatformSpec {
    let fp32 = chip.peak_fp32_tflops();
    PlatformSpec {
        name: name.into(),
        fp32_tflops: fp32,
        fp16_tflops: fp32 * DataType::Fp16.ops_multiplier(),
        int8_tops: fp32 * int8_multiplier,
        memory_gb: chip.l3_gib as f64,
        bandwidth_gb_s: chip.l3_gb_per_s,
        tdp_w: chip.tdp_watts,
        tech_nm,
        interconnect: interconnect.into(),
    }
}

/// Cloudblazer i20 (Table I), derived from [`ChipConfig::dtu20`].
pub fn i20_spec() -> PlatformSpec {
    spec_from_chip(
        "Cloudblazer i20",
        &ChipConfig::dtu20(),
        DataType::Int8.ops_multiplier(),
        12,
        "PCIe4",
    )
}

/// Cloudblazer i10 (Table IV), derived from [`ChipConfig::dtu10`].
pub fn i10_spec() -> PlatformSpec {
    spec_from_chip("Cloudblazer i10", &ChipConfig::dtu10(), 4.0, 12, "PCIe4")
}

/// Nvidia T4 (Table IV).
pub fn t4_spec() -> PlatformSpec {
    PlatformSpec {
        name: "Nvidia T4".into(),
        fp32_tflops: 8.1,
        fp16_tflops: 65.0,
        int8_tops: 130.0,
        memory_gb: 16.0,
        bandwidth_gb_s: 320.0,
        tdp_w: 70.0,
        tech_nm: 12,
        interconnect: "PCIe3".into(),
    }
}

/// Nvidia A10 (Table IV).
pub fn a10_spec() -> PlatformSpec {
    PlatformSpec {
        name: "Nvidia A10".into(),
        fp32_tflops: 31.2,
        fp16_tflops: 125.0,
        int8_tops: 250.0,
        memory_gb: 24.0,
        bandwidth_gb_s: 600.0,
        tdp_w: 150.0,
        tech_nm: 7,
        interconnect: "PCIe4".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_numbers() {
        let t4 = t4_spec();
        assert_eq!(t4.fp32_tflops, 8.1);
        assert_eq!(t4.bandwidth_gb_s, 320.0);
        assert_eq!(t4.tdp_w, 70.0);
        let a10 = a10_spec();
        assert_eq!(a10.fp16_tflops, 125.0);
        assert_eq!(a10.memory_gb, 24.0);
        assert_eq!(a10.tech_nm, 7);
        let i10 = i10_spec();
        assert_eq!(i10.int8_tops, 80.0);
    }

    #[test]
    fn fig12_bandwidth_ratios() {
        // "Its memory bandwidth is 1.6x, 2.56x, and 1.36x higher than
        // Cloudblazer i10, Nvidia T4, and A10" (§VI-B).
        let i20 = i20_spec();
        assert!((i20.bandwidth_gb_s / i10_spec().bandwidth_gb_s - 1.6).abs() < 0.01);
        assert!((i20.bandwidth_gb_s / t4_spec().bandwidth_gb_s - 2.56).abs() < 0.01);
        assert!((i20.bandwidth_gb_s / a10_spec().bandwidth_gb_s - 1.365).abs() < 0.01);
    }

    #[test]
    fn fig14_power_efficiency_relations() {
        use DataType::*;
        // T4 has the best FP16 peak efficiency: 1.11x over A10 and i20,
        // 1.74x over i10 (§VI-C).
        let (t4, a10, i10, i20) = (t4_spec(), a10_spec(), i10_spec(), i20_spec());
        let r_a10 = t4.peak_per_tdp(Fp16) / a10.peak_per_tdp(Fp16);
        let r_i10 = t4.peak_per_tdp(Fp16) / i10.peak_per_tdp(Fp16);
        let r_i20 = t4.peak_per_tdp(Fp16) / i20.peak_per_tdp(Fp16);
        assert!((r_a10 - 1.11).abs() < 0.02, "{r_a10}");
        assert!((r_i10 - 1.74).abs() < 0.02, "{r_i10}");
        assert!((r_i20 - 1.09).abs() < 0.02, "{r_i20}");
        // For FP32, i20 is best: 1.6x over i10, 1.84x over T4, 1.03x over A10.
        let f_i10 = i20.peak_per_tdp(Fp32) / i10.peak_per_tdp(Fp32);
        let f_t4 = i20.peak_per_tdp(Fp32) / t4.peak_per_tdp(Fp32);
        let f_a10 = i20.peak_per_tdp(Fp32) / a10.peak_per_tdp(Fp32);
        assert!((f_i10 - 1.6).abs() < 0.02, "{f_i10}");
        assert!((f_t4 - 1.84).abs() < 0.03, "{f_t4}");
        assert!((f_a10 - 1.03).abs() < 0.02, "{f_a10}");
    }

    #[test]
    fn a10_memory_is_1_5x_others() {
        assert_eq!(a10_spec().memory_gb / i20_spec().memory_gb, 1.5);
    }

    #[test]
    fn t4_tdp_roughly_47_percent_of_others() {
        let r = t4_spec().tdp_w / i20_spec().tdp_w;
        assert!((r - 0.467).abs() < 0.01);
    }

    #[test]
    fn peak_tops_by_dtype() {
        // Ratios relative to the chip-derived FP32 peak (Table I):
        // tensor formats ride the 4x path, INT8 the 8x path.
        let s = i20_spec();
        assert_eq!(s.peak_tops(DataType::Bf16), 4.0 * s.fp32_tflops);
        assert_eq!(s.peak_tops(DataType::Tf32), s.fp16_tflops);
        assert_eq!(s.peak_tops(DataType::Int8), 8.0 * s.fp32_tflops);
        assert_eq!(s.peak_tops(DataType::Int32), s.fp32_tflops);
    }

    #[test]
    fn cloudblazer_sheets_round_trip_chip_configs() {
        // Single source of truth: every derived field equals the
        // simulator preset exactly...
        for (spec, chip) in [
            (i20_spec(), ChipConfig::dtu20()),
            (i10_spec(), ChipConfig::dtu10()),
        ] {
            assert_eq!(spec.fp32_tflops, chip.peak_fp32_tflops());
            assert_eq!(spec.bandwidth_gb_s, chip.l3_gb_per_s);
            assert_eq!(spec.memory_gb, chip.l3_gib as f64);
            assert_eq!(spec.tdp_w, chip.tdp_watts);
        }
        // ...and stays within 0.1% of the published Table I/IV numbers
        // (32/128/256 for the i20; the i10 figures are exact).
        let i20 = i20_spec();
        assert!(
            (i20.fp32_tflops / 32.0 - 1.0).abs() < 1e-3,
            "{}",
            i20.fp32_tflops
        );
        assert!((i20.fp16_tflops / 128.0 - 1.0).abs() < 1e-3);
        assert!((i20.int8_tops / 256.0 - 1.0).abs() < 1e-3);
        let i10 = i10_spec();
        assert_eq!(i10.fp32_tflops, 20.0);
        assert_eq!(i10.fp16_tflops, 80.0);
        assert_eq!(i10.int8_tops, 80.0);
    }

    #[test]
    fn display_contains_key_specs() {
        let s = i20_spec().to_string();
        assert!(s.contains("819"));
        assert!(s.contains("150"));
    }
}
