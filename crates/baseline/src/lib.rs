//! Analytical models of the comparison platforms: Cloudblazer i10,
//! Nvidia T4, and Nvidia A10.
//!
//! The paper evaluates the Cloudblazer i20 against these three accelerators
//! (Table IV) using TensorRT via `trtexec`. We have no GPUs, so — per the
//! substitution rule — each platform is a calibrated roofline: per-operator
//! latency is `max(compute, memory) + launch overhead`, where compute uses
//! the published peak throughput scaled by a per-operator-class efficiency
//! and memory uses the published bandwidth scaled by an achievable-fraction.
//! Efficiencies are global per platform (set once, not per benchmark), so
//! the relative per-model results are emergent, not fitted.
//!
//! Energy efficiency in Figs. 14/15 is *Perf/TDP*, exactly as the paper
//! defines it, so the baseline energy story needs only the TDP constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod roofline;
mod specs;

pub use roofline::{EfficiencyProfile, ModelEstimate, RooflineModel};
pub use specs::{a10_spec, i10_spec, i20_spec, spec_from_chip, t4_spec, PlatformSpec};
