//! The roofline latency model for GPU baselines.
//!
//! Per fused kernel: `latency = max(compute, memory) + launch`, with
//! compute = FLOPs / (peak × class efficiency) and memory = bytes /
//! (bandwidth × achievable fraction). TensorRT also fuses epilogues, so
//! the model runs the same fusion pass the DTU compiler uses and elides
//! intra-group intermediate traffic.

use crate::specs::PlatformSpec;
use dtu_graph::{characterize, fuse, FusionConfig, Graph, GraphError, OpCost};
use dtu_isa::{DataType, OpClass};

/// Per-operator-class efficiency factors of one platform.
///
/// Calibrated once per platform from public TensorRT benchmarking
/// experience; never adjusted per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyProfile {
    /// Fraction of peak tensor throughput dense conv/matmul achieves.
    pub matrix: f64,
    /// GEMM tile width: matrix ops whose narrowest dimension falls below
    /// this waste tensor-core throughput proportionally (floored at
    /// [`EfficiencyProfile::MIN_TILE_UTIL`]). Fine-grained engines use a
    /// small tile; tensor-core GPUs a wide one.
    pub gemm_tile: u64,
    /// Fraction of peak bandwidth element-wise kernels achieve.
    pub elementwise: f64,
    /// Fraction of peak bandwidth reductions (softmax/norm/pool) achieve.
    pub reduction: f64,
    /// Fraction of peak bandwidth gathers achieve.
    pub gather: f64,
    /// Achievable fraction of pin bandwidth for streaming access.
    pub memory: f64,
    /// Fixed launch/driver overhead per kernel, nanoseconds.
    pub kernel_launch_ns: f64,
    /// Occupancy ramp: MACs per kernel at which the device reaches 50%
    /// of its sustained matrix efficiency. SIMT machines need enormous
    /// parallelism per kernel to fill their lanes and hide latency.
    pub ramp_macs: f64,
    /// On-chip cache available to one kernel's working set, bytes.
    pub l2_cache_bytes: u64,
    /// Floor of the graded cache-thrash scale: matrix efficiency is
    /// multiplied by `max(floor, (cache/(cache+input))^2)`, so kernels
    /// whose input activations dwarf the cache re-fetch tiles from DRAM
    /// (the "typical CNN operator" tuning of §VI-D does not cover
    /// detection-scale tensors).
    pub big_tensor_penalty: f64,
}

impl EfficiencyProfile {
    /// Turing-class TensorRT profile (T4). The 70 W envelope throttles
    /// sustained tensor-core throughput well below peak.
    pub fn turing() -> Self {
        EfficiencyProfile {
            matrix: 0.62,
            gemm_tile: 128,
            elementwise: 0.70,
            reduction: 0.55,
            gather: 0.35,
            memory: 0.72,
            kernel_launch_ns: 2_500.0,
            ramp_macs: 15.0e6,
            l2_cache_bytes: 5 * 1024 * 1024,
            big_tensor_penalty: 0.45,
        }
    }

    /// Ampere-class TensorRT profile (A10): better sustained clocks and a
    /// stronger memory subsystem.
    pub fn ampere() -> Self {
        EfficiencyProfile {
            matrix: 0.75,
            gemm_tile: 128,
            elementwise: 0.78,
            reduction: 0.62,
            gather: 0.40,
            memory: 0.78,
            kernel_launch_ns: 2_000.0,
            ramp_macs: 25.0e6,
            l2_cache_bytes: 6 * 1024 * 1024,
            big_tensor_penalty: 0.40,
        }
    }

    /// DTU 1.0 profile: coarse-grained GEMM tiles waste throughput on
    /// non-square shapes and the single-port L2 limits streaming.
    pub fn dtu10() -> Self {
        EfficiencyProfile {
            matrix: 0.45,
            gemm_tile: 64,
            elementwise: 0.60,
            reduction: 0.45,
            gather: 0.30,
            memory: 0.65,
            kernel_launch_ns: 6_000.0,
            ramp_macs: 30.0e6,
            l2_cache_bytes: 16 * 1024 * 1024,
            big_tensor_penalty: 0.85,
        }
    }

    /// The utilisation floor for very skinny GEMMs (CUDA-core fallback).
    pub const MIN_TILE_UTIL: f64 = 0.25;

    /// Tensor-tile utilisation for a matrix op with the given narrowest
    /// dimension (1.0 when unknown/zero).
    pub fn tile_utilization(&self, narrow_dim: u64) -> f64 {
        if narrow_dim == 0 {
            return 1.0;
        }
        (narrow_dim as f64 / self.gemm_tile as f64).clamp(Self::MIN_TILE_UTIL, 1.0)
    }
}

/// The per-model latency estimate a roofline produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEstimate {
    /// Model name.
    pub model: String,
    /// End-to-end latency, milliseconds.
    pub latency_ms: f64,
    /// Number of kernels after fusion.
    pub kernels: usize,
    /// Compute-bound fraction of total kernel time.
    pub compute_bound_fraction: f64,
}

impl ModelEstimate {
    /// Throughput in samples/s for a given batch.
    pub fn throughput(&self, batch: usize) -> f64 {
        batch as f64 / (self.latency_ms / 1e3)
    }

    /// The Fig. 15 energy-efficiency metric: perf per TDP watt
    /// (samples/s/W).
    pub fn perf_per_tdp(&self, batch: usize, tdp_w: f64) -> f64 {
        self.throughput(batch) / tdp_w
    }
}

/// A calibrated roofline model of one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineModel {
    spec: PlatformSpec,
    profile: EfficiencyProfile,
    fusion: FusionConfig,
}

impl RooflineModel {
    /// Builds a roofline from a spec and profile.
    pub fn new(spec: PlatformSpec, profile: EfficiencyProfile) -> Self {
        RooflineModel {
            spec,
            profile,
            fusion: FusionConfig::default(),
        }
    }

    /// The Nvidia T4 model.
    pub fn t4() -> Self {
        RooflineModel::new(crate::t4_spec(), EfficiencyProfile::turing())
    }

    /// The Nvidia A10 model.
    pub fn a10() -> Self {
        RooflineModel::new(crate::a10_spec(), EfficiencyProfile::ampere())
    }

    /// The Cloudblazer i10 model.
    pub fn i10() -> Self {
        RooflineModel::new(crate::i10_spec(), EfficiencyProfile::dtu10())
    }

    /// The underlying spec.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Effective matrix efficiency for a kernel: sustained efficiency ×
    /// occupancy ramp × tile utilisation × cache-thrash penalty.
    pub fn matrix_efficiency(&self, cost: &OpCost) -> f64 {
        let p = &self.profile;
        let ramp = cost.macs as f64 / (cost.macs as f64 + p.ramp_macs);
        // Graded cache-thrash: the larger the input activation relative
        // to the cache, the more of every tile's halo re-streams from
        // DRAM. Quadratic in the footprint ratio, floored.
        let cache = p.l2_cache_bytes as f64;
        let frac = cache / (cache + cost.input_bytes as f64);
        let thrash = (frac * frac).max(p.big_tensor_penalty);
        // Fast convolution (Winograd-class) cuts direct-conv MACs ~2.25x
        // on canonical 3x3/stride-1 shapes; the transform working set
        // must fit the cache and the epilogue must be fusible.
        let fast_conv = if cost.winograd_eligible && cost.input_bytes <= p.l2_cache_bytes {
            2.1
        } else {
            1.0
        };
        p.matrix * ramp * p.tile_utilization(cost.narrow_dim) * thrash * fast_conv
    }

    /// Latency of one (possibly fused) kernel with the given aggregate
    /// cost, in nanoseconds.
    pub fn kernel_latency_ns(&self, cost: &OpCost, dtype: DataType, class: OpClass) -> f64 {
        let peak_ops_per_ns = self.spec.peak_tops(dtype) * 1e3; // ops/ns
        let bw_bytes_per_ns = self.spec.bandwidth_gb_s * self.profile.memory; // B/ns
        let (compute_eff, mem_penalty) = match class {
            OpClass::MatrixDense => (self.matrix_efficiency(cost), 1.0),
            OpClass::Elementwise | OpClass::Activation => (1.0, self.profile.elementwise),
            OpClass::Reduction => (1.0, self.profile.reduction),
            OpClass::Movement => (1.0, self.profile.elementwise),
            OpClass::Gather => (1.0, self.profile.gather),
        };
        let compute_ns = cost.flops() as f64 / (peak_ops_per_ns * compute_eff);
        let memory_ns = cost.total_bytes() as f64 / (bw_bytes_per_ns * mem_penalty);
        compute_ns.max(memory_ns) + self.profile.kernel_launch_ns
    }

    /// Estimates a whole model: fusion, per-group costing (fused groups
    /// elide intermediate activations), summation.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference / costing failures (dynamic dims must
    /// be bound).
    pub fn estimate(&self, graph: &Graph) -> Result<ModelEstimate, GraphError> {
        let shapes = graph.infer_shapes()?;
        let plan = fuse(graph, &self.fusion)?;
        let mut total_ns = 0.0;
        let mut compute_ns_sum = 0.0;
        let mut kernel_time_sum = 0.0;
        let mut kernels = 0usize;
        for group in &plan.groups {
            let mut cost = OpCost::default();
            let mut class = OpClass::Elementwise;
            let mut dtype = DataType::Fp16;
            let mut best_flops = 0u64;
            for (i, &nid) in group.nodes.iter().enumerate() {
                let node = graph.node(nid)?;
                let input_types: Vec<_> = node.inputs.iter().map(|x| &shapes[x]).collect();
                let c = characterize(&node.op, &input_types, &shapes[&nid])?;
                // Fusion elides intermediate materialisation: interior
                // edges of the group cost no traffic.
                let mut c2 = c;
                if i > 0 {
                    c2.input_bytes = c2
                        .input_bytes
                        .saturating_sub(shapes[&group.nodes[i - 1]].bytes().unwrap_or(0));
                }
                if i + 1 < group.nodes.len() {
                    c2.output_bytes = 0;
                }
                if c.flops() >= best_flops {
                    best_flops = c.flops();
                    class = c.class;
                    dtype = shapes[&nid].dtype;
                }
                cost.merge(&c2);
            }
            // Skip pure no-op groups (inputs).
            if cost.flops() == 0 && cost.total_bytes() == 0 {
                continue;
            }
            kernels += 1;
            let mut ns = self.kernel_latency_ns(&cost, dtype, class);
            // LeakyReLU/PReLU epilogues do not fuse into the library's
            // conv kernels the way plain ReLU does: the activation runs
            // as a separate elementwise pass (read + write the tensor)
            // with its own launch.
            if cost.leaky {
                let bw = self.spec.bandwidth_gb_s * self.profile.memory * self.profile.elementwise;
                ns += 2.0 * cost.output_bytes as f64 / bw + self.profile.kernel_launch_ns;
                kernels += 1;
            }
            let peak_ops_per_ns = self.spec.peak_tops(dtype) * 1e3;
            let ce = match class {
                OpClass::MatrixDense => self.matrix_efficiency(&cost),
                _ => 1.0,
            };
            let compute_ns = cost.flops() as f64 / (peak_ops_per_ns * ce);
            let mem_ns = ns - self.profile.kernel_launch_ns;
            if compute_ns >= mem_ns * 0.999 {
                compute_ns_sum += ns;
            }
            kernel_time_sum += ns;
            total_ns += ns;
        }
        Ok(ModelEstimate {
            model: graph.name.clone(),
            latency_ms: total_ns / 1e6,
            kernels,
            compute_bound_fraction: if kernel_time_sum > 0.0 {
                compute_ns_sum / kernel_time_sum
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn tiny_graph() -> Graph {
        let mut g = Graph::new("tiny");
        let x = g.input("x", TensorType::fixed(&[1, 64, 56, 56]));
        let c = g.add_node(Op::conv2d(64, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(r);
        g
    }

    #[test]
    fn t4_slower_than_a10_on_compute() {
        let g = tiny_graph();
        let t4 = RooflineModel::t4().estimate(&g).unwrap();
        let a10 = RooflineModel::a10().estimate(&g).unwrap();
        assert!(t4.latency_ms > a10.latency_ms);
    }

    #[test]
    fn kernel_latency_components() {
        let m = RooflineModel::t4();
        // Pure compute kernel.
        let c = OpCost {
            macs: 1_000_000_000,
            ..Default::default()
        };
        let ns = m.kernel_latency_ns(&c, DataType::Fp16, OpClass::MatrixDense);
        // 2 GFLOP / (65 TFLOPS × ~0.61 effective) ≈ 50 µs + 2.5 µs launch.
        assert!((40_000.0..70_000.0).contains(&ns), "{ns}");
        // Pure memory kernel.
        let mcost = OpCost {
            input_bytes: 230_400_000, // 230 MB
            ..Default::default()
        };
        let mns = m.kernel_latency_ns(&mcost, DataType::Fp16, OpClass::Elementwise);
        // 230 MB / (320 × 0.72 × 0.70 GB/s) ≈ 1.4 ms.
        assert!((1.2e6..1.7e6).contains(&mns), "{mns}");
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let m = RooflineModel::t4();
        let c = OpCost {
            vector_ops: 100,
            input_bytes: 400,
            output_bytes: 400,
            ..Default::default()
        };
        let ns = m.kernel_latency_ns(&c, DataType::Fp16, OpClass::Elementwise);
        assert!((ns - 2_500.0).abs() < 100.0);
    }

    #[test]
    fn fusion_reduces_estimated_kernels() {
        let g = tiny_graph();
        let est = RooflineModel::a10().estimate(&g).unwrap();
        assert_eq!(est.kernels, 1); // conv+relu fused
    }

    #[test]
    fn estimate_reports_compute_boundness() {
        let g = tiny_graph();
        let est = RooflineModel::a10().estimate(&g).unwrap();
        assert!(est.compute_bound_fraction >= 0.0 && est.compute_bound_fraction <= 1.0);
        assert!(est.latency_ms > 0.0);
    }

    #[test]
    fn throughput_and_perf_per_tdp() {
        let est = ModelEstimate {
            model: "m".into(),
            latency_ms: 2.0,
            kernels: 1,
            compute_bound_fraction: 1.0,
        };
        assert_eq!(est.throughput(1), 500.0);
        assert!((est.perf_per_tdp(1, 70.0) - 500.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn i10_slower_than_both_gpus_at_peak_parity_workload() {
        // i10 (80 TF FP16 at 0.38 eff = 30 effective) vs T4 (65 × 0.42 =
        // 27) — close; but on memory streaming i10's 512 GB/s beats T4.
        let m_i10 = RooflineModel::i10();
        let m_t4 = RooflineModel::t4();
        let stream = OpCost {
            input_bytes: 100_000_000,
            ..Default::default()
        };
        let i10_ns = m_i10.kernel_latency_ns(&stream, DataType::Fp16, OpClass::Elementwise);
        let t4_ns = m_t4.kernel_latency_ns(&stream, DataType::Fp16, OpClass::Elementwise);
        assert!(i10_ns < t4_ns);
    }
}
