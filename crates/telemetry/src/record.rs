//! The [`Recorder`] trait — the one seam every layer of the stack
//! reports through — plus its two stock implementations.

use crate::counters::CounterSnapshot;
use crate::span::Span;

/// Receives spans and counter snapshots from instrumented code.
///
/// Call sites MUST gate any work done purely to build a span (label
/// formatting, counter snapshotting) on [`Recorder::enabled`]:
///
/// ```
/// # use dtu_telemetry::{NullRecorder, Recorder, Span, SpanKind, Layer};
/// # let mut rec = NullRecorder;
/// # let t = 0.0;
/// if rec.enabled() {
///     let label = format!("kernel {}", 42); // only pay this when tracing
///     rec.record(Span::new(SpanKind::Kernel, Layer::Sim, 0, label, t, t + 10.0));
/// }
/// ```
///
/// With the [`NullRecorder`] that discipline makes instrumentation a
/// predictable untaken branch: no per-event heap allocation, no change
/// to any computed number.
pub trait Recorder {
    /// Whether this recorder keeps anything. `false` promises that
    /// `record`/`snapshot` are no-ops, letting call sites skip span
    /// construction entirely.
    fn enabled(&self) -> bool;

    /// Records one span.
    fn record(&mut self, span: Span);

    /// Records a full counter snapshot taken at a span boundary.
    /// Default: dropped.
    fn snapshot(&mut self, _snap: CounterSnapshot) {}
}

/// The disabled recorder: everything is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _span: Span) {}
}

/// An in-memory recorder that keeps every span and snapshot, with
/// export and query helpers.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    spans: Vec<Span>,
    snapshots: Vec<CounterSnapshot>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// All recorded spans, in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded counter snapshots, in record order.
    pub fn snapshots(&self) -> &[CounterSnapshot] {
        &self.snapshots
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Shifts every span and snapshot later by `offset_ns`. Used to
    /// place a nested trace (recorded starting at 0) onto an enclosing
    /// clock, e.g. a chip run inside a serving batch.
    pub fn shift_ns(&mut self, offset_ns: f64) {
        for s in &mut self.spans {
            s.start_ns += offset_ns;
            s.end_ns += offset_ns;
        }
        for snap in &mut self.snapshots {
            snap.at_ns += offset_ns;
        }
    }

    /// Moves every span and snapshot out of `other` into `self`.
    pub fn absorb(&mut self, other: &mut TraceBuffer) {
        self.spans.append(&mut other.spans);
        self.snapshots.append(&mut other.snapshots);
    }

    /// Exports the buffer as a Chrome-trace / Perfetto JSON array.
    /// See [`crate::chrome::export`] for the `rich` flag.
    pub fn to_chrome_trace(&self, rich: bool) -> String {
        crate::chrome::export(&self.spans, rich)
    }
}

impl Recorder for TraceBuffer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, span: Span) {
        self.spans.push(span);
    }

    fn snapshot(&mut self, snap: CounterSnapshot) {
        self.snapshots.push(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterSet;
    use crate::span::{Layer, SpanKind};

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Span::marker(Layer::Sim, 0, "x", 0.0));
        r.snapshot(CounterSnapshot {
            at_ns: 0.0,
            label: "chip".into(),
            set: CounterSet::new(),
        });
    }

    #[test]
    fn buffer_keeps_and_shifts() {
        let mut b = TraceBuffer::new();
        assert!(b.is_empty());
        b.record(Span::new(SpanKind::Kernel, Layer::Sim, 0, "k", 10.0, 20.0));
        b.snapshot(CounterSnapshot {
            at_ns: 20.0,
            label: "chip".into(),
            set: CounterSet::new(),
        });
        b.shift_ns(5.0);
        assert_eq!(b.spans()[0].start_ns, 15.0);
        assert_eq!(b.spans()[0].end_ns, 25.0);
        assert_eq!(b.snapshots()[0].at_ns, 25.0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn absorb_moves_spans() {
        let mut a = TraceBuffer::new();
        let mut b = TraceBuffer::new();
        b.record(Span::marker(Layer::Serving, 0, "m", 1.0));
        a.absorb(&mut b);
        assert_eq!(a.len(), 1);
        assert!(b.is_empty());
    }
}
