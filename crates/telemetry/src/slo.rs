//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states the objective ("p99 of completions meets the
//! deadline, with an error budget of 1 %"); an [`SloTracker`] folds the
//! completion stream into aligned [`TimeSeries`] rings and evaluates the Google-SRE style *multi-window burn rate*:
//!
//! ```text
//! burn = (violating / completed) / error_budget        per window
//! fire  when burn(fast 5 s) > threshold  AND  burn(slow 60 s) > threshold
//! ```
//!
//! Requiring both windows makes the alert respond quickly (the fast
//! window) without flapping on blips (the slow window must agree), and
//! explicit hysteresis — consecutive breach/clear evaluations, resolve
//! at half the firing threshold — keeps a borderline burn from toggling
//! every tick. All times are simulated, so alert sequences are
//! deterministic and byte-reproducible.

use crate::timeseries::TimeSeries;

/// Evaluation-window width: trackers evaluate on 1 s boundaries.
pub const EVAL_WINDOW_NS: f64 = 1e9;
/// Default fast burn window (5 s of simulated time).
pub const FAST_WINDOW_NS: f64 = 5e9;
/// Default slow burn window (60 s of simulated time).
pub const SLOW_WINDOW_NS: f64 = 60e9;
/// Default burn-rate firing threshold.
pub const BURN_THRESHOLD: f64 = 10.0;
/// Consecutive breaching (clearing) evaluations before a transition.
pub const HYSTERESIS_EVALS: u32 = 2;

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (rendered in alerts and reports).
    pub name: String,
    /// Target percentile, e.g. `0.99`.
    pub percentile: f64,
    /// Latency deadline the percentile must meet, ms.
    pub deadline_ms: f64,
    /// Fraction of completions allowed to violate the deadline.
    /// Defaults to `1 − percentile`.
    pub error_budget: f64,
    /// Fast burn window, simulated ns.
    pub fast_window_ns: f64,
    /// Slow burn window, simulated ns.
    pub slow_window_ns: f64,
    /// Burn rate at (or above) which the alert fires.
    pub burn_threshold: f64,
}

impl SloSpec {
    /// An objective with the default windows, threshold, and an error
    /// budget of `1 − percentile`.
    pub fn new(name: impl Into<String>, percentile: f64, deadline_ms: f64) -> Self {
        let percentile = percentile.clamp(0.0, 1.0);
        SloSpec {
            name: name.into(),
            percentile,
            deadline_ms,
            error_budget: (1.0 - percentile).max(1e-6),
            fast_window_ns: FAST_WINDOW_NS,
            slow_window_ns: SLOW_WINDOW_NS,
            burn_threshold: BURN_THRESHOLD,
        }
    }

    /// Overrides the error budget (builder-style).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.error_budget = budget.max(1e-6);
        self
    }

    /// Overrides the burn threshold (builder-style).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold.max(0.0);
        self
    }
}

/// What an [`AlertEvent`] announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Both burn windows exceeded the threshold.
    BurnRate,
    /// An injected fault landed (the flight recorder dumps on this).
    Fault,
    /// A firing burn-rate alert cleared.
    Resolved,
}

impl AlertKind {
    /// Stable lower-case name for exports.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::BurnRate => "burn-rate",
            AlertKind::Fault => "fault",
            AlertKind::Resolved => "resolved",
        }
    }
}

/// One typed alert emitted by an [`SloTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// When the alert fired, shared clock ns.
    pub t_ns: f64,
    /// The objective (for [`AlertKind::Fault`], the fault label).
    pub slo: String,
    /// What kind of alert this is.
    pub kind: AlertKind,
    /// Fast-window burn rate at evaluation time.
    pub burn_fast: f64,
    /// Slow-window burn rate at evaluation time.
    pub burn_slow: f64,
    /// Span id of the slowest recent request, when known — the link
    /// from the alert into the flight-recorder dump.
    pub exemplar: Option<u64>,
}

/// Evaluates one [`SloSpec`] over a completion stream.
#[derive(Debug, Clone)]
pub struct SloTracker {
    /// The objective being tracked.
    pub spec: SloSpec,
    completions: TimeSeries,
    violations: TimeSeries,
    firing: bool,
    breach_streak: u32,
    clear_streak: u32,
    total_completed: u64,
    total_violated: u64,
}

impl SloTracker {
    /// Creates a tracker for `spec`. Ring capacity covers the slow
    /// window with slack.
    pub fn new(spec: SloSpec) -> Self {
        let cap = ((spec.slow_window_ns / EVAL_WINDOW_NS).ceil() as usize + 8).max(16);
        SloTracker {
            spec,
            completions: TimeSeries::new(EVAL_WINDOW_NS, cap),
            violations: TimeSeries::new(EVAL_WINDOW_NS, cap),
            firing: false,
            breach_streak: 0,
            clear_streak: 0,
            total_completed: 0,
            total_violated: 0,
        }
    }

    /// Folds one completed request into the windows.
    pub fn observe(&mut self, t_ns: f64, latency_ms: f64) {
        let violated = latency_ms > self.spec.deadline_ms;
        self.completions.add(t_ns, 1.0);
        self.violations.add(t_ns, if violated { 1.0 } else { 0.0 });
        self.total_completed += 1;
        if violated {
            self.total_violated += 1;
        }
    }

    /// Folds a pre-aggregated window of `completed` requests, of which
    /// `violated` missed the deadline, into the rings at `t_ns`.
    ///
    /// This is the fleet rollup path: per-chip monitors already hold
    /// per-window completion/violation counts, so the fleet-scope
    /// tracker ingests whole windows instead of replaying every
    /// request. Call in non-decreasing `t_ns` order (the fleet merges
    /// at epoch barriers, which guarantees it); `violated` is clamped
    /// to `completed`.
    pub fn fold_window(&mut self, t_ns: f64, completed: u64, violated: u64) {
        if completed == 0 {
            return;
        }
        let violated = violated.min(completed);
        self.completions.add(t_ns, completed as f64);
        self.violations.add(t_ns, violated as f64);
        self.total_completed += completed;
        self.total_violated += violated;
    }

    fn burn(&self, now_ns: f64, window_ns: f64) -> f64 {
        let done = self.completions.sum_over(now_ns, window_ns);
        if done <= 0.0 {
            return 0.0;
        }
        let viol = self.violations.sum_over(now_ns, window_ns);
        (viol / done) / self.spec.error_budget
    }

    /// Fast-window burn rate at `now_ns`.
    pub fn burn_fast(&self, now_ns: f64) -> f64 {
        self.burn(now_ns, self.spec.fast_window_ns)
    }

    /// Slow-window burn rate at `now_ns`.
    pub fn burn_slow(&self, now_ns: f64) -> f64 {
        self.burn(now_ns, self.spec.slow_window_ns)
    }

    /// Whether the burn-rate alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Fraction of the total error budget consumed so far:
    /// `(violated / completed) / budget` over the whole run.
    pub fn budget_consumed(&self) -> f64 {
        if self.total_completed == 0 {
            return 0.0;
        }
        (self.total_violated as f64 / self.total_completed as f64) / self.spec.error_budget
    }

    /// Completions observed over the whole run.
    pub fn completed(&self) -> u64 {
        self.total_completed
    }

    /// Deadline violations observed over the whole run.
    pub fn violated(&self) -> u64 {
        self.total_violated
    }

    /// Evaluates the burn-rate rule at a window boundary. Returns an
    /// alert on a state *transition* (fire or resolve), `None` while
    /// the state holds. `exemplar` links a fired alert to the slowest
    /// recent request's span.
    pub fn evaluate(&mut self, now_ns: f64, exemplar: Option<u64>) -> Option<AlertEvent> {
        // Keep both rings advanced so quiet periods decay the burn.
        self.completions.advance(now_ns);
        self.violations.advance(now_ns);
        let fast = self.burn_fast(now_ns);
        let slow = self.burn_slow(now_ns);
        let breach = fast >= self.spec.burn_threshold && slow >= self.spec.burn_threshold;
        let clear = fast < self.spec.burn_threshold / 2.0 && slow < self.spec.burn_threshold / 2.0;
        if breach {
            self.breach_streak += 1;
            self.clear_streak = 0;
        } else if clear {
            self.clear_streak += 1;
            self.breach_streak = 0;
        } else {
            // Between resolve and fire thresholds: hold state.
            self.breach_streak = 0;
            self.clear_streak = 0;
        }
        if !self.firing && self.breach_streak >= HYSTERESIS_EVALS {
            self.firing = true;
            return Some(AlertEvent {
                t_ns: now_ns,
                slo: self.spec.name.clone(),
                kind: AlertKind::BurnRate,
                burn_fast: fast,
                burn_slow: slow,
                exemplar,
            });
        }
        if self.firing && self.clear_streak >= HYSTERESIS_EVALS {
            self.firing = false;
            return Some(AlertEvent {
                t_ns: now_ns,
                slo: self.spec.name.clone(),
                kind: AlertKind::Resolved,
                burn_fast: fast,
                burn_slow: slow,
                exemplar: None,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        // p99 within 10 ms, budget 1 %, threshold 10 → fires when the
        // windowed violation rate reaches 10 %.
        SloSpec::new("p99<10ms", 0.99, 10.0)
    }

    #[test]
    fn defaults_derive_budget() {
        let s = spec();
        assert!((s.error_budget - 0.01).abs() < 1e-12);
        assert_eq!(s.fast_window_ns, FAST_WINDOW_NS);
        assert_eq!(s.burn_threshold, BURN_THRESHOLD);
    }

    #[test]
    fn clean_stream_never_fires() {
        let mut t = SloTracker::new(spec());
        for i in 0..100 {
            let now = i as f64 * 1e9;
            for j in 0..50 {
                t.observe(now + j as f64 * 1e7, 3.0);
            }
            assert!(t.evaluate(now + 0.99e9, None).is_none());
        }
        assert!(!t.firing());
        assert_eq!(t.budget_consumed(), 0.0);
    }

    #[test]
    fn sustained_violations_fire_once_with_hysteresis() {
        let mut t = SloTracker::new(spec());
        let mut alerts = Vec::new();
        for i in 0..30 {
            let now = i as f64 * 1e9;
            for j in 0..50 {
                // 50 % violation rate → burn 50 ≫ 10.
                let lat = if j % 2 == 0 { 50.0 } else { 3.0 };
                t.observe(now + j as f64 * 1e7, lat);
            }
            if let Some(a) = t.evaluate(now + 0.99e9, Some(7)) {
                alerts.push(a);
            }
        }
        assert_eq!(alerts.len(), 1, "steady breach fires exactly once");
        assert_eq!(alerts[0].kind, AlertKind::BurnRate);
        assert_eq!(alerts[0].exemplar, Some(7));
        assert!(alerts[0].burn_fast >= BURN_THRESHOLD);
        // Needs HYSTERESIS_EVALS breaching evaluations first.
        assert!(alerts[0].t_ns >= (HYSTERESIS_EVALS as f64 - 1.0) * 1e9);
        assert!(t.firing());
    }

    #[test]
    fn recovery_resolves() {
        let mut t = SloTracker::new(spec());
        let mut events = Vec::new();
        for i in 0..80 {
            let now = i as f64 * 1e9;
            for j in 0..50 {
                // Violations only in the first 10 s.
                let lat = if i < 10 { 50.0 } else { 3.0 };
                t.observe(now + j as f64 * 1e7, lat);
            }
            if let Some(a) = t.evaluate(now + 0.99e9, None) {
                events.push(a.kind);
            }
        }
        assert_eq!(events, vec![AlertKind::BurnRate, AlertKind::Resolved]);
        assert!(!t.firing());
    }

    #[test]
    fn single_blip_does_not_fire() {
        let mut t = SloTracker::new(spec());
        let mut fired = 0;
        for i in 0..70 {
            let now = i as f64 * 1e9;
            for j in 0..50 {
                // One fully-bad second after a minute of clean traffic.
                let lat = if i == 65 { 50.0 } else { 3.0 };
                t.observe(now + j as f64 * 1e7, lat);
            }
            if t.evaluate(now + 0.99e9, None).is_some() {
                fired += 1;
            }
            if i == 66 {
                // The fast window is breaching right after the blip…
                assert!(t.burn_fast(now + 0.99e9) >= BURN_THRESHOLD);
                // …but the minute of clean history keeps the slow
                // window below threshold, vetoing the alert.
                assert!(t.burn_slow(now + 0.99e9) < BURN_THRESHOLD);
            }
        }
        assert_eq!(fired, 0);
    }

    #[test]
    fn folded_windows_match_per_request_observation() {
        // Observing 50 requests per second with 50 % violations must be
        // indistinguishable from folding the same counts window-wise.
        let mut by_request = SloTracker::new(spec());
        let mut by_window = SloTracker::new(spec());
        let mut transitions = (Vec::new(), Vec::new());
        for i in 0..20 {
            let now = i as f64 * 1e9;
            for j in 0..50 {
                let lat = if j % 2 == 0 { 50.0 } else { 3.0 };
                by_request.observe(now + j as f64 * 1e7, lat);
            }
            by_window.fold_window(now, 50, 25);
            if let Some(a) = by_request.evaluate(now + 0.99e9, None) {
                transitions.0.push(a.kind);
            }
            if let Some(a) = by_window.evaluate(now + 0.99e9, None) {
                transitions.1.push(a.kind);
            }
        }
        assert_eq!(transitions.0, transitions.1);
        assert_eq!(by_request.completed(), by_window.completed());
        assert_eq!(by_request.violated(), by_window.violated());
        assert_eq!(by_request.firing(), by_window.firing());
        assert!((by_request.budget_consumed() - by_window.budget_consumed()).abs() < 1e-12);
    }

    #[test]
    fn budget_consumed_accumulates() {
        let mut t = SloTracker::new(spec());
        for j in 0..100 {
            t.observe(j as f64 * 1e7, if j < 2 { 50.0 } else { 3.0 });
        }
        // 2 % violations against a 1 % budget → 2× budget consumed.
        assert!((t.budget_consumed() - 2.0).abs() < 1e-9);
        assert_eq!(t.completed(), 100);
        assert_eq!(t.violated(), 2);
    }
}
