//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the JSON-array flavour of the Trace Event Format: duration
//! events (`ph:"X"`) for intervals and instants (`ph:"i"`) for markers,
//! with `ts`/`dur` in microseconds, `pid` = the producing [`Layer`],
//! and `tid` = the span's track. Load the file at <https://ui.perfetto.dev>
//! or `chrome://tracing`.

use crate::clock::ns_to_us;
use crate::json::{array, JsonObject};
use crate::span::{Layer, Span, SpanKind};

/// Renders `spans` as a single-line Chrome-trace JSON array.
///
/// With `rich == false` the output contains exactly one flat object per
/// span — the stable shape scripted consumers (and the tier-1 profiler
/// test) rely on. With `rich == true` the export additionally carries
/// `process_name` metadata for each layer present (so Perfetto labels
/// the lanes "serving", "sim", …) and an `args` object per span with
/// the span kind, frequency, and attached counter deltas.
pub fn export(spans: &[Span], rich: bool) -> String {
    let mut items: Vec<String> = Vec::with_capacity(spans.len() + 8);
    if rich {
        let mut layers: Vec<Layer> = spans.iter().map(|s| s.layer).collect();
        layers.sort();
        layers.dedup();
        for layer in layers {
            items.push(
                JsonObject::new()
                    .string("name", "process_name")
                    .string("ph", "M")
                    .int("pid", layer.pid() as i64)
                    .int("tid", 0)
                    .raw(
                        "args",
                        &JsonObject::new().string("name", layer.name()).build(),
                    )
                    .build(),
            );
        }
    }
    for s in spans {
        items.push(span_event(s, rich));
    }
    array(&items)
}

fn span_event(s: &Span, rich: bool) -> String {
    let mut o = JsonObject::new()
        .string("name", &s.label)
        .string("cat", s.kind.name())
        .int("pid", s.layer.pid() as i64)
        .int("tid", s.track as i64)
        .num("ts", ns_to_us(s.start_ns));
    if s.kind == SpanKind::Marker {
        o = o.string("ph", "i").string("s", "t");
    } else {
        o = o.string("ph", "X").num("dur", ns_to_us(s.duration_ns()));
    }
    if rich {
        let mut args = JsonObject::new();
        if let Some(op) = s.op {
            args = args.int("op", op as i64);
        }
        if s.freq_mhz > 0 {
            args = args.int("freq_mhz", s.freq_mhz as i64);
        }
        for (c, v) in s.counters.iter() {
            args = args.num(c.base_name(), v);
        }
        o = o.raw("args", &args.build());
    }
    o.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Span> {
        vec![
            Span::new(SpanKind::Kernel, Layer::Sim, 2, "k\"quoted\"", 0.0, 2_000.0).with_freq(1200),
            Span::marker(Layer::Serving, 0, "shed", 1_000.0),
        ]
    }

    #[test]
    fn plain_export_is_one_flat_object_per_span() {
        let out = export(&sample(), false);
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(!out.contains('\n'), "export must be single-line");
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, 2, "one flat object per span");
        assert_eq!(opens, closes);
        assert!(out.contains("\\\"quoted\\\""), "labels are JSON-escaped");
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"dur\":2"), "ts/dur are microseconds");
    }

    #[test]
    fn rich_export_names_processes_and_carries_args() {
        let out = export(&sample(), true);
        assert!(out.contains("process_name"));
        assert!(out.contains("\"name\":\"sim\""));
        assert!(out.contains("\"name\":\"serving\""));
        assert!(out.contains("\"freq_mhz\":1200"));
    }

    #[test]
    fn empty_export_is_empty_array() {
        assert_eq!(export(&[], false), "[]");
    }
}
