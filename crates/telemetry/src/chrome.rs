//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the JSON-array flavour of the Trace Event Format: duration
//! events (`ph:"X"`) for intervals and instants (`ph:"i"`) for markers,
//! with `ts`/`dur` in microseconds, `pid` = the producing [`Layer`],
//! and `tid` = the span's track. Load the file at <https://ui.perfetto.dev>
//! or `chrome://tracing`.

use crate::clock::ns_to_us;
use crate::json::{array, JsonObject};
use crate::span::{Layer, Span, SpanKind};

/// Renders `spans` as a single-line Chrome-trace JSON array.
///
/// With `rich == false` the output contains exactly one flat object per
/// span — the stable shape scripted consumers (and the tier-1 profiler
/// test) rely on. With `rich == true` the export additionally carries
/// `process_name` metadata for each layer present (so Perfetto labels
/// the lanes "serving", "sim", …) and an `args` object per span with
/// the span kind, frequency, and attached counter deltas.
pub fn export(spans: &[Span], rich: bool) -> String {
    let mut items: Vec<String> = Vec::with_capacity(spans.len() + 8);
    if rich {
        let mut layers: Vec<Layer> = spans.iter().map(|s| s.layer).collect();
        layers.sort();
        layers.dedup();
        for layer in layers {
            items.push(
                JsonObject::new()
                    .string("name", "process_name")
                    .string("ph", "M")
                    .int("pid", layer.pid() as i64)
                    .int("tid", 0)
                    .raw(
                        "args",
                        &JsonObject::new().string("name", layer.name()).build(),
                    )
                    .build(),
            );
        }
    }
    for s in spans {
        items.push(span_event(s, rich));
    }
    array(&items)
}

fn span_event(s: &Span, rich: bool) -> String {
    let mut o = JsonObject::new()
        .string("name", &s.label)
        .string("cat", s.kind.name())
        .int("pid", s.layer.pid() as i64)
        .int("tid", s.track as i64)
        .num("ts", ns_to_us(s.start_ns));
    if s.kind == SpanKind::Marker {
        o = o.string("ph", "i").string("s", "t");
    } else {
        o = o.string("ph", "X").num("dur", ns_to_us(s.duration_ns()));
    }
    if rich {
        let mut args = JsonObject::new();
        if let Some(op) = s.op {
            args = args.int("op", op as i64);
        }
        if s.freq_mhz > 0 {
            args = args.int("freq_mhz", s.freq_mhz as i64);
        }
        for (c, v) in s.counters.iter() {
            args = args.num(c.base_name(), v);
        }
        o = o.raw("args", &args.build());
    }
    o.build()
}

/// One event loaded back from a Chrome-trace JSON array.
///
/// Only the fields our own [`export`] emits are modelled; `args`
/// objects are skipped structurally (the loader validates they nest
/// correctly but does not retain them).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (the span label).
    pub name: String,
    /// Category (the span kind).
    pub cat: String,
    /// Phase: `"X"` duration, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Process id (the producing layer).
    pub pid: i64,
    /// Thread id (the span track).
    pub tid: i64,
    /// Start, µs.
    pub ts: f64,
    /// Duration, µs (0 for instants and metadata).
    pub dur: f64,
}

/// Parses a Chrome-trace JSON array back into events — the loader half
/// of the round trip, used by tests and the flight-recorder e2e check
/// to prove a dump is well-formed Perfetto input.
///
/// This is a minimal hand-rolled parser for the single-line array shape
/// [`export`] produces (and the Trace Event Format generally): an array
/// of flat objects with string/number fields plus at most one level of
/// nested `args` object. It is not a general JSON parser.
pub fn parse(trace: &str) -> Result<Vec<ChromeEvent>, String> {
    let body = trace.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| "trace is not a JSON array".to_string())?;
    let mut events = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '{' => {
                let (ev, next) = parse_object(&chars, i)?;
                events.push(ev);
                i = next;
            }
            ',' | ' ' | '\n' | '\r' | '\t' => i += 1,
            c => return Err(format!("unexpected character {c:?} between events")),
        }
    }
    Ok(events)
}

/// Parses one object starting at `chars[start] == '{'`; returns the
/// event and the index just past its closing brace.
fn parse_object(chars: &[char], start: usize) -> Result<(ChromeEvent, usize), String> {
    let mut ev = ChromeEvent {
        name: String::new(),
        cat: String::new(),
        ph: String::new(),
        pid: 0,
        tid: 0,
        ts: 0.0,
        dur: 0.0,
    };
    let mut i = start + 1;
    loop {
        // Key or end of object.
        while i < chars.len() && matches!(chars[i], ',' | ' ' | '\n' | '\r' | '\t') {
            i += 1;
        }
        if i >= chars.len() {
            return Err("unterminated object".into());
        }
        if chars[i] == '}' {
            return Ok((ev, i + 1));
        }
        let (key, next) = parse_string(chars, i)?;
        i = next;
        while i < chars.len() && chars[i] != ':' {
            i += 1;
        }
        i += 1; // past ':'
        while i < chars.len() && chars[i] == ' ' {
            i += 1;
        }
        if i >= chars.len() {
            return Err(format!("missing value for key {key:?}"));
        }
        match chars[i] {
            '"' => {
                let (val, next) = parse_string(chars, i)?;
                i = next;
                match key.as_str() {
                    "name" => ev.name = val,
                    "cat" => ev.cat = val,
                    "ph" => ev.ph = val,
                    _ => {}
                }
            }
            '{' => {
                i = skip_object(chars, i)?;
            }
            _ => {
                let (val, next) = parse_number(chars, i)?;
                i = next;
                match key.as_str() {
                    "pid" => ev.pid = val as i64,
                    "tid" => ev.tid = val as i64,
                    "ts" => ev.ts = val,
                    "dur" => ev.dur = val,
                    _ => {}
                }
            }
        }
    }
}

/// Parses a JSON string starting at `chars[start] == '"'`, undoing the
/// escapes [`crate::json::escape`] produces.
fn parse_string(chars: &[char], start: usize) -> Result<(String, usize), String> {
    if chars.get(start) != Some(&'"') {
        return Err("expected string".into());
    }
    let mut out = String::new();
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let esc = *chars.get(i + 1).ok_or("truncated escape")?;
                match esc {
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = chars
                            .get(i + 2..i + 6)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        i += 4;
                    }
                    c => out.push(c),
                }
                i += 2;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

/// Parses a JSON number (the `{}`-formatted `f64`s we emit).
fn parse_number(chars: &[char], start: usize) -> Result<(f64, usize), String> {
    let mut i = start;
    let mut text = String::new();
    while i < chars.len() && matches!(chars[i], '0'..='9' | '-' | '+' | '.' | 'e' | 'E') {
        text.push(chars[i]);
        i += 1;
    }
    text.parse::<f64>()
        .map(|v| (v, i))
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

/// Skips a nested object (one `args` level; strings may contain
/// braces). Returns the index just past the matching `}`.
fn skip_object(chars: &[char], start: usize) -> Result<usize, String> {
    let mut depth = 0i32;
    let mut i = start;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i + 1);
                }
            }
            '"' => {
                let (_, next) = parse_string(chars, i)?;
                i = next;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    Err("unterminated nested object".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Span> {
        vec![
            Span::new(SpanKind::Kernel, Layer::Sim, 2, "k\"quoted\"", 0.0, 2_000.0).with_freq(1200),
            Span::marker(Layer::Serving, 0, "shed", 1_000.0),
        ]
    }

    #[test]
    fn plain_export_is_one_flat_object_per_span() {
        let out = export(&sample(), false);
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(!out.contains('\n'), "export must be single-line");
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, 2, "one flat object per span");
        assert_eq!(opens, closes);
        assert!(out.contains("\\\"quoted\\\""), "labels are JSON-escaped");
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"dur\":2"), "ts/dur are microseconds");
    }

    #[test]
    fn rich_export_names_processes_and_carries_args() {
        let out = export(&sample(), true);
        assert!(out.contains("process_name"));
        assert!(out.contains("\"name\":\"sim\""));
        assert!(out.contains("\"name\":\"serving\""));
        assert!(out.contains("\"freq_mhz\":1200"));
    }

    #[test]
    fn empty_export_is_empty_array() {
        assert_eq!(export(&[], false), "[]");
        assert!(parse("[]").unwrap().is_empty());
    }

    #[test]
    fn parse_round_trips_plain_export() {
        let spans = sample();
        let events = parse(&export(&spans, false)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "k\"quoted\"");
        assert_eq!(events[0].cat, "kernel");
        assert_eq!(events[0].ph, "X");
        assert_eq!(events[0].pid, Layer::Sim.pid() as i64);
        assert_eq!(events[0].tid, 2);
        assert_eq!(events[0].ts, 0.0);
        assert_eq!(events[0].dur, 2.0);
        assert_eq!(events[1].ph, "i");
        assert_eq!(events[1].ts, 1.0);
    }

    #[test]
    fn parse_round_trips_rich_export() {
        let spans = sample();
        let events = parse(&export(&spans, true)).unwrap();
        // 2 process_name metadata events + 2 span events.
        assert_eq!(events.len(), 4);
        let metas = events.iter().filter(|e| e.ph == "M").count();
        assert_eq!(metas, 2);
        assert!(events.iter().any(|e| e.name == "k\"quoted\""));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("[{\"name\":").is_err());
        assert!(parse("[{]").is_err());
    }
}
