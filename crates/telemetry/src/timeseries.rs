//! Windowed time-series: fixed-width windows over the shared ns clock.
//!
//! A [`TimeSeries`] is a bounded ring of equal-width time windows, each
//! accumulating a sum (arrivals, sheds, violations, occupancy·time, …).
//! Windows are dense — advancing the clock past a quiet period inserts
//! explicit zero windows — so range queries ("events in the last 5 s")
//! are exact over whatever history the ring still holds, and two series
//! with the same geometry stay aligned window-for-window (the property
//! the SLO burn-rate ratio relies on).
//!
//! Everything is driven by *simulated* time stamps, so the series is
//! deterministic: the same event stream produces the same windows
//! regardless of wall-clock, thread count, or cache temperature.

use std::collections::VecDeque;

/// A bounded ring of fixed-width accumulator windows.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window_ns: f64,
    cap: usize,
    /// Dense `(window_index, sum)` pairs, oldest first.
    windows: VecDeque<(u64, f64)>,
}

impl TimeSeries {
    /// Creates a series of `cap` windows, each `window_ns` wide.
    ///
    /// # Panics
    /// Panics if `window_ns` is not positive or `cap` is zero.
    pub fn new(window_ns: f64, cap: usize) -> Self {
        assert!(window_ns > 0.0, "window width must be positive");
        assert!(cap > 0, "ring capacity must be positive");
        TimeSeries {
            window_ns,
            cap,
            windows: VecDeque::new(),
        }
    }

    /// Window width, ns.
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// The window index covering `t_ns`.
    fn index_of(&self, t_ns: f64) -> u64 {
        (t_ns.max(0.0) / self.window_ns) as u64
    }

    /// Advances the ring so its newest window covers `t_ns`, inserting
    /// zero windows for any gap and evicting beyond capacity.
    pub fn advance(&mut self, t_ns: f64) {
        let idx = self.index_of(t_ns);
        let mut next = match self.windows.back() {
            Some(&(last, _)) if last >= idx => return,
            Some(&(last, _)) => last + 1,
            None => idx,
        };
        // A gap larger than the ring means everything old is evicted
        // anyway; skip straight to the retained range.
        if idx - next >= self.cap as u64 {
            self.windows.clear();
            next = idx + 1 - self.cap as u64;
        }
        while next <= idx {
            if self.windows.len() == self.cap {
                self.windows.pop_front();
            }
            self.windows.push_back((next, 0.0));
            next += 1;
        }
    }

    /// Adds `v` into the window covering `t_ns`, advancing the ring.
    /// Samples older than the retained history are dropped.
    pub fn add(&mut self, t_ns: f64, v: f64) {
        self.advance(t_ns);
        let idx = self.index_of(t_ns);
        if let Some(&(first, _)) = self.windows.front() {
            if idx < first {
                return; // older than retained history
            }
            let pos = (idx - first) as usize;
            if let Some(w) = self.windows.get_mut(pos) {
                w.1 += v;
            }
        }
    }

    /// Sum over every retained window.
    pub fn total(&self) -> f64 {
        self.windows.iter().map(|&(_, v)| v).sum()
    }

    /// Sum over windows whose *start* lies in `[now_ns − span_ns, now_ns]`.
    ///
    /// The range is clamped to retained history; pair this with
    /// [`covered_ns`](Self::covered_ns) when the clamp matters.
    pub fn sum_over(&self, now_ns: f64, span_ns: f64) -> f64 {
        let from = self.index_of((now_ns - span_ns).max(0.0));
        let to = self.index_of(now_ns);
        self.windows
            .iter()
            .filter(|&&(i, _)| i >= from && i <= to)
            .map(|&(_, v)| v)
            .sum()
    }

    /// How much history (ns) actually backs a `sum_over(now, span)`
    /// query — less than `span_ns` early in a run or after eviction.
    pub fn covered_ns(&self, now_ns: f64, span_ns: f64) -> f64 {
        let from_ns = (now_ns - span_ns).max(0.0);
        match self.windows.front() {
            None => 0.0,
            Some(&(first, _)) => {
                let first_ns = first as f64 * self.window_ns;
                (now_ns - first_ns.max(from_ns)).max(0.0)
            }
        }
    }

    /// Events per simulated second over the trailing `span_ns`.
    pub fn rate_per_sec(&self, now_ns: f64, span_ns: f64) -> f64 {
        let covered = self.covered_ns(now_ns, span_ns);
        if covered <= 0.0 {
            return 0.0;
        }
        self.sum_over(now_ns, span_ns) / (covered / 1e9)
    }

    /// Merges `other`'s windows into `self`, shifting every window by
    /// `offset_ns` on the shared clock.
    ///
    /// This is the fleet rollup path: a per-chip series recorded on an
    /// epoch-local clock folds into a fleet-wide series by offsetting
    /// with the epoch start. Windows need not share alignment — each
    /// shifted window's sum lands in whichever of `self`'s windows
    /// covers its start. Sums older than `self`'s retained history are
    /// dropped, exactly as [`add`](Self::add) drops late samples.
    pub fn merge_offset(&mut self, other: &TimeSeries, offset_ns: f64) {
        for (start_ns, sum) in other.windows() {
            if sum != 0.0 {
                self.add(start_ns + offset_ns, sum);
            }
        }
    }

    /// Iterates retained `(window_start_ns, sum)` pairs, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.windows
            .iter()
            .map(move |&(i, v)| (i as f64 * self.window_ns, v))
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_windows_and_sums() {
        let mut ts = TimeSeries::new(1e9, 8);
        ts.add(0.5e9, 1.0);
        ts.add(0.7e9, 1.0);
        ts.add(2.1e9, 3.0); // skips window 1 → a zero window is inserted
        assert_eq!(ts.len(), 3);
        let w: Vec<(f64, f64)> = ts.windows().collect();
        assert_eq!(w, vec![(0.0, 2.0), (1e9, 0.0), (2e9, 3.0)]);
        assert_eq!(ts.total(), 5.0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ts = TimeSeries::new(1e9, 4);
        for i in 0..10 {
            ts.add(i as f64 * 1e9 + 0.5e9, 1.0);
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.total(), 4.0);
        let first = ts.windows().next().unwrap();
        assert_eq!(first.0, 6e9);
    }

    #[test]
    fn sum_over_clamps_to_history() {
        let mut ts = TimeSeries::new(1e9, 64);
        ts.add(0.5e9, 2.0);
        ts.add(1.5e9, 4.0);
        // Query a 60 s span with only 2 s of history.
        assert_eq!(ts.sum_over(1.9e9, 60e9), 6.0);
        assert!(ts.covered_ns(1.9e9, 60e9) <= 2e9);
        // A 1 s span at t=1.9 s covers windows 0 and 1 (window starts
        // within the range), not less.
        assert_eq!(ts.sum_over(1.9e9, 1e9), 6.0);
    }

    #[test]
    fn rate_uses_covered_history() {
        let mut ts = TimeSeries::new(1e9, 64);
        for i in 0..5 {
            ts.add(i as f64 * 1e9 + 0.1e9, 10.0);
        }
        let now = 4.9e9;
        let r = ts.rate_per_sec(now, 5e9);
        assert!((r - 50.0 / 4.9).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn large_gap_clears_ring() {
        let mut ts = TimeSeries::new(1e9, 4);
        ts.add(0.5e9, 1.0);
        ts.add(1000.5e9, 2.0);
        assert_eq!(ts.len(), 4, "gap fills to capacity with zeros");
        assert_eq!(ts.total(), 2.0);
    }

    #[test]
    fn merge_offset_shifts_and_adds() {
        let mut fleet = TimeSeries::new(1e9, 16);
        fleet.add(0.5e9, 1.0);
        // Chip series recorded on an epoch-local clock, epoch at 2 s.
        let mut chip = TimeSeries::new(1e9, 16);
        chip.add(0.2e9, 3.0);
        chip.add(1.4e9, 5.0);
        fleet.merge_offset(&chip, 2e9);
        let w: Vec<(f64, f64)> = fleet.windows().collect();
        assert_eq!(w, vec![(0.0, 1.0), (1e9, 0.0), (2e9, 3.0), (3e9, 5.0)]);
        // A second chip merging into the *same* (now older) windows
        // still lands in place, not in the newest window.
        let mut other = TimeSeries::new(1e9, 16);
        other.add(0.1e9, 7.0);
        fleet.merge_offset(&other, 2e9);
        assert_eq!(fleet.sum_over(2.5e9, 0.9e9), 10.0);
        assert_eq!(fleet.total(), 16.0);
    }

    #[test]
    fn late_samples_are_dropped() {
        let mut ts = TimeSeries::new(1e9, 2);
        ts.add(5.5e9, 1.0);
        ts.add(0.5e9, 9.0); // far older than retained history
        assert_eq!(ts.total(), 1.0);
    }
}
