//! The shared telemetry clock: every span and snapshot is stamped in
//! **nanoseconds of simulated time** as an `f64`.
//!
//! The simulator already advances an ns clock; the serving engine runs
//! in simulated milliseconds. These helpers are the single place where
//! the two unit systems meet, replacing the ad-hoc conversions that
//! used to live in each exporter.

/// Nanoseconds per microsecond.
pub const NS_PER_US: f64 = 1e3;
/// Nanoseconds per millisecond.
pub const NS_PER_MS: f64 = 1e6;

/// Converts simulated milliseconds (the serving engine's clock) to the
/// shared nanosecond clock.
pub fn ms_to_ns(ms: f64) -> f64 {
    ms * NS_PER_MS
}

/// Converts the shared nanosecond clock to milliseconds.
pub fn ns_to_ms(ns: f64) -> f64 {
    ns / NS_PER_MS
}

/// Converts the shared nanosecond clock to microseconds (the unit
/// Chrome-trace `ts`/`dur` fields use).
pub fn ns_to_us(ns: f64) -> f64 {
    ns / NS_PER_US
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(ms_to_ns(1.5), 1_500_000.0);
        assert_eq!(ns_to_ms(ms_to_ns(7.25)), 7.25);
        assert_eq!(ns_to_us(2_000.0), 2.0);
    }
}
